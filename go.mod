module qb5000

go 1.22
