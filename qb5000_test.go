package qb5000

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"qb5000/internal/workload"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	f := New(Config{
		Model:    "LR",
		Horizons: []time.Duration{time.Hour},
		Seed:     11,
	})
	w := workload.BusTracker(11)
	to := w.Start.Add(8 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Maintain(to); err != nil {
		t.Fatal(err)
	}

	st := f.Stats()
	if st.TotalQueries == 0 || st.Templates == 0 || st.Clusters == 0 || st.TrackedClusters == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ParseErrors != 0 {
		t.Fatalf("parse errors: %d", st.ParseErrors)
	}

	preds, err := f.Forecast(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != st.TrackedClusters {
		t.Fatalf("%d forecasts for %d tracked clusters", len(preds), st.TrackedClusters)
	}
	for _, p := range preds {
		if len(p.Templates) == 0 {
			t.Fatal("forecast without member templates")
		}
		if p.TotalRate < 0 || p.PerTemplateRate < 0 {
			t.Fatal("negative rates")
		}
		for _, sql := range p.Templates {
			if !strings.Contains(sql, "?") && !strings.Contains(strings.ToUpper(sql), "SELECT") &&
				!strings.Contains(strings.ToUpper(sql), "INSERT") &&
				!strings.Contains(strings.ToUpper(sql), "UPDATE") &&
				!strings.Contains(strings.ToUpper(sql), "DELETE") {
				t.Fatalf("template does not look like SQL: %q", sql)
			}
		}
	}

	ts := f.Templates()
	if len(ts) != st.Templates {
		t.Fatalf("Templates() = %d entries, stats say %d", len(ts), st.Templates)
	}
	foundSample := false
	for _, tpl := range ts {
		if len(tpl.SampleParams) > 0 {
			foundSample = true
		}
		if tpl.Count <= 0 || tpl.LastSeen.Before(tpl.FirstSeen) {
			t.Fatalf("template bookkeeping: %+v", tpl)
		}
	}
	if !foundSample {
		t.Fatal("no template kept parameter samples")
	}
}

func TestObserveRejectsBadSQL(t *testing.T) {
	f := New(Config{Seed: 1})
	if err := f.Observe("NOT SQL AT ALL", time.Now()); err == nil {
		t.Fatal("expected parse error")
	}
	if f.Stats().ParseErrors != 1 {
		t.Fatal("parse error not counted")
	}
}

func TestTemplatizeHelper(t *testing.T) {
	tpl, params, err := Templatize("SELECT a FROM t WHERE x = 42 AND s = 'v'")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tpl, "42") || strings.Contains(tpl, "'v'") {
		t.Fatalf("constants leaked: %q", tpl)
	}
	if len(params) != 2 || params[0] != "42" || params[1] != "v" {
		t.Fatalf("params = %v", params)
	}
	if _, _, err := Templatize("garbage"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTickThroughPublicAPI(t *testing.T) {
	f := New(Config{Model: "LR", ClusterEvery: time.Hour, Seed: 5})
	at := time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 180; i++ {
		if err := f.ObserveBatch("SELECT a FROM t WHERE x = 1", at.Add(time.Duration(i)*time.Minute), 5); err != nil {
			t.Fatal(err)
		}
	}
	ran, err := f.Tick(at.Add(3 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("tick did not run maintenance")
	}
	if f.Stats().Clusters != 1 {
		t.Fatalf("clusters = %d", f.Stats().Clusters)
	}
}

func TestLogicalFeatureMode(t *testing.T) {
	f := New(Config{Model: "LR", UseLogicalFeatures: true, Seed: 2})
	at := time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)
	f.Observe("SELECT a FROM t WHERE x = 1", at)
	f.Observe("SELECT a FROM t WHERE y = 2", at)
	if err := f.Maintain(at.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Clusters == 0 {
		t.Fatal("no clusters in logical mode")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 4}
	f := New(cfg)
	w := workload.BusTracker(4)
	to := w.Start.Add(8 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().Templates != f.Stats().Templates {
		t.Fatalf("templates: %d vs %d", g.Stats().Templates, f.Stats().Templates)
	}
	// The restored instance can train and forecast from the restored
	// histories alone.
	if err := g.Maintain(to); err != nil {
		t.Fatal(err)
	}
	preds, err := g.Forecast(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no forecasts after restore")
	}
	if _, err := Load(cfg, bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error for corrupt snapshot")
	}
}
