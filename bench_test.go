// Benchmarks regenerating the paper's tables and figures (one per
// artifact; see DESIGN.md for the experiment index) plus micro-benchmarks
// for the pipeline's hot paths. The experiment benchmarks run in quick mode
// so a full `go test -bench=. -benchmem` pass completes in minutes; run
// `go run ./cmd/qb5000bench -exp all` for the full-fidelity reports.
package qb5000

import (
	"fmt"
	"io"
	"math"
	"testing"
	"time"

	"qb5000/internal/experiments"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/preprocess"
	"qb5000/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, experiments.Options{Quick: true, Seed: 1}, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1Workloads(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Reduction(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkTable3Properties(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4Overhead(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkFig1Patterns(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig3ClusterHistory(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig5Coverage(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6ClusterChange(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7Forecast(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8ActualVsPredicted(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9Spikes(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10Intervals(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11IndexSelection(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12IndexSelection(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13RhoCoverage(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14RhoAccuracy(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15PCA(b *testing.B)              { benchExperiment(b, "fig15") }
func BenchmarkFig16Gamma(b *testing.B)            { benchExperiment(b, "fig16") }
func BenchmarkFig17Noisy(b *testing.B)            { benchExperiment(b, "fig17") }

// --- Micro-benchmarks for the pipeline's hot paths. ---

// BenchmarkTemplatize measures the Pre-Processor's per-query cost (the
// paper's Table 4 reports ~0.05 ms/query).
func BenchmarkTemplatize(b *testing.B) {
	queries := []string{
		"SELECT s.id, s.name FROM stops s WHERE s.lat BETWEEN 40.1 AND 40.2 AND s.lon BETWEEN -80.0 AND -79.9",
		"INSERT INTO bus_locations (bus_id, lat, lon, reported_at) VALUES (17, 40.45, -79.99, 1512086400)",
		"UPDATE applications SET status = 'submitted', submitted_at = 1512086400 WHERE id = 8231",
		"SELECT o.user_id, COUNT(*), SUM(o.amount) FROM orders o WHERE o.status = 'paid' GROUP BY o.user_id HAVING COUNT(*) > 3",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := preprocess.Templatize(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessorIngest measures end-to-end ingestion including
// history recording and reservoir sampling.
func BenchmarkPreprocessorIngest(b *testing.B) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf("SELECT a FROM t WHERE x = %d", i)
		if _, err := p.Process(sql, at.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLRFit measures the closed-form model fit the controller runs on
// every retrain (Table 4: LR train time).
func BenchmarkLRFit(b *testing.B) {
	hist := benchHistory(24*21, 3)
	cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: 3, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := forecast.NewLR(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKRPredict measures one kernel-regression prediction over a large
// retained training set (Table 4: KR test time).
func BenchmarkKRPredict(b *testing.B) {
	hist := benchHistory(24*60, 3)
	cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: 3, Seed: 1}
	m, err := forecast.NewKR(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(hist); err != nil {
		b.Fatal(err)
	}
	recent := mat.New(24, 3)
	for i := range recent.Data {
		recent.Data[i] = 2
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(recent); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNNFitEpoch measures LSTM training cost (Table 4: RNN train
// time dominates the pipeline).
func BenchmarkRNNFitEpoch(b *testing.B) {
	hist := benchHistory(24*14, 3)
	for i := 0; i < b.N; i++ {
		cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: 3, Seed: 1, Epochs: 1}
		m, err := forecast.NewRNN(cfg, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayIngest measures full trace replay through the public API.
func BenchmarkReplayIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := New(Config{Model: "LR", Seed: 1})
		w := workload.BusTracker(1)
		err := w.Replay(w.Start, w.Start.Add(24*time.Hour), 10*time.Minute, func(ev workload.Event) error {
			return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchHistory(rows, cols int) *mat.Matrix {
	m := mat.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, 3+float64(j)+2*math.Sin(2*math.Pi*float64(i)/24))
		}
	}
	return m
}
