// Benchmarks regenerating the paper's tables and figures (one per
// artifact; see DESIGN.md for the experiment index) plus micro-benchmarks
// for the pipeline's hot paths. The experiment benchmarks run in quick mode
// so a full `go test -bench=. -benchmem` pass completes in minutes; run
// `go run ./cmd/qb5000bench -exp all` for the full-fidelity reports.
package qb5000

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/core"
	"qb5000/internal/experiments"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/preprocess"
	"qb5000/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, experiments.Options{Quick: true, Seed: 1}, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1Workloads(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2Reduction(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkTable3Properties(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4Overhead(b *testing.B)        { benchExperiment(b, "table4") }
func BenchmarkFig1Patterns(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig3ClusterHistory(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig5Coverage(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6ClusterChange(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7Forecast(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8ActualVsPredicted(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9Spikes(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10Intervals(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11IndexSelection(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12IndexSelection(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13RhoCoverage(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14RhoAccuracy(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15PCA(b *testing.B)              { benchExperiment(b, "fig15") }
func BenchmarkFig16Gamma(b *testing.B)            { benchExperiment(b, "fig16") }
func BenchmarkFig17Noisy(b *testing.B)            { benchExperiment(b, "fig17") }

// --- Micro-benchmarks for the pipeline's hot paths. ---

// BenchmarkTemplatize measures the Pre-Processor's per-query cost (the
// paper's Table 4 reports ~0.05 ms/query).
func BenchmarkTemplatize(b *testing.B) {
	queries := []string{
		"SELECT s.id, s.name FROM stops s WHERE s.lat BETWEEN 40.1 AND 40.2 AND s.lon BETWEEN -80.0 AND -79.9",
		"INSERT INTO bus_locations (bus_id, lat, lon, reported_at) VALUES (17, 40.45, -79.99, 1512086400)",
		"UPDATE applications SET status = 'submitted', submitted_at = 1512086400 WHERE id = 8231",
		"SELECT o.user_id, COUNT(*), SUM(o.amount) FROM orders o WHERE o.status = 'paid' GROUP BY o.user_id HAVING COUNT(*) > 3",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := preprocess.Templatize(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessorIngest measures end-to-end ingestion including
// history recording and reservoir sampling.
func BenchmarkPreprocessorIngest(b *testing.B) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf("SELECT a FROM t WHERE x = %d", i)
		if _, err := p.Process(sql, at.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLRFit measures the closed-form model fit the controller runs on
// every retrain (Table 4: LR train time).
func BenchmarkLRFit(b *testing.B) {
	hist := benchHistory(24*21, 3)
	cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: 3, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := forecast.NewLR(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKRPredict measures one kernel-regression prediction over a large
// retained training set (Table 4: KR test time).
func BenchmarkKRPredict(b *testing.B) {
	hist := benchHistory(24*60, 3)
	cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: 3, Seed: 1}
	m, err := forecast.NewKR(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(hist); err != nil {
		b.Fatal(err)
	}
	recent := mat.New(24, 3)
	for i := range recent.Data {
		recent.Data[i] = 2
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(recent); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNNFitEpoch measures LSTM training cost (Table 4: RNN train
// time dominates the pipeline).
func BenchmarkRNNFitEpoch(b *testing.B) {
	hist := benchHistory(24*14, 3)
	for i := 0; i < b.N; i++ {
		cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: 3, Seed: 1, Epochs: 1}
		m, err := forecast.NewRNN(cfg, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRetrain measures the controller's full maintenance pass — clustering
// plus per-horizon model training — at the given worker-pool bound. The
// Sequential/Parallel pair quantifies the tentpole speedup: with four
// horizons and an iterative model family, the parallel retrain should
// approach a linear speedup on multi-core hardware while producing
// bit-identical models (see TestForecastDeterminismAcrossParallelism).
func benchRetrain(b *testing.B, parallelism int) {
	b.Helper()
	ctl := core.New(core.Config{
		Model: "ENSEMBLE",
		Horizons: []time.Duration{
			time.Hour, 2 * time.Hour, 3 * time.Hour, 4 * time.Hour,
		},
		Seed:        1,
		Epochs:      4,
		Parallelism: parallelism,
	})
	w := workload.BusTracker(1)
	to := w.Start.Add(8 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ctl.Refresh(ctx, to); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrainSequential(b *testing.B) { benchRetrain(b, 1) }
func BenchmarkRetrainParallel(b *testing.B)   { benchRetrain(b, 0) }

// BenchmarkClusterUpdateSequential/Parallel isolate the clusterer's
// similarity scan and centroid update cost on a replayed catalog.
func benchClusterUpdate(b *testing.B, parallelism int) {
	b.Helper()
	pre := preprocess.New(preprocess.Options{Seed: 1})
	w := workload.BusTracker(1)
	to := w.Start.Add(7 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		_, err := pre.ProcessBatch(ev.SQL, ev.At, ev.Count)
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clu := newBenchClusterer(parallelism)
		if _, err := clu.Update(ctx, to, pre.Templates()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterUpdateSequential(b *testing.B) { benchClusterUpdate(b, 1) }
func BenchmarkClusterUpdateParallel(b *testing.B)   { benchClusterUpdate(b, 0) }

// benchObserve drives ObserveBatch from the given number of goroutines over
// a fixed pool of distinct templates, measuring contended ingest throughput.
// The catalog is pre-warmed so the steady state — template exists, fold the
// arrival into its history — dominates, which is exactly the path a DBMS
// exercises when forwarding its query stream (§3: ingest must stay off the
// critical path). goroutines=1 is the sequential baseline.
func benchObserve(b *testing.B, goroutines int) {
	b.Helper()
	f := New(Config{Seed: 1})
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT a, b FROM t%d WHERE x = 1 AND y = 2", i)
	}
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, q := range queries {
		if err := f.Observe(q, at.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	var wg sync.WaitGroup
	per := b.N / goroutines
	for g := 0; g < goroutines; g++ {
		n := per
		if g == 0 {
			n += b.N % goroutines
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				q := queries[(g*31+i)%len(queries)]
				ts := at.Add(time.Duration(i%3600) * time.Second)
				if err := f.ObserveBatch(q, ts, 1); err != nil {
					b.Error(err)
					return
				}
			}
		}(g, n)
	}
	wg.Wait()
}

// BenchmarkObserveParallel quantifies how ingest throughput scales with
// cores (make bench-ingest; wired into the CI bench-smoke job). The
// acceptance bar for the sharded catalog is goroutines=GOMAXPROCS reaching
// ≥3× the ops/sec of the pre-refactor global-lock path.
func BenchmarkObserveParallel(b *testing.B) {
	seen := make(map[int]bool)
	for _, g := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if g < 1 || seen[g] {
			continue
		}
		seen[g] = true
		g := g
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchObserve(b, g)
		})
	}
}

// BenchmarkObserveCacheHit measures the fingerprint-cache fast path: the
// same raw SQL byte strings arrive over and over (the production common
// case), so every Observe after warmup skips lex/parse/templatize and folds
// straight into the catalog stripe. The acceptance bar for the cache is
// ≥10× over the full templatize path with ~0 allocs/op.
func BenchmarkObserveCacheHit(b *testing.B) {
	f := New(Config{Seed: 1, FingerprintCacheSize: 1024})
	queries := make([]string, 256)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT a, b FROM t%d WHERE x = 1 AND y = 2", i)
	}
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, q := range queries {
		if err := f.Observe(q, at.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := at.Add(time.Duration(i%3600) * time.Second)
		if err := f.ObserveBatch(queries[i%len(queries)], ts, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := f.Stats(); st.CacheHits < int64(b.N) {
		b.Fatalf("expected ≥%d cache hits, got %d", b.N, st.CacheHits)
	}
}

// BenchmarkObserveCacheMiss measures the cache-enabled slow path: distinct
// raw text cycling through a smaller cache, so every Observe re-templatizes
// (plus pays the cache insert and a clock eviction). This bounds the
// worst-case overhead the cache adds to a workload it cannot help.
func BenchmarkObserveCacheMiss(b *testing.B) {
	f := New(Config{Seed: 1, FingerprintCacheSize: 256})
	queries := make([]string, 4096)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT a, b FROM t WHERE x = %d AND y = 2", i)
	}
	at := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := at.Add(time.Duration(i%3600) * time.Second)
		if err := f.ObserveBatch(queries[i%len(queries)], ts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveDuringMaintain measures ingest latency while maintenance
// (re-cluster + retrain) runs continuously in the background — the paper's
// §3 requirement that ingest stay off the critical path. Under the old
// global RWMutex every observation stalled for the entire retrain; with the
// striped catalog and copy-on-write epochs it only contends for one stripe
// lock held for the fold.
func BenchmarkObserveDuringMaintain(b *testing.B) {
	f := New(Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 1})
	w := workload.BusTracker(1)
	to := w.Start.Add(3 * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Maintain(to); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.Maintain(to.Add(time.Duration(i+1) * time.Second)); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := to.Add(time.Duration(i%3600) * time.Second)
		if err := f.ObserveBatch("SELECT a, b FROM hot WHERE x = 1 AND y = 2", ts, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkReplayIngest measures full trace replay through the public API.
func BenchmarkReplayIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := New(Config{Model: "LR", Seed: 1})
		w := workload.BusTracker(1)
		err := w.Replay(w.Start, w.Start.Add(24*time.Hour), 10*time.Minute, func(ev workload.Event) error {
			return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchClusterer(parallelism int) *cluster.Clusterer {
	return cluster.New(cluster.Options{Rho: 0.8, Seed: 2, Parallelism: parallelism})
}

func benchHistory(rows, cols int) *mat.Matrix {
	m := mat.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, 3+float64(j)+2*math.Sin(2*math.Pi*float64(i)/24))
		}
	}
	return m
}
