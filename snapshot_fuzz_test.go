package qb5000

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// snapshotConfig is the fixed shape used by the snapshot robustness tests;
// Load needs the same Config the snapshot was written under.
func snapshotConfig() Config {
	return Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 5}
}

// snapshotBytes trains a small forecaster and returns its serialized
// envelope, for use as fuzz seed and corruption substrate.
func snapshotBytes(t interface {
	Helper()
	Fatal(...any)
}) []byte {
	t.Helper()
	f := New(snapshotConfig())
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		if err := f.ObserveBatch("SELECT a FROM t WHERE x = 1", at, int64(1+i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Maintain(base.Add(4 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSaveFileLoadFileRoundTrip exercises the file-level persistence pair:
// SaveFile writes through the fsx atomic protocol, LoadFile reopens and
// restores, and the restored forecaster matches on observable state.
func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	f := New(snapshotConfig())
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		if err := f.ObserveBatch("SELECT b FROM u WHERE y = 2", base.Add(time.Duration(i)*time.Minute), 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Maintain(base.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.snap")
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(snapshotConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Stats().TotalQueries, f.Stats().TotalQueries; got != want {
		t.Fatalf("reloaded TotalQueries = %d, want %d", got, want)
	}
	if got, want := len(g.Templates()), len(f.Templates()); got != want {
		t.Fatalf("reloaded %d templates, want %d", got, want)
	}
	// Overwriting an existing snapshot must replace, not append.
	if err := f.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(snapshotConfig(), path); err != nil {
		t.Fatal(err)
	}
}

// TestLoadRejectsCorruptSnapshots pins the envelope's failure modes: every
// torn-write and bit-rot shape must be rejected with a descriptive error,
// never a panic or a silently half-restored forecaster.
func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	data := snapshotBytes(t)
	if len(data) < 32 {
		t.Fatalf("snapshot implausibly small: %d bytes", len(data))
	}

	flipped := bytes.Clone(data)
	flipped[len(flipped)/2] ^= 0x40

	badMagic := bytes.Clone(data)
	badMagic[0] ^= 0xFF

	trailing := append(bytes.Clone(data), "garbage"...)

	cases := []struct {
		name    string
		in      []byte
		wantSub string
	}{
		{"empty", nil, "truncated"},
		{"short header", data[:7], "truncated"},
		{"bad magic", badMagic, "magic"},
		{"header only", data[:16], "truncated"},
		{"half body", data[:len(data)/2], "truncated"},
		{"missing checksum", data[:len(data)-2], "truncated"},
		{"bit flip", flipped, "CRC32"},
		{"trailing garbage", trailing, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(snapshotConfig(), bytes.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Load accepted a corrupt snapshot (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The pristine bytes still load — the corruption cases above are not
	// rejecting everything.
	if _, err := Load(snapshotConfig(), bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// FuzzLoad feeds arbitrary byte strings to Load: the envelope must reject
// anything torn or mutated with an error, and a successful load must yield
// a usable forecaster. Panics are the only failure.
func FuzzLoad(f *testing.F) {
	data := snapshotBytes(f)
	f.Add(data)
	f.Add([]byte{})
	f.Add(data[:len(data)/2])
	f.Add(data[:16])
	f.Add(data[:len(data)-2])
	flipped := bytes.Clone(data)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	f.Add(append(bytes.Clone(data), 0xAA))

	cfg := snapshotConfig()
	f.Fuzz(func(t *testing.T, b []byte) {
		fc, err := Load(cfg, bytes.NewReader(b))
		if err != nil {
			return
		}
		// A snapshot that passed the checksum must restore to a working
		// forecaster.
		fc.Stats()
		fc.Templates()
	})
}
