// Indexadvisor: the paper's §7.6 scenario as a runnable demo. QB5000
// observes the BusTracker workload, forecasts the next hour's queries, and
// an AutoAdmin-style selector chooses secondary indexes for the embedded
// relational engine. The demo prints the simulated query cost before and
// after the advisor's builds.
//
// Run with:
//
//	go run ./examples/indexadvisor
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"qb5000/internal/core"
	"qb5000/internal/engine"
	"qb5000/internal/indexsel"
	"qb5000/internal/preprocess"
	"qb5000/internal/sqlparse"
	"qb5000/internal/workload"
)

func main() {
	const scale = 20000
	w := workload.BusTracker(7)

	// An engine with data but only primary-key indexes, as in §7.6.
	eng := engine.New()
	if err := workload.SetupEngine(eng, "bustracker", scale, 7); err != nil {
		log.Fatal(err)
	}

	// QB5000 watches one week of the workload.
	ctl := core.New(core.Config{
		Model:    "LR",
		Horizons: []time.Duration{time.Hour},
		Seed:     7,
	})
	from := w.Start
	to := from.Add(7 * 24 * time.Hour)
	err := w.Replay(from, to, 10*time.Minute, func(ev workload.Event) error {
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ctl.Refresh(context.Background(), to); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("watched %d queries → %d templates → %d tracked clusters\n\n",
		ctl.Preprocessor().Stats().TotalQueries, ctl.Preprocessor().Len(), len(ctl.Tracked()))

	// Sample live queries and measure their cost before any new indexes.
	sample := liveSample(w, to, 300)
	before := avgCost(eng, sample)

	// Build the advisor's picks from the forecast.
	queries := forecastedQueries(ctl)
	sel := indexsel.New(eng)
	picks := sel.Select(queries, 5, existing(eng))
	fmt.Println("advisor picks (from the predicted workload):")
	for _, c := range picks {
		if _, buildCost, err := eng.CreateIndex(c.Table, c.Columns); err == nil {
			fmt.Printf("  CREATE INDEX ON %s(%v)   [build scanned %d rows]\n",
				c.Table, c.Columns, buildCost.RowsScanned)
		}
	}

	after := avgCost(eng, sample)
	fmt.Printf("\navg simulated query cost: %.0f units → %.0f units (%.1fx faster)\n",
		before, after, before/after)
}

// forecastedQueries converts the controller's per-cluster predictions into
// the weighted concrete queries the selector consumes.
func forecastedQueries(ctl *core.Controller) []indexsel.WeightedQuery {
	preds, err := ctl.Forecast(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	var out []indexsel.WeightedQuery
	for _, p := range preds {
		for _, id := range p.Cluster.MemberIDs() {
			t, ok := ctl.Preprocessor().Template(id)
			if !ok {
				continue
			}
			samples := t.Params.Sample()
			if len(samples) == 0 {
				continue
			}
			sql := preprocess.Instantiate(t.SQL, samples[0])
			stmt, err := sqlparse.Parse(sql)
			if err != nil {
				continue
			}
			out = append(out, indexsel.WeightedQuery{
				SQL: sql, Stmt: stmt,
				Weight: p.TotalRate / float64(p.Cluster.Size()),
			})
		}
	}
	return out
}

func liveSample(w *workload.Workload, at time.Time, n int) []string {
	rng := rand.New(rand.NewSource(99))
	var out []string
	for len(out) < n {
		for _, s := range w.Shapes {
			if !s.ActiveFrom.IsZero() && at.Before(s.ActiveFrom) {
				continue
			}
			if s.Rate(at) <= 0 {
				continue
			}
			out = append(out, s.Gen(rng, at))
			if len(out) == n {
				break
			}
		}
	}
	return out
}

func avgCost(eng *engine.Engine, queries []string) float64 {
	var total float64
	for _, q := range queries {
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatalf("execute %q: %v", q, err)
		}
		total += res.Cost.Units()
	}
	return total / float64(len(queries))
}

func existing(eng *engine.Engine) map[string][][]string {
	out := make(map[string][][]string)
	for _, t := range eng.Tables() {
		for _, ix := range t.Indexes() {
			out[t.Name] = append(out[t.Name], ix.Columns)
		}
	}
	return out
}
