// Evolving: workload evolution and shift handling (paper §2.2, §5.2). The
// MOOC application ships a discussion-forum feature mid-trace, introducing
// query templates that never existed before. The controller's new-template
// trigger re-clusters early, and the forecaster adapts.
//
// Run with:
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"
	"time"

	"qb5000"
	"qb5000/internal/workload"
)

func main() {
	w := workload.MOOC(9)
	f := qb5000.New(qb5000.Config{
		Model:        "LR",
		Horizons:     []time.Duration{time.Hour},
		ClusterEvery: 24 * time.Hour,
		Seed:         9,
	})

	from := w.Start
	to := from.Add(35 * 24 * time.Hour) // covers the May 5 forum launch
	nextTick := from.Add(time.Hour)
	reclusters := 0

	fmt.Println("day  templates  clusters  note")
	lastDay := -1
	err := w.Replay(from, to, 10*time.Minute, func(ev workload.Event) error {
		for !ev.At.Before(nextTick) {
			ran, err := f.Tick(nextTick)
			if err != nil {
				return err
			}
			if ran {
				reclusters++
			}
			day := int(nextTick.Sub(from).Hours() / 24)
			if ran && day != lastDay {
				lastDay = day
				st := f.Stats()
				note := ""
				if launch := time.Date(2017, time.May, 5, 0, 0, 0, 0, time.UTC); nextTick.After(launch) && nextTick.Before(launch.Add(48*time.Hour)) {
					note = "← forum feature launched"
				}
				fmt.Printf("%3d  %9d  %8d  %s\n", day, st.Templates, st.Clusters, note)
			}
			nextTick = nextTick.Add(time.Hour)
		}
		return f.ObserveBatch(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		log.Fatal(err)
	}

	st := f.Stats()
	fmt.Printf("\nfinal: %d templates in %d clusters after %d re-cluster passes\n",
		st.Templates, st.Clusters, reclusters)

	preds, err := f.Forecast(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nforecast one hour ahead (the forum cluster is now tracked):")
	for _, p := range preds {
		fmt.Printf("  cluster %d: %.0f q/interval across %d templates; e.g. %.60s\n",
			p.ClusterID, p.TotalRate, len(p.Templates), p.Templates[0])
	}
}
