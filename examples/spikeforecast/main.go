// Spikeforecast: the paper's §7.3 scenario as a runnable demo. The
// Admissions workload spikes every December 1 and 15; the kernel-regression
// model trained on the full history predicts the 2017 spikes a week ahead,
// while the LR+RNN ensemble (trained on the recent three weeks) cannot.
//
// Run with:
//
//	go run ./examples/spikeforecast
package main

import (
	"fmt"
	"log"
	"time"

	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/timeseries"
	"qb5000/internal/workload"
)

func main() {
	w := workload.Admissions(5)

	// Replay Oct 2016 → Dec 2017 into a total-volume hourly series.
	from := time.Date(2016, time.October, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2017, time.December, 20, 0, 0, 0, 0, time.UTC)
	total := timeseries.NewSeries(from, time.Hour)
	err := w.Replay(from, to, time.Hour, func(ev workload.Event) error {
		total.Add(ev.At, float64(ev.Count))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	hist := mat.New(total.Len(), 1)
	for i, v := range total.Data {
		hist.Set(i, 0, timeseries.Log1pClamped(v))
	}
	idxOf := func(t time.Time) int { return int(t.Sub(from) / time.Hour) }

	const horizon = 168 // predict one week ahead
	const lag = 24
	const krLag = 504 // KR reads three weeks of hourly context

	// Cut training at Nov 20 2017 — before this year's deadline season.
	trainEnd := idxOf(time.Date(2017, time.November, 20, 0, 0, 0, 0, time.UTC))

	krCfg := forecast.Config{Lag: krLag, Horizon: horizon, Outputs: 1, Seed: 5}
	kr, err := forecast.NewKR(krCfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := kr.Fit(sub(hist, 0, trainEnd)); err != nil {
		log.Fatal(err)
	}

	ensCfg := forecast.Config{Lag: lag, Horizon: horizon, Outputs: 1, Seed: 5, Epochs: 8}
	ens, err := forecast.NewDefaultEnsemble(ensCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ens.Fit(sub(hist, trainEnd-21*24-lag, trainEnd)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("one-week-ahead forecasts through the December 2017 deadlines:")
	fmt.Printf("%-18s %12s %12s %12s\n", "time", "actual q/h", "KR", "ENSEMBLE")
	for day := 25; day <= 49; day += 2 { // Nov 25 .. Dec 19
		at := time.Date(2017, time.November, day, 21, 0, 0, 0, time.UTC)
		t := idxOf(at)
		if t >= hist.Rows {
			break
		}
		base := t - horizon
		krP, err := kr.Predict(sub(hist, base-krLag, base))
		if err != nil {
			log.Fatal(err)
		}
		ensP, err := ens.Predict(sub(hist, base-lag, base))
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if workloadSpikes(at) {
			marker = "  ← deadline"
		}
		fmt.Printf("%-18s %12.0f %12.0f %12.0f%s\n",
			at.Format("2006-01-02 15:04"),
			timeseries.Expm1Clamped(hist.At(t, 0)),
			timeseries.Expm1Clamped(krP[0]),
			timeseries.Expm1Clamped(ensP[0]),
			marker)
	}
	fmt.Println("\nKR rises with the deadlines because last year's run-up windows")
	fmt.Println("sit close to this year's in its kernel space (paper, Appendix B).")
}

func sub(m *mat.Matrix, from, to int) *mat.Matrix {
	if from < 0 {
		from = 0
	}
	if to > m.Rows {
		to = m.Rows
	}
	out := mat.New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

func workloadSpikes(at time.Time) bool {
	d := at.Day()
	return at.Month() == time.December && (d == 1 || d == 15 || d == 14 || d == 30)
}
