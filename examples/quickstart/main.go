// Quickstart: feed a synthetic query stream into QB5000 and print the
// template catalog and a one-hour-ahead arrival-rate forecast.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"qb5000"
)

func main() {
	f := qb5000.New(qb5000.Config{
		Model:    "LR", // closed-form: trains in milliseconds
		Horizons: []time.Duration{time.Hour},
		Seed:     1,
	})

	// Simulate five days of an application's query stream: a lookup that
	// peaks every day at 18:00, a steady ingest INSERT, and a nightly
	// cleanup DELETE. Constants differ per invocation — the Pre-Processor
	// folds them into templates.
	rng := rand.New(rand.NewSource(1))
	start := time.Date(2018, time.March, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(5 * 24 * time.Hour)
	for at := start; at.Before(end); at = at.Add(time.Minute) {
		h := float64(at.Hour()) + float64(at.Minute())/60
		peak := 1 + 20*math.Exp(-(h-18)*(h-18)/8)
		for i := 0; i < int(peak); i++ {
			sql := fmt.Sprintf("SELECT p.name, p.price FROM products p WHERE p.id = %d", rng.Intn(100000))
			must(f.Observe(sql, at))
		}
		if at.Minute()%2 == 0 {
			sql := fmt.Sprintf("INSERT INTO events (kind, at) VALUES ('view', %d)", at.Unix())
			must(f.Observe(sql, at))
		}
		if at.Hour() == 3 && at.Minute() == 0 {
			must(f.Observe(fmt.Sprintf("DELETE FROM events WHERE at < %d", at.Unix()-86400), at))
		}
	}

	// Periodic maintenance: re-cluster templates and (re)train forecasters.
	must(f.Maintain(end))

	st := f.Stats()
	fmt.Printf("observed %d queries → %d templates → %d clusters (%d modeled)\n\n",
		st.TotalQueries, st.Templates, st.Clusters, st.TrackedClusters)

	fmt.Println("templates:")
	for _, t := range f.Templates() {
		fmt.Printf("  [%d] %7d calls  %s\n", t.ID, t.Count, t.SQL)
	}

	preds, err := f.Forecast(time.Hour)
	if err != nil {
		log.Fatalf("forecast: %v", err)
	}
	fmt.Println("\nforecast for one hour from now (queries per hour):")
	for _, p := range preds {
		fmt.Printf("  cluster %d (%d templates): %.0f total\n",
			p.ClusterID, len(p.Templates), p.TotalRate)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
