// Package qb5000 is a Go implementation of QueryBot 5000, the query-based
// workload forecasting framework for self-driving database management
// systems from Ma et al., SIGMOD 2018.
//
// A Forecaster ingests the raw SQL stream a DBMS executes. It converts each
// query into a generic template (constants stripped, formatting normalized,
// semantically equivalent shapes folded together), tracks each template's
// arrival-rate history at one-minute granularity, clusters templates whose
// arrival patterns move together, and fits forecasting models to the
// highest-volume clusters. A self-driving DBMS's planning module then asks
// for the expected arrival rates one hour, one day, or one week ahead and
// schedules optimizations — index builds, resource provisioning — against
// the future workload instead of the past one.
//
// Minimal usage:
//
//	f := qb5000.New(qb5000.Config{Horizons: []time.Duration{time.Hour}})
//	f.Observe("SELECT * FROM foo WHERE id = 42", time.Now())
//	f.Maintain(time.Now())                  // recluster + train (periodic)
//	preds, err := f.Forecast(time.Hour)     // expected rates per cluster
package qb5000

import (
	"context"
	"io"
	"os"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/core"
	"qb5000/internal/fsx"
	"qb5000/internal/preprocess"
)

// Config tunes a Forecaster. The zero value reproduces the paper's operating
// point: ρ=0.8, γ=150 %, one-hour prediction interval, three-week training
// window, top clusters covering 95 % of volume (max 5), daily re-clustering,
// and the HYBRID (LR+RNN ensemble corrected by kernel regression) model.
type Config struct {
	// Rho is the clustering similarity threshold in [0,1].
	Rho float64
	// Gamma is the spike-override threshold for the HYBRID model
	// (1.5 = paper's 150 %).
	Gamma float64
	// Interval is the prediction interval.
	Interval time.Duration
	// Horizons lists the prediction horizons to maintain models for.
	Horizons []time.Duration
	// TrainWindow bounds how much history the models train on.
	TrainWindow time.Duration
	// CoverageTarget picks how many clusters to model.
	CoverageTarget float64
	// MaxClusters caps the modeled clusters.
	MaxClusters int
	// ClusterEvery is the periodic re-cluster cadence.
	ClusterEvery time.Duration
	// Model selects the forecasting family: "LR", "KR", "ARMA", "FNN",
	// "RNN", "PSRNN", "ENSEMBLE", or "HYBRID".
	Model string
	// UseLogicalFeatures switches clustering to the logical-feature
	// baseline the paper evaluates in §7.7 (worse; for comparison only).
	UseLogicalFeatures bool
	// Seed makes every stochastic component reproducible.
	Seed int64
	// Epochs and LearnRate tune the neural models.
	Epochs    int
	LearnRate float64
	// Parallelism bounds the worker pool used for model retraining and
	// clustering: 0 selects GOMAXPROCS, 1 forces sequential execution.
	// Results are bit-identical at every setting (per-model seeds derive
	// from Seed, not from scheduling order).
	Parallelism int
	// Shards is the template catalog's lock-stripe count, rounded up to a
	// power of two (0 selects GOMAXPROCS rounded up). More stripes let
	// more connection handlers observe queries concurrently. Template IDs
	// are stable for a given (shard count, per-shard input order); Save
	// writes a canonical layout-independent snapshot, so snapshots match
	// byte-for-byte across shard counts. Pin to 1 when template IDs must
	// reproduce across machines with different core counts.
	Shards int
	// FingerprintCacheSize bounds the raw-SQL→template fingerprint cache, in
	// entries across the whole cache; 0 (the default) disables it. When
	// enabled, Observe of a raw query string seen before skips parsing and
	// templatization entirely and folds straight into the catalog — the hot
	// path for production workloads, where the same literal query text
	// repeats millions of times. Hits replay exactly the catalog mutations
	// their misses would have performed, so forecasts, template IDs, and Save
	// snapshots are bit-identical with the cache on or off.
	FingerprintCacheSize int
}

// Forecaster is the public QB5000 instance. It is safe for concurrent use
// and designed so ingestion stays off the DBMS's critical path (§3):
// Observe/ObserveBatch/ObserveMany go straight to the template catalog's
// lock stripes (queries for different templates don't contend), Tick and
// Maintain build clusters and models off to the side and publish them as an
// immutable epoch behind one atomic pointer, and Forecast/Stats/Templates
// read the current epoch and the striped catalog without ever waiting on a
// retrain.
type Forecaster struct {
	ctl *core.Controller
}

// New creates a Forecaster.
func New(cfg Config) *Forecaster {
	mode := cluster.ArrivalRate
	if cfg.UseLogicalFeatures {
		mode = cluster.Logical
	}
	return &Forecaster{ctl: core.New(core.Config{
		Rho:            cfg.Rho,
		Gamma:          cfg.Gamma,
		Interval:       cfg.Interval,
		Horizons:       cfg.Horizons,
		TrainWindow:    cfg.TrainWindow,
		CoverageTarget: cfg.CoverageTarget,
		MaxClusters:    cfg.MaxClusters,
		ClusterEvery:   cfg.ClusterEvery,
		Model:          cfg.Model,
		FeatureMode:    mode,
		Seed:           cfg.Seed,
		Epochs:         cfg.Epochs,
		LearnRate:      cfg.LearnRate,
		Parallelism:    cfg.Parallelism,
		Shards:         cfg.Shards,

		FingerprintCacheSize: cfg.FingerprintCacheSize,
	})}
}

// Observe forwards one executed query to the framework. Forwarding is
// lightweight and off the DBMS's critical path (§3); errors indicate SQL the
// template parser does not understand.
func (f *Forecaster) Observe(sql string, at time.Time) error {
	return f.ObserveBatch(sql, at, 1)
}

// ObserveBatch forwards count identical arrivals at once — useful when
// replaying aggregated traces. Parsing runs lock-free; only the catalog
// stripe the query's template hashes to is locked, so observations for
// different templates proceed in parallel and never wait on maintenance.
func (f *Forecaster) ObserveBatch(sql string, at time.Time, count int64) error {
	return f.ctl.Ingest(sql, at, count)
}

// Observation is one query arrival for ObserveMany.
type Observation struct {
	// SQL is the raw query text.
	SQL string
	// At is the arrival time.
	At time.Time
	// Count is the number of identical arrivals; 0 is treated as 1,
	// negative counts are rejected.
	Count int64
}

// ObserveManyResult reports the outcome of one ObserveMany call. Both
// tallies are query-weighted: an observation with Count 5 adds 5 to
// whichever side it lands on.
type ObserveManyResult struct {
	// Ingested counts queries folded into the catalog.
	Ingested int64
	// Rejected counts queries dropped: unparseable SQL (also counted in
	// Stats.ParseErrors) or negative counts (which weigh 1).
	Rejected int64
}

// ObserveMany forwards a batch of observations in one call: all parsing
// runs up front with no locks held, then the parsed arrivals are grouped by
// catalog stripe so each stripe's lock is taken exactly once. This is the
// preferred ingest path for trace replay and for servers draining request
// bodies. For a fixed input order it produces exactly the catalog the
// equivalent sequence of ObserveBatch calls would.
func (f *Forecaster) ObserveMany(obs []Observation) ObserveManyResult {
	converted := make([]preprocess.Observation, len(obs))
	for i, o := range obs {
		converted[i] = preprocess.Observation{SQL: o.SQL, At: o.At, Count: o.Count}
	}
	ingested, rejected := f.ctl.IngestMany(converted)
	return ObserveManyResult{Ingested: ingested, Rejected: rejected}
}

// Tick performs any due periodic maintenance (history compaction,
// re-clustering, retraining) and reports whether a re-cluster ran. Call it
// regularly — e.g. once per simulated or real hour.
func (f *Forecaster) Tick(now time.Time) (bool, error) {
	return f.TickContext(context.Background(), now)
}

// TickContext is Tick with cancellation: a cancelled ctx aborts clustering
// and retraining between pool items, keeping the previous models. Ticks
// serialize against each other and against Maintain, but never block
// Observe or Forecast.
func (f *Forecaster) TickContext(ctx context.Context, now time.Time) (bool, error) {
	return f.ctl.Tick(ctx, now)
}

// Maintain forces an immediate re-cluster and retrain.
func (f *Forecaster) Maintain(now time.Time) error {
	return f.MaintainContext(context.Background(), now)
}

// MaintainContext is Maintain with cancellation semantics matching
// TickContext.
func (f *Forecaster) MaintainContext(ctx context.Context, now time.Time) error {
	return f.ctl.Refresh(ctx, now)
}

// ClusterForecast is the predicted arrival rate for one template cluster.
type ClusterForecast struct {
	// ClusterID identifies the cluster.
	ClusterID int64
	// Templates holds the canonical SQL of the cluster's member templates.
	Templates []string
	// PerTemplateRate is the predicted average arrival rate per template,
	// in queries per prediction interval.
	PerTemplateRate float64
	// TotalRate is the cluster's total predicted volume per interval.
	TotalRate float64
}

// Forecast returns the predicted arrival rates for the tracked clusters at
// the given horizon. The horizon must be one of Config.Horizons and enough
// history must have been observed for training. Forecast never blocks on
// maintenance: it reads the current model epoch and resolves each cluster's
// member templates from the single catalog snapshot the prediction was
// computed against, instead of one catalog lookup per member.
func (f *Forecaster) Forecast(horizon time.Duration) ([]ClusterForecast, error) {
	preds, err := f.ctl.Forecast(horizon)
	if err != nil {
		return nil, err
	}
	out := make([]ClusterForecast, 0, len(preds))
	for _, p := range preds {
		cf := ClusterForecast{
			ClusterID:       p.Cluster.ID,
			PerTemplateRate: p.PerTemplateRate,
			TotalRate:       p.TotalRate,
		}
		for _, id := range p.Cluster.MemberIDs() {
			if t, ok := p.Cluster.Members[id]; ok {
				cf.Templates = append(cf.Templates, t.SQL)
			}
		}
		out = append(out, cf)
	}
	return out, nil
}

// Stats summarizes what the framework is tracking.
type Stats struct {
	// TotalQueries is the number of queries observed.
	TotalQueries int64
	// Templates is the live template count after Pre-Processor reduction.
	Templates int
	// Clusters is the live cluster count.
	Clusters int
	// TrackedClusters is how many clusters currently have models.
	TrackedClusters int
	// ParseErrors counts queries the template parser rejected.
	ParseErrors int64
	// CacheHits counts observes served by the fingerprint cache (raw SQL
	// seen before; no parse). Zero when the cache is disabled.
	CacheHits int64
	// CacheMisses counts observes that took the full templatize path while
	// the cache was enabled.
	CacheMisses int64
	// CacheEvictions counts fingerprint-cache entries displaced by the
	// clock-hand eviction when a cache shard was full.
	CacheEvictions int64
}

// Stats reports the current reduction statistics (cf. paper Table 2). It
// merges the catalog stripes' counters and reads the current epoch without
// blocking ingest or maintenance.
func (f *Forecaster) Stats() Stats {
	ps := f.ctl.Preprocessor().Stats()
	return Stats{
		TotalQueries:    ps.TotalQueries,
		Templates:       ps.NumTemplates,
		Clusters:        f.ctl.Clusterer().Len(),
		TrackedClusters: len(f.ctl.Tracked()),
		ParseErrors:     ps.ParseErrors,
		CacheHits:       ps.CacheHits,
		CacheMisses:     ps.CacheMisses,
		CacheEvictions:  ps.CacheEvictions,
	}
}

// TemplateInfo describes one tracked template.
type TemplateInfo struct {
	ID        int64
	SQL       string
	Count     int64
	FirstSeen time.Time
	LastSeen  time.Time
	// SampleParams are reservoir-sampled parameter vectors from the
	// template's original queries, for re-instantiating representative
	// queries during optimization planning.
	SampleParams [][]string
}

// Templates lists the live templates ordered by ID. The returned infos are
// defensive copies built from a cloned catalog snapshot; mutating them (or
// their SampleParams) cannot affect the forecaster.
func (f *Forecaster) Templates() []TemplateInfo {
	ts := f.ctl.Preprocessor().Templates()
	out := make([]TemplateInfo, 0, len(ts))
	for _, t := range ts {
		out = append(out, TemplateInfo{
			ID:           t.ID,
			SQL:          t.SQL,
			Count:        t.Count,
			FirstSeen:    t.FirstSeen,
			LastSeen:     t.LastSeen,
			SampleParams: t.Params.Sample(),
		})
	}
	return out
}

// Templatize converts a raw SQL string into its canonical template and
// extracted parameters without registering it with any Forecaster.
func Templatize(sql string) (template string, params []string, err error) {
	res, err := preprocess.Templatize(sql)
	if err != nil {
		return "", nil, err
	}
	ps := make([]string, len(res.Params))
	for i, p := range res.Params {
		ps[i] = p.Value
	}
	return res.SQL, ps, nil
}

// Save persists the forecaster's durable state — the template catalog with
// its arrival-rate histories — to w in a canonical, shard-layout-independent
// form. Clusters and trained models are derived state; they are rebuilt by
// the first Maintain/Tick after a Load. Saving concurrently with ingest
// captures each catalog stripe atomically; quiesce ingest for a snapshot of
// one exact instant.
func (f *Forecaster) Save(w io.Writer) error {
	return f.ctl.Snapshot(w)
}

// SaveFile persists the forecaster's durable state to path atomically and
// durably: the snapshot is written to a temp file in path's directory,
// fsynced, and renamed over path (fsx.WriteAtomic). A crash or error at any
// point — including mid-write power loss — leaves the previous snapshot at
// path intact.
//
// qb5000:durable path
func (f *Forecaster) SaveFile(path string) error {
	return fsx.WriteAtomic(path, f.Save)
}

// LoadFile reconstructs a Forecaster from a snapshot file written by
// SaveFile. Damaged files — truncated, bit-flipped, or carrying trailing
// garbage — are rejected with a descriptive error.
//
// qb5000:durable path
func LoadFile(cfg Config, path string) (*Forecaster, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	f, err := Load(cfg, file)
	if cerr := file.Close(); err == nil && cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Load reconstructs a Forecaster from a snapshot written by Save, under the
// given configuration. The stream carries a length-prefixed, checksummed
// envelope; truncation and corruption surface as clean errors, never as a
// decoder panic or silently partial state.
func Load(cfg Config, r io.Reader) (*Forecaster, error) {
	mode := cluster.ArrivalRate
	if cfg.UseLogicalFeatures {
		mode = cluster.Logical
	}
	ctl, err := core.RestoreController(core.Config{
		Rho:            cfg.Rho,
		Gamma:          cfg.Gamma,
		Interval:       cfg.Interval,
		Horizons:       cfg.Horizons,
		TrainWindow:    cfg.TrainWindow,
		CoverageTarget: cfg.CoverageTarget,
		MaxClusters:    cfg.MaxClusters,
		ClusterEvery:   cfg.ClusterEvery,
		Model:          cfg.Model,
		FeatureMode:    mode,
		Seed:           cfg.Seed,
		Epochs:         cfg.Epochs,
		LearnRate:      cfg.LearnRate,
		Parallelism:    cfg.Parallelism,
		Shards:         cfg.Shards,

		FingerprintCacheSize: cfg.FingerprintCacheSize,
	}, r)
	if err != nil {
		return nil, err
	}
	return &Forecaster{ctl: ctl}, nil
}

// Controller exposes the underlying controller for advanced integrations
// (experiment harnesses, the index-advisor example). Most callers should
// not need it. The controller is itself safe for concurrent use — it is the
// same object every Forecaster method delegates to.
func (f *Forecaster) Controller() *core.Controller {
	return f.ctl
}
