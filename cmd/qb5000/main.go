// Command qb5000 is an interactive workload-forecasting controller: it
// ingests a query trace (a trace file, or a generated synthetic trace), runs
// the QB5000 pipeline, and prints the template catalog, cluster assignments,
// and arrival-rate forecasts.
//
// Usage:
//
//	qb5000 -trace queries.log -horizon 1h
//	qb5000 -workload bustracker -days 10 -horizon 1h -model ENSEMBLE
//	qb5000 -workload admissions -days 7 -dump admissions.log   # export a trace
//
// Trace lines are "timestamp<TAB>SQL" or "timestamp<TAB>count<TAB>SQL" with
// RFC3339 timestamps (see internal/tracefile):
//
//	2018-01-02T15:04:05Z	SELECT * FROM foo WHERE id = 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"qb5000"
	"qb5000/internal/failpoint"
	"qb5000/internal/fsx"
	"qb5000/internal/tracefile"
	"qb5000/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "query trace file (timestamp<TAB>[count<TAB>]SQL per line)")
		wlName    = flag.String("workload", "", "generate a synthetic trace: admissions|bustracker|mooc|noisy")
		days      = flag.Int("days", 10, "days of synthetic trace to replay")
		// qb5000:durable
		dump    = flag.String("dump", "", "write the synthetic trace to this file instead of analyzing it")
		horizon = flag.Duration("horizon", time.Hour, "prediction horizon")
		model   = flag.String("model", "LR", "forecast model: LR|KR|ARMA|FNN|RNN|PSRNN|ENSEMBLE|HYBRID")
		seed    = flag.Int64("seed", 1, "random seed")
		shards  = flag.Int("shards", 1, "catalog lock stripes, rounded up to a power of two (0 = all cores, 1 = reproducible sequential IDs)")
		fpcache = flag.Int("fpcache", 0, "fingerprint-cache entries: repeated raw SQL skips parsing (0 = disabled)")
		topN    = flag.Int("top", 10, "templates to print")
		// qb5000:durable
		savePath = flag.String("save", "", "write a catalog snapshot to this file after ingesting (atomic + fsync)")
		loadPath = flag.String("load", "", "restore the catalog from a snapshot before ingesting")
		faults   = flag.String("failpoints", "", "arm fault-injection sites, e.g. fsx.rename=nth:1 (also "+failpoint.EnvVar+")")
	)
	flag.Parse()

	if *faults != "" {
		if err := failpoint.Parse(*faults); err != nil {
			fatal(err)
		}
	} else if err := failpoint.ParseEnv(); err != nil {
		fatal(err)
	}

	if *dump != "" {
		if *wlName == "" {
			fatal(fmt.Errorf("-dump requires -workload"))
		}
		if err := dumpTrace(*wlName, *seed, *days, *dump); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dump)
		return
	}

	cfg := qb5000.Config{
		Model:    *model,
		Horizons: []time.Duration{*horizon},
		Seed:     *seed,
		Shards:   *shards,

		FingerprintCacheSize: *fpcache,
	}
	var f *qb5000.Forecaster
	if *loadPath != "" {
		var err error
		f, err = qb5000.LoadFile(cfg, *loadPath)
		if err != nil {
			fatal(err)
		}
	} else {
		f = qb5000.New(cfg)
	}

	var last time.Time
	switch {
	case *tracePath != "":
		var err error
		last, err = ingestFile(f, *tracePath)
		if err != nil {
			fatal(err)
		}
	case *wlName != "":
		wl := pick(*wlName, *seed)
		if wl == nil {
			fatal(fmt.Errorf("unknown workload %q", *wlName))
		}
		to := wl.Start.Add(time.Duration(*days) * 24 * time.Hour)
		if to.After(wl.End) {
			to = wl.End
		}
		obs := make([]qb5000.Observation, 0, ingestChunk)
		err := wl.ReplayBatches(wl.Start, to, 5*time.Minute, ingestChunk, func(evs []workload.Event) error {
			obs = obs[:0]
			for _, ev := range evs {
				obs = append(obs, qb5000.Observation{SQL: ev.SQL, At: ev.At, Count: ev.Count})
			}
			f.ObserveMany(obs)
			return nil
		})
		if err != nil {
			fatal(err)
		}
		last = to
	default:
		if *loadPath == "" {
			flag.Usage()
			os.Exit(2)
		}
		last = latestSeen(f)
	}

	if *savePath != "" {
		// Atomic, fsynced replace: a crash mid-save must never destroy the
		// previous snapshot (the durable analyzer rejects a bare os.Create
		// here).
		if err := f.SaveFile(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot written to %s\n", *savePath)
	}

	if err := f.Maintain(last); err != nil {
		fatal(err)
	}

	st := f.Stats()
	fmt.Printf("queries: %d   templates: %d   clusters: %d   tracked: %d   parse errors: %d\n\n",
		st.TotalQueries, st.Templates, st.Clusters, st.TrackedClusters, st.ParseErrors)

	fmt.Printf("top templates:\n")
	ts := f.Templates()
	for i, t := range ts {
		if i >= *topN {
			break
		}
		fmt.Printf("  [%4d] %9d calls  %.90s\n", t.ID, t.Count, t.SQL)
	}
	fmt.Println()

	preds, err := f.Forecast(*horizon)
	if err != nil {
		fatal(fmt.Errorf("forecast: %w (not enough history for the chosen horizon?)", err))
	}
	fmt.Printf("forecast %v ahead (per prediction interval):\n", *horizon)
	for _, p := range preds {
		fmt.Printf("  cluster %d: %.1f queries/template (%d templates, total %.1f)\n",
			p.ClusterID, p.PerTemplateRate, len(p.Templates), p.TotalRate)
		for i, sql := range p.Templates {
			if i >= 3 {
				fmt.Printf("      … and %d more\n", len(p.Templates)-3)
				break
			}
			fmt.Printf("      %.80s\n", sql)
		}
	}
}

// dumpTrace exports a synthetic workload as a trace file, atomically: a
// partial export must never replace a previous complete one.
//
// qb5000:durable path
func dumpTrace(name string, seed int64, days int, path string) error {
	wl := pick(name, seed)
	if wl == nil {
		return fmt.Errorf("unknown workload %q", name)
	}
	to := wl.Start.Add(time.Duration(days) * 24 * time.Hour)
	if to.After(wl.End) {
		to = wl.End
	}
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		tw := tracefile.NewWriter(w)
		err := wl.Replay(wl.Start, to, 5*time.Minute, func(ev workload.Event) error {
			return tw.Write(tracefile.Entry{At: ev.At, Count: ev.Count, SQL: ev.SQL})
		})
		if err != nil {
			return err
		}
		return tw.Flush()
	})
}

// ingestChunk is how many trace entries accumulate before they flush through
// ObserveMany in one batch of stripe-lock acquisitions.
const ingestChunk = 1024

func ingestFile(f *qb5000.Forecaster, path string) (time.Time, error) {
	file, err := os.Open(path)
	if err != nil {
		return time.Time{}, err
	}
	defer file.Close()
	var last time.Time
	var rejected int64
	batch := make([]qb5000.Observation, 0, ingestChunk)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		rejected += f.ObserveMany(batch).Rejected
		batch = batch[:0]
	}
	err = tracefile.Read(file, func(e tracefile.Entry) error {
		batch = append(batch, qb5000.Observation{SQL: e.SQL, At: e.At, Count: e.Count})
		if e.At.After(last) {
			last = e.At
		}
		if len(batch) >= ingestChunk {
			flush()
		}
		return nil
	})
	flush()
	if rejected > 0 {
		fmt.Fprintf(os.Stderr, "warning: %s: %d queries rejected (unparseable or negative count)\n", path, rejected)
	}
	return last, err
}

// latestSeen recovers the newest observation timestamp from the catalog.
func latestSeen(f *qb5000.Forecaster) time.Time {
	var last time.Time
	for _, t := range f.Templates() {
		if t.LastSeen.After(last) {
			last = t.LastSeen
		}
	}
	return last
}

func pick(name string, seed int64) *workload.Workload {
	switch name {
	case "admissions":
		return workload.Admissions(seed)
	case "bustracker":
		return workload.BusTracker(seed)
	case "mooc":
		return workload.MOOC(seed)
	case "noisy":
		return workload.Noisy(seed)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qb5000: %v\n", err)
	os.Exit(1)
}
