// Command qb5000bench regenerates the tables and figures from the paper's
// evaluation on the synthetic traces.
//
// Usage:
//
//	qb5000bench -list                 # list experiment IDs
//	qb5000bench -exp fig7             # run one experiment
//	qb5000bench -exp all              # run everything
//	qb5000bench -exp fig7 -quick      # smaller spans / fewer epochs
//	qb5000bench -exp fig9 -seed 7     # change the trace seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qb5000/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		quick = flag.Bool("quick", false, "shrink spans and training effort")
		seed  = flag.Int64("seed", 1, "trace generator seed")
		par   = flag.Int("parallel", 0, "experiments run concurrently by -exp all (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			desc, _ := experiments.Describe(id)
			fmt.Printf("  %-8s %s\n", id, desc)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick, Parallelism: *par}
	//lint:ignore noclock reporting elapsed wall time to the operator is the point
	start := time.Now()
	var err error
	if *exp == "all" {
		err = experiments.RunAll(opt, os.Stdout)
	} else {
		err = experiments.Run(*exp, opt, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qb5000bench: %v\n", err)
		os.Exit(1)
	}
	//lint:ignore noclock reporting elapsed wall time to the operator is the point
	fmt.Printf("(%s in %s)\n", *exp, time.Since(start).Round(time.Millisecond))
}
