// Command qb5000vet runs the project's determinism/concurrency analyzer
// suite (DESIGN.md §7) over the module:
//
//	qb5000vet ./...
//
// It prints one line per finding and exits non-zero if any survive
// suppression, so CI can gate on it. Findings are suppressed in source with
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// on the offending line or the line directly above; the reason is
// mandatory. Suppressions never apply to noclock findings inside the strict
// model packages.
package main

import (
	"flag"
	"fmt"
	"os"

	"qb5000/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qb5000vet [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the QB5000 determinism/concurrency analyzers (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qb5000vet:", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		// A package that no longer type-checks would silently produce no
		// findings; fail loudly instead.
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "qb5000vet: %s: type error: %v\n", pkg.Path, terr)
			total++
		}
		for _, f := range lint.Run(pkg, lint.All) {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "qb5000vet: %d finding(s)\n", total)
		os.Exit(1)
	}
}
