// Command qb5000vet runs the project's determinism/concurrency analyzer
// suite (DESIGN.md §7) over the module:
//
//	qb5000vet ./...
//
// It prints one line per finding and exits non-zero if any survive
// suppression, so CI can gate on it. Findings are suppressed in source with
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// on the offending line or the line directly above; the reason is
// mandatory. Suppressions never apply to noclock findings inside the strict
// model packages.
//
// Output modes and debt management:
//
//	-format=text|json|sarif   finding encoding (sarif for CI artifact upload)
//	-baseline=FILE            fail on findings not recorded in FILE and on
//	                          stale entries FILE records that no longer occur
//	-write-baseline=FILE      record current findings as the accepted baseline
//	-debt                     report //lint:ignore suppressions per analyzer
//	-graph                    emit the interprocedural call graph as DOT
//	-lockgraph                emit the lock-acquisition order graph as DOT
//	-list                     list the analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"qb5000/internal/lint"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list the analyzers and exit")
		format        = flag.String("format", "text", "output format: text, json, or sarif")
		baselinePath  = flag.String("baseline", "", "baseline file; only findings not recorded there fail the run")
		writeBaseline = flag.String("write-baseline", "", "write current findings to this baseline file and exit")
		debt          = flag.Bool("debt", false, "report //lint:ignore suppression debt per analyzer and exit")
		graph         = flag.Bool("graph", false, "emit the interprocedural call graph as DOT and exit")
		lockgraph     = flag.Bool("lockgraph", false, "emit the lock-acquisition order graph as DOT and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qb5000vet [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the QB5000 determinism/concurrency analyzers (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "qb5000vet: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qb5000vet:", err)
		os.Exit(2)
	}
	root, err := os.Getwd()
	if err != nil {
		root = ""
	}

	if *debt {
		reportDebt(pkgs)
		return
	}

	// One Program across the whole set: the call graph and summaries see
	// every loaded unit, so cross-package spawns and handle transfers
	// resolve instead of degrading to the local view.
	prog := lint.NewProgram(pkgs)

	if *graph {
		if err := lint.WriteDOT(os.Stdout, prog.Graph); err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
		return
	}
	if *lockgraph {
		if err := lint.WriteLockDOT(os.Stdout, prog.LockGraph()); err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
		return
	}

	var findings []lint.Finding
	typeErrors := 0
	// Non-test and in-package-test units share files, so the same finding can
	// surface twice; dedupe on identity so counts and baselines stay exact.
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		// A package that no longer type-checks would silently produce no
		// findings; fail loudly instead.
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "qb5000vet: %s: type error: %v\n", pkg.Path, terr)
			typeErrors++
		}
		for _, f := range prog.Run(pkg, lint.All) {
			id := fmt.Sprintf("%s:%d:%d:%s:%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
			if seen[id] {
				continue
			}
			seen[id] = true
			findings = append(findings, f)
		}
	}

	if *writeBaseline != "" {
		out, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
		werr := lint.NewBaseline(root, findings).Write(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", werr)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "qb5000vet: wrote %d finding(s) to baseline %s\n", len(findings), *writeBaseline)
		return
	}

	staleEntries := 0
	if *baselinePath != "" {
		in, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
		base, err := lint.ReadBaseline(in)
		in.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
		var stale []string
		findings, stale = base.Filter(root, findings)
		// The baseline is a ratchet, not a ledger: an entry whose finding
		// was fixed must be deleted, or debt silently re-accumulates under
		// it. Stale entries therefore fail the run.
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "qb5000vet: stale baseline entry (the finding is gone — delete it): %s\n", s)
		}
		staleEntries = len(stale)
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(os.Stdout, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, root, lint.All, findings); err != nil {
			fmt.Fprintln(os.Stderr, "qb5000vet:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if total := len(findings) + typeErrors + staleEntries; total > 0 {
		fmt.Fprintf(os.Stderr, "qb5000vet: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// reportDebt prints the //lint:ignore inventory: a per-analyzer count
// followed by each suppression's location and reason, so CI logs show how
// much audited debt the tree carries.
func reportDebt(pkgs []*lint.Package) {
	type entry struct {
		pos    string
		reason string
	}
	perAnalyzer := make(map[string][]entry)
	seen := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, use := range lint.DirectiveUses(pkg.Fset, pkg.Files) {
			for _, a := range use.Analyzers {
				id := fmt.Sprintf("%s:%d:%s", use.Pos.Filename, use.Pos.Line, a)
				if seen[id] {
					continue
				}
				seen[id] = true
				perAnalyzer[a] = append(perAnalyzer[a], entry{
					pos:    fmt.Sprintf("%s:%d", use.Pos.Filename, use.Pos.Line),
					reason: use.Reason,
				})
			}
		}
	}
	names := make([]string, 0, len(perAnalyzer))
	total := 0
	for name, uses := range perAnalyzer {
		names = append(names, name)
		total += len(uses)
	}
	sort.Strings(names)
	fmt.Printf("suppression debt: %d directive reference(s) across %d analyzer(s)\n", total, len(names))
	for _, name := range names {
		uses := perAnalyzer[name]
		fmt.Printf("%s: %d\n", name, len(uses))
		for _, u := range uses {
			fmt.Printf("  %s  %s\n", u.pos, u.reason)
		}
	}
}
