// Command qb5000d runs QB5000 as an external controller daemon (paper §3):
// the target DBMS (or a log shipper) POSTs executed queries to /observe, a
// background loop periodically re-clusters and retrains, and the planning
// module GETs /forecast for predicted arrival rates.
//
// Usage:
//
//	qb5000d -addr :8500 -horizon 1h -model ENSEMBLE -maintain-every 1h
//
// Then:
//
//	printf '2018-01-02T15:04:05Z\tSELECT * FROM t WHERE id = 7\n' | \
//	    curl -s --data-binary @- localhost:8500/observe
//	curl -s -X POST localhost:8500/maintain
//	curl -s 'localhost:8500/forecast?horizon=1h'
//
// SIGINT/SIGTERM shut the daemon down cleanly: in-flight HTTP requests get a
// grace period and a retrain in progress is cancelled at the next worker-pool
// boundary instead of running to completion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qb5000"
	"qb5000/internal/failpoint"
	"qb5000/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8500", "listen address")
		horizon     = flag.Duration("horizon", time.Hour, "prediction horizon to train")
		model       = flag.String("model", "HYBRID", "forecast model family")
		seed        = flag.Int64("seed", 1, "random seed")
		parallelism = flag.Int("parallelism", 0, "worker pool size for clustering/training (0 = all cores, 1 = sequential)")
		shards      = flag.Int("shards", 0, "catalog lock stripes, rounded up to a power of two (0 = all cores, 1 = reproducible sequential IDs)")
		fpcache     = flag.Int("fpcache", 0, "fingerprint-cache entries: repeated raw SQL skips parsing (0 = disabled)")
		maintain    = flag.Duration("maintain-every", 0, "periodic re-cluster + retrain cadence (0 disables the background loop)")
		maxInflight = flag.Int64("max-inflight", 0, "max concurrently admitted /observe and /forecast requests, each endpoint on its own gate; excess sheds with 429 (0 = unlimited)")
		observeRate = flag.Float64("observe-rate", 0, "sustained /observe admission rate per second, token-bucket smoothed (0 = unlimited)")
		loadPath    = flag.String("load", "", "restore the catalog from a snapshot at startup")
		// qb5000:durable
		savePath = flag.String("save", "", "write a catalog snapshot to this file on clean shutdown (atomic + fsync)")
		faults   = flag.String("failpoints", "", "arm fault-injection sites, e.g. fsx.rename=nth:1 (also "+failpoint.EnvVar+")")
	)
	flag.Parse()

	if *faults != "" {
		if err := failpoint.Parse(*faults); err != nil {
			log.Fatal(err)
		}
	} else if err := failpoint.ParseEnv(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := qb5000.Config{
		Model:       *model,
		Horizons:    []time.Duration{*horizon},
		Seed:        *seed,
		Parallelism: *parallelism,
		Shards:      *shards,

		FingerprintCacheSize: *fpcache,
	}
	var f *qb5000.Forecaster
	if *loadPath != "" {
		var lerr error
		f, lerr = qb5000.LoadFile(cfg, *loadPath)
		if lerr != nil {
			log.Fatal(lerr)
		}
		log.Printf("restored %d templates from %s", f.Stats().Templates, *loadPath)
	} else {
		f = qb5000.New(cfg)
	}

	srv := server.NewWithConfig(f, server.Config{
		MaxInflight: *maxInflight,
		ObserveRate: *observeRate,
	})
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Without read/write bounds every slow client parks a handler
		// goroutine for the life of the process (qb5000vet:goleak). /observe
		// streams whole trace files and /maintain retrains in-request, so
		// the body limits are generous but finite.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	if *maintain > 0 {
		go func() {
			ticker := time.NewTicker(*maintain)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := srv.Maintain(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, server.ErrNoObservations) {
						log.Printf("maintain: %v", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("qb5000d listening on %s (model=%s, horizon=%v, parallelism=%d)\n", *addr, *model, *horizon, *parallelism)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if *savePath != "" {
			if err := f.SaveFile(*savePath); err != nil {
				log.Printf("save snapshot: %v", err)
				os.Exit(1)
			}
			log.Printf("snapshot written to %s", *savePath)
		}
	}
}
