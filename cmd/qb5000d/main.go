// Command qb5000d runs QB5000 as an external controller daemon (paper §3):
// the target DBMS (or a log shipper) POSTs executed queries to /observe, a
// background loop periodically re-clusters and retrains, and the planning
// module GETs /forecast for predicted arrival rates.
//
// Usage:
//
//	qb5000d -addr :8500 -horizon 1h -model ENSEMBLE -maintain-every 1h
//
// Then:
//
//	printf '2018-01-02T15:04:05Z\tSELECT * FROM t WHERE id = 7\n' | \
//	    curl -s --data-binary @- localhost:8500/observe
//	curl -s -X POST localhost:8500/maintain
//	curl -s 'localhost:8500/forecast?horizon=1h'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"qb5000"
	"qb5000/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8500", "listen address")
		horizon  = flag.Duration("horizon", time.Hour, "prediction horizon to train")
		model    = flag.String("model", "HYBRID", "forecast model family")
		seed     = flag.Int64("seed", 1, "random seed")
		loadPath = flag.String("load", "", "restore the catalog from a snapshot at startup")
	)
	flag.Parse()

	cfg := qb5000.Config{
		Model:    *model,
		Horizons: []time.Duration{*horizon},
		Seed:     *seed,
	}
	var f *qb5000.Forecaster
	if *loadPath != "" {
		file, err := os.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		f, err = qb5000.Load(cfg, file)
		file.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("restored %d templates from %s", f.Stats().Templates, *loadPath)
	} else {
		f = qb5000.New(cfg)
	}

	srv := server.New(f)
	fmt.Printf("qb5000d listening on %s (model=%s, horizon=%v)\n", *addr, *model, *horizon)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
