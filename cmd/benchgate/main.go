// Command benchgate compares a fresh `go test -bench` output against a
// checked-in baseline and exits non-zero when the geomean ns/op regression
// exceeds the threshold. It is the CI perf gate for the observe hot path:
//
//	go test -run '^$' -bench 'BenchmarkObserve' -count 6 . > new.txt
//	benchgate -baseline bench_baseline.txt -new new.txt -max-regress 0.15
//
// Exit codes: 0 pass, 1 regression over threshold, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"qb5000/internal/lint/benchdiff"
)

func main() {
	var (
		baseline   = flag.String("baseline", "bench_baseline.txt", "baseline `go test -bench` output")
		newPath    = flag.String("new", "", "fresh benchmark output (default stdin)")
		maxRegress = flag.Float64("max-regress", 0.15, "maximum allowed fractional geomean slowdown")
		filter     = flag.String("filter", "", "regexp restricting which benchmarks are compared")
		report     = flag.String("report", "", "also write the comparison table to this file")
	)
	flag.Parse()

	oldS, err := parseFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var newS benchdiff.Samples
	if *newPath == "" {
		newS, err = benchdiff.Parse(os.Stdin)
	} else {
		newS, err = parseFile(*newPath)
	}
	if err != nil {
		fatal(err)
	}

	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fatal(fmt.Errorf("bad -filter: %w", err))
		}
		oldS, newS = filtered(oldS, re), filtered(newS, re)
	}

	rep, err := benchdiff.Compare(oldS, newS, *maxRegress)
	if err != nil {
		fatal(err)
	}
	var out io.Writer = os.Stdout
	var rf *os.File
	if *report != "" {
		if rf, err = os.Create(*report); err != nil {
			fatal(err)
		}
		out = io.MultiWriter(os.Stdout, rf)
	}
	if err := rep.Format(out); err != nil {
		fatal(err)
	}
	if rf != nil {
		if err := rf.Close(); err != nil {
			fatal(err)
		}
	}
	if rep.Failed() {
		if len(rep.Invalid) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: unusable (non-positive ns/op) samples for: %s\n",
				strings.Join(rep.Invalid, ", "))
		}
		if rep.Geomean > rep.Threshold {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: geomean ns/op regressed %+.1f%% (limit %+.1f%%)\n",
				(rep.Geomean-1)*100, (rep.Threshold-1)*100)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (geomean %+.1f%%, limit %+.1f%%)\n", (rep.Geomean-1)*100, (rep.Threshold-1)*100)
}

func parseFile(path string) (benchdiff.Samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchdiff.Parse(f)
}

func filtered(s benchdiff.Samples, re *regexp.Regexp) benchdiff.Samples {
	out := make(benchdiff.Samples)
	for name, vs := range s {
		if re.MatchString(name) {
			out[name] = vs
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}
