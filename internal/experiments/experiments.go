// Package experiments regenerates every table and figure from the paper's
// evaluation (§7 and appendices A–D) on the synthetic traces. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records how the measured shapes compare with the published ones.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Options configure a run.
type Options struct {
	// Seed drives all randomness; the default (0) means seed 1.
	Seed int64
	// Quick shrinks training epochs, sweep points, and replay spans so the
	// whole suite finishes in a few minutes. Shapes are preserved; absolute
	// numbers are noisier.
	Quick bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Func runs one experiment, writing its report to w.
type Func func(opt Options, w io.Writer) error

// registry maps experiment IDs to implementations and descriptions.
var registry = map[string]struct {
	fn   Func
	desc string
}{}

func register(id, desc string, fn Func) {
	registry[id] = struct {
		fn   Func
		desc string
	}{fn, desc}
}

// IDs returns the registered experiment IDs in a stable order: tables first,
// then figures in paper order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return expOrder(out[i]) < expOrder(out[j]) })
	return out
}

func expOrder(id string) string {
	// "table1" < "table2" < ... < "fig1" < "fig3" < ... via zero-padding.
	var kind string
	var n int
	if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
		kind = "a"
	} else if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		kind = "b"
	} else {
		return "z" + id
	}
	return fmt.Sprintf("%s%03d", kind, n)
}

// Describe returns the one-line description of an experiment.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	return e.desc, ok
}

// Run executes one experiment by ID.
func Run(id string, opt Options, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	fmt.Fprintf(w, "== %s: %s ==\n", id, e.desc)
	return e.fn(opt, w)
}

// RunAll executes every experiment in order.
func RunAll(opt Options, w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(id, opt, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
