// Package experiments regenerates every table and figure from the paper's
// evaluation (§7 and appendices A–D) on the synthetic traces. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records how the measured shapes compare with the published ones.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"qb5000/internal/parallel"
)

// Options configure a run.
type Options struct {
	// Seed drives all randomness; the default (0) means seed 1.
	Seed int64
	// Quick shrinks training epochs, sweep points, and replay spans so the
	// whole suite finishes in a few minutes. Shapes are preserved; absolute
	// numbers are noisier.
	Quick bool
	// Parallelism bounds how many experiments RunAll executes concurrently:
	// 0 selects GOMAXPROCS, 1 reproduces the serial suite. Experiments are
	// independent (each builds its own traces and models from Seed), so the
	// reports are identical at every setting.
	Parallelism int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Func runs one experiment, writing its report to w.
type Func func(opt Options, w io.Writer) error

// registry maps experiment IDs to implementations and descriptions.
var registry = map[string]struct {
	fn   Func
	desc string
}{}

func register(id, desc string, fn Func) {
	registry[id] = struct {
		fn   Func
		desc string
	}{fn, desc}
}

// IDs returns the registered experiment IDs in a stable order: tables first,
// then figures in paper order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return expOrder(out[i]) < expOrder(out[j]) })
	return out
}

func expOrder(id string) string {
	// "table1" < "table2" < ... < "fig1" < "fig3" < ... via zero-padding.
	var kind string
	var n int
	if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
		kind = "a"
	} else if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		kind = "b"
	} else {
		return "z" + id
	}
	return fmt.Sprintf("%s%03d", kind, n)
}

// Describe returns the one-line description of an experiment.
func Describe(id string) (string, bool) {
	e, ok := registry[id]
	return e.desc, ok
}

// Run executes one experiment by ID.
func Run(id string, opt Options, w io.Writer) error {
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	fmt.Fprintf(w, "== %s: %s ==\n", id, e.desc)
	return e.fn(opt, w)
}

// RunAll executes every experiment, fanning the independent configurations
// out across the worker pool. Each experiment renders into its own buffer
// and the reports are emitted in the suite's canonical order, so the output
// is byte-identical to a serial run.
func RunAll(opt Options, w io.Writer) error {
	ids := IDs()
	bufs := make([]bytes.Buffer, len(ids))

	// Stream each experiment's output as soon as it and everything before
	// it have finished: workers fill per-experiment buffers, and whichever
	// worker completes experiment `flushed` drains the contiguous done
	// prefix. Output order (and bytes) match a serial run exactly.
	var (
		mu       sync.Mutex
		done     = make([]bool, len(ids))
		flushed  int
		writeErr error
	)
	err := parallel.ForEach(context.Background(), opt.Parallelism, len(ids), func(_ context.Context, i int) error {
		if err := Run(ids[i], opt, &bufs[i]); err != nil {
			return fmt.Errorf("%s: %w", ids[i], err)
		}
		mu.Lock()
		defer mu.Unlock()
		done[i] = true
		for flushed < len(ids) && done[flushed] && writeErr == nil {
			if _, err := bufs[flushed].WriteTo(w); err != nil {
				writeErr = err
				break
			}
			fmt.Fprintln(w)
			flushed++
		}
		return writeErr
	})
	if err != nil {
		return err
	}
	return writeErr
}
