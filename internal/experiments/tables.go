package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/preprocess"
	"qb5000/internal/sqlparse"
	"qb5000/internal/workload"
)

func init() {
	register("table1", "Sample workloads — trace summaries (Table 1)", table1)
	register("table2", "Workload reduction: queries → templates → clusters (Table 2)", table2)
	register("table3", "Forecasting model properties (Table 3)", table3)
	register("table4", "Computation & storage overhead per component (Table 4)", table4)
}

// tableSpan picks the replay slice and emission step for the summary tables.
func tableSpan(w *workload.Workload, quick bool) (from, to time.Time, step time.Duration) {
	from, to = w.Start, w.End
	step = time.Hour
	if quick {
		if to.Sub(from) > 14*24*time.Hour {
			to = from.Add(14 * 24 * time.Hour)
		}
	}
	return from, to, step
}

func table1(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %-12s %8s %8s %14s %10s %10s %10s %10s\n",
		"workload", "dbms", "tables", "days", "queries/day", "SELECT%", "INSERT%", "UPDATE%", "DELETE%")
	for _, wl := range traces(opt.seed()) {
		from, to, step := tableSpan(wl, opt.Quick)
		pre, err := replayInto(wl, from, to, step, opt.seed())
		if err != nil {
			return err
		}
		st := pre.Stats()
		days := to.Sub(from).Hours() / 24
		pct := func(t sqlparse.StatementType) float64 {
			if st.TotalQueries == 0 {
				return 0
			}
			return 100 * float64(st.ByType[t]) / float64(st.TotalQueries)
		}
		fmt.Fprintf(w, "%-12s %-12s %8d %8.0f %14.0f %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			wl.Name, wl.DBMS, wl.Tables, days, float64(st.TotalQueries)/days,
			pct(sqlparse.StmtSelect), pct(sqlparse.StmtInsert),
			pct(sqlparse.StmtUpdate), pct(sqlparse.StmtDelete))
	}
	return nil
}

func table2(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %14s %12s %10s %16s\n",
		"workload", "total queries", "templates", "clusters", "reduction ratio")
	for _, wl := range traces(opt.seed()) {
		from, to, step := tableSpan(wl, opt.Quick)
		ct, err := buildClusters(wl, from, to, step, 0.8, cluster.ArrivalRate, opt.seed())
		if err != nil {
			return err
		}
		st := ct.pre.Stats()
		nClusters := ct.clu.Len()
		ratio := 0.0
		if nClusters > 0 {
			ratio = float64(st.TotalQueries) / float64(nClusters)
		}
		fmt.Fprintf(w, "%-12s %14d %12d %10d %15.0fx\n",
			wl.Name, st.TotalQueries, st.NumTemplates, nClusters, ratio)
	}
	return nil
}

func table3(_ Options, w io.Writer) error {
	props := forecast.ModelProperties()
	fmt.Fprintf(w, "%-8s %8s %8s %8s\n", "model", "linear", "memory", "kernel")
	for _, name := range []string{"LR", "ARMA", "KR", "RNN", "FNN", "PSRNN"} {
		p := props[name]
		check := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		fmt.Fprintf(w, "%-8s %8s %8s %8s\n", name, check(p.Linear), check(p.Memory), check(p.Kernel))
	}
	return nil
}

func table4(opt Options, w io.Writer) error {
	wl := workload.BusTracker(opt.seed())
	days := 21
	if opt.Quick {
		days = 8
	}
	from := wl.Start
	to := from.Add(time.Duration(days) * 24 * time.Hour)

	// Pre-Processor: time per query and history storage per day.
	pre, err := replayInto(wl, from, to, 10*time.Minute, opt.seed())
	if err != nil {
		return err
	}
	// Measure templatization latency on a fresh sample of concrete queries.
	var samples []string
	sampleEnd := from.Add(2 * time.Hour)
	if err := wl.Replay(from, sampleEnd, time.Minute, func(ev workload.Event) error {
		samples = append(samples, ev.SQL)
		return nil
	}); err != nil {
		return err
	}
	if len(samples) > 5000 {
		samples = samples[:5000]
	}
	//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
	start := time.Now()
	pre2 := preprocess.New(preprocess.Options{Seed: opt.seed(), Shards: 1})
	for i, q := range samples {
		if _, err := pre2.Process(q, from.Add(time.Duration(i)*time.Second)); err != nil {
			return err
		}
	}
	//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
	perQuery := time.Since(start) / time.Duration(len(samples))
	histBytes := pre.HistoryBytes()

	// Clusterer: one daily update over the full catalog.
	clu := cluster.New(cluster.Options{Rho: 0.8, Seed: opt.seed()})
	//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
	start = time.Now()
	if _, err := clu.Update(context.Background(), to, pre.Templates()); err != nil {
		return err
	}
	//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
	clusterTime := time.Since(start)
	clusterBytes := pre.Len() * 16 // template→cluster assignment + id

	// Models: fit LR / RNN / KR on the top clusters at a one-hour interval.
	ct := &clusteredTrace{w: wl, pre: pre, clu: clu, from: from, to: to}
	top := ct.topClusters(0.95, 5)
	hist := logMatrix(top, from, to, time.Hour)
	cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: len(top), Seed: opt.seed(), Epochs: rnnEpochs(opt)}

	type row struct {
		name  string
		train time.Duration
		size  int
	}
	var rows []row
	for _, name := range []string{"LR", "RNN", "KR"} {
		m, err := forecast.NewByName(name, cfg)
		if err != nil {
			return err
		}
		//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
		start = time.Now()
		if err := m.Fit(hist); err != nil {
			return err
		}
		//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
		rows = append(rows, row{name, time.Since(start), m.SizeBytes()})
	}

	fmt.Fprintf(w, "component      computation                 storage\n")
	fmt.Fprintf(w, "Pre-Processor  %-27s %s\n",
		fmt.Sprintf("%.3fms/query", float64(perQuery.Microseconds())/1000),
		fmt.Sprintf("%.2fMB history (%d days)", float64(histBytes)/1e6, days))
	fmt.Fprintf(w, "Clusterer      %-27s %s\n",
		fmt.Sprintf("%.2fs/update (%d templates)", clusterTime.Seconds(), pre.Len()),
		fmt.Sprintf("%.1fKB", float64(clusterBytes)/1e3))
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s model    %-27s %s\n", r.name,
			fmt.Sprintf("CPU:%.2fs/train", r.train.Seconds()),
			fmt.Sprintf("%.1fKB", float64(r.size)/1e3))
	}
	fmt.Fprintf(w, "(GPU column omitted: this reproduction trains on CPU only; see DESIGN.md)\n")
	return nil
}

// rnnEpochs scales neural-model training effort with the quick flag.
func rnnEpochs(opt Options) int {
	if opt.Quick {
		return 4
	}
	return 12
}
