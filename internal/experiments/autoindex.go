package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/core"
	"qb5000/internal/engine"
	"qb5000/internal/indexsel"
	"qb5000/internal/preprocess"
	"qb5000/internal/sqlparse"
	"qb5000/internal/workload"
)

func init() {
	register("fig11", "Automatic index selection on Admissions (Figure 11)", func(o Options, w io.Writer) error {
		return autoIndex(o, w, "admissions")
	})
	register("fig12", "Automatic index selection on BusTracker (Figure 12)", func(o Options, w io.Writer) error {
		return autoIndex(o, w, "bustracker")
	})
}

// indexPolicy names one of the three compared strategies (§7.6/§7.7).
type indexPolicy string

const (
	policyAuto        indexPolicy = "AUTO"         // QB5000 forecasts drive hourly builds
	policyStatic      indexPolicy = "STATIC"       // all indexes chosen up-front from history
	policyAutoLogical indexPolicy = "AUTO-LOGICAL" // AUTO with logical-feature clustering
)

// autoIndexParams sizes the replay.
type autoIndexParams struct {
	scale        int           // rows in the largest table
	historyDays  int           // days of history for training QB5000
	hoursTotal   int           // experiment length (paper: 16)
	tickEvery    time.Duration // measurement tick
	queriesTick  int           // queries sampled per tick
	indexBudget  int           // total indexes (paper: 20)
	perTickBuild int           // index builds per hour
}

func autoIndexDefaults(opt Options) autoIndexParams {
	p := autoIndexParams{
		scale:       30000,
		historyDays: 21,
		hoursTotal:  16,
		tickEvery:   20 * time.Minute,
		queriesTick: 60,
		indexBudget: 4,
	}
	if opt.Quick {
		p.scale = 8000
		p.historyDays = 10
		p.hoursTotal = 8
		p.queriesTick = 40
		p.indexBudget = 3
	}
	return p
}

func autoIndex(opt Options, w io.Writer, name string) error {
	p := autoIndexDefaults(opt)
	results := make(map[indexPolicy]*replayMetrics)
	for _, pol := range []indexPolicy{policyAuto, policyStatic, policyAutoLogical} {
		m, err := runIndexPolicy(opt, name, pol, p)
		if err != nil {
			return fmt.Errorf("%s: %w", pol, err)
		}
		results[pol] = m
	}

	fmt.Fprintf(w, "simulated replay: %d hours, %d-row tables, %d index budget\n",
		p.hoursTotal, p.scale, p.indexBudget)
	fmt.Fprintf(w, "%-6s", "hour")
	for _, pol := range []indexPolicy{policyStatic, policyAuto, policyAutoLogical} {
		fmt.Fprintf(w, " | %13s tput  p99(ms)", pol)
	}
	fmt.Fprintln(w)
	n := len(results[policyAuto].hours)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-6.1f", results[policyAuto].hours[i])
		for _, pol := range []indexPolicy{policyStatic, policyAuto, policyAutoLogical} {
			m := results[pol]
			fmt.Fprintf(w, " | %13.0f q/s  %7.2f", m.throughput[i], m.p99ms[i])
		}
		fmt.Fprintln(w)
	}
	for _, pol := range []indexPolicy{policyStatic, policyAuto, policyAutoLogical} {
		m := results[pol]
		fmt.Fprintf(w, "%-13s built %d indexes; final-quarter throughput %.0f q/s, p99 %.2f ms\n",
			pol, m.indexesBuilt, m.finalThroughput(), m.finalP99())
	}
	if sa, st := results[policyAuto].finalThroughput(), results[policyStatic].finalThroughput(); st > 0 {
		fmt.Fprintf(w, "AUTO vs STATIC final throughput: %+.0f%%\n", 100*(sa/st-1))
	}
	if sa, sl := results[policyAuto].finalThroughput(), results[policyAutoLogical].finalThroughput(); sl > 0 {
		fmt.Fprintf(w, "AUTO-LOGICAL vs AUTO final throughput: %+.0f%%\n", 100*(sl/sa-1))
	}
	return nil
}

// replayMetrics collects per-tick simulated performance.
type replayMetrics struct {
	hours        []float64
	throughput   []float64 // simulated queries/second
	p99ms        []float64
	indexesBuilt int
}

func (m *replayMetrics) finalThroughput() float64 {
	n := len(m.throughput)
	if n == 0 {
		return 0
	}
	from := n * 3 / 4
	var s float64
	for _, v := range m.throughput[from:] {
		s += v
	}
	return s / float64(n-from)
}

func (m *replayMetrics) finalP99() float64 {
	n := len(m.p99ms)
	if n == 0 {
		return 0
	}
	from := n * 3 / 4
	var s float64
	for _, v := range m.p99ms[from:] {
		s += v
	}
	return s / float64(n-from)
}

func pickWorkload(name string, seed int64) *workload.Workload {
	switch name {
	case "admissions":
		return workload.Admissions(seed)
	default:
		return workload.BusTracker(seed + 1)
	}
}

// experimentStart picks when the 16-hour window begins: for Admissions the
// run-up to the Dec 1 deadline (so forecasting matters), for BusTracker a
// weekday after enough history accrued.
func experimentStart(name string, wl *workload.Workload, historyDays int) time.Time {
	if name == "admissions" {
		return time.Date(2017, time.November, 29, 6, 0, 0, 0, time.UTC)
	}
	return wl.Start.Add(time.Duration(historyDays)*24*time.Hour + 6*time.Hour)
}

func runIndexPolicy(opt Options, name string, pol indexPolicy, p autoIndexParams) (*replayMetrics, error) {
	seed := opt.seed()
	wl := pickWorkload(name, seed)
	expStart := experimentStart(name, wl, p.historyDays)
	histFrom := expStart.Add(-time.Duration(p.historyDays) * 24 * time.Hour)
	expEnd := expStart.Add(time.Duration(p.hoursTotal) * time.Hour)

	// Engine with data but no secondary indexes.
	eng := engine.New()
	if err := workload.SetupEngine(eng, name, p.scale, seed+100); err != nil {
		return nil, err
	}

	// QB5000 controller trained on history (LR family for replay speed;
	// the forecasting-quality comparison across families is fig7's job).
	mode := cluster.ArrivalRate
	if pol == policyAutoLogical {
		mode = cluster.Logical
	}
	ctl := core.New(core.Config{
		Model:       "LR",
		Horizons:    []time.Duration{time.Hour, 12 * time.Hour},
		FeatureMode: mode,
		Seed:        seed,
		Shards:      1, // reproducible template IDs in experiment output
	})
	err := wl.Replay(histFrom, expStart, 10*time.Minute, func(ev workload.Event) error {
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		return nil, err
	}
	if err := ctl.Refresh(context.Background(), expStart); err != nil {
		return nil, err
	}

	sel := indexsel.New(eng)
	metrics := &replayMetrics{}
	// The measurement sampler is seeded identically for every policy so the
	// three replays execute the same query sequence — differences in
	// throughput then come only from the index configurations.
	rng := rand.New(rand.NewSource(seed + 41))

	buildIndexes := func(cands []indexsel.Candidate, limit int) {
		for _, c := range cands {
			if limit <= 0 {
				return
			}
			if t, ok := eng.Table(c.Table); ok && t.HasIndexOn(c.Columns) {
				continue
			}
			if _, _, err := eng.CreateIndex(c.Table, c.Columns); err == nil {
				metrics.indexesBuilt++
				limit--
			}
		}
	}

	if pol == policyStatic {
		// STATIC selects from a fixed sample over the *entire* query
		// history (§7.6) — for Admissions that reaches back through last
		// year's review season, so part of its budget goes to indexes the
		// upcoming pre-deadline window never exercises. A separate RNG
		// keeps the measurement sampler's sequence identical across
		// policies.
		histRng := rand.New(rand.NewSource(seed + 67))
		queries := historicalSample(wl, wl.Start, expStart, 400, histRng)
		cands := sel.Select(queries, p.indexBudget, existingIndexes(eng))
		buildIndexes(cands, p.indexBudget)
	}

	perHourBudget := p.indexBudget / p.hoursTotal
	if perHourBudget < 1 {
		perHourBudget = 1
	}
	nextBuild := expStart

	for tick := expStart; tick.Before(expEnd); tick = tick.Add(p.tickEvery) {
		// Hourly: AUTO policies forecast and build.
		if pol != policyStatic && !tick.Before(nextBuild) && metrics.indexesBuilt < p.indexBudget {
			queries := forecastQueries(ctl)
			if len(queries) > 0 {
				cands := sel.Select(queries, perHourBudget, existingIndexes(eng))
				buildIndexes(cands, min(perHourBudget, p.indexBudget-metrics.indexesBuilt))
			}
			nextBuild = nextBuild.Add(time.Hour)
		}

		// Sample and execute queries for this tick.
		var units []float64
		sample := sampleQueries(wl, tick, p.queriesTick, rng)
		for _, q := range sample {
			res, err := eng.Execute(q)
			if err != nil {
				return nil, fmt.Errorf("execute %q: %w", q, err)
			}
			units = append(units, res.Cost.Units())
		}
		if len(units) == 0 {
			continue
		}
		var total float64
		for _, u := range units {
			total += u
		}
		avg := total / float64(len(units))
		sort.Float64s(units)
		p99 := units[len(units)*99/100]
		// One cost unit ≙ one simulated microsecond.
		metrics.hours = append(metrics.hours, tick.Sub(expStart).Hours())
		metrics.throughput = append(metrics.throughput, 1e6/avg)
		metrics.p99ms = append(metrics.p99ms, p99/1e3)
	}
	return metrics, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// existingIndexes snapshots the engine's current index configuration.
func existingIndexes(eng *engine.Engine) map[string][][]string {
	out := make(map[string][][]string)
	for _, t := range eng.Tables() {
		for _, ix := range t.Indexes() {
			out[t.Name] = append(out[t.Name], ix.Columns)
		}
	}
	return out
}

// forecastQueries converts QB5000's predictions into the weighted query
// sample the index selector consumes: each tracked cluster's predicted
// volume is split across its member templates' sampled instantiations. The
// shorter horizon is weighted higher (§7.6).
func forecastQueries(ctl *core.Controller) []indexsel.WeightedQuery {
	// A fixed slice (not a map) keeps the emitted query order stable.
	horizons := []struct {
		h time.Duration
		w float64
	}{{time.Hour, 2}, {12 * time.Hour, 1}}
	var out []indexsel.WeightedQuery
	for _, hw := range horizons {
		preds, err := ctl.Forecast(hw.h)
		if err != nil {
			continue
		}
		for _, p := range preds {
			if p.TotalRate <= 0 {
				continue
			}
			ids := p.Cluster.MemberIDs()
			for _, id := range ids {
				t, ok := ctl.Preprocessor().Template(id)
				if !ok {
					continue
				}
				samples := t.Params.Sample()
				if len(samples) > 3 {
					samples = samples[:3]
				}
				if len(samples) == 0 {
					samples = [][]string{nil}
				}
				wq := hw.w * p.TotalRate / float64(len(ids)*len(samples))
				for _, ps := range samples {
					sql := preprocess.Instantiate(t.SQL, ps)
					stmt, err := sqlparse.Parse(sql)
					if err != nil {
						continue
					}
					out = append(out, indexsel.WeightedQuery{SQL: sql, Stmt: stmt, Weight: wq})
				}
			}
		}
	}
	return out
}

// historicalSample draws concrete queries uniformly over the history span
// for the STATIC baseline.
func historicalSample(wl *workload.Workload, from, to time.Time, n int, rng *rand.Rand) []indexsel.WeightedQuery {
	span := to.Sub(from)
	var out []indexsel.WeightedQuery
	for len(out) < n {
		at := from.Add(time.Duration(rng.Int63n(int64(span))))
		qs := sampleQueries(wl, at, 4, rng)
		for _, q := range qs {
			stmt, err := sqlparse.Parse(q)
			if err != nil {
				continue
			}
			out = append(out, indexsel.WeightedQuery{SQL: q, Stmt: stmt, Weight: 1})
		}
	}
	return out
}

// sampleQueries draws n concrete queries from the workload's shape
// distribution at time at (proportional to each shape's rate).
func sampleQueries(wl *workload.Workload, at time.Time, n int, rng *rand.Rand) []string {
	type sh struct {
		gen  func(*rand.Rand, time.Time) string
		rate float64
	}
	var shapes []sh
	var total float64
	for _, s := range wl.Shapes {
		if !s.ActiveFrom.IsZero() && at.Before(s.ActiveFrom) {
			continue
		}
		r := s.Rate(at)
		if r <= 0 {
			continue
		}
		shapes = append(shapes, sh{s.Gen, r})
		total += r
	}
	//lint:ignore floateq guards division by an exactly zero rate total
	if total == 0 || len(shapes) == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		pick := rng.Float64() * total
		for _, s := range shapes {
			pick -= s.rate
			if pick <= 0 {
				out = append(out, s.gen(rng, at))
				break
			}
		}
	}
	return out
}
