package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/kdtree"
)

func init() {
	register("abl-ensemble", "Ablation: equal vs accuracy-weighted ensemble averaging (§6.1)", ablEnsemble)
	register("abl-featuresize", "Ablation: clustering feature dimensionality (§5.1)", ablFeatureSize)
	register("abl-kdtree", "Ablation: kd-tree vs brute-force nearest-center lookup (§5.2)", ablKDTree)
	register("abl-interval", "Ablation: automatic prediction-interval selection (§7.4 future work)", ablInterval)
}

// ablEnsemble tests the paper's claim that weighting the LR/RNN average by
// training accuracy overfits: it compares equal-weight averaging against
// weights ∝ 1/(train MSE) on held-out data.
func ablEnsemble(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s\n", "workload", "LR", "RNN", "equal", "weighted")
	for _, wl := range traces(opt.seed()) {
		from, to := evalSlice(wl)
		ct, err := buildClusters(wl, from, to, 10*time.Minute, 0.8, cluster.ArrivalRate, opt.seed())
		if err != nil {
			return err
		}
		top := ct.topClusters(1.0, 3)
		hist := logMatrix(top, from, to, time.Hour)
		trainRows := hist.Rows * 2 / 3
		lag, horizon := 24, 24

		cfg := forecast.Config{Lag: lag, Horizon: horizon, Outputs: hist.Cols, Seed: opt.seed(), Epochs: rnnEpochs(opt)}
		lr, err := forecast.NewLR(cfg, 0)
		if err != nil {
			return err
		}
		rnn, err := forecast.NewRNN(cfg, 0, nil)
		if err != nil {
			return err
		}
		train := subMatrix(hist, 0, trainRows)
		if err := lr.Fit(train); err != nil {
			return err
		}
		if err := rnn.Fit(train); err != nil {
			return err
		}

		// Training-set accuracy determines the "weighted" scheme's weights
		// — measured on the same data the models fit, which is exactly why
		// the paper found it overfits.
		lrTrainMSE, err := walkEval(lr, train, lag+horizon, lag, horizon, nil)
		if err != nil {
			return err
		}
		rnnTrainMSE, err := walkEval(rnn, train, lag+horizon, lag, horizon, nil)
		if err != nil {
			return err
		}
		wLR := 1 / (lrTrainMSE + 1e-9)
		wRNN := 1 / (rnnTrainMSE + 1e-9)
		sum := wLR + wRNN
		wLR, wRNN = wLR/sum, wRNN/sum

		// Held-out evaluation for all four predictors.
		var sqLR, sqRNN, sqEq, sqW float64
		n := 0
		stride := (hist.Rows - trainRows - horizon) / 100
		if stride < 1 {
			stride = 1
		}
		for t := trainRows; t+horizon <= hist.Rows; t += stride {
			recent := subMatrix(hist, t-lag, t)
			pl, err := lr.Predict(recent)
			if err != nil {
				return err
			}
			pr, err := rnn.Predict(recent)
			if err != nil {
				return err
			}
			actual := hist.Row(t + horizon - 1)
			for j := range actual {
				dl := pl[j] - actual[j]
				dr := pr[j] - actual[j]
				de := (pl[j]+pr[j])/2 - actual[j]
				dw := wLR*pl[j] + wRNN*pr[j] - actual[j]
				sqLR += dl * dl
				sqRNN += dr * dr
				sqEq += de * de
				sqW += dw * dw
			}
			n += len(actual)
		}
		fmt.Fprintf(w, "%-12s %10.3f %10.3f %10.3f %10.3f\n",
			wl.Name, sqLR/float64(n), sqRNN/float64(n), sqEq/float64(n), sqW/float64(n))
	}
	fmt.Fprintln(w, "(held-out MSE in log space; 'weighted' uses weights from training accuracy)")
	return nil
}

// ablFeatureSize sweeps the number of sampled time points in the clustering
// feature vector. Too few points cannot distinguish arrival patterns; the
// paper's 10k is far past the knee for these traces.
func ablFeatureSize(opt Options, w io.Writer) error {
	sizes := []int{64, 256, 1024, 4096}
	fmt.Fprintf(w, "%-12s", "workload")
	for _, s := range sizes {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("d=%d", s))
	}
	fmt.Fprintln(w, "   (clusters at rho=0.8; update time)")
	for _, wl := range traces(opt.seed()) {
		from, to := evalSlice(wl)
		if opt.Quick {
			to = from.Add(10 * 24 * time.Hour)
		}
		pre, err := replayInto(wl, from, to, 10*time.Minute, opt.seed())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, size := range sizes {
			clu := cluster.New(cluster.Options{Rho: 0.8, Seed: opt.seed() + 1, FeatureSize: size})
			//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
			start := time.Now()
			if _, err := clu.Update(context.Background(), to, pre.Templates()); err != nil {
				return err
			}
			//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
			fmt.Fprintf(w, " %4d/%3dms", clu.Len(), time.Since(start).Milliseconds())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(cluster counts should stabilize once the feature resolves the daily patterns)")
	return nil
}

// ablKDTree measures nearest-center lookup with the kd-tree against a
// brute-force scan across cluster-set sizes. The paper uses a kd-tree
// (§5.2); this quantifies when it matters.
func ablKDTree(opt Options, w io.Writer) error {
	rng := rand.New(rand.NewSource(opt.seed()))
	const dim = 64
	counts := []int{10, 100, 1000}
	if opt.Quick {
		counts = []int{10, 100}
	}
	const probes = 2000
	fmt.Fprintf(w, "%10s %14s %14s\n", "centers", "kd-tree", "brute force")
	for _, n := range counts {
		points := make([][]float64, n)
		tree := kdtree.New(dim)
		for i := range points {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			points[i] = p
			if err := tree.Insert(int64(i), p); err != nil {
				return err
			}
		}
		queries := make([][]float64, probes)
		for i := range queries {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			queries[i] = q
		}

		//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
		start := time.Now()
		for _, q := range queries {
			tree.Nearest(q)
		}
		//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
		kdTime := time.Since(start)

		//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
		start = time.Now()
		for _, q := range queries {
			best := -1
			bestD := 0.0
			for i, p := range points {
				var d2 float64
				for j := range q {
					d := q[j] - p[j]
					d2 += d * d
				}
				if best < 0 || d2 < bestD {
					best, bestD = i, d2
				}
			}
			_ = best
		}
		//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
		bruteTime := time.Since(start)
		fmt.Fprintf(w, "%10d %11.1fµs/op %11.1fµs/op\n", n,
			float64(kdTime.Microseconds())/probes, float64(bruteTime.Microseconds())/probes)
	}
	fmt.Fprintln(w, "(high-dimensional kd-trees lose their asymptotic edge; the paper's choice")
	fmt.Fprintln(w, " matters for large cluster counts, which pruning keeps rare)")
	return nil
}

// ablInterval demonstrates the interval auto-selection the paper defers to
// future work (§7.4): sweep candidate intervals, score each by held-out MSE
// plus a training-time penalty, and pick the argmin.
func ablInterval(opt Options, w io.Writer) error {
	wl := traces(opt.seed())[1] // BusTracker
	from := wl.Start
	to := from.Add(21 * 24 * time.Hour)
	if opt.Quick {
		to = from.Add(14 * 24 * time.Hour)
	}
	ct, err := buildClusters(wl, from, to, time.Minute, 0.8, cluster.ArrivalRate, opt.seed())
	if err != nil {
		return err
	}
	top := ct.topClusters(0.95, 5)

	candidates := []time.Duration{20 * time.Minute, time.Hour, 2 * time.Hour}
	type scored struct {
		interval time.Duration
		mse      float64
		train    time.Duration
		score    float64
	}
	var results []scored
	const lambda = 0.05 // seconds of training time traded per MSE point
	for _, iv := range candidates {
		hist := logMatrix(top, from, to, iv)
		lag := int(24 * time.Hour / iv)
		trainRows := hist.Rows * 3 / 4
		cfg := forecast.Config{Lag: lag, Horizon: 1, Outputs: hist.Cols, Seed: opt.seed()}
		lr, err := forecast.NewLR(cfg, 0)
		if err != nil {
			return err
		}
		res, err := fitAndEval(lr, hist, trainRows, lag, 1)
		if err != nil {
			return err
		}
		s := scored{interval: iv, mse: res.mse, train: res.trainTime}
		s.score = s.mse + lambda*res.trainTime.Seconds()
		results = append(results, s)
	}
	best := results[0]
	fmt.Fprintf(w, "%-10s %10s %12s %10s\n", "interval", "MSE(log)", "train time", "score")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %10.3f %12s %10.3f\n", r.interval, r.mse, r.train.Round(time.Millisecond), r.score)
		if r.score < best.score {
			best = r
		}
	}
	fmt.Fprintf(w, "selected interval: %s (score = MSE + %.2f × train-seconds)\n", best.interval, lambda)
	return nil
}
