package experiments

import (
	"fmt"
	"io"
	"time"

	"math"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/timeseries"
	"qb5000/internal/workload"
)

func init() {
	register("fig9", "Spike prediction: LR/KR/RNN/ENSEMBLE on Admissions deadlines (Figure 9)", fig9)
	register("fig15", "PCA projection of the KR input space (Figure 15, Appendix B)", fig15)
	register("fig16", "HYBRID gamma-threshold sensitivity (Figure 16, Appendix C)", fig16)
}

// admissionsHourly replays the full two-cycle Admissions trace and returns
// the total hourly arrival series (sum over all templates). The long history
// is what lets KR recognize the previous year's deadline spikes.
func admissionsHourly(opt Options) (*timeseries.Series, error) {
	wl := workload.Admissions(opt.seed())
	from, to := wl.Start, wl.End
	if opt.Quick {
		// Keep both years' deadline seasons but trim the quiet spring.
		// (The spike model needs the 2016 spikes as training data.)
		from = time.Date(2016, time.October, 15, 0, 0, 0, 0, time.UTC)
	}
	total := timeseries.NewSeries(from, time.Hour)
	err := wl.Replay(from, to, time.Hour, func(ev workload.Event) error {
		total.Add(ev.At, float64(ev.Count))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return total, nil
}

// admissionsClusterMatrix replays the full Admissions trace, clusters it,
// and returns the hourly log matrix of per-cluster *total* volume (center ×
// member count) for the top clusters, so the column sum reconstructs the
// combined workload that Figure 9 plots. Forecasting per cluster is what
// separates the applicant run-up pattern from the post-deadline faculty
// review pattern — on the aggregate series the two are indistinguishable.
func admissionsClusterMatrix(opt Options) (hist *mat.Matrix, start time.Time, err error) {
	wl := workload.Admissions(opt.seed())
	from, to := wl.Start, wl.End
	if opt.Quick {
		from = time.Date(2016, time.October, 15, 0, 0, 0, 0, time.UTC)
	}
	ct, err := buildClusters(wl, from, to, time.Hour, 0.8, cluster.ArrivalRate, opt.seed())
	if err != nil {
		return nil, time.Time{}, err
	}
	top := ct.topClusters(0.98, 5)
	rows := int(to.Sub(from) / time.Hour)
	hist = mat.New(rows, len(top))
	for j, cl := range top {
		// Accumulate member volumes from the pre-aggregated hourly tier
		// (compacted history + aggregated fine bins).
		sum := make([]float64, rows)
		// Sorted member order keeps the per-bin float sums bit-identical.
		for _, id := range cl.MemberIDs() {
			full := cl.Members[id].History.FullHourly()
			for i := 0; i < rows; i++ {
				sum[i] += full.At(from.Add(time.Duration(i) * time.Hour))
			}
		}
		for i := 0; i < rows; i++ {
			hist.Set(i, j, timeseries.Log1pClamped(sum[i]))
		}
	}
	return hist, from, nil
}

// seriesLogMatrix converts a single series to a 1-column log matrix.
func seriesLogMatrix(s *timeseries.Series) *mat.Matrix {
	m := mat.New(s.Len(), 1)
	for i, v := range s.Data {
		m.Set(i, 0, timeseries.Log1pClamped(v))
	}
	return m
}

// spikeEval walks the Nov 15 – Dec 31 (2017) span with a one-week horizon
// and returns per-model predictions. KR sees the full history (504-hour
// input window); the other models train on the three weeks preceding the
// evaluation and read a one-day window, per §6.2/§7.3.
type spikeSeries struct {
	times  []time.Time
	actual []float64
	preds  map[string][]float64 // linear space, queries/hour
}

func spikeEval(opt Options, gammas []float64) (*spikeSeries, error) {
	hist, start, err := admissionsClusterMatrix(opt)
	if err != nil {
		return nil, err
	}
	idxOf := func(t time.Time) int { return int(t.Sub(start) / time.Hour) }

	evalFrom := idxOf(time.Date(2017, time.November, 15, 0, 0, 0, 0, time.UTC))
	evalTo := idxOf(time.Date(2017, time.December, 31, 0, 0, 0, 0, time.UTC))
	if evalTo > hist.Rows {
		evalTo = hist.Rows
	}
	const horizon = 168 // one week ahead
	const lag = 24
	const krLag = 504 // three weeks of hourly context (§6.2)

	// Train LR/RNN on the three weeks before the evaluation span.
	trainTo := evalFrom - horizon
	trainFrom := trainTo - 21*24
	if trainFrom < lag {
		trainFrom = lag
	}
	cfg := forecast.Config{Lag: lag, Horizon: horizon, Outputs: hist.Cols, Seed: opt.seed(), Epochs: rnnEpochs(opt)}
	lr, err := forecast.NewLR(cfg, 0)
	if err != nil {
		return nil, err
	}
	rnn, err := forecast.NewRNN(cfg, 0, nil)
	if err != nil {
		return nil, err
	}
	trainSlice := subMatrix(hist, trainFrom-lag, trainTo)
	if err := lr.Fit(trainSlice); err != nil {
		return nil, err
	}
	if err := rnn.Fit(trainSlice); err != nil {
		return nil, err
	}
	// KR trains on the entire history up to the evaluation start.
	krCfg := forecast.Config{Lag: krLag, Horizon: horizon, Outputs: hist.Cols, Seed: opt.seed()}
	kr, err := forecast.NewKR(krCfg, 0)
	if err != nil {
		return nil, err
	}
	if err := kr.Fit(subMatrix(hist, 0, evalFrom)); err != nil {
		return nil, err
	}

	// combine sums per-cluster predictions into total queries/hour.
	combine := func(logs []float64) float64 {
		var sum float64
		for _, v := range logs {
			sum += timeseries.Expm1Clamped(v)
		}
		return sum
	}

	out := &spikeSeries{preds: map[string][]float64{}}
	stride := (evalTo - evalFrom) / 150
	if stride < 1 {
		stride = 1
	}
	for t := evalFrom; t < evalTo; t += stride {
		base := t - horizon // prediction made one week earlier
		if base-krLag < 0 || base-lag < 0 {
			continue
		}
		recent := subMatrix(hist, base-lag, base)
		krRecent := subMatrix(hist, base-krLag, base)
		lrP, err := lr.Predict(recent)
		if err != nil {
			return nil, err
		}
		rnnP, err := rnn.Predict(recent)
		if err != nil {
			return nil, err
		}
		krP, err := kr.Predict(krRecent)
		if err != nil {
			return nil, err
		}
		ens := make([]float64, len(lrP))
		for j := range ens {
			ens[j] = (lrP[j] + rnnP[j]) / 2
		}

		at := start.Add(time.Duration(t) * time.Hour)
		out.times = append(out.times, at)
		out.actual = append(out.actual, combine(hist.Row(t)))
		out.preds["LR"] = append(out.preds["LR"], combine(lrP))
		out.preds["RNN"] = append(out.preds["RNN"], combine(rnnP))
		out.preds["KR"] = append(out.preds["KR"], combine(krP))
		out.preds["ENSEMBLE"] = append(out.preds["ENSEMBLE"], combine(ens))
		for _, g := range gammas {
			v := ens
			if forecast.SpikeOverride(ens, krP, g) {
				v = krP
			}
			name := fmt.Sprintf("HYBRID(%.0f%%)", g*100)
			out.preds[name] = append(out.preds[name], combine(v))
		}
	}
	if len(out.times) == 0 {
		return nil, fmt.Errorf("empty spike evaluation span")
	}
	return out, nil
}

// spikeCapture measures how much of the actual spike a prediction
// reproduces around the given deadline: max(predicted within ±36 h of the
// actual peak) / actual peak. The window absorbs the hour-level jitter
// inherent in kernel matching across calendar years (day-of-week shifts).
func (s *spikeSeries) spikeCapture(model string, deadline time.Time) float64 {
	peak, peakIdx := 0.0, -1
	for i, v := range s.actual {
		if d := s.times[i].Sub(deadline); d < -72*time.Hour || d > 24*time.Hour {
			continue
		}
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	//lint:ignore floateq guards division by an exactly zero peak
	if peakIdx < 0 || peak == 0 {
		return 0
	}
	best := 0.0
	for i, p := range s.preds[model] {
		if d := s.times[i].Sub(s.times[peakIdx]); d < -36*time.Hour || d > 36*time.Hour {
			continue
		}
		if p > best {
			best = p
		}
	}
	return best / peak
}

func (s *spikeSeries) logMSE(model string) float64 {
	var sq float64
	for i, a := range s.actual {
		d := timeseries.Log1pClamped(s.preds[model][i]) - timeseries.Log1pClamped(a)
		sq += d * d
	}
	return sq / float64(len(s.actual))
}

func fig9(opt Options, w io.Writer) error {
	s, err := spikeEval(opt, nil)
	if err != nil {
		return err
	}
	dec1 := time.Date(2017, time.December, 1, 23, 0, 0, 0, time.UTC)
	dec15 := time.Date(2017, time.December, 15, 23, 0, 0, 0, time.UTC)
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "model", "MSE(log)", "Dec1 capture", "Dec15 capture")
	for _, m := range []string{"LR", "KR", "RNN", "ENSEMBLE"} {
		fmt.Fprintf(w, "%-10s %12.2f %11.0f%% %11.0f%%\n", m, s.logMSE(m),
			100*s.spikeCapture(m, dec1), 100*s.spikeCapture(m, dec15))
	}
	fmt.Fprintln(w, "\nactual vs predicted (queries/h), Nov 15 – Dec 31 2017, 1-week horizon:")
	stride := len(s.times) / 40
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(s.times); i += stride {
		fmt.Fprintf(w, "%s\tactual=%.0f\tLR=%.0f\tKR=%.0f\tRNN=%.0f\tENS=%.0f\n",
			s.times[i].Format("01-02 15:04"), s.actual[i],
			s.preds["LR"][i], s.preds["KR"][i], s.preds["RNN"][i], s.preds["ENSEMBLE"][i])
	}
	return nil
}

func fig15(opt Options, w io.Writer) error {
	total, err := admissionsHourly(opt)
	if err != nil {
		return err
	}
	hist := seriesLogMatrix(total)
	const krLag = 504
	// One KR input vector every 12 hours.
	var rows [][]float64
	var stamps []time.Time
	for t := krLag; t < hist.Rows; t += 12 {
		win := make([]float64, krLag)
		for i := 0; i < krLag; i++ {
			win[i] = hist.At(t-krLag+i, 0)
		}
		rows = append(rows, win)
		stamps = append(stamps, total.Start.Add(time.Duration(t)*time.Hour))
	}
	x, err := mat.FromRows(rows)
	if err != nil {
		return err
	}
	pca, err := mat.FitPCA(x, 3)
	if err != nil {
		return err
	}
	proj := pca.Transform(x)
	fmt.Fprintln(w, "3-D PCA projection of 504-hour KR input windows (every 12h; spike = within 7 days of a Dec 1 / Dec 15 deadline):")
	fmt.Fprintf(w, "%-12s %9s %9s %9s %6s\n", "date", "pc1", "pc2", "pc3", "spike")
	stride := len(stamps) / 60
	if stride < 1 {
		stride = 1
	}
	var normSum, spikeSum [3]float64
	var normN, spikeN int
	for i := 0; i < len(stamps); i++ {
		r := proj.Row(i)
		spike := nearDeadline(stamps[i])
		if spike {
			for k := 0; k < 3 && k < len(r); k++ {
				spikeSum[k] += r[k]
			}
			spikeN++
		} else {
			for k := 0; k < 3 && k < len(r); k++ {
				normSum[k] += r[k]
			}
			normN++
		}
		if i%stride == 0 {
			fmt.Fprintf(w, "%-12s %9.2f %9.2f %9.2f %6v\n",
				stamps[i].Format("2006-01-02"), at(r, 0), at(r, 1), at(r, 2), spike)
		}
	}
	if spikeN > 0 && normN > 0 {
		var dist float64
		for k := 0; k < 3; k++ {
			d := spikeSum[k]/float64(spikeN) - normSum[k]/float64(normN)
			dist += d * d
		}
		fmt.Fprintf(w, "\ncentroid separation (spike vs normal) in PCA space: %.2f\n", math.Sqrt(dist))
	}
	return nil
}

func at(r []float64, i int) float64 {
	if i < len(r) {
		return r[i]
	}
	return 0
}

// nearDeadline reports whether t falls within a week before (or a day
// after) a Dec 1 / Dec 15 application deadline.
func nearDeadline(t time.Time) bool {
	for _, d := range []time.Time{
		time.Date(t.Year(), time.December, 1, 23, 59, 0, 0, time.UTC),
		time.Date(t.Year(), time.December, 15, 23, 59, 0, 0, time.UTC),
	} {
		dt := d.Sub(t)
		if dt > -24*time.Hour && dt < 7*24*time.Hour {
			return true
		}
	}
	return false
}

func fig16(opt Options, w io.Writer) error {
	gammas := []float64{1.0, 1.5, 2.0}
	s, err := spikeEval(opt, gammas)
	if err != nil {
		return err
	}
	dec1 := time.Date(2017, time.December, 1, 23, 0, 0, 0, time.UTC)
	dec15 := time.Date(2017, time.December, 15, 23, 0, 0, 0, time.UTC)
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "threshold", "MSE(log)", "Dec1 capture", "Dec15 capture")
	for _, g := range gammas {
		name := fmt.Sprintf("HYBRID(%.0f%%)", g*100)
		fmt.Fprintf(w, "%-14s %12.2f %11.0f%% %11.0f%%\n", name, s.logMSE(name),
			100*s.spikeCapture(name, dec1), 100*s.spikeCapture(name, dec15))
	}
	fmt.Fprintf(w, "%-14s %12.2f %14s\n", "ENSEMBLE", s.logMSE("ENSEMBLE"), "(reference)")
	return nil
}
