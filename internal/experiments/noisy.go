package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"qb5000/internal/core"
	"qb5000/internal/timeseries"
	"qb5000/internal/workload"
)

func init() {
	register("fig17", "Noisy composite workload with shifts (Figure 17, Appendix D)", fig17)
}

// fig17 replays the eight-benchmark composite trace, letting the controller
// re-cluster whenever the new-template share spikes (a benchmark switch
// replaces the whole template population), and compares the predicted
// one-hour-ahead total volume against the actual volume.
func fig17(opt Options, w io.Writer) error {
	wl := workload.Noisy(opt.seed())
	from, to := wl.Start, wl.End
	if opt.Quick {
		to = from.Add(40 * time.Hour) // four benchmark slots
	}

	ctl := core.New(core.Config{
		Model:              "LR",
		Horizons:           []time.Duration{time.Hour},
		Interval:           10 * time.Minute,
		Lag:                3 * time.Hour,
		TrainWindow:        12 * time.Hour,
		ClusterEvery:       time.Hour,
		NewTemplateTrigger: 0.2,
		Seed:               opt.seed(),
		Shards:             1, // reproducible template IDs in experiment output
	})

	actual := timeseries.NewSeries(from, time.Hour)
	type point struct {
		at        time.Time
		predicted float64
	}
	var preds []point
	reclusters := 0

	next := from.Add(time.Hour)
	err := wl.Replay(from, to, time.Minute, func(ev workload.Event) error {
		for !ev.At.Before(next) {
			ran, err := ctl.Tick(context.Background(), next)
			if err != nil {
				return err
			}
			if ran {
				reclusters++
			}
			// Predict the coming hour's total volume.
			if fc, err := ctl.Forecast(time.Hour); err == nil {
				var sum float64
				for _, p := range fc {
					sum += p.TotalRate
				}
				// TotalRate is per 10-minute interval; scale to per hour.
				preds = append(preds, point{at: next.Add(time.Hour), predicted: sum * 6})
			}
			next = next.Add(time.Hour)
		}
		actual.Add(ev.At, float64(ev.Count))
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "benchmark slots switch every %dh; controller re-clustered %d times\n", 10, reclusters)
	fmt.Fprintln(w, "hour\tactual(q/h)\tpredicted(q/h)")
	var sqErr float64
	n := 0
	for _, p := range preds {
		// Skip the cold-start hours before the first full training pass.
		if p.at.Sub(from) < 4*time.Hour {
			continue
		}
		a := actual.At(p.at)
		//lint:ignore floateq skips rows only when both sides are exactly silent
		if a == 0 && p.predicted == 0 {
			continue
		}
		fmt.Fprintf(w, "%.0f\t%.0f\t%.0f\n", p.at.Sub(from).Hours(), a, p.predicted)
		d := timeseries.Log1pClamped(p.predicted) - timeseries.Log1pClamped(a)
		sqErr += d * d
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "overall MSE (log space): %.2f over %d hourly predictions\n", sqErr/float64(n), n)
	}
	return nil
}
