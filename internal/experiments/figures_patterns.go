package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/preprocess"
	"qb5000/internal/timeseries"
	"qb5000/internal/workload"
)

func init() {
	register("fig1", "Workload patterns: cycles, growth/spikes, evolution (Figure 1)", fig1)
	register("fig3", "Arrival-rate history of the largest BusTracker cluster (Figure 3)", fig3)
	register("fig5", "Cluster coverage of the k largest clusters (Figure 5)", fig5)
	register("fig6", "Day-over-day changes among the 5 largest clusters (Figure 6)", fig6)
}

func fig1(opt Options, w io.Writer) error {
	seed := opt.seed()

	// (a) BusTracker cycles: queries/min over 72 hours.
	bt := workload.BusTracker(seed + 1)
	total := timeseries.NewSeries(bt.Start, time.Minute)
	if err := bt.Replay(bt.Start, bt.Start.Add(72*time.Hour), time.Minute, func(ev workload.Event) error {
		total.Add(ev.At, float64(ev.Count))
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "(a) BusTracker cycles — queries/min over 72h (hourly samples):")
	hourly := total.Aggregate(60)
	hourly.Scale(1.0 / 60)
	fprintSeries(w, "bustracker", hourly, 72)

	// (b) Admissions growth & spike: queries/min over the deadline week.
	ad := workload.Admissions(seed)
	wkStart := time.Date(2017, time.December, 9, 0, 0, 0, 0, time.UTC)
	wkEnd := time.Date(2017, time.December, 16, 0, 0, 0, 0, time.UTC)
	adTotal := timeseries.NewSeries(wkStart, time.Minute)
	if err := ad.Replay(wkStart, wkEnd, time.Minute, func(ev workload.Event) error {
		adTotal.Add(ev.At, float64(ev.Count))
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "(b) Admissions growth & spike — queries/min leading to the Dec 15 deadline:")
	adHourly := adTotal.Aggregate(60)
	adHourly.Scale(1.0 / 60)
	fprintSeries(w, "admissions", adHourly, 56)

	// (c) MOOC evolution: accumulated distinct templates per day.
	mc := workload.MOOC(seed + 2)
	end := mc.End
	if opt.Quick {
		end = mc.Start.Add(30 * 24 * time.Hour)
	}
	pre := preprocess.New(preprocess.Options{Seed: seed, Shards: 1})
	day := mc.Start.Add(24 * time.Hour)
	fmt.Fprintln(w, "(c) MOOC evolution — accumulated distinct templates (per day):")
	if err := mc.Replay(mc.Start, end, time.Hour, func(ev workload.Event) error {
		for !ev.At.Before(day) {
			fmt.Fprintf(w, "mooc\t%s\t%d\n", day.Format("2006-01-02"), pre.Len())
			day = day.Add(24 * time.Hour)
		}
		_, err := pre.ProcessBatch(ev.SQL, ev.At, ev.Count)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "mooc\t%s\t%d\n", end.Format("2006-01-02"), pre.Len())
	return nil
}

func fig3(opt Options, w io.Writer) error {
	bt := workload.BusTracker(opt.seed() + 1)
	days := 12
	if opt.Quick {
		days = 6
	}
	from := bt.Start
	to := from.Add(time.Duration(days) * 24 * time.Hour)
	ct, err := buildClusters(bt, from, to, 10*time.Minute, 0.8, cluster.ArrivalRate, opt.seed())
	if err != nil {
		return err
	}
	top := ct.topClusters(1.0, 1)
	if len(top) == 0 {
		return fmt.Errorf("no clusters formed")
	}
	big := top[0]
	center := cluster.CenterSeries(big, from, to, time.Hour)
	fmt.Fprintf(w, "largest cluster: %d templates\n", big.Size())
	fprintSeries(w, "center", center, 48)

	// Top four member templates by volume.
	type mem struct {
		t   *preprocess.Template
		vol int64
	}
	var members []mem
	for _, t := range big.Members {
		members = append(members, mem{t, t.Count})
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].vol != members[j].vol {
			return members[i].vol > members[j].vol
		}
		return members[i].t.ID < members[j].t.ID
	})
	for i, m := range members {
		if i >= 4 {
			break
		}
		s := cluster.CenterSeries(&cluster.Cluster{Members: map[int64]*preprocess.Template{m.t.ID: m.t}}, from, to, time.Hour)
		fmt.Fprintf(w, "query %d: %.60s...\n", i+1, m.t.SQL)
		fprintSeries(w, fmt.Sprintf("query%d", i+1), s, 24)
	}
	return nil
}

func fig5(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s", "workload")
	for k := 1; k <= 5; k++ {
		fmt.Fprintf(w, "  top-%d", k)
	}
	fmt.Fprintln(w)
	for _, wl := range traces(opt.seed()) {
		cov, _, err := dailyCoverage(wl, opt, 0.8)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", wl.Name)
		for k := 1; k <= 5; k++ {
			fmt.Fprintf(w, "  %.3f", cov[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(values are the mean daily fraction of workload volume covered by the k largest clusters)")
	return nil
}

// dailyCoverage replays the workload with daily clustering updates and
// returns (a) the mean daily coverage for k=1..5 and (b) the histogram of
// day-over-day top-5 membership changes (for Figure 6).
func dailyCoverage(wl *workload.Workload, opt Options, rho float64) (map[int]float64, map[int]int, error) {
	from, to := wl.Start, wl.End
	if opt.Quick && to.Sub(from) > 14*24*time.Hour {
		to = from.Add(14 * 24 * time.Hour)
	}
	// Very long traces (Admissions spans 16 months) are summarized over
	// their final two months to bound runtime.
	if to.Sub(from) > 70*24*time.Hour {
		from = to.Add(-60 * 24 * time.Hour)
	}
	pre := preprocess.New(preprocess.Options{Seed: opt.seed(), Shards: 1})
	clu := cluster.New(cluster.Options{Rho: rho, Seed: opt.seed() + 1})

	covSum := make(map[int]float64)
	changes := make(map[int]int)
	days := 0
	var prevTop []int64

	next := from.Add(24 * time.Hour)
	endOfDay := func(at time.Time) error {
		if _, err := clu.Update(context.Background(), at, pre.Templates()); err != nil {
			return err
		}
		days++
		for k := 1; k <= 5; k++ {
			covSum[k] += clu.Coverage(k, at, 24*time.Hour)
		}
		var top []int64
		for _, cl := range clu.Clusters(at, 24*time.Hour) {
			if len(top) >= 5 {
				break
			}
			top = append(top, cl.ID)
		}
		if prevTop != nil {
			changes[setDiff(prevTop, top)]++
		}
		prevTop = top
		return nil
	}
	err := wl.Replay(from, to, time.Hour, func(ev workload.Event) error {
		for !ev.At.Before(next) {
			if err := endOfDay(next); err != nil {
				return err
			}
			next = next.Add(24 * time.Hour)
		}
		_, err := pre.ProcessBatch(ev.SQL, ev.At, ev.Count)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	if days == 0 {
		return nil, nil, fmt.Errorf("trace too short for daily coverage")
	}
	for k := 1; k <= 5; k++ {
		covSum[k] /= float64(days)
	}
	return covSum, changes, nil
}

// setDiff counts how many members of cur were not in prev.
func setDiff(prev, cur []int64) int {
	in := make(map[int64]bool, len(prev))
	for _, id := range prev {
		in[id] = true
	}
	n := 0
	for _, id := range cur {
		if !in[id] {
			n++
		}
	}
	return n
}

func fig6(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s %8s\n", "workload", "0", "1", "2", "3", "4+")
	for _, wl := range traces(opt.seed()) {
		_, changes, err := dailyCoverage(wl, opt, 0.8)
		if err != nil {
			return err
		}
		total := 0
		for _, n := range changes {
			total += n
		}
		pct := func(k int) float64 {
			if total == 0 {
				return 0
			}
			n := changes[k]
			if k == 4 {
				for kk, c := range changes {
					if kk > 4 {
						n += c
					}
				}
			}
			return 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(w, "%-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			wl.Name, pct(0), pct(1), pct(2), pct(3), pct(4))
	}
	fmt.Fprintln(w, "(percentage of days with N membership changes among the 5 largest clusters)")
	return nil
}
