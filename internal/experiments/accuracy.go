package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/timeseries"
	"qb5000/internal/workload"
)

func init() {
	register("fig7", "Forecasting-model accuracy across horizons (Figure 7)", fig7)
	register("fig8", "Actual vs predicted, 1-hour and 1-week horizons (Figure 8)", fig8)
	register("fig10", "Prediction-interval sweep: accuracy & training time (Figure 10)", fig10)
	register("fig13", "Cluster coverage vs similarity threshold rho (Figure 13)", fig13)
	register("fig14", "Prediction accuracy vs similarity threshold rho (Figure 14)", fig14)
}

// evalSlice picks a 5-week evaluation slice per workload: three weeks of
// training plus a test span that accommodates the longest horizon.
func evalSlice(wl *workload.Workload) (from, to time.Time) {
	switch wl.Name {
	case "admissions":
		// A spike-free stretch; spike behaviour is evaluated in fig9.
		from = time.Date(2017, time.September, 15, 0, 0, 0, 0, time.UTC)
	case "mooc":
		// After the forum feature launch, so the template population (and
		// hence the cluster set) is stable across the train/test split; the
		// mid-launch behaviour is exercised by fig17's shift handling.
		from = time.Date(2017, time.May, 10, 0, 0, 0, 0, time.UTC)
	default:
		from = wl.Start
	}
	to = from.Add(5 * 7 * 24 * time.Hour)
	if to.After(wl.End) {
		to = wl.End
	}
	return from, to
}

// fig7Horizons are the paper's seven prediction horizons, in hours.
var fig7Horizons = []int{1, 12, 24, 48, 72, 120, 168}

var fig7Models = []string{"LR", "KR", "ARMA", "FNN", "RNN", "PSRNN", "ENSEMBLE", "HYBRID"}

func fig7(opt Options, w io.Writer) error {
	horizons := fig7Horizons
	if opt.Quick {
		horizons = []int{1, 24, 168}
	}
	for _, wl := range traces(opt.seed()) {
		from, to := evalSlice(wl)
		ct, err := buildClusters(wl, from, to, 10*time.Minute, 0.8, cluster.ArrivalRate, opt.seed())
		if err != nil {
			return err
		}
		// Model the clusters covering 95% of the volume, but at least three
		// so the joint multi-cluster prediction is exercised (the paper
		// models 3 clusters for Admissions/BusTracker and 5 for MOOC).
		top := ct.topClusters(0.95, 5)
		if len(top) < 3 {
			top = ct.topClusters(1.0, 3)
		}
		if len(top) == 0 {
			return fmt.Errorf("%s: no clusters", wl.Name)
		}
		hist := logMatrix(top, from, to, time.Hour)
		trainRows := 21 * 24
		if trainRows > hist.Rows*2/3 {
			trainRows = hist.Rows * 2 / 3
		}

		fmt.Fprintf(w, "[%s] %d clusters, %d hourly intervals (%d train)\n", wl.Name, len(top), hist.Rows, trainRows)
		fmt.Fprintf(w, "%-8s", "horizon")
		for _, m := range fig7Models {
			fmt.Fprintf(w, " %9s", m)
		}
		fmt.Fprintln(w)

		for _, h := range horizons {
			mses, err := evalAllModels(hist, trainRows, 24, h, opt)
			if err != nil {
				return fmt.Errorf("%s horizon %dh: %w", wl.Name, h, err)
			}
			fmt.Fprintf(w, "%-8s", fmtHorizon(h))
			for _, m := range fig7Models {
				fmt.Fprintf(w, " %9.2f", mses[m])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(values are MSE in log space; lower is better)")
	return nil
}

func fmtHorizon(h int) string {
	switch {
	case h < 24:
		return fmt.Sprintf("%dh", h)
	case h%24 == 0 && h < 168:
		return fmt.Sprintf("%dd", h/24)
	case h == 168:
		return "1wk"
	default:
		return fmt.Sprintf("%dh", h)
	}
}

// evalAllModels fits the six base models once and walks the test span,
// deriving ENSEMBLE and HYBRID from the shared fitted components (so the
// expensive RNN trains once per cell rather than three times).
func evalAllModels(hist *mat.Matrix, trainRows, lag, horizon int, opt Options) (map[string]float64, error) {
	cfg := forecast.Config{
		Lag: lag, Horizon: horizon, Outputs: hist.Cols,
		Seed: opt.seed(), Epochs: rnnEpochs(opt),
	}
	train := subMatrix(hist, 0, trainRows)

	models := make(map[string]forecast.Model)
	for _, name := range []string{"LR", "KR", "ARMA", "FNN", "RNN", "PSRNN"} {
		m, err := forecast.NewByName(name, cfg)
		if err != nil {
			return nil, err
		}
		if err := m.Fit(train); err != nil {
			return nil, fmt.Errorf("fit %s: %w", name, err)
		}
		models[name] = m
	}
	// Spike KR for HYBRID: week-long input window over the full history.
	krCfg := cfg
	krCfg.Lag = 168
	if krCfg.Lag > trainRows-horizon-1 {
		krCfg.Lag = lag
	}
	krSpike, err := forecast.NewKR(krCfg, 0)
	if err != nil {
		return nil, err
	}
	if err := krSpike.Fit(train); err != nil {
		return nil, err
	}

	sqErr := make(map[string]float64)
	n := 0
	stride := (hist.Rows - trainRows - horizon) / 120
	if stride < 1 {
		stride = 1
	}
	for t := trainRows; t+horizon <= hist.Rows; t += stride {
		if t-krCfg.Lag < 0 || t-lag < 0 {
			continue
		}
		recent := subMatrix(hist, t-lag, t)
		krRecent := subMatrix(hist, t-krCfg.Lag, t)
		actual := hist.Row(t + horizon - 1)

		preds := make(map[string][]float64)
		for name, m := range models {
			p, err := m.Predict(recent)
			if err != nil {
				return nil, fmt.Errorf("predict %s: %w", name, err)
			}
			preds[name] = p
		}
		krSpikePred, err := krSpike.Predict(krRecent)
		if err != nil {
			return nil, err
		}
		ens := make([]float64, hist.Cols)
		for j := range ens {
			ens[j] = (preds["LR"][j] + preds["RNN"][j]) / 2
		}
		preds["ENSEMBLE"] = ens
		if forecast.SpikeOverride(ens, krSpikePred, forecast.DefaultGamma) {
			preds["HYBRID"] = krSpikePred
		} else {
			preds["HYBRID"] = ens
		}

		for name, p := range preds {
			for j := range p {
				d := p[j] - actual[j]
				sqErr[name] += d * d
			}
		}
		n += hist.Cols
	}
	if n == 0 {
		return nil, fmt.Errorf("empty evaluation span")
	}
	out := make(map[string]float64, len(sqErr))
	for name, s := range sqErr {
		out[name] = s / float64(n)
	}
	return out, nil
}

func fig8(opt Options, w io.Writer) error {
	wl := workload.BusTracker(opt.seed() + 1)
	from, to := evalSlice(wl)
	ct, err := buildClusters(wl, from, to, 10*time.Minute, 0.8, cluster.ArrivalRate, opt.seed())
	if err != nil {
		return err
	}
	top := ct.topClusters(1.0, 1)
	hist := logMatrix(top, from, to, time.Hour)
	trainRows := 21 * 24
	if trainRows > hist.Rows*2/3 {
		trainRows = hist.Rows * 2 / 3
	}

	for _, horizon := range []int{1, 168} {
		if trainRows+horizon >= hist.Rows {
			fmt.Fprintf(w, "(trace too short for a %s horizon)\n", fmtHorizon(horizon))
			continue
		}
		cfg := forecast.Config{Lag: 24, Horizon: horizon, Outputs: hist.Cols, Seed: opt.seed(), Epochs: rnnEpochs(opt)}
		ens, err := forecast.NewDefaultEnsemble(cfg)
		if err != nil {
			return err
		}
		if err := ens.Fit(subMatrix(hist, 0, trainRows)); err != nil {
			return err
		}
		fmt.Fprintf(w, "(%s horizon) actual vs predicted, queries/h for the largest cluster:\n", fmtHorizon(horizon))
		stride := (hist.Rows - trainRows - horizon) / 48
		if stride < 1 {
			stride = 1
		}
		for t := trainRows; t+horizon <= hist.Rows; t += stride {
			pred, err := ens.Predict(subMatrix(hist, t-24, t))
			if err != nil {
				return err
			}
			at := from.Add(time.Duration(t+horizon-1) * time.Hour)
			fmt.Fprintf(w, "h%s\t%s\tactual=%.0f\tpredicted=%.0f\n",
				fmtHorizon(horizon), at.Format("01-02 15:04"),
				timeseries.Expm1Clamped(hist.At(t+horizon-1, 0)),
				timeseries.Expm1Clamped(pred[0]))
		}
	}
	return nil
}

func fig10(opt Options, w io.Writer) error {
	intervals := []time.Duration{10 * time.Minute, 20 * time.Minute, 30 * time.Minute, 60 * time.Minute, 120 * time.Minute}
	horizons := []time.Duration{time.Hour, 24 * time.Hour, 72 * time.Hour}
	if opt.Quick {
		intervals = []time.Duration{10 * time.Minute, 60 * time.Minute, 120 * time.Minute}
		horizons = []time.Duration{time.Hour, 24 * time.Hour}
	}

	wl := workload.BusTracker(opt.seed() + 1)
	from := wl.Start
	to := from.Add(28 * 24 * time.Hour)
	if opt.Quick {
		to = from.Add(18 * 24 * time.Hour)
	}
	ct, err := buildClusters(wl, from, to, time.Minute, 0.8, cluster.ArrivalRate, opt.seed())
	if err != nil {
		return err
	}
	top := ct.topClusters(0.95, 5)

	fmt.Fprintf(w, "%-10s %-10s %12s %14s\n", "interval", "horizon", "MSE(log,1h)", "train time")
	for _, iv := range intervals {
		hist := logMatrix(top, from, to, iv)
		perHour := int(time.Hour / iv)
		if perHour < 1 {
			perHour = 1
		}
		lag := int(24 * time.Hour / iv) // one day of context
		trainRows := hist.Rows * 3 / 4
		for _, hz := range horizons {
			horizon := int(hz / iv)
			if horizon < 1 {
				horizon = 1
			}
			if trainRows+horizon+lag >= hist.Rows {
				fmt.Fprintf(w, "%-10s %-10s %12s %14s\n", iv, hz, "-", "(span too short)")
				continue
			}
			cfg := forecast.Config{Lag: lag, Horizon: horizon, Outputs: hist.Cols, Seed: opt.seed(), Epochs: fig10Epochs(opt, iv)}
			ens, err := forecast.NewDefaultEnsemble(cfg)
			if err != nil {
				return err
			}
			//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
			start := time.Now()
			if err := ens.Fit(subMatrix(hist, 0, trainRows)); err != nil {
				return err
			}
			//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
			trainTime := time.Since(start)
			// Per-hour MSE, per the paper's §7.4 protocol: the prediction
			// for each hour is the *sum* of the model's predictions for the
			// intervals inside that hour (each a legitimate horizon-ahead
			// forecast from its own input window); intervals longer than an
			// hour split their prediction evenly across the hours they
			// cover.
			var sqErr float64
			n := 0
			stride := ((hist.Rows - trainRows - horizon) / perHour / 80) * perHour
			if stride < perHour {
				stride = perHour
			}
			for t := trainRows; t+horizon+perHour <= hist.Rows; t += stride {
				var predHour, actHour float64
				if iv <= time.Hour {
					for k := 0; k < perHour; k++ {
						pred, err := ens.Predict(subMatrix(hist, t+k-lag, t+k))
						if err != nil {
							return err
						}
						for j := range pred {
							predHour += timeseries.Expm1Clamped(pred[j])
							actHour += timeseries.Expm1Clamped(hist.At(t+k+horizon-1, j))
						}
					}
				} else {
					pred, err := ens.Predict(subMatrix(hist, t-lag, t))
					if err != nil {
						return err
					}
					split := float64(iv / time.Hour)
					for j := range pred {
						predHour += timeseries.Expm1Clamped(pred[j]) / split
						actHour += timeseries.Expm1Clamped(hist.At(t+horizon-1, j)) / split
					}
				}
				d := timeseries.Log1pClamped(predHour) - timeseries.Log1pClamped(actHour)
				sqErr += d * d
				n++
			}
			fmt.Fprintf(w, "%-10s %-10s %12.2f %14s\n", iv, hz, sqErr/float64(n), trainTime.Round(time.Millisecond))
		}
	}
	return nil
}

// fig10Epochs keeps the long-sequence RNN fits tractable: shorter intervals
// mean longer input sequences, so epochs shrink proportionally.
func fig10Epochs(opt Options, iv time.Duration) int {
	base := rnnEpochs(opt)
	factor := int(time.Hour / iv)
	if factor < 1 {
		factor = 1
	}
	e := base / factor
	if e < 2 {
		e = 2
	}
	return e
}

var rhoSweep = []float64{0.5, 0.6, 0.7, 0.8, 0.9}

func fig13(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s", "workload")
	for _, rho := range rhoSweep {
		fmt.Fprintf(w, "  rho=%.1f", rho)
	}
	fmt.Fprintln(w)
	for _, wl := range traces(opt.seed()) {
		from, to := evalSlice(wl)
		if opt.Quick {
			to = from.Add(14 * 24 * time.Hour)
		}
		pre, err := replayInto(wl, from, to, 10*time.Minute, opt.seed())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, rho := range rhoSweep {
			clu := cluster.New(cluster.Options{Rho: rho, Seed: opt.seed() + 1})
			if _, err := clu.Update(context.Background(), to, pre.Templates()); err != nil {
				return err
			}
			fmt.Fprintf(w, "  %7.3f", clu.Coverage(3, to, 24*time.Hour))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(fraction of workload volume covered by the 3 largest clusters)")
	return nil
}

func fig14(opt Options, w io.Writer) error {
	fmt.Fprintf(w, "%-12s", "workload")
	for _, rho := range rhoSweep {
		fmt.Fprintf(w, "  rho=%.1f", rho)
	}
	fmt.Fprintln(w)
	for _, wl := range traces(opt.seed()) {
		from, to := evalSlice(wl)
		if opt.Quick {
			to = from.Add(21 * 24 * time.Hour)
		}
		pre, err := replayInto(wl, from, to, 10*time.Minute, opt.seed())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", wl.Name)
		for _, rho := range rhoSweep {
			clu := cluster.New(cluster.Options{Rho: rho, Seed: opt.seed() + 1})
			if _, err := clu.Update(context.Background(), to, pre.Templates()); err != nil {
				return err
			}
			ct := &clusteredTrace{w: wl, pre: pre, clu: clu, from: from, to: to}
			top := ct.topClusters(1.0, 3)
			hist := logMatrix(top, from, to, time.Hour)
			trainRows := hist.Rows * 2 / 3
			cfg := forecast.Config{Lag: 24, Horizon: 1, Outputs: hist.Cols, Seed: opt.seed()}
			lr, err := forecast.NewLR(cfg, 0)
			if err != nil {
				return err
			}
			res, err := fitAndEval(lr, hist, trainRows, 24, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %7.3f", res.mse)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(MSE in log space for a 1-hour horizon over the 3 largest clusters; lower is better)")
	return nil
}
