package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/preprocess"
	"qb5000/internal/timeseries"
	"qb5000/internal/workload"
)

// traces instantiates the three real-world-style traces.
func traces(seed int64) []*workload.Workload {
	return []*workload.Workload{
		workload.Admissions(seed),
		workload.BusTracker(seed + 1),
		workload.MOOC(seed + 2),
	}
}

// replayInto feeds [from, to) of the workload into a fresh Pre-Processor at
// the given emission step. The catalog is pinned to one stripe so template
// IDs in experiment output are reproducible across machines regardless of
// GOMAXPROCS.
func replayInto(w *workload.Workload, from, to time.Time, step time.Duration, seed int64) (*preprocess.Preprocessor, error) {
	pre := preprocess.New(preprocess.Options{Seed: seed, Shards: 1})
	obs := make([]preprocess.Observation, 0, replayChunk)
	err := w.ReplayBatches(from, to, step, replayChunk, func(evs []workload.Event) error {
		obs = obs[:0]
		for _, ev := range evs {
			obs = append(obs, preprocess.Observation{SQL: ev.SQL, At: ev.At, Count: ev.Count})
		}
		if _, rejected := pre.ProcessMany(obs); rejected != 0 {
			return fmt.Errorf("experiments: %d queries rejected replaying %s", rejected, w.Name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pre, nil
}

// replayChunk is the replay→ingest batch size: one stripe-lock acquisition
// per chunk rather than per event.
const replayChunk = 1024

// clusteredTrace is a replayed, clustered view of a workload slice.
type clusteredTrace struct {
	w    *workload.Workload
	pre  *preprocess.Preprocessor
	clu  *cluster.Clusterer
	from time.Time
	to   time.Time
}

// buildClusters replays [from, to) and runs daily incremental clustering
// passes so cluster evolution matches the on-line protocol (§7.1).
func buildClusters(w *workload.Workload, from, to time.Time, step time.Duration, rho float64, mode cluster.FeatureMode, seed int64) (*clusteredTrace, error) {
	pre := preprocess.New(preprocess.Options{Seed: seed, Shards: 1})
	clu := cluster.New(cluster.Options{Rho: rho, Seed: seed + 1, Mode: mode})
	ctx := context.Background()
	nextUpdate := from.Add(24 * time.Hour)
	err := w.Replay(from, to, step, func(ev workload.Event) error {
		if !ev.At.Before(nextUpdate) {
			if _, err := clu.Update(ctx, nextUpdate, pre.Templates()); err != nil {
				return err
			}
			nextUpdate = nextUpdate.Add(24 * time.Hour)
		}
		_, err := pre.ProcessBatch(ev.SQL, ev.At, ev.Count)
		return err
	})
	if err != nil {
		return nil, err
	}
	if _, err := clu.Update(ctx, to, pre.Templates()); err != nil {
		return nil, err
	}
	return &clusteredTrace{w: w, pre: pre, clu: clu, from: from, to: to}, nil
}

// topClusters returns the clusters covering `cover` of the final day's
// volume, capped at maxK, largest first.
func (ct *clusteredTrace) topClusters(cover float64, maxK int) []*cluster.Cluster {
	window := 24 * time.Hour
	all := ct.clu.Clusters(ct.to, window)
	var total float64
	vols := make([]float64, len(all))
	for i, cl := range all {
		vols[i] = ct.clu.Volume(cl, ct.to, window)
		total += vols[i]
	}
	var out []*cluster.Cluster
	var covered float64
	for i, cl := range all {
		if len(out) >= maxK {
			break
		}
		out = append(out, cl)
		covered += vols[i]
		if total > 0 && covered/total >= cover {
			break
		}
	}
	return out
}

// logMatrix builds the (rows × clusters) matrix of log1p cluster-center
// arrival rates at the given interval over [from, to).
func logMatrix(cls []*cluster.Cluster, from, to time.Time, interval time.Duration) *mat.Matrix {
	rows := int(to.Sub(from) / interval)
	if rows < 0 {
		rows = 0
	}
	m := mat.New(rows, len(cls))
	for j, cl := range cls {
		s := cluster.CenterSeries(cl, from, to, interval)
		for i := 0; i < rows && i < s.Len(); i++ {
			m.Set(i, j, timeseries.Log1pClamped(s.Data[i]))
		}
	}
	return m
}

// subMatrix copies rows [from, to) of m.
func subMatrix(m *mat.Matrix, from, to int) *mat.Matrix {
	if from < 0 {
		from = 0
	}
	if to > m.Rows {
		to = m.Rows
	}
	out := mat.New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// evalResult is the outcome of evaluating one fitted model on a test span.
type evalResult struct {
	mse       float64 // MSE in log space (the paper's Figure 7 metric)
	trainTime time.Duration
}

// fitAndEval trains the model on hist[0:trainRows) and walks the test span,
// predicting row t+horizon-1 from the lag window ending at t, accumulating
// squared error in log space.
func fitAndEval(m forecast.Model, hist *mat.Matrix, trainRows, lag, horizon int) (evalResult, error) {
	var res evalResult
	//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
	start := time.Now()
	if err := m.Fit(subMatrix(hist, 0, trainRows)); err != nil {
		return res, err
	}
	//lint:ignore noclock wall-clock timing of this phase is the experiment's measurement
	res.trainTime = time.Since(start)
	mse, err := walkEval(m, hist, trainRows, lag, horizon, nil)
	if err != nil {
		return res, err
	}
	res.mse = mse
	return res, nil
}

// walkEval evaluates a fitted model over the test rows [trainRows,
// hist.Rows-horizon). If combine is non-nil it post-processes each
// prediction (used for ensemble/hybrid compositions built from shared
// fitted components).
func walkEval(m forecast.Model, hist *mat.Matrix, trainRows, lag, horizon int, combine func(t int, pred []float64) []float64) (float64, error) {
	var sqErr float64
	n := 0
	// Stride the evaluation points so long test spans stay cheap while
	// covering the full span.
	stride := (hist.Rows - trainRows) / 200
	if stride < 1 {
		stride = 1
	}
	for t := trainRows; t+horizon <= hist.Rows; t += stride {
		if t-lag < 0 {
			continue
		}
		recent := subMatrix(hist, t-lag, t)
		pred, err := m.Predict(recent)
		if err != nil {
			return 0, err
		}
		if combine != nil {
			pred = combine(t, pred)
		}
		actual := hist.Row(t + horizon - 1)
		for j, p := range pred {
			d := p - actual[j]
			sqErr += d * d
		}
		n += hist.Cols
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: empty evaluation span")
	}
	return sqErr / float64(n), nil
}

// fprintSeries prints a named time series as "label<TAB>t0 v0 / t1 v1 ..."
// rows, one line per point, downsampled to at most maxPoints.
func fprintSeries(w io.Writer, label string, s *timeseries.Series, maxPoints int) {
	stride := s.Len() / maxPoints
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < s.Len(); i += stride {
		fmt.Fprintf(w, "%s\t%s\t%.1f\n", label, s.TimeOf(i).Format("2006-01-02 15:04"), s.Data[i])
	}
}
