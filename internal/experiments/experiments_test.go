package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"abl-ensemble", "abl-featuresize", "abl-interval", "abl-kdtree",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("order mismatch at %d: %v", i, ids)
		}
		if _, ok := Describe(id); !ok {
			t.Fatalf("no description for %s", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", Options{}, &buf); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

// TestFastExperimentsProduceOutput runs the cheap experiments end-to-end in
// quick mode and sanity-checks their reports. The expensive ones (fig7,
// fig9–fig12, fig15, fig16) are exercised by the benchmark harness.
func TestFastExperimentsProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still replay days of trace")
	}
	cases := map[string][]string{
		"table1":     {"admissions", "bustracker", "mooc", "SELECT%"},
		"table2":     {"reduction ratio"},
		"table3":     {"PSRNN", "kernel"},
		"table4":     {"Pre-Processor", "RNN"},
		"fig1":       {"BusTracker cycles", "deadline", "distinct templates"},
		"fig3":       {"largest cluster", "query 1"},
		"fig5":       {"top-5"},
		"fig6":       {"4+"},
		"fig13":      {"rho=0.9"},
		"fig14":      {"1-hour horizon"},
		"fig17":      {"re-clustered", "predicted"},
		"abl-kdtree": {"brute force"},
	}
	for id, substrings := range cases {
		var buf bytes.Buffer
		if err := Run(id, Options{Quick: true, Seed: 1}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		for _, sub := range substrings {
			if !strings.Contains(out, sub) {
				t.Errorf("%s output missing %q:\n%s", id, sub, out)
			}
		}
	}
}
