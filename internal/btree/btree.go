// Package btree implements an in-memory B+Tree keyed by an arbitrary
// ordered key type. The embedded relational engine uses it for secondary
// indexes: leaves map keys to row-ID postings, and range scans walk the
// linked leaf level.
package btree

// degree is the maximum number of keys per node; chosen so nodes stay within
// a couple of cache lines for integer keys.
const degree = 32

// Tree is a B+Tree from K to a posting list of int64 row IDs. Duplicate keys
// are supported: each key holds a list of row IDs.
type Tree[K any] struct {
	less func(a, b K) bool
	root node[K]
	size int // number of (key, rowID) pairs
}

type node[K any] interface {
	isLeaf() bool
}

type leaf[K any] struct {
	keys     []K
	postings [][]int64
	next     *leaf[K]
}

func (*leaf[K]) isLeaf() bool { return true }

type inner[K any] struct {
	keys     []K       // separator keys; child[i] holds keys < keys[i]
	children []node[K] // len == len(keys)+1
}

func (*inner[K]) isLeaf() bool { return false }

// New creates a tree ordered by less.
func New[K any](less func(a, b K) bool) *Tree[K] {
	return &Tree[K]{less: less, root: &leaf[K]{}}
}

// Len returns the number of (key, rowID) entries.
func (t *Tree[K]) Len() int { return t.size }

func (t *Tree[K]) eq(a, b K) bool { return !t.less(a, b) && !t.less(b, a) }

// searchLeaf descends to the leaf that should contain key, recording the
// path for splits.
func (t *Tree[K]) searchLeaf(key K) (*leaf[K], []*inner[K], []int) {
	var parents []*inner[K]
	var idxs []int
	n := t.root
	for !n.isLeaf() {
		in := n.(*inner[K])
		i := t.lowerBound(in.keys, key)
		// Children i holds keys < keys[i]; equal keys go right.
		for i < len(in.keys) && t.eq(in.keys[i], key) {
			i++
		}
		parents = append(parents, in)
		idxs = append(idxs, i)
		n = in.children[i]
	}
	return n.(*leaf[K]), parents, idxs
}

// lowerBound returns the first index with keys[i] >= key.
func (t *Tree[K]) lowerBound(keys []K, key K) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.less(keys[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds rowID under key.
func (t *Tree[K]) Insert(key K, rowID int64) {
	lf, parents, idxs := t.searchLeaf(key)
	i := t.lowerBound(lf.keys, key)
	if i < len(lf.keys) && t.eq(lf.keys[i], key) {
		lf.postings[i] = append(lf.postings[i], rowID)
		t.size++
		return
	}
	lf.keys = append(lf.keys, key)
	copy(lf.keys[i+1:], lf.keys[i:])
	lf.keys[i] = key
	lf.postings = append(lf.postings, nil)
	copy(lf.postings[i+1:], lf.postings[i:])
	lf.postings[i] = []int64{rowID}
	t.size++
	if len(lf.keys) > degree {
		t.splitLeaf(lf, parents, idxs)
	}
}

func (t *Tree[K]) splitLeaf(lf *leaf[K], parents []*inner[K], idxs []int) {
	mid := len(lf.keys) / 2
	right := &leaf[K]{
		keys:     append([]K(nil), lf.keys[mid:]...),
		postings: append([][]int64(nil), lf.postings[mid:]...),
		next:     lf.next,
	}
	lf.keys = lf.keys[:mid:mid]
	lf.postings = lf.postings[:mid:mid]
	lf.next = right
	t.insertIntoParent(right.keys[0], lf, right, parents, idxs)
}

func (t *Tree[K]) insertIntoParent(sep K, left, right node[K], parents []*inner[K], idxs []int) {
	if len(parents) == 0 {
		t.root = &inner[K]{keys: []K{sep}, children: []node[K]{left, right}}
		return
	}
	p := parents[len(parents)-1]
	i := idxs[len(idxs)-1]
	p.keys = append(p.keys, sep)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
	if len(p.keys) > degree {
		t.splitInner(p, parents[:len(parents)-1], idxs[:len(idxs)-1])
	}
}

func (t *Tree[K]) splitInner(in *inner[K], parents []*inner[K], idxs []int) {
	mid := len(in.keys) / 2
	sep := in.keys[mid]
	right := &inner[K]{
		keys:     append([]K(nil), in.keys[mid+1:]...),
		children: append([]node[K](nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	t.insertIntoParent(sep, in, right, parents, idxs)
}

// Delete removes one (key, rowID) pair; it reports whether the pair existed.
// Underflowed nodes are left in place (lazy deletion), which keeps the tree
// valid; workloads here are insert-heavy so rebalancing on delete is not
// worth its complexity.
func (t *Tree[K]) Delete(key K, rowID int64) bool {
	lf, _, _ := t.searchLeaf(key)
	i := t.lowerBound(lf.keys, key)
	if i >= len(lf.keys) || !t.eq(lf.keys[i], key) {
		return false
	}
	post := lf.postings[i]
	for j, id := range post {
		if id == rowID {
			post = append(post[:j], post[j+1:]...)
			t.size--
			if len(post) == 0 {
				lf.keys = append(lf.keys[:i], lf.keys[i+1:]...)
				lf.postings = append(lf.postings[:i], lf.postings[i+1:]...)
			} else {
				lf.postings[i] = post
			}
			return true
		}
	}
	return false
}

// Lookup returns the row IDs stored under key.
func (t *Tree[K]) Lookup(key K) []int64 {
	lf, _, _ := t.searchLeaf(key)
	i := t.lowerBound(lf.keys, key)
	if i < len(lf.keys) && t.eq(lf.keys[i], key) {
		return lf.postings[i]
	}
	return nil
}

// Range invokes fn for every (key, rowID) with lo <= key <= hi, in key
// order. A nil lo starts at the smallest key; a nil hi ends at the largest.
// fn returning false stops the scan.
func (t *Tree[K]) Range(lo, hi *K, fn func(key K, rowID int64) bool) {
	var lf *leaf[K]
	var i int
	if lo != nil {
		lf, _, _ = t.searchLeaf(*lo)
		i = t.lowerBound(lf.keys, *lo)
	} else {
		n := t.root
		for !n.isLeaf() {
			n = n.(*inner[K]).children[0]
		}
		lf = n.(*leaf[K])
	}
	for lf != nil {
		for ; i < len(lf.keys); i++ {
			if hi != nil && t.less(*hi, lf.keys[i]) {
				return
			}
			for _, id := range lf.postings[i] {
				if !fn(lf.keys[i], id) {
					return
				}
			}
		}
		lf = lf.next
		i = 0
	}
}

// Height returns the tree height (1 for a lone leaf); the engine's cost
// model charges one page touch per level on an index probe.
func (t *Tree[K]) Height() int {
	h := 1
	n := t.root
	for !n.isLeaf() {
		h++
		n = n.(*inner[K]).children[0]
	}
	return h
}
