package btree

import (
	"math/rand"
	"sort"
	"testing"
)

func intTree() *Tree[int] {
	return New[int](func(a, b int) bool { return a < b })
}

func TestInsertLookup(t *testing.T) {
	tr := intTree()
	tr.Insert(5, 100)
	tr.Insert(5, 101) // duplicate key, second row
	tr.Insert(3, 102)
	if got := tr.Lookup(5); len(got) != 2 {
		t.Fatalf("Lookup(5) = %v", got)
	}
	if got := tr.Lookup(4); got != nil {
		t.Fatalf("Lookup(4) = %v", got)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := intTree()
	tr.Insert(1, 10)
	tr.Insert(1, 11)
	if !tr.Delete(1, 10) {
		t.Fatal("Delete existing pair failed")
	}
	if tr.Delete(1, 10) {
		t.Fatal("double delete succeeded")
	}
	if got := tr.Lookup(1); len(got) != 1 || got[0] != 11 {
		t.Fatalf("Lookup after delete = %v", got)
	}
	if !tr.Delete(1, 11) {
		t.Fatal("delete last posting failed")
	}
	if got := tr.Lookup(1); got != nil {
		t.Fatalf("key should be gone: %v", got)
	}
	if tr.Delete(99, 0) {
		t.Fatal("delete of absent key succeeded")
	}
}

func TestAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := intTree()
	ref := make(map[int]map[int64]bool)
	for op := 0; op < 20000; op++ {
		k := rng.Intn(500)
		id := int64(rng.Intn(20))
		if rng.Intn(3) == 0 {
			had := ref[k][id]
			got := tr.Delete(k, id)
			if got != had {
				t.Fatalf("Delete(%d,%d) = %v, want %v", k, id, got, had)
			}
			if had {
				delete(ref[k], id)
			}
		} else {
			if ref[k][id] {
				continue // tree allows duplicate pairs; reference doesn't model that
			}
			tr.Insert(k, id)
			if ref[k] == nil {
				ref[k] = make(map[int64]bool)
			}
			ref[k][id] = true
		}
	}
	want := 0
	for k, ids := range ref {
		got := tr.Lookup(k)
		if len(got) != len(ids) {
			t.Fatalf("Lookup(%d) = %v, want %d entries", k, got, len(ids))
		}
		for _, id := range got {
			if !ids[id] {
				t.Fatalf("Lookup(%d) returned unexpected id %d", k, id)
			}
		}
		want += len(ids)
	}
	if tr.Len() != want {
		t.Fatalf("Len = %d, want %d", tr.Len(), want)
	}
}

func TestRangeOrderAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := intTree()
	var keys []int
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		k := rng.Intn(10000)
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		tr.Insert(k, int64(k))
	}
	sort.Ints(keys)

	lo, hi := 2000, 7000
	var got []int
	tr.Range(&lo, &hi, func(k int, id int64) bool {
		got = append(got, k)
		return true
	})
	var want []int
	for _, k := range keys {
		if k >= lo && k <= hi {
			want = append(want, k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}

	// Unbounded scans.
	count := 0
	tr.Range(nil, nil, func(int, int64) bool { count++; return true })
	if count != len(keys) {
		t.Fatalf("full Range visited %d, want %d", count, len(keys))
	}

	// Early stop.
	count = 0
	tr.Range(nil, nil, func(int, int64) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestHeightGrows(t *testing.T) {
	tr := intTree()
	if tr.Height() != 1 {
		t.Fatalf("empty height = %d", tr.Height())
	}
	for i := 0; i < 5000; i++ {
		tr.Insert(i, int64(i))
	}
	if h := tr.Height(); h < 2 || h > 6 {
		t.Fatalf("height = %d after 5000 inserts", h)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string](func(a, b string) bool { return a < b })
	tr.Insert("banana", 1)
	tr.Insert("apple", 2)
	tr.Insert("cherry", 3)
	var got []string
	tr.Range(nil, nil, func(k string, _ int64) bool {
		got = append(got, k)
		return true
	})
	if got[0] != "apple" || got[2] != "cherry" {
		t.Fatalf("order = %v", got)
	}
}
