package failpoint

import (
	"errors"
	"sync"
	"testing"
)

// The registry is process-global, so each test registers fresh names and
// resets schedules on exit.

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("test.dup")
	defer func() {
		if recover() == nil {
			t.Fatal("second Register of the same name did not panic")
		}
	}()
	Register("test.dup")
}

func TestNthFiresExactlyOnce(t *testing.T) {
	Register("test.nth")
	defer Reset()
	if err := SetNth("test.nth", 3); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Inject("test.nth")
		if i == 3 {
			if err == nil {
				t.Fatalf("call %d: expected injected fault", i)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: %v does not wrap ErrInjected", i, err)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != "test.nth" {
				t.Fatalf("call %d: error %v does not carry the site name", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: unexpected fault %v", i, err)
		}
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	Register("test.prob")
	defer Reset()
	run := func(seed int64) []bool {
		if err := SetProb("test.prob", 0.5, seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("test.prob") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; schedule looks degenerate", fired, len(a))
	}
}

func TestDisarmedFastPath(t *testing.T) {
	Register("test.fast")
	Reset()
	if err := Inject("test.fast"); err != nil {
		t.Fatalf("disarmed site injected %v", err)
	}
	if err := Inject("test.never-registered"); err != nil {
		t.Fatalf("unregistered site injected %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = Inject("test.fast")
	})
	if allocs != 0 {
		t.Fatalf("disarmed Inject allocates %.1f/op; the fast path is part of the noalloc contract", allocs)
	}
}

func TestClearAndResetDisarm(t *testing.T) {
	Register("test.clear")
	defer Reset()
	if err := SetNth("test.clear", 1); err != nil {
		t.Fatal(err)
	}
	if err := Clear("test.clear"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("test.clear"); err != nil {
		t.Fatalf("cleared site injected %v", err)
	}
	if err := SetNth("test.clear", 1); err != nil {
		t.Fatal(err)
	}
	Reset()
	if err := Inject("test.clear"); err != nil {
		t.Fatalf("reset site injected %v", err)
	}
}

func TestSetOnUnregisteredErrors(t *testing.T) {
	if err := SetNth("test.ghost", 1); err == nil {
		t.Fatal("SetNth on an unregistered site succeeded")
	}
	if err := SetProb("test.ghost", 0.5, 1); err == nil {
		t.Fatal("SetProb on an unregistered site succeeded")
	}
	if err := Clear("test.ghost"); err == nil {
		t.Fatal("Clear on an unregistered site succeeded")
	}
}

func TestParse(t *testing.T) {
	Register("test.parse-a")
	Register("test.parse-b")
	defer Reset()
	if err := Parse("test.parse-a=nth:1, test.parse-b=prob:1:9"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("test.parse-a"); err == nil {
		t.Fatal("nth:1 site did not fire on first call")
	}
	if err := Inject("test.parse-b"); err == nil {
		t.Fatal("prob:1 site did not fire")
	}
	for _, bad := range []string{
		"no-equals",
		"test.parse-a=wat:1",
		"test.parse-a=nth:x",
		"test.parse-a=prob:0.5",
		"test.parse-a=prob:x:1",
		"test.parse-a=prob:0.5:x",
		"test.ghost=nth:1",
	} {
		if err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
	if err := Parse(""); err != nil {
		t.Fatalf("empty spec errored: %v", err)
	}
}

func TestConcurrentInjectIsRaceFree(t *testing.T) {
	Register("test.race")
	defer Reset()
	if err := SetNth("test.race", 50); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Inject("test.race")
			}
		}()
	}
	wg.Wait()
}
