// Package failpoint is a stdlib-only fault-injection registry for crash
// testing (DESIGN.md §8). Durable-write code compiles named sites into its
// I/O seams with failpoint.Inject; tests and operators arm a site with a
// deterministic schedule — fail on exactly the Nth call, or fail with a
// seeded probability — and prove the code survives a fault there.
//
// The grammar has three layers:
//
//   - Registration: every site name is declared exactly once, at package
//     init, via `var _ = failpoint.Register("pkg.site")`. Register panics on
//     a duplicate so a copy-pasted name fails at startup, and the faultpath
//     analyzer statically cross-checks that every Inject site names a
//     registered failpoint and every registered failpoint is injectable.
//   - Injection: `if err := failpoint.Inject("pkg.site"); err != nil {
//     return err }` immediately BEFORE the operation the site models. When
//     the site is disarmed this is a single atomic load — the fast path is
//     part of the zero-alloc contract (qb5000:noalloc).
//   - Activation: tests call SetNth/SetProb directly; binaries accept a
//     spec via Parse ("fsx.rename=nth:1,fsx.sync=prob:0.01:42") from a
//     -failpoints flag or the QB5000_FAILPOINTS environment variable.
//
// Schedules are deterministic by construction: nth counts calls, prob draws
// from a rand.Rand seeded explicitly (never the global RNG), so a failing
// crash-matrix run replays bit-identically — the same property the
// seededrand analyzer enforces for model code.
package failpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected fault wraps; callers assert a
// fault with errors.Is(err, failpoint.ErrInjected).
var ErrInjected = errors.New("injected fault")

// An Error is the fault returned by an armed site.
type Error struct {
	// Site is the registered failpoint name that fired.
	Site string
}

func (e *Error) Error() string { return "failpoint " + e.Site + ": injected fault" }

// Unwrap lets errors.Is(err, ErrInjected) see through the site wrapper.
func (e *Error) Unwrap() error { return ErrInjected }

// armed short-circuits Inject while no schedule is active anywhere: the
// disarmed fast path is one atomic load, no lock, no allocation.
var armed atomic.Bool

var (
	registryMu sync.RWMutex
	points     = make(map[string]*point) // guarded by registryMu
)

// Schedule modes for one site.
const (
	modeOff = iota
	modeNth
	modeProb
)

type point struct {
	name string

	mu sync.Mutex
	// qb5000:guardedby mu
	mode int
	// remaining counts down to the firing call under modeNth.
	// qb5000:guardedby mu
	remaining int64
	// qb5000:guardedby mu
	prob float64
	// qb5000:guardedby mu
	rng *rand.Rand
}

// active reports whether the point has an armed schedule.
func (p *point) active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mode != modeOff
}

// eval advances the schedule by one call and reports whether it fires.
func (p *point) eval() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.mode {
	case modeNth:
		p.remaining--
		if p.remaining == 0 {
			return &Error{Site: p.name}
		}
	case modeProb:
		if p.rng.Float64() < p.prob {
			return &Error{Site: p.name}
		}
	}
	return nil
}

// Register declares a failpoint site name. It is meant to seed a
// package-level var at init (`var _ = failpoint.Register(FPRename)`) so the
// registry is complete before main runs; it panics if the name is already
// taken, turning a copy-pasted site name into a startup failure instead of
// a silently shared counter.
func Register(name string) string {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := points[name]; dup {
		panic("failpoint: site " + name + " registered twice")
	}
	points[name] = &point{name: name}
	return name
}

// Inject evaluates the named site's schedule and returns the fault to
// propagate, or nil. Call it immediately before the operation the site
// models; the caller must return a non-nil result, which the faultpath
// analyzer verifies. Disarmed, this is a single atomic load.
//
// qb5000:noalloc
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	//lint:ignore noalloc the armed slow path runs only under fault injection, never in production steady state
	return fire(name)
}

func fire(name string) error {
	registryMu.RLock()
	p := points[name]
	registryMu.RUnlock()
	if p == nil {
		return nil
	}
	return p.eval()
}

func lookup(name string) *point {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return points[name]
}

// SetNth arms the site to fail on exactly the nth Inject call from now
// (n=1 fails the next call); later calls succeed again.
func SetNth(name string, n int64) error {
	p := lookup(name)
	if p == nil {
		return fmt.Errorf("failpoint: %q is not registered", name)
	}
	if n < 1 {
		return fmt.Errorf("failpoint: %s: nth count must be >= 1, got %d", name, n)
	}
	p.mu.Lock()
	p.mode = modeNth
	p.remaining = n
	p.mu.Unlock()
	armed.Store(true)
	return nil
}

// SetProb arms the site to fail each call independently with probability
// prob, drawn from a dedicated RNG seeded with seed so runs replay
// bit-identically.
func SetProb(name string, prob float64, seed int64) error {
	p := lookup(name)
	if p == nil {
		return fmt.Errorf("failpoint: %q is not registered", name)
	}
	if prob < 0 || prob > 1 {
		return fmt.Errorf("failpoint: %s: probability must be in [0,1], got %g", name, prob)
	}
	p.mu.Lock()
	p.mode = modeProb
	p.prob = prob
	p.rng = rand.New(rand.NewSource(seed))
	p.mu.Unlock()
	armed.Store(true)
	return nil
}

// Clear disarms one site, leaving it registered.
func Clear(name string) error {
	p := lookup(name)
	if p == nil {
		return fmt.Errorf("failpoint: %q is not registered", name)
	}
	p.mu.Lock()
	p.mode = modeOff
	p.mu.Unlock()
	if !anyActive() {
		armed.Store(false)
	}
	return nil
}

// Reset disarms every site and restores the zero-overhead fast path.
func Reset() {
	for _, name := range Registered() {
		p := lookup(name)
		p.mu.Lock()
		p.mode = modeOff
		p.mu.Unlock()
	}
	armed.Store(false)
}

// anyActive reports whether any registered site still has a schedule.
func anyActive() bool {
	for _, name := range Registered() {
		if lookup(name).active() {
			return true
		}
	}
	return false
}

// Registered returns every declared site name, sorted.
func Registered() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EnvVar is the environment variable ParseEnv reads a failpoint spec from.
const EnvVar = "QB5000_FAILPOINTS"

// ParseEnv arms sites from the QB5000_FAILPOINTS environment variable.
// Binaries call it from main (not init) so every Register has already run.
func ParseEnv() error {
	return Parse(os.Getenv(EnvVar))
}

// Parse arms sites from a comma-separated spec:
//
//	site=nth:N          fail the Nth call
//	site=prob:P:SEED    fail each call with probability P, RNG seeded SEED
//
// e.g. "fsx.rename=nth:1,fsx.sync=prob:0.01:42". An empty spec is a no-op.
func Parse(spec string) error {
	if spec == "" {
		return nil
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, sched, ok := strings.Cut(term, "=")
		if !ok {
			return fmt.Errorf("failpoint: bad term %q: want site=nth:N or site=prob:P:SEED", term)
		}
		kind, rest, _ := strings.Cut(sched, ":")
		switch kind {
		case "nth":
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return fmt.Errorf("failpoint: bad nth count in %q: %w", term, err)
			}
			if err := SetNth(name, n); err != nil {
				return err
			}
		case "prob":
			ps, ss, ok := strings.Cut(rest, ":")
			if !ok {
				return fmt.Errorf("failpoint: bad term %q: prob needs a seed (site=prob:P:SEED)", term)
			}
			prob, err := strconv.ParseFloat(ps, 64)
			if err != nil {
				return fmt.Errorf("failpoint: bad probability in %q: %w", term, err)
			}
			seed, err := strconv.ParseInt(ss, 10, 64)
			if err != nil {
				return fmt.Errorf("failpoint: bad seed in %q: %w", term, err)
			}
			if err := SetProb(name, prob, seed); err != nil {
				return err
			}
		default:
			return fmt.Errorf("failpoint: unknown schedule %q in %q (want nth or prob)", kind, term)
		}
	}
	return nil
}
