package tracefile

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var at = time.Date(2018, 1, 2, 15, 4, 5, 0, time.UTC)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Entry{
		{At: at, Count: 1, SQL: "SELECT a FROM t WHERE x = 1"},
		{At: at.Add(time.Minute), Count: 42, SQL: "INSERT INTO t VALUES (2)"},
		{At: at.Add(2 * time.Minute), Count: 0, SQL: "DELETE FROM t"}, // 0 → 1
	}
	for _, e := range in {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var out []Entry
	if err := Read(&buf, func(e Entry) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("read %d entries", len(out))
	}
	if !out[0].At.Equal(at) || out[0].SQL != in[0].SQL || out[0].Count != 1 {
		t.Fatalf("entry 0 = %+v", out[0])
	}
	if out[1].Count != 42 {
		t.Fatalf("entry 1 count = %d", out[1].Count)
	}
	if out[2].Count != 1 {
		t.Fatalf("zero count not normalized: %+v", out[2])
	}
}

func TestReadTwoFieldForm(t *testing.T) {
	input := "2018-01-02T15:04:05Z\tSELECT 1 FROM t\n"
	var got []Entry
	if err := Read(strings.NewReader(input), func(e Entry) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Count != 1 || got[0].SQL != "SELECT 1 FROM t" {
		t.Fatalf("got %+v", got)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header\n\n2018-01-02T15:04:05Z\tSELECT 1 FROM t\n"
	n := 0
	if err := Read(strings.NewReader(input), func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("read %d entries", n)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"no tab here\n",
		"not-a-time\tSELECT 1\n",
		"2018-01-02T15:04:05Z\t-3\tSELECT 1\n",
	}
	for _, in := range bad {
		err := Read(strings.NewReader(in), func(Entry) error { return nil })
		if err == nil {
			t.Errorf("%q: expected error", in)
		}
		if err != nil && !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%q: error lacks line number: %v", in, err)
		}
	}
}

func TestWriteRejectsMultilineSQL(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Entry{At: at, SQL: "SELECT\n1"}); err == nil {
		t.Fatal("expected newline rejection")
	}
}

// TestSQLWithTabsSurvives: the SQL field is the final field, so embedded
// tabs must round-trip. (The count field disambiguates because it parses as
// an integer.)
func TestSQLWithTabsSurvives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sql := "SELECT a FROM t WHERE s = 'tab\there'"
	if err := w.Write(Entry{At: at, Count: 2, SQL: sql}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	var got Entry
	if err := Read(&buf, func(e Entry) error { got = e; return nil }); err != nil {
		t.Fatal(err)
	}
	if got.SQL != sql {
		t.Fatalf("SQL = %q, want %q", got.SQL, sql)
	}
}
