// Package tracefile reads and writes query trace files in the format the
// qb5000 CLI consumes: one query per line as
//
//	RFC3339-timestamp <TAB> count <TAB> SQL
//
// or the two-field variant without a count (count = 1):
//
//	RFC3339-timestamp <TAB> SQL
//
// Lines that are empty or start with '#' are skipped. The three-field form
// lets aggregated replays (many identical arrivals in one interval) stay
// compact.
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Entry is one trace line.
type Entry struct {
	At    time.Time
	Count int64
	SQL   string
}

// Writer emits trace entries.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one entry. Multi-line SQL is rejected because the format is
// line-oriented.
func (tw *Writer) Write(e Entry) error {
	if tw.err != nil {
		return tw.err
	}
	if strings.ContainsAny(e.SQL, "\n\r") {
		return fmt.Errorf("tracefile: SQL contains newline")
	}
	if e.Count <= 0 {
		e.Count = 1
	}
	_, tw.err = fmt.Fprintf(tw.w, "%s\t%d\t%s\n", e.At.UTC().Format(time.RFC3339), e.Count, e.SQL)
	return tw.err
}

// Flush commits buffered output.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Read parses a trace stream, invoking fn per entry. It stops at the first
// malformed line, reporting its line number.
func Read(r io.Reader, fn func(Entry) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		e, err := parseLine(text)
		if err != nil {
			return fmt.Errorf("tracefile: line %d: %w", line, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

func parseLine(text string) (Entry, error) {
	ts, rest, ok := strings.Cut(text, "\t")
	if !ok {
		return Entry{}, fmt.Errorf("expected timestamp<TAB>...")
	}
	at, err := time.Parse(time.RFC3339, strings.TrimSpace(ts))
	if err != nil {
		return Entry{}, fmt.Errorf("bad timestamp: %v", err)
	}
	// Optional count field: present when the second field is an integer and
	// a third field follows.
	if countStr, sql, ok := strings.Cut(rest, "\t"); ok {
		if count, err := strconv.ParseInt(strings.TrimSpace(countStr), 10, 64); err == nil {
			if count <= 0 {
				return Entry{}, fmt.Errorf("non-positive count %d", count)
			}
			return Entry{At: at, Count: count, SQL: sql}, nil
		}
	}
	return Entry{At: at, Count: 1, SQL: rest}, nil
}
