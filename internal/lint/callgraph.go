package lint

// This file is the interprocedural layer under the goleak / ctxprop /
// handlelife analyzers: a package-set call graph over the typed ASTs the
// loader already produces, condensed into strongly connected components so
// per-function summaries (summary.go) can be computed bottom-up.
//
// Soundness caveats, by construction:
//
//   - Nodes are keyed by *symbolic* IDs ("pkg.Func", "pkg.(T).Method",
//     "parent$litN") rather than types.Object identity, because each unit
//     typechecks from source while its imports come from export data — the
//     same function is a different object in every importing unit. Symbolic
//     keys make cross-unit edges resolve to the source-checked node.
//   - Interface calls get conservative may-call edges (tagged Dynamic) to
//     every loaded method with the same name whose receiver type declares
//     all of the interface's methods (matched by name, which is robust
//     across type universes). Summaries never propagate over Dynamic edges:
//     a may-edge proves nothing, in either direction.
//   - Calls through function values, fields, and channels are unresolved
//     and contribute no edge. The summary layer treats a missing edge as
//     "no information", which is the quiet direction for every analyzer
//     built here.

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strings"
)

// A FuncNode is one function in the program call graph: a declared function
// or method, or a function literal attributed to its enclosing declaration.
type FuncNode struct {
	// ID is the stable symbolic key: "pkg.Func", "pkg.(T).Method", or
	// "<parentID>$litN" for the N-th literal (in source order) inside parent.
	ID   string
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Type *ast.FuncType
	Body *ast.BlockStmt

	// Out and In are the edges leaving and entering this node, in source
	// order of the call sites.
	Out []*CallEdge
	In  []*CallEdge

	// methodRecv names the receiver type ("pkg.T") for methods, "" otherwise.
	methodRecv string

	// boundedAnn records a // qb5000:bounded doc annotation: the author
	// audited this function's goroutine spawning as gated by a bounded
	// pool/semaphore. Literals inherit the flag from their enclosing
	// declaration (the audit covers the whole body).
	boundedAnn bool

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// A CallEdge is one (may-)call from Caller to Callee.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	Site   *ast.CallExpr
	// Go and Defer mark edges made through `go` / `defer` statements.
	Go, Defer bool
	// Dynamic marks conservative may-call edges from interface dispatch.
	Dynamic bool
}

// A CallGraph is the package-set call graph plus its SCC condensation.
type CallGraph struct {
	// Nodes maps symbolic IDs to nodes.
	Nodes map[string]*FuncNode
	// Order lists nodes deterministically: units sorted by path, files in
	// sorted order, declarations in source order, literals after their
	// parent.
	Order []*FuncNode
	// SCCs is the condensation in bottom-up order: every static edge from a
	// node in SCCs[j] leads into some SCCs[i] with i <= j, so summaries
	// computed in slice order see their callees' summaries already fixed.
	SCCs [][]*FuncNode

	byDecl map[*ast.FuncDecl]*FuncNode
	byLit  map[*ast.FuncLit]*FuncNode
}

// NodeFor returns the graph node of a declared function, or nil.
func (g *CallGraph) NodeFor(fd *ast.FuncDecl) *FuncNode { return g.byDecl[fd] }

// NodeForLit returns the graph node of a function literal, or nil.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// funcID renders the symbolic ID of a declared function or method from its
// type object. Pointer receivers are normalized away: T and *T methods
// cannot collide in Go.
func funcID(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return pkg + ".(" + name + ")." + f.Name()
		}
	}
	return pkg + "." + f.Name()
}

// recvTypeName extracts the bare receiver type name from a receiver type,
// unwrapping pointers.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	}
	return ""
}

// unitID renders the symbolic ID a declaration in unit pkg gets. External
// _test units ("pkg_test") keep their own namespace, which matches how the
// type checker sees them.
func declID(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if name := recvName(fd.Recv.List[0].Type); name != "" {
			return pkg.Path + ".(" + name + ")." + fd.Name.Name
		}
	}
	return pkg.Path + "." + fd.Name.Name
}

// recvName extracts the receiver type name from its AST form.
func recvName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// buildCallGraph constructs the graph over the given units.
func buildCallGraph(units []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:  make(map[string]*FuncNode),
		byDecl: make(map[*ast.FuncDecl]*FuncNode),
		byLit:  make(map[*ast.FuncLit]*FuncNode),
	}

	// Pass 1: nodes for every declaration and every function literal, plus
	// the per-receiver method-name index interface resolution needs.
	litNodes := g.byLit
	methodsByName := make(map[string][]*FuncNode) // method name -> method nodes
	recvMethods := make(map[string]map[string]bool)
	addNode := func(n *FuncNode) {
		// IDs collide only for uncallable declarations (multiple func init /
		// func _ per package); disambiguate with a deterministic suffix so
		// every body still gets analyzed.
		base := n.ID
		for i := 2; ; i++ {
			if _, dup := g.Nodes[n.ID]; !dup {
				break
			}
			n.ID = fmt.Sprintf("%s#%d", base, i)
		}
		g.Nodes[n.ID] = n
		g.Order = append(g.Order, n)
	}
	for _, pkg := range units {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				node := &FuncNode{
					ID:         declID(pkg, fd),
					Pkg:        pkg,
					Decl:       fd,
					Type:       fd.Type,
					Body:       fd.Body,
					boundedAnn: hasBoundedAnn(fd.Doc),
				}
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					if name := recvName(fd.Recv.List[0].Type); name != "" {
						node.methodRecv = pkg.Path + "." + name
						methodsByName[fd.Name.Name] = append(methodsByName[fd.Name.Name], node)
						if recvMethods[node.methodRecv] == nil {
							recvMethods[node.methodRecv] = make(map[string]bool)
						}
						recvMethods[node.methodRecv][fd.Name.Name] = true
					}
				}
				addNode(node)
				g.byDecl[fd] = node
				if fd.Body == nil {
					continue
				}
				litN := 0
				inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
					ln := &FuncNode{
						ID:         fmt.Sprintf("%s$lit%d", node.ID, litN),
						Pkg:        pkg,
						Lit:        lit,
						Type:       lit.Type,
						Body:       lit.Body,
						boundedAnn: node.boundedAnn,
					}
					litN++
					litNodes[lit] = ln
					addNode(ln)
				})
			}
		}
	}

	// Pass 2: edges. Each node's body is walked shallowly (literal bodies
	// belong to the literal's own node).
	for _, node := range g.Order {
		if node.Body == nil {
			continue
		}
		collectEdges(g, node, litNodes, methodsByName, recvMethods)
	}

	g.condense()
	return g
}

// collectEdges walks one node's body recording call edges.
func collectEdges(g *CallGraph, node *FuncNode, litNodes map[*ast.FuncLit]*FuncNode,
	methodsByName map[string][]*FuncNode, recvMethods map[string]map[string]bool) {
	info := node.Pkg.Info
	addEdge := func(callee *FuncNode, site *ast.CallExpr, goStmt, deferStmt, dynamic bool) {
		if callee == nil {
			return
		}
		e := &CallEdge{Caller: node, Callee: callee, Site: site, Go: goStmt, Defer: deferStmt, Dynamic: dynamic}
		node.Out = append(node.Out, e)
		callee.In = append(callee.In, e)
	}
	resolve := func(call *ast.CallExpr, goStmt, deferStmt bool) {
		fun := ast.Unparen(call.Fun)
		if f, ok := fun.(*ast.FuncLit); ok {
			addEdge(litNodes[f], call, goStmt, deferStmt, false)
			return
		}
		// Interface dispatch fans out as conservative may-call edges to every
		// loaded method of the right name whose receiver type covers the
		// interface's method-name set.
		if f, ok := fun.(*ast.SelectorExpr); ok {
			if sel, ok := info.Selections[f]; ok && types.IsInterface(sel.Recv()) {
				iface, ok := sel.Recv().Underlying().(*types.Interface)
				if !ok {
					return
				}
				var need []string
				for i := 0; i < iface.NumMethods(); i++ {
					need = append(need, iface.Method(i).Name())
				}
				for _, cand := range methodsByName[f.Sel.Name] {
					if coversAll(recvMethods[cand.methodRecv], need) {
						addEdge(cand, call, goStmt, deferStmt, true)
					}
				}
				return
			}
		}
		if tf := staticCallee(info, call); tf != nil {
			addEdge(g.Nodes[funcID(tf)], call, goStmt, deferStmt, false)
		}
	}
	// Calls that are the direct operand of go/defer are recorded with their
	// tags at the statement; the generic CallExpr walk must skip them.
	goDefer := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			goDefer[st.Call] = true
		case *ast.DeferStmt:
			goDefer[st.Call] = true
		}
		return true
	})
	inspectShallow(node.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			// The call's arguments may contain further calls; those run on
			// the spawning goroutine and are visited as plain CallExprs.
			resolve(st.Call, true, false)
			return true
		case *ast.DeferStmt:
			resolve(st.Call, false, true)
			return true
		case *ast.CallExpr:
			if goDefer[st] {
				return true
			}
			resolve(st, false, false)
			return true
		}
		return true
	})
}

// staticCallee resolves call to the *types.Func it statically invokes, or
// nil for interface dispatch, function values, builtins, and literals.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if tf, ok := info.Uses[f].(*types.Func); ok {
			return tf
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			tf, _ := sel.Obj().(*types.Func)
			return tf
		}
		// Package-qualified call (pkg.Func).
		if tf, ok := info.Uses[f.Sel].(*types.Func); ok {
			return tf
		}
	}
	return nil
}

// coversAll reports whether the method-name set covers every needed name.
func coversAll(have map[string]bool, need []string) bool {
	if have == nil {
		return false
	}
	for _, n := range need {
		if !have[n] {
			return false
		}
	}
	return true
}

// condense runs Tarjan's algorithm over static (non-Dynamic) edges. Tarjan
// emits each SCC only after every SCC reachable from it, so the resulting
// slice is already in bottom-up (callee-first) order.
func (g *CallGraph) condense() {
	index := 1
	var stack []*FuncNode
	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		v.index = index
		v.lowlink = index
		index++
		stack = append(stack, v)
		v.onStack = true
		for _, e := range v.Out {
			if e.Dynamic {
				continue
			}
			w := e.Callee
			if w.index == 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, v := range g.Order {
		if v.index == 0 {
			strongconnect(v)
		}
	}
}

// WriteDOT renders the call graph in Graphviz DOT form (the driver's -graph
// flag). Nodes are grouped per package; go edges are red and labeled, defer
// edges dashed, dynamic may-call edges dotted.
func WriteDOT(w io.Writer, g *CallGraph) error {
	bw := &strings.Builder{}
	fmt.Fprintln(bw, "digraph qb5000 {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=box, fontsize=10];")

	byPkg := make(map[string][]*FuncNode)
	var pkgs []string
	for _, n := range g.Order {
		if _, ok := byPkg[n.Pkg.Path]; !ok {
			pkgs = append(pkgs, n.Pkg.Path)
		}
		byPkg[n.Pkg.Path] = append(byPkg[n.Pkg.Path], n)
	}
	sort.Strings(pkgs)
	for i, p := range pkgs {
		fmt.Fprintf(bw, "  subgraph cluster_%d {\n    label=%q;\n", i, p)
		for _, n := range byPkg[p] {
			label := strings.TrimPrefix(n.ID, p+".")
			fmt.Fprintf(bw, "    %q [label=%q];\n", n.ID, label)
		}
		fmt.Fprintln(bw, "  }")
	}
	for _, n := range g.Order {
		for _, e := range n.Out {
			var attrs []string
			if e.Go {
				attrs = append(attrs, `color=red`, `label="go"`)
			}
			if e.Defer {
				attrs = append(attrs, `style=dashed`, `label="defer"`)
			}
			if e.Dynamic {
				attrs = append(attrs, `style=dotted`)
			}
			if len(attrs) > 0 {
				fmt.Fprintf(bw, "  %q -> %q [%s];\n", e.Caller.ID, e.Callee.ID, strings.Join(attrs, ", "))
			} else {
				fmt.Fprintf(bw, "  %q -> %q;\n", e.Caller.ID, e.Callee.ID)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	_, err := io.WriteString(w, bw.String())
	return err
}
