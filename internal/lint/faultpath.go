package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// FaultPath keeps the fault-injection registry honest (DESIGN.md §8). Three
// whole-program cross-checks over every call into internal/failpoint:
//
//   - Registration integrity: every failpoint.Inject site must name a
//     failpoint that failpoint.Register declares, and each name is declared
//     exactly once — a typo'd site name would otherwise compile fine and
//     silently never fire (the same failure mode the annotation-key check
//     guards against).
//   - Reachability: every registered failpoint must have at least one
//     Inject site; a registered-but-uninjectable name is dead fault
//     coverage the crash matrix believes it is exercising.
//   - Propagation: the error returned by Inject must flow somewhere — an
//     Inject whose result is dropped (ExprStmt, `_ =`, or an err variable
//     never read afterwards, via the same reaching-definitions analysis
//     errflow uses) is a swallowed fault path: the schedule fires, the test
//     believes a fault was injected, and the code under test never sees it.
//
// Site names must be string constants so the cross-reference is decidable;
// a dynamic name is itself reported. _test.go files may Inject freely (they
// arm and probe sites) but their calls still count toward reachability.
var FaultPath = &Analyzer{
	Name: "faultpath",
	Doc:  "failpoint sites must be registered exactly once, reachable, and their injected errors must propagate",
	Run:  runFaultPath,
}

// An fpSite is one Register or Inject call, attributed to its unit so each
// finding is reported exactly once program-wide.
type fpSite struct {
	name string
	pos  token.Pos
	unit *Package
}

// An fpRegistry is the program-wide cross-reference of failpoint traffic.
type fpRegistry struct {
	regs    map[string][]fpSite // Register calls by constant site name
	injects map[string][]fpSite // Inject calls by constant site name
	dynamic []fpSite            // calls whose name argument is not constant
}

// failpointPkgPath is where the registry lives; calls into any other
// package named "failpoint" are ignored.
const failpointPkgPath = "qb5000/internal/failpoint"

// failpoints builds the registry lazily, once per Program.
func (prog *Program) failpoints() *fpRegistry {
	if prog.failpts == nil {
		reg := &fpRegistry{regs: map[string][]fpSite{}, injects: map[string][]fpSite{}}
		for _, u := range prog.Units {
			for _, file := range u.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || (sel.Sel.Name != "Register" && sel.Sel.Name != "Inject") {
						return true
					}
					if !isPkgIdent(u.Info, sel.X, failpointPkgPath) || len(call.Args) != 1 {
						return true
					}
					site := fpSite{pos: call.Pos(), unit: u}
					tv, ok := u.Info.Types[call.Args[0]]
					if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
						reg.dynamic = append(reg.dynamic, site)
						return true
					}
					site.name = constant.StringVal(tv.Value)
					if sel.Sel.Name == "Register" {
						reg.regs[site.name] = append(reg.regs[site.name], site)
					} else {
						reg.injects[site.name] = append(reg.injects[site.name], site)
					}
					return true
				})
			}
		}
		prog.failpts = reg
	}
	return prog.failpts
}

// sortedFpNames returns the keys of a site map in deterministic order.
func sortedFpNames(m map[string][]fpSite) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func runFaultPath(p *Pass) {
	if p.Prog == nil {
		return
	}
	reg := p.Prog.failpoints()
	inUnit := func(s fpSite) bool { return s.unit == p.Unit }

	for _, s := range reg.dynamic {
		if inUnit(s) {
			p.Reportf(s.pos, "failpoint site name must be a string constant so the registry cross-check can see it")
		}
	}
	for _, name := range sortedFpNames(reg.regs) {
		sites := reg.regs[name]
		for _, dup := range sites[1:] {
			if inUnit(dup) {
				p.Reportf(dup.pos, "failpoint %q is registered more than once (first at %s); Register panics on the duplicate at init", name, p.Fset.Position(sites[0].pos))
			}
		}
		if len(reg.injects[name]) == 0 && inUnit(sites[0]) {
			p.Reportf(sites[0].pos, "failpoint %q has no failpoint.Inject site; a registered-but-unreachable failpoint is dead fault coverage", name)
		}
	}
	for _, name := range sortedFpNames(reg.injects) {
		if len(reg.regs[name]) > 0 {
			continue
		}
		for _, s := range reg.injects[name] {
			if inUnit(s) {
				p.Reportf(s.pos, "failpoint %q is not declared in the registry; add `var _ = failpoint.Register(%q)` (a typo'd site silently never fires)", name, name)
			}
		}
	}

	// Swallowed-fault check: intraprocedural, per function and per closure.
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		parents := parentMap(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkInjectFlow(p, parents, fd.Recv, fd.Type, fd.Body)
			inspectFuncLits(fd.Body, func(fl *ast.FuncLit) {
				checkInjectFlow(p, parents, nil, fl.Type, fl.Body)
			})
		}
	}
}

// isInjectCall reports whether call is failpoint.Inject.
func isInjectCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Inject" && isPkgIdent(info, sel.X, failpointPkgPath)
}

// checkInjectFlow verifies that each Inject result in one function body
// reaches a real use: not discarded as a statement, not assigned to _, and
// — when bound to a variable — read at some point its definition reaches.
func checkInjectFlow(p *Pass, parents map[ast.Node]ast.Node, recv *ast.FieldList, ft *ast.FuncType, body *ast.BlockStmt) {
	var injects []*ast.CallExpr
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isInjectCall(p.Info, call) {
			injects = append(injects, call)
		}
		return true
	})
	if len(injects) == 0 {
		return
	}
	var reach *reaching
	for _, call := range injects {
		parent := parents[call]
		for {
			if pe, ok := parent.(*ast.ParenExpr); ok {
				parent = parents[pe]
				continue
			}
			break
		}
		switch pa := parent.(type) {
		case *ast.ExprStmt:
			p.Reportf(call.Pos(), "failpoint.Inject result discarded; the injected fault never propagates (swallowed fault path)")
		case *ast.AssignStmt:
			idx := -1
			for i, rhs := range pa.Rhs {
				if ast.Unparen(rhs) == call {
					idx = i
				}
			}
			if idx < 0 || idx >= len(pa.Lhs) {
				continue
			}
			id, ok := pa.Lhs[idx].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				p.Reportf(call.Pos(), "failpoint.Inject result assigned to _; the injected fault never propagates (swallowed fault path)")
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if reach == nil {
				reach = newReaching(p.Info, recv, ft, body)
			}
			if !injectDefUsed(p.Info, parents, reach, body, pa, obj) {
				p.Reportf(call.Pos(), "the error from failpoint.Inject is never read after this assignment; the injected fault never propagates (swallowed fault path)")
			}
		}
	}
}

// injectDefUsed reports whether some use of obj is reached by the
// definition made at def (the assignment binding the Inject result).
// Identifiers appearing as plain assignment targets are not uses.
func injectDefUsed(info *types.Info, parents map[ast.Node]ast.Node, reach *reaching, body *ast.BlockStmt, def *ast.AssignStmt, obj types.Object) bool {
	used := false
	inspectShallow(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.ObjectOf(id) != obj {
			return true
		}
		if isAssignTarget(parents, id) {
			return true
		}
		element := elementOf(reach, parents, id)
		if element == nil {
			return true
		}
		for _, d := range reach.defsAt(element, obj) {
			if d.site == def {
				used = true
				return false
			}
		}
		return true
	})
	return used
}

// isAssignTarget reports whether id is a bare left-hand side of an
// assignment (a write, not a read).
func isAssignTarget(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	as, ok := parents[id].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if lhs == id {
			return true
		}
	}
	return false
}

// elementOf climbs to the enclosing CFG element the reaching-defs solver
// keyed its facts on.
func elementOf(reach *reaching, parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for cur := n; cur != nil; cur = parents[cur] {
		if _, ok := reach.before[cur]; ok {
			return cur
		}
	}
	return nil
}
