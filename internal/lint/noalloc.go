package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// NoAlloc statically enforces the zero-alloc contract. A function annotated
//
//	// qb5000:noalloc
//
// in its doc comment must not allocate on any path the analyzer can see:
// make/new, composite literals that escape (slice and map literals, or any
// literal whose address is taken), append into backing the reaching-defs
// analysis cannot prove is caller-owned or pooled scratch, string↔[]byte
// (and integer→string) conversions, values boxed into interfaces, closures,
// goroutine spawns, fmt calls, map writes, and non-constant string
// concatenation are all flagged. Calls to other annotated functions are
// trusted (their own bodies are checked); calls to loaded, unannotated
// callees are checked against the Allocates summary bit, which propagates
// bottom-up over static call edges.
//
// Two classes of sites are exempt by design:
//
//   - Pooled/caller-owned scratch: append whose destination's reaching
//     definitions are all function parameters, reslices, self-appends, or
//     sync.Pool Get results — the backing is recycled, growth is amortized
//     away by the pool, and the hot path's steady state allocates nothing.
//   - Error paths: a site whose own type (or an enclosing expression's
//     type) implements error is constructing a failure return; error paths
//     are cold by contract, so &SyntaxError{...} literals and the fmt
//     formatting inside them stay quiet. Calls to unannotated Allocates
//     callees use enclosing expressions only, so hiding a hot-path helper
//     behind an error result does not silence it.
//
// The `m[string(b)]` map-read idiom (the compiler elides that conversion)
// is recognized and exempt. _test.go files are not checked.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated qb5000:noalloc must not allocate on the paths the analyzer can prove",
	Run:  runNoAlloc,
}

var noallocRe = regexp.MustCompile(`^//\s*qb5000:noalloc\s*$`)

// isNoAllocAnnotated reports whether fd's doc comment carries the
// annotation.
func isNoAllocAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if noallocRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// NoAllocIDs returns the symbolic IDs of every annotated function across
// the program, built lazily once; the analyzer trusts calls between
// annotated functions (each body is verified on its own).
func (prog *Program) noallocIDs() map[string]bool {
	if prog.noalloc == nil {
		prog.noalloc = make(map[string]bool)
		for _, u := range prog.Units {
			for _, file := range u.Files {
				for _, decl := range file.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && isNoAllocAnnotated(fd) {
						prog.noalloc[declID(u, fd)] = true
					}
				}
			}
		}
	}
	return prog.noalloc
}

func runNoAlloc(p *Pass) {
	if p.Prog == nil {
		return
	}
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		var parents map[ast.Node]ast.Node
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNoAllocAnnotated(fd) {
				continue
			}
			if parents == nil {
				parents = parentMap(file)
			}
			c := &noallocChecker{
				pass:    p,
				info:    p.Info,
				parents: parents,
				reach:   newReaching(p.Info, fd.Recv, fd.Type, fd.Body),
				trusted: p.Prog.noallocIDs(),
			}
			c.walk(fd)
		}
	}
}

// noallocChecker walks one annotated function body.
type noallocChecker struct {
	pass    *Pass
	info    *types.Info
	parents map[ast.Node]ast.Node
	reach   *reaching
	trusted map[string]bool
}

func (c *noallocChecker) walk(fd *ast.FuncDecl) {
	sig, _ := c.info.Defs[fd.Name].Type().(*types.Signature)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.report(x.Pos(), x, "function literal allocates its closure")
			return false
		case *ast.GoStmt:
			c.report(x.Pos(), x, "go statement allocates a new goroutine")
			return false
		case *ast.CallExpr:
			c.call(x)
		case *ast.CompositeLit:
			c.composite(x)
		case *ast.AssignStmt:
			c.assign(x)
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok && isMapIndex(c.info, ix) {
				c.report(x.Pos(), x, "map update may allocate (bucket growth is a heap operation)")
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				dst := c.info.TypeOf(x.Type)
				for _, v := range x.Values {
					c.boxed(dst, v, "var initialization")
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results() != nil && len(x.Results) == sig.Results().Len() {
				for i, res := range x.Results {
					c.boxed(sig.Results().At(i).Type(), res, "return")
				}
			}
		case *ast.BinaryExpr:
			c.concat(x)
		}
		return true
	})
}

func (c *noallocChecker) report(pos token.Pos, site ast.Node, format string, args ...any) {
	if c.exemptErrorPath(site, false) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// exemptErrorPath reports whether site sits on an error-construction path:
// its own static type, or an enclosing expression's, implements error.
// strict skips the site's own type — used for the callee-Allocates check so
// an allocating helper is not excused merely for returning an error.
func (c *noallocChecker) exemptErrorPath(site ast.Node, strict bool) bool {
	n := site
	if strict {
		n = c.parents[site]
	}
	for ; n != nil; n = c.parents[n] {
		e, ok := n.(ast.Expr)
		if !ok {
			if _, isStmt := n.(ast.Stmt); isStmt {
				return false
			}
			continue // KeyValueExpr parents etc. still climb
		}
		if implementsError(c.info.TypeOf(e)) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t, for a value of a type whose
// Error method has a pointer receiver — the value is still being assembled
// into an error) satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, errorIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr && !types.IsInterface(t) {
		return types.Implements(types.NewPointer(t), errorIface)
	}
	return false
}

func (c *noallocChecker) call(call *ast.CallExpr) {
	// Type conversion?
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call)
		return
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), call, "make allocates")
			case "new":
				c.report(call.Pos(), call, "new allocates")
			case "append":
				c.appendCall(call)
			}
			return
		}
	}
	// fmt anything: every fmt call allocates (boxing its operands at least).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isPkgIdent(c.info, sel.X, "fmt") {
		c.report(call.Pos(), call, "call to fmt.%s allocates", sel.Sel.Name)
		return
	}
	if tf := staticCallee(c.info, call); tf != nil {
		id := funcID(tf)
		if c.trusted[id] {
			// Annotated callee: its own body is verified.
		} else if cs := c.pass.Prog.Summaries[id]; cs != nil && cs.Allocates {
			if !c.exemptErrorPath(call, true) {
				c.pass.Reportf(call.Pos(), "call to %s allocates (callee summary; annotate it qb5000:noalloc or hoist the call off the hot path)", tf.Name())
			}
			return
		}
	}
	// Interface-typed parameters box their arguments.
	if sig, ok := c.info.TypeOf(call.Fun).(*types.Signature); ok && sig.Params() != nil {
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= np-1:
				if call.Ellipsis.IsValid() {
					continue // xs... passes the slice through
				}
				if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			case i < np:
				pt = sig.Params().At(i).Type()
			}
			c.boxed(pt, arg, "argument")
		}
	}
}

// appendCall checks append's destination: growth is amortized away only
// when every reaching definition of the destination is caller-owned or
// pooled — a parameter, a reslice, a self-append, or a sync.Pool Get.
func (c *noallocChecker) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		c.report(call.Pos(), call, "append into %s may grow a non-pooled backing array", types.ExprString(call.Args[0]))
		return
	}
	obj := c.info.ObjectOf(id)
	element := c.elementFor(call)
	defs := []defSite(nil)
	if obj != nil && element != nil {
		defs = c.reach.defsAt(element, obj)
	}
	if len(defs) == 0 {
		c.report(call.Pos(), call, "append into %s may grow a non-pooled backing array (no reaching definition proves pooled scratch)", id.Name)
		return
	}
	for _, d := range defs {
		if d.param || c.pooledDef(d, obj) {
			continue
		}
		c.report(call.Pos(), call, "append into %s may grow a non-pooled backing array (defined at a site that is not a parameter, reslice, self-append, or pool Get)", id.Name)
		return
	}
}

// pooledDef reports whether one reaching definition keeps the destination
// inside recycled backing: a reslice (buf = buf[:0]), a self-append
// (buf = append(buf, ...)), or a sync.Pool Get type assertion.
func (c *noallocChecker) pooledDef(d defSite, obj types.Object) bool {
	rhs := ast.Unparen(d.rhs)
	switch x := rhs.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
				if aid, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && c.info.ObjectOf(aid) == obj {
					return true
				}
			}
		}
	case *ast.TypeAssertExpr:
		if inner, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
				if t := c.info.TypeOf(sel.X); t != nil {
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					return t.String() == "sync.Pool"
				}
			}
		}
	}
	return false
}

// elementFor climbs to the enclosing CFG element node (the statement the
// reaching-defs solver keyed its facts on).
func (c *noallocChecker) elementFor(n ast.Node) ast.Node {
	for cur := n; cur != nil; cur = c.parents[cur] {
		if _, ok := c.reach.before[cur]; ok {
			return cur
		}
	}
	return nil
}

func (c *noallocChecker) conversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := c.info.TypeOf(call)
	src := c.info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if tv, ok := c.info.Types[call.Args[0]]; ok && tv.Value != nil {
		return // constant conversions fold at compile time
	}
	du, su := dst.Underlying(), src.Underlying()
	switch {
	case isStringType(du) && isByteOrRuneSlice(su):
		if c.mapReadKey(call) {
			return // m[string(b)] is elided by the compiler on a map read
		}
		c.report(call.Pos(), call, "%s→string conversion allocates a copy", types.ExprString(call.Args[0]))
	case isByteOrRuneSlice(du) && isStringType(su):
		c.report(call.Pos(), call, "string→%s conversion allocates a copy", dst)
	case isStringType(du) && isIntegerType(su):
		c.report(call.Pos(), call, "integer→string conversion allocates")
	}
}

// mapReadKey reports whether conv is used directly as the index of a map
// read (not a map write): the one string-conversion shape the compiler
// performs without allocating.
func (c *noallocChecker) mapReadKey(conv ast.Expr) bool {
	ix, ok := c.parents[conv].(*ast.IndexExpr)
	if !ok || ix.Index != conv || !isMapIndex(c.info, ix) {
		return false
	}
	switch pa := c.parents[ix].(type) {
	case *ast.AssignStmt:
		for _, lhs := range pa.Lhs {
			if lhs == ix {
				return false
			}
		}
	case *ast.IncDecStmt:
		return false
	case *ast.UnaryExpr:
		if pa.Op == token.AND {
			return false
		}
	}
	return true
}

func (c *noallocChecker) composite(lit *ast.CompositeLit) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	if parent, ok := c.parents[lit].(*ast.UnaryExpr); ok && parent.Op == token.AND {
		c.report(parent.Pos(), parent, "&%s literal escapes to the heap", t)
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), lit, "slice literal allocates its backing array")
	case *types.Map:
		c.report(lit.Pos(), lit, "map literal allocates")
	}
}

func (c *noallocChecker) assign(st *ast.AssignStmt) {
	for _, lhs := range st.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(c.info, ix) {
			c.report(st.Pos(), st, "map assignment may allocate (bucket growth is a heap operation)")
			break
		}
	}
	// Boxing through plain assignment into an interface-typed location.
	if st.Tok == token.ASSIGN && len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			c.boxed(c.info.TypeOf(lhs), st.Rhs[i], "assignment")
		}
	}
}

// boxed reports src being converted into the interface type dst. Pointer-
// shaped values (pointers, channels, maps, funcs) fit the interface word
// without allocating; constants and untyped nil never box at run time.
func (c *noallocChecker) boxed(dst types.Type, src ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	t := c.info.TypeOf(src)
	if t == nil || types.IsInterface(t.Underlying()) {
		return
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if tv, ok := c.info.Types[src]; ok && tv.Value != nil {
		return
	}
	if pointerShaped(t) {
		return
	}
	c.report(src.Pos(), src, "%s boxes %s into %s (interface boxing allocates)", what, t, dst)
}

func (c *noallocChecker) concat(b *ast.BinaryExpr) {
	if b.Op != token.ADD || !isStringType(c.info.TypeOf(b)) {
		return
	}
	if tv, ok := c.info.Types[ast.Expr(b)]; ok && tv.Value != nil {
		return // constant-folded
	}
	// Report only the outermost + of a chain.
	if pb, ok := c.parents[b].(*ast.BinaryExpr); ok && pb.Op == token.ADD && isStringType(c.info.TypeOf(pb)) {
		return
	}
	c.report(b.OpPos, b, "string concatenation allocates")
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isMapIndex(info *types.Info, ix *ast.IndexExpr) bool {
	t := info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// bodyAllocates is the summary-layer allocation scan: a deliberately cheap,
// local approximation of the checker above (no boxing, no reaching-defs, no
// error-path carve-out) that feeds the Allocates bit. Precision lives in
// the per-annotation body walk; this bit only has to catch unannotated
// helpers that plainly allocate. params exempts appends into caller-owned
// scratch.
func bodyAllocates(info *types.Info, body *ast.BlockStmt, params []types.Object) bool {
	paramSet := make(map[types.Object]bool, len(params))
	for _, p := range params {
		if p != nil {
			paramSet[p] = true
		}
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			found = true // the closure value itself is an allocation
			return false
		}
		return true
	})
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			found = true
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				if convAllocates(info, x) {
					found = true
				}
				return true
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "new":
						found = true
					case "append":
						if len(x.Args) > 0 {
							if aid, ok := ast.Unparen(x.Args[0]).(*ast.Ident); !ok || !paramSet[info.ObjectOf(aid)] {
								found = true
							}
						}
					}
					return true
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isPkgIdent(info, sel.X, "fmt") {
				found = true
			}
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice, *types.Map:
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
				found = true
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				if tv, ok := info.Types[ast.Expr(x)]; !ok || tv.Value == nil {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// convAllocates mirrors the checker's conversion taxonomy without the
// map-read exemption.
func convAllocates(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	dst, src := info.TypeOf(call), info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return false
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
		return false
	}
	du, su := dst.Underlying(), src.Underlying()
	return (isStringType(du) && (isByteOrRuneSlice(su) || isIntegerType(su))) ||
		(isByteOrRuneSlice(du) && isStringType(su))
}
