package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked compilation unit ready for analysis.
// In-package test files are checked together with the package's ordinary
// files; external (_test package) files form a unit of their own.
type Package struct {
	// Path is the import path the unit was checked under.
	Path string
	Fset *token.FileSet
	// Files holds the parsed sources, in deterministic (sorted filename)
	// order, with comments.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker diagnostics. The analyzers tolerate
	// partial type information, but the driver surfaces these so a broken
	// tree cannot silently pass with no findings.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir          string
	ImportPath   string
	Export       string
	ForTest      string
	Standard     bool
	DepOnly      bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// goList invokes `go list` in dir and decodes its JSON stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data produced by
// `go list -export`, keeping the loader free of non-stdlib dependencies.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// LoadPackages type-checks every package matching the patterns (resolved by
// `go list` relative to dir). Each package yields one unit covering its
// ordinary and in-package test files, plus a second unit for any external
// _test package. Units come back sorted by Path so runs are deterministic.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-e", "-deps", "-test", "-export", "-json"}, patterns...)
	all, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []listPkg
	for _, p := range all {
		if p.ForTest == "" && p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly || p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var units []*Package
	for _, t := range targets {
		var names []string
		names = append(names, t.GoFiles...)
		names = append(names, t.TestGoFiles...)
		if len(names) > 0 {
			u, err := checkUnit(fset, imp, t.ImportPath, t.Dir, names)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
		if len(t.XTestGoFiles) > 0 {
			u, err := checkUnit(fset, imp, t.ImportPath+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	return units, nil
}

// LoadFixture type-checks a standalone directory of Go files (an analyzer
// test fixture). Imports are resolved by asking `go list` for export data of
// exactly the packages the fixture files import, so fixtures may import the
// stdlib freely without being part of the module build. pkgPath becomes the
// unit's import path, letting tests exercise path-scoped policies.
func LoadFixture(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)

	// Pre-parse just to harvest the import set.
	harvest := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(harvest, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			importSet[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		args := append([]string{"-e", "-deps", "-export", "-json"}, paths...)
		all, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range all {
			if p.ForTest == "" && p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	return checkUnit(fset, exportImporter(fset, exports), pkgPath, dir, names)
}

// checkUnit parses and type-checks one set of files as a single package.
func checkUnit(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	names = append([]string(nil), names...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// The error callback makes Check continue past (and return) soft
	// failures; analyzers work from whatever type information survived.
	tpkg, _ := conf.Check(path, fset, files, info)
	return &Package{
		Path:       path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}
