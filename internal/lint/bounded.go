package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Bounded enforces the serving-tier resource contract (DESIGN.md §9): code
// reachable from a
//
//	// qb5000:serving
//
// entry point (HTTP handlers, ingest fan-in) runs under live traffic, so
// every queue it touches must have a constant bound and nothing on the
// request path may park the goroutine on an unbounded handoff. Four checks
// over the serving-reachable slice of the call graph:
//
//   - Channel capacity: `make(chan T, n)` needs a constant n — a capacity
//     computed from config or input is an unbounded queue in disguise.
//     (`make(chan T)` is fine: capacity 0 is a constant, and its sends are
//     caught by the next rule.)
//   - Sends: a channel send must be non-blocking — the comm clause of a
//     select with a `default`, or of a select that also waits on a
//     ctx.Done()/timer escape hatch. A bare send can park the request
//     goroutine forever on one slow consumer.
//   - Spawns: a `go` statement (or a call whose static callee's Bounded
//     summary bit was cleared) must sit inside a function annotated
//     `// qb5000:bounded <reason>` — the author's audit that the spawn is
//     gated by a semaphore/worker pool. The annotation covers the whole
//     body, closures included, and is vouched down the call tree.
//   - Queue growth: appending to (or writing a map entry of) a variable
//     captured from an enclosing function, with no len() check on that
//     variable anywhere in the closure body, accumulates per-request data
//     in a structure nothing bounds. A len() guard in the same closure
//     (flush-at-threshold batching) keeps it quiet.
//
// Reachability follows static call and defer edges but not Dynamic
// (interface may-call) edges — a may-edge proves nothing — and not `go`
// edges: a spawned worker is bounded by the spawn rule, while its own
// blocking receives/sends are its legitimate job. Test files are skipped.
var Bounded = &Analyzer{
	Name: "bounded",
	Doc:  "serving-path code must use constant channel bounds, non-blocking sends, and gated spawns",
	Run:  runBounded,
}

var (
	servingRe = regexp.MustCompile(`^//\s*qb5000:serving\s*$`)
	boundedRe = regexp.MustCompile(`^//\s*qb5000:bounded(\s|$)`)
)

// hasServingAnn / hasBoundedAnn report whether a doc comment carries the
// respective annotation.
func hasServingAnn(doc *ast.CommentGroup) bool { return docMatches(doc, servingRe) }
func hasBoundedAnn(doc *ast.CommentGroup) bool { return docMatches(doc, boundedRe) }

func docMatches(doc *ast.CommentGroup, re *regexp.Regexp) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if re.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// serving returns the set of node IDs reachable from qb5000:serving entry
// points, built lazily once per Program. Every function literal of a
// reachable declaration is itself reachable: literals run on the declaring
// function's goroutine unless spawned, and the flat $litN numbering places
// nested literals under the declaration too.
func (prog *Program) serving() map[string]bool {
	if prog.servingID != nil {
		return prog.servingID
	}
	set := make(map[string]bool)
	var queue []*FuncNode
	visit := func(n *FuncNode) {
		if n == nil || set[n.ID] {
			return
		}
		set[n.ID] = true
		queue = append(queue, n)
	}
	for _, n := range prog.Graph.Order {
		if n.Decl != nil && hasServingAnn(n.Decl.Doc) {
			visit(n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Decl != nil {
			prefix := n.ID + "$lit"
			for _, m := range prog.Graph.Order {
				if strings.HasPrefix(m.ID, prefix) {
					visit(m)
				}
			}
		}
		for _, e := range n.Out {
			if e.Dynamic || e.Go {
				continue
			}
			visit(e.Callee)
		}
	}
	prog.servingID = set
	return prog.servingID
}

func runBounded(p *Pass) {
	if p.Prog == nil {
		return
	}
	serving := p.Prog.serving()
	if len(serving) == 0 {
		return
	}
	for _, n := range p.Prog.Graph.Order {
		if n.Pkg != p.Unit || !serving[n.ID] || n.Body == nil {
			continue
		}
		if p.InTestFile(n.Body.Pos()) {
			continue
		}
		p.checkBoundedNode(n)
	}
}

// checkBoundedNode runs the four serving-path checks over one node's own
// body (literal bodies belong to the literal's node).
func (p *Pass) checkBoundedNode(n *FuncNode) {
	sums := p.Prog.Summaries
	// A `go f()` operand is already covered by the GoStmt finding; don't
	// re-report the same spawn as an unbounded call.
	goCalls := make(map[*ast.CallExpr]bool)
	inspectShallow(n.Body, func(node ast.Node) bool {
		if gs, ok := node.(*ast.GoStmt); ok {
			goCalls[gs.Call] = true
		}
		return true
	})
	inspectShallow(n.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			p.checkServingMake(x)
			if !n.boundedAnn && !goCalls[x] {
				if tf := staticCallee(p.Info, x); tf != nil {
					if cs := sums[funcID(tf)]; cs != nil && cs.Spawns && !cs.Bounded {
						p.Reportf(x.Pos(), "call to %s on a serving path spawns goroutines without a proven bound; gate the spawn and annotate the spawner qb5000:bounded", tf.Name())
					}
				}
			}
		case *ast.GoStmt:
			if !n.boundedAnn {
				p.Reportf(x.Pos(), "ungated goroutine spawn on a serving path; gate it behind a bounded pool/semaphore and annotate the spawner qb5000:bounded")
			}
		case *ast.SendStmt:
			if !p.nonBlockingSend(n, x) {
				p.Reportf(x.Pos(), "blocking channel send on a serving path; use select with default or a ctx/deadline escape")
			}
		}
		return true
	})
	if n.Lit != nil {
		p.checkCapturedGrowth(n)
	}
}

// isBuiltinCall reports whether call invokes the named predeclared builtin
// (not a shadowing declaration).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// checkServingMake flags make(chan T, n) with a non-constant capacity.
func (p *Pass) checkServingMake(call *ast.CallExpr) {
	if !isBuiltinCall(p.Info, call, "make") || len(call.Args) < 2 {
		return
	}
	if t := p.Info.TypeOf(call.Args[0]); t == nil {
		return
	} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return
	}
	if tv, ok := p.Info.Types[call.Args[1]]; !ok || tv.Value == nil {
		p.Reportf(call.Pos(), "channel on a serving path has a non-constant capacity; serving queues need constant bounds")
	}
}

// nonBlockingSend reports whether send is the comm statement of a select
// clause that cannot park forever: the select has a default, or another
// clause receives from a ctx.Done()/timer escape channel.
func (p *Pass) nonBlockingSend(n *FuncNode, send *ast.SendStmt) bool {
	ok := false
	inspectShallow(n.Body, func(node ast.Node) bool {
		sel, isSel := node.(*ast.SelectStmt)
		if !isSel {
			return true
		}
		mine := false
		escape := false
		for _, c := range sel.Body.List {
			cc, isCC := c.(*ast.CommClause)
			if !isCC {
				continue
			}
			if cc.Comm == nil {
				escape = true // default clause
				continue
			}
			if cc.Comm == send {
				mine = true
				continue
			}
			if isEscapeRecv(p.Info, cc.Comm) {
				escape = true
			}
		}
		if mine && escape {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// isEscapeRecv reports whether a select comm statement receives from an
// escape-hatch channel: ctx.Done(), time.After(...), or a timer/ticker's .C.
func isEscapeRecv(info *types.Info, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || ue.Op.String() != "<-" {
		return false
	}
	switch ch := ast.Unparen(ue.X).(type) {
	case *ast.CallExpr:
		if sel, ok := ch.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Done" {
				return true // ctx.Done() and alikes
			}
			if isPkgIdent(info, sel.X, "time") && (sel.Sel.Name == "After" || sel.Sel.Name == "Tick") {
				return true
			}
		}
	case *ast.SelectorExpr:
		if ch.Sel.Name == "C" {
			if t := info.TypeOf(ch.X); t != nil {
				s := t.String()
				if s == "*time.Timer" || s == "*time.Ticker" {
					return true
				}
			}
		}
	}
	return false
}

// checkCapturedGrowth flags growth of closure-captured slices and maps with
// no len() bound in the same closure body. Only locals captured from an
// enclosing function count: receiver fields and globals have their own
// owners (guardedby), and variables declared inside the literal are
// per-invocation.
func (p *Pass) checkCapturedGrowth(n *FuncNode) {
	guarded := make(map[types.Object]bool)
	inspectShallow(n.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isBuiltinCall(p.Info, call, "len") || len(call.Args) != 1 {
			return true
		}
		if id, isID := ast.Unparen(call.Args[0]).(*ast.Ident); isID {
			if obj := p.Info.ObjectOf(id); obj != nil {
				guarded[obj] = true
			}
		}
		return true
	})
	captured := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		v, ok := p.Info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || guarded[v] {
			return nil, false
		}
		// Captured = declared outside the literal but not at package scope.
		if v.Pos() >= n.Lit.Pos() && v.Pos() <= n.Lit.End() {
			return nil, false
		}
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return nil, false
		}
		return v, true
	}
	inspectShallow(n.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall {
				continue
			}
			if !isBuiltinCall(p.Info, call, "append") || len(call.Args) == 0 {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			obj, isCap := captured(as.Lhs[i])
			if !isCap {
				continue
			}
			if dst, dstCap := captured(call.Args[0]); dstCap && dst == obj {
				p.Reportf(as.Pos(), "append grows captured %s with no len() bound in this closure; an unbounded queue on a serving path", obj.Name())
			}
		}
		for _, lhs := range as.Lhs {
			ix, isIx := ast.Unparen(lhs).(*ast.IndexExpr)
			if !isIx {
				continue
			}
			obj, isCap := captured(ix.X)
			if !isCap {
				continue
			}
			if t := p.Info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(as.Pos(), "map write grows captured %s with no len() bound in this closure; an unbounded queue on a serving path", obj.Name())
				}
			}
		}
		return true
	})
}
