package lint

// GoLeak is the first summary-based analyzer: it inspects every `go`
// statement and asks the call graph whether the spawned goroutine can ever
// terminate. A goroutine whose function — directly or through static
// callees — sits in an unbounded loop with no exit path (no return, no
// break, no ctx.Done() escape that leaves the loop, no exiting call)
// outlives every request and accumulates for the life of the process,
// which is exactly the failure mode a continuously-retraining forecasting
// service cannot tolerate.
//
// It also reports:
//
//   - goroutines spawned inside an unbounded loop (`for {}` or a range
//     over a channel): one leak per message is a leak amplifier. Bounded
//     counted loops (the internal/parallel worker pool) are fine, and
//     fan-out should go through internal/parallel anyway;
//   - http.Server composite literals with neither ReadHeaderTimeout nor
//     ReadTimeout: without them every slow client parks a goroutine
//     forever, the same leak by another road.
//
// Test files are skipped: tests have deadlines and the runtime tears them
// down.

import (
	"go/ast"
	"go/types"
)

var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines must have a termination path; servers must bound client time",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkGoLeakFunc(fd.Body)
			inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
				p.checkGoLeakFunc(lit.Body)
			})
		}
		p.checkServerLiterals(file)
	}
}

// checkGoLeakFunc inspects one function body's own go statements. Literal
// bodies are handled by their own invocation (loop depth resets at the
// closure boundary: a closure spawned once does not inherit its definition
// site's loops).
func (p *Pass) checkGoLeakFunc(body *ast.BlockStmt) {
	var loopDepth int // enclosing unbounded loops
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil, *ast.FuncLit:
			return
		case *ast.ForStmt:
			unbounded := x.Cond == nil
			if unbounded {
				loopDepth++
			}
			walkChildren(x, walk)
			if unbounded {
				loopDepth--
			}
			return
		case *ast.RangeStmt:
			unbounded := p.isChannelRange(x)
			if unbounded {
				loopDepth++
			}
			walkChildren(x, walk)
			if unbounded {
				loopDepth--
			}
			return
		case *ast.GoStmt:
			if loopDepth > 0 {
				p.Reportf(x.Pos(), "goroutine spawned inside an unbounded loop; spawn a bounded worker pool (internal/parallel) and feed it instead")
			}
			p.checkSpawnTermination(x)
			walkChildren(x, walk)
			return
		}
		walkChildren(n, walk)
	}
	walk(body)
}

// checkSpawnTermination resolves the spawned function and consults its
// summary. Unresolvable spawn targets (function values, interface methods)
// are skipped: no summary, no verdict.
func (p *Pass) checkSpawnTermination(gs *ast.GoStmt) {
	if p.Prog == nil {
		return
	}
	var sum *FuncSummary
	switch f := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if node := p.Prog.Graph.NodeForLit(f); node != nil {
			sum = p.Prog.Summary(node.ID)
		}
	default:
		if tf := staticCallee(p.Info, gs.Call); tf != nil {
			sum = p.Prog.Summary(funcID(tf))
		}
	}
	if sum != nil && sum.MayBlockForever {
		p.Reportf(gs.Pos(), "goroutine has no termination path (unbounded loop with no return, break, or exiting call reachable); select on ctx.Done() or a close(done) channel")
	}
}

// isChannelRange reports whether the range statement iterates a channel —
// the one range form whose trip count is unknowable statically.
func (p *Pass) isChannelRange(rs *ast.RangeStmt) bool {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// checkServerLiterals reports http.Server composite literals that bound
// neither header nor body read time.
func (p *Pass) checkServerLiterals(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || !p.isHTTPServerType(cl) {
			return true
		}
		fields := make(map[string]bool, len(cl.Elts))
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					fields[id.Name] = true
				}
			}
		}
		if !fields["ReadHeaderTimeout"] && !fields["ReadTimeout"] {
			p.Reportf(cl.Pos(), "http.Server without ReadHeaderTimeout or ReadTimeout: every slow client parks a goroutine forever; set timeouts")
		}
		return true
	})
}

// isHTTPServerType reports whether the composite literal's type is
// net/http.Server.
func (p *Pass) isHTTPServerType(cl *ast.CompositeLit) bool {
	t := p.Info.TypeOf(cl)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t.String() == "net/http.Server"
}
