package lint

// HandleLife tracks close obligations through each function with the
// forward-flow solver and across functions with the call-graph summaries:
// opening a handle (os.Open/Create/OpenFile/CreateTemp, net.Listen/Dial*,
// or any loaded callee whose summary says ReturnsOpen) mints an obligation
// that must be discharged on every path that returns normally. Discharges:
//
//   - x.Close() anywhere in the statement's subtree — plain, deferred, or
//     inside a deferred closure;
//   - returning x: the obligation transfers to the caller (the function's
//     ReturnsOpen summary bit makes every caller re-run this same check on
//     the returned handle);
//   - passing x to a loaded callee that closes the matching parameter
//     (per its Closes summary), or to an unloaded callee outside the known
//     non-owner list (assumed ownership transfer — the quiet direction);
//   - storing x anywhere (field, slice, channel send): it escaped the
//     function's ownership and path-local reasoning ends;
//   - an error return (`return err`, `return fmt.Errorf(...)`) clears all
//     obligations on that path: the open-failure branch holds a nil handle
//     and cleanup belongs to whoever sees the error;
//   - an exiting call (os.Exit, log.Fatal*, panic, a NoReturn callee):
//     the process dies, the kernel closes.
//
// Known non-owners — wrappers and one-shot readers that never take
// ownership of the handle passed to them: fmt.Fprint*, io.Copy/ReadAll/
// WriteString, bufio.NewReader/NewWriter/NewScanner, json.NewEncoder/
// NewDecoder, csv.NewReader/NewWriter. This is exactly the dump-trace bug
// class from PR 3: `w := bufio.NewWriter(f)` does not discharge f.
//
// The remaining obligations at the function's (reachable) exit are
// reported at their open site. Test files are skipped.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var HandleLife = &Analyzer{
	Name: "handlelife",
	Doc:  "opened handles must be closed, returned, or handed to an owner on every path",
	Run:  runHandleLife,
}

func runHandleLife(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkHandleFunc(fd.Body)
			inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
				p.checkHandleFunc(lit.Body)
			})
		}
	}
}

// handleFact maps each obligated variable to its open site. Persistent:
// the transfer copies before mutating.
type handleFact map[types.Object]token.Pos

func (p *Pass) summaries() map[string]*FuncSummary {
	if p.Prog == nil {
		return nil
	}
	return p.Prog.Summaries
}

// checkHandleFunc runs the obligation flow over one body and reports what
// survives to the exit.
func (p *Pass) checkHandleFunc(body *ast.BlockStmt) {
	g := buildCFG(body)
	sums := p.summaries()
	transfer := func(f handleFact, n ast.Node) handleFact {
		return p.handleTransfer(f, n, sums)
	}
	exit, reachable := forwardFlow(g, handleFact{}, transfer, joinHandles, equalHandles, nil)
	if !reachable {
		return
	}
	type leak struct {
		pos  token.Pos
		name string
	}
	var leaks []leak
	for obj, pos := range exit {
		leaks = append(leaks, leak{pos, obj.Name()})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		p.Reportf(l.pos, "%s is opened here but not closed on every path; close it, return it, or hand it to an owner", l.name)
	}
}

// handleTransfer applies one element's effect on the obligation set.
func (p *Pass) handleTransfer(f handleFact, n ast.Node, sums map[string]*FuncSummary) handleFact {
	if len(f) > 0 {
		f = p.dischargeUses(f, n, sums)
	}
	switch st := n.(type) {
	case *ast.ReturnStmt:
		if p.isErrorReturn(st) {
			return handleFact{}
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isExitingCall(p.Info, call, sums) {
			return handleFact{}
		}
	case *ast.AssignStmt:
		// Mint obligations after use-analysis so `f, err := os.Open(p)`
		// doesn't immediately discharge itself.
		if len(st.Rhs) == 1 && len(st.Lhs) > 0 {
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && isOpenerCall(p.Info, call, sums) {
				if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if obj := p.Info.ObjectOf(id); obj != nil {
						nf := make(handleFact, len(f)+1)
						for k, v := range f {
							nf[k] = v
						}
						nf[obj] = call.Pos()
						return nf
					}
				}
			}
		}
	}
	return f
}

// dischargeUses scans one element's subtree for uses of obligated variables
// and removes the obligations the use discharges. The classification:
// Close and ownership transfers discharge; method calls on the handle and
// non-owner wrappers keep it; any unclassified appearance is an escape and
// discharges (path-local reasoning cannot follow a stored handle).
func (p *Pass) dischargeUses(f handleFact, n ast.Node, sums map[string]*FuncSummary) handleFact {
	obligated := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return nil
		}
		if _, ok := f[obj]; !ok {
			return nil
		}
		return obj
	}
	discharged := make(map[types.Object]bool)
	neutral := make(map[ast.Expr]bool) // occurrences already classified as safe
	classify := func(e ast.Expr) { neutral[e] = true }

	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if obj := obligated(sel.X); obj != nil {
					if sel.Sel.Name == "Close" && len(x.Args) == 0 {
						discharged[obj] = true
					}
					classify(sel.X) // receiver use: Close or Read/Write/Stat
				}
			}
			for j, arg := range x.Args {
				obj := obligated(arg)
				if obj == nil {
					continue
				}
				switch {
				case p.isNonOwnerCall(x):
					classify(ast.Unparen(arg)) // borrowed, not owned
				case p.loadedCalleeCloses(x, j, sums):
					discharged[obj] = true
					classify(ast.Unparen(arg))
				case p.isLoadedCallee(x, sums):
					classify(ast.Unparen(arg)) // summary says it doesn't close
				default:
					discharged[obj] = true // unknown external: assume transfer
					classify(ast.Unparen(arg))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if obj := obligated(res); obj != nil {
					discharged[obj] = true // caller inherits via ReturnsOpen
					classify(ast.Unparen(res))
				}
			}
		case *ast.BinaryExpr:
			// Comparisons (f != nil) are neutral.
			if obj := obligated(x.X); obj != nil {
				classify(ast.Unparen(x.X))
			}
			if obj := obligated(x.Y); obj != nil {
				classify(ast.Unparen(x.Y))
			}
		}
		return true
	})
	// Any remaining appearance of an obligated variable is an escape.
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || neutral[id] {
			return true
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, open := f[obj]; open && !discharged[obj] {
			// Re-check: the minting assignment's own LHS is not a use.
			if as, isAssign := n.(*ast.AssignStmt); isAssign {
				for _, lhs := range as.Lhs {
					if lhs == m {
						return true
					}
				}
			}
			discharged[obj] = true
		}
		return true
	})
	if len(discharged) == 0 {
		return f
	}
	nf := make(handleFact, len(f))
	for k, v := range f {
		if !discharged[k] {
			nf[k] = v
		}
	}
	return nf
}

// isErrorReturn reports whether the return carries a live error value (an
// identifier or call of type error, not the nil literal).
func (p *Pass) isErrorReturn(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		e := ast.Unparen(res)
		if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if t := p.Info.TypeOf(e); t != nil && t.String() == "error" {
			return true
		}
	}
	return false
}

// nonOwnerFuncs lists pkg.Func wrappers that borrow a handle argument
// without taking ownership of it.
var nonOwnerFuncs = map[string]bool{
	"io.Copy": true, "io.CopyN": true, "io.ReadAll": true, "io.WriteString": true, "io.ReadFull": true,
	"bufio.NewReader": true, "bufio.NewWriter": true, "bufio.NewScanner": true, "bufio.NewReadWriter": true,
	"json.NewEncoder": true, "json.NewDecoder": true,
	"csv.NewReader": true, "csv.NewWriter": true,
}

// isNonOwnerCall reports whether the call is a known borrower: fmt.Fprint*
// or one of the nonOwnerFuncs wrappers.
func (p *Pass) isNonOwnerCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	if path == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
		return true
	}
	// Index by package *path* tail + func so encoding/json and encoding/csv
	// resolve regardless of the local import name.
	short := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		short = path[i+1:]
	}
	return nonOwnerFuncs[short+"."+sel.Sel.Name]
}

// loadedCalleeCloses reports whether the call's static callee is loaded and
// closes its j-th parameter per its summary.
func (p *Pass) loadedCalleeCloses(call *ast.CallExpr, j int, sums map[string]*FuncSummary) bool {
	if sums == nil {
		return false
	}
	tf := staticCallee(p.Info, call)
	if tf == nil {
		return false
	}
	cs := sums[funcID(tf)]
	return cs != nil && cs.Closes[j]
}

// isLoadedCallee reports whether the call's static callee has a summary
// (i.e. its body was part of this analysis run).
func (p *Pass) isLoadedCallee(call *ast.CallExpr, sums map[string]*FuncSummary) bool {
	if sums == nil {
		return false
	}
	tf := staticCallee(p.Info, call)
	if tf == nil {
		return false
	}
	return sums[funcID(tf)] != nil
}

func joinHandles(a, b handleFact) handleFact {
	out := make(handleFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalHandles(a, b handleFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}
