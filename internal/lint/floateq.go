package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// FloatEq flags `==` and `!=` between floating-point expressions outside
// test files. Exact float comparison is almost always a rounding bug waiting
// to happen; comparisons belong in an epsilon helper. Two escapes exist:
// the body of an approved epsilon helper (a function whose name signals a
// tolerance, e.g. almostEqual / withinEps) is skipped, and sites where exact
// bit equality is the point (determinism checks, sort tie-breaks on already
// identical inputs) carry a //lint:ignore floateq directive with a reason.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag exact ==/!= between floats outside tests and epsilon helpers",
	Run:  runFloatEq,
}

// epsilonHelper matches function names that implement a tolerant comparison;
// their bodies may compare floats exactly (typically against 0 or to
// short-circuit identical values).
var epsilonHelper = regexp.MustCompile(`(?i)(approx|almost|within|eps|tolerance|close)`)

func runFloatEq(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if epsilonHelper.MatchString(fd.Name.Name) {
				continue
			}
			p.checkFloatEq(fd.Body)
		}
	}
}

func (p *Pass) checkFloatEq(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested helpers: a closure assigned to an epsilon-named variable is
		// rare enough to handle via suppression instead.
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
		if !isFloat(tx.Type) && !isFloat(ty.Type) {
			return true
		}
		// A constant comparison is folded at compile time.
		if tx.Value != nil && ty.Value != nil {
			return true
		}
		// x != x is the portable NaN test; leave it alone.
		if types.ExprString(be.X) == types.ExprString(be.Y) {
			return true
		}
		p.Reportf(be.OpPos, "exact floating-point %s comparison; use an epsilon helper, or suppress with a reason where bit-identity is intended", be.Op)
		return true
	})
}
