// Package ctxpropfix exercises the ctxprop analyzer: a function that was
// handed a context must forward it, not mint fresh ones — directly or one
// wrapper-call deep.
package ctxpropfix

import "context"

func doWork(ctx context.Context) error { return ctx.Err() }

// freshInside is the wrapper shape: takes no context, conjures one inside.
// Calling it is fine from the top level and a finding from ctx carriers.
func freshInside() {
	_ = doWork(context.Background())
}

// sever passes a fresh context despite having a live one.
func sever(ctx context.Context) {
	_ = doWork(context.Background()) // want "severs the cancellation chain"
}

// swallowed drops its context one call down the wrapper.
func swallowed(ctx context.Context) {
	freshInside() // want "drops the context"
}

// forward threads the context: fine.
func forward(ctx context.Context) {
	_ = doWork(ctx)
}

// derive forwards a derived context: fine.
func derive(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = doWork(c)
}

// nilGuard assigns a fresh context, it does not pass one: fine.
func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	_ = doWork(ctx)
}

// topLevel has no context to forward; minting here is the legitimate root.
func topLevel() {
	freshInside()
	_ = doWork(context.Background())
}

// closureSever captures ctx from its enclosing function and still severs.
func closureSever(ctx context.Context) func() {
	return func() {
		_ = doWork(context.Background()) // want "severs the cancellation chain"
	}
}
