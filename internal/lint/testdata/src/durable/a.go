// Package durablefix exercises the durable analyzer: a path annotated
// qb5000:durable must be written through the fsx atomic protocol, never by
// direct os calls, and must not be laundered through an unannotated helper
// that performs filesystem writes.
package durablefix

import (
	"io"
	"os"

	"qb5000/internal/fsx"
)

// cfg shows the struct-field annotation form.
type cfg struct {
	// qb5000:durable
	SnapshotPath string
	ScratchPath  string
}

// badSave is the pre-fsx save path from cmd/qb5000: create-truncate-write
// in place — a crash mid-write destroys the previous snapshot too.
func badSave(c cfg, body []byte) error {
	f, err := os.Create(c.SnapshotPath) // want "os.Create on a qb5000:durable path"
	if err != nil {
		return err
	}
	if _, werr := f.Write(body); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func badHelpers(c cfg, body []byte) {
	_ = os.WriteFile(c.SnapshotPath, body, 0o644) // want "os.WriteFile on a qb5000:durable path"
	_ = os.Rename(c.ScratchPath, c.SnapshotPath)  // want "os.Rename on a qb5000:durable path"
	_ = os.Remove(c.SnapshotPath)                 // want "os.Remove on a qb5000:durable path"
	_ = os.Truncate(c.SnapshotPath, 4096)         // want "os.Truncate on a qb5000:durable path"
}

func openFlags(c cfg, flags int) {
	w, _ := os.OpenFile(c.SnapshotPath, os.O_WRONLY|os.O_CREATE, 0o644) // want "os.OpenFile on a qb5000:durable path with write flags"
	_ = w
	u, _ := os.OpenFile(c.SnapshotPath, flags, 0o644) // want "os.OpenFile on a qb5000:durable path with write flags"
	_ = u
	r, _ := os.OpenFile(c.SnapshotPath, os.O_RDONLY, 0) // reading a durable file is not a hazard
	_ = r
}

func localAnnotated(dir string) {
	// qb5000:durable
	target := dir + "/catalog.snap"
	_ = os.WriteFile(target, nil, 0o644) // want "os.WriteFile on a qb5000:durable path"
	scratch := dir + "/scratch.tmp"
	_ = os.WriteFile(scratch, nil, 0o644) // unannotated scratch may be torn
}

// saveVia carries the contract forward: the annotated parameter transfers
// the obligation to fsx.
//
// qb5000:durable path
func saveVia(path string, body []byte) error {
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	})
}

// rawDump performs filesystem writes with no durable contract on its
// parameter — handing it a durable path launders the write.
func rawDump(path string, body []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(body)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func callers(c cfg, body []byte) {
	_ = saveVia(c.SnapshotPath, body) // the annotated callee keeps the contract
	_ = rawDump(c.SnapshotPath, body) // want "performs filesystem writes without a qb5000:durable parameter contract"
	_ = rawDump(c.ScratchPath, body)  // a non-durable scratch path may go anywhere
}
