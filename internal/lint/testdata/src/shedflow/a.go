// Package shedflowfix exercises the shedflow analyzer: admission errors
// must propagate, permits must be released on every path, and handlers that
// gate requests must map ErrOverload to 429.
package shedflowfix

import (
	"context"
	"errors"
	"net/http"

	"qb5000/internal/admission"
)

var gate = admission.New(admission.Options{MaxInflight: 4})

// goodHandler is the contract in full: propagate, map to 429, release.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	if err := gate.TryAcquire(1); err != nil {
		http.Error(w, "overloaded", http.StatusTooManyRequests)
		return
	}
	defer gate.Release(1)
	w.WriteHeader(http.StatusOK)
}

// helperHandler maps the overload in a helper; the whole static call tree
// counts.
func helperHandler(w http.ResponseWriter, r *http.Request) {
	if err := gate.TryAcquire(1); err != nil {
		shed(w)
		return
	}
	defer gate.Release(1)
	w.WriteHeader(http.StatusOK)
}

func shed(w http.ResponseWriter) {
	http.Error(w, "overloaded", http.StatusTooManyRequests)
}

func noMapHandler(w http.ResponseWriter, r *http.Request) { // want "never maps ErrOverload to 429"
	if err := gate.TryAcquire(1); err != nil {
		http.Error(w, "oops", http.StatusInternalServerError)
		return
	}
	defer gate.Release(1)
	w.WriteHeader(http.StatusOK)
}

func discard(g *admission.Gate) {
	g.TryAcquire(1) // want "admission TryAcquire result discarded"
	g.Release(1)
}

func blank(g *admission.Gate) {
	_ = g.TryAcquire(1) // want "admission TryAcquire result assigned to _"
	g.Release(1)
}

func deadStore(ctx context.Context, g *admission.Gate) error {
	err := g.Acquire(ctx, 1) // want "the error from admission Acquire is never read after this assignment"
	defer g.Release(1)
	err = ping(ctx)
	return err
}

func ping(ctx context.Context) error { return ctx.Err() }

func leak(g *admission.Gate, work func() error) error {
	if err := g.TryAcquire(1); err != nil { // want "admission permit on g acquired here is not released on every path"
		return err
	}
	return work()
}

func leakOnPath(g *admission.Gate, fail bool) error {
	if err := g.TryAcquire(1); err != nil { // want "admission permit on g acquired here is not released on every path"
		return err
	}
	if fail {
		return errors.New("boom") // early return skips the Release below
	}
	g.Release(1)
	return nil
}

// released discharges through a deferred closure; quiet.
func released(g *admission.Gate, work func() error) error {
	if err := g.TryAcquire(1); err != nil {
		return err
	}
	defer func() { g.Release(1) }()
	return work()
}
