// Package callgraphfix pins the shape of the interprocedural call graph:
// static edges, interface may-call resolution, go/defer tags, literal
// nodes, SCC formation, and the function summaries computed over them.
package callgraphfix

import (
	"context"
	"os"
)

type Runner interface{ Run() int }

// TwoFace needs both methods; only B's receiver covers it.
type TwoFace interface {
	Run() int
	Close() error
}

type A struct{}

func (A) Run() int { return 1 }

type B struct{}

func (*B) Run() int { return 2 }

func (*B) Close() error { return nil }

// dispatch may call any loaded Run with a covering receiver: A and B.
func dispatch(r Runner) int { return r.Run() }

// dispatch2 requires the full TwoFace method set: only B qualifies.
func dispatch2(t TwoFace) int { return t.Run() }

// mutual1 and mutual2 form a two-node SCC.
func mutual1(n int) int {
	if n <= 0 {
		return 0
	}
	return mutual2(n - 1)
}

func mutual2(n int) int { return mutual1(n) }

func cleanup() {}

func worker(ctx context.Context) { <-ctx.Done() }

// spawnAndDefer contributes a go-tagged and a defer-tagged edge.
func spawnAndDefer(ctx context.Context) {
	defer cleanup()
	go worker(ctx)
}

// callsLit invokes a function literal directly.
func callsLit() int {
	return func() int { return 3 }()
}

// spin blocks forever: the MayBlockForever summary bit.
func spin() {
	for {
	}
}

// spinsViaCallee inherits the bit transitively.
func spinsViaCallee() { spin() }

// closesArg closes its parameter: the Closes summary.
func closesArg(f *os.File) error { return f.Close() }

// closesTransitively forwards to the closer.
func closesTransitively(f *os.File) { _ = closesArg(f) }

// returnsOpen hands an open handle to its caller.
func returnsOpen(path string) (*os.File, error) {
	return os.Open(path)
}

// die never returns.
func die() {
	os.Exit(3)
}
