package maporder

import "sort"

func appendNoSort(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "appends to out"
		out = append(out, v)
	}
	return out
}

func appendThenSort(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func sortInOuterBlock(m map[int]string, cond bool) []string {
	var out []string
	if cond {
		for _, v := range m {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func viaSortHelper(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) { sort.Strings(xs) }

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates floats into sum"
		sum += v
	}
	return sum
}

func intAccum(m map[int]int) int {
	sum := 0
	for _, v := range m { // integer sums are order-independent
		sum += v
	}
	return sum
}

func centroid(m map[int][]float64, dim int) []float64 {
	center := make([]float64, dim)
	for _, feat := range m { // want "accumulates floats into center"
		for i, v := range feat {
			center[i] += v
		}
	}
	return center
}

func localOnly(m map[int][]float64) float64 {
	best := -1.0
	for _, feat := range m {
		var s float64 // declared inside the loop: does not outlive an iteration
		for _, v := range feat {
			s += v
		}
		if s > best {
			best = s
		}
	}
	return best
}

func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs { // slice iteration is ordered
		sum += v
	}
	return sum
}

func perKeyAccum(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m { // per-key accumulation is order-independent
		for _, v := range vs {
			out[k] += v
		}
	}
	return out
}

func cloneMap(m map[int][]string) map[int][]string {
	out := make(map[int][]string, len(m))
	for k, v := range m { // copying into a fresh slice records no order
		out[k] = append([]string(nil), v...)
	}
	return out
}

type pool struct{}

func (pool) ForEach(n int, fn func(int)) {}

var parallel pool

func fanout(m map[int]int) {
	for k := range m { // want "dispatches work through internal/parallel"
		parallel.ForEach(k, func(int) {})
	}
}
