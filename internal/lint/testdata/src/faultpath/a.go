// Package faultpathfix exercises the faultpath analyzer: sites must be
// registered exactly once, reachable from an Inject seam, named by string
// constants, and their injected errors must propagate.
package faultpathfix

import (
	"fmt"

	"qb5000/internal/failpoint"
)

const (
	siteWrite  = "fix.write"
	siteOrphan = "fix.orphan"
)

var (
	_ = failpoint.Register(siteWrite)
	_ = failpoint.Register(siteOrphan) // want "has no failpoint.Inject site"
	_ = failpoint.Register("fix.dup")
	_ = failpoint.Register("fix.dup") // want "registered more than once"
)

func dynamicRegister(name string) string {
	return failpoint.Register(name) // want "must be a string constant"
}

func dynamicInject(name string) error {
	return failpoint.Inject(name) // want "must be a string constant"
}

func typo() error {
	return failpoint.Inject("fix.wrte") // want "not declared in the registry"
}

// propagated is the canonical seam shape: the fault flows to the caller.
func propagated() error {
	if err := failpoint.Inject(siteWrite); err != nil {
		return fmt.Errorf("write seam: %w", err)
	}
	return failpoint.Inject("fix.dup")
}

func swallowedStmt() {
	failpoint.Inject(siteWrite) // want "result discarded"
}

func swallowedBlank() {
	_ = failpoint.Inject(siteWrite) // want "assigned to _"
}

// swallowedDead binds the fault but overwrites it before any read: the
// only definition reaching the return is the nil one.
func swallowedDead() error {
	err := failpoint.Inject(siteWrite) // want "never read after this assignment"
	err = nil
	return err
}

func boundAndChecked() error {
	err := failpoint.Inject(siteWrite)
	if err != nil {
		return err
	}
	return nil
}

func inClosure() func() {
	return func() {
		failpoint.Inject(siteWrite) // want "result discarded"
	}
}
