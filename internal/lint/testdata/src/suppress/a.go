package suppress

import "math/rand"

func suppressedAbove() int {
	//lint:ignore seededrand fixture exercises the leading-directive path
	return rand.Intn(10)
}

func suppressedTrailing() int {
	return rand.Intn(10) //lint:ignore seededrand trailing directives apply to their own line
}

func suppressedList() int {
	//lint:ignore seededrand,floateq one directive may cover several analyzers
	return rand.Intn(10)
}

func wrongAnalyzer() int {
	//lint:ignore noclock this names a different analyzer, so seededrand still fires
	return rand.Intn(10) // want "global rand\.Intn"
}

func unsuppressed() int {
	return rand.Intn(10) // want "global rand\.Intn"
}
