// Package handlelifefix exercises the handlelife analyzer: every opened
// handle must be closed, returned, or handed to an owner on every path that
// returns normally.
package handlelifefix

import (
	"bufio"
	"fmt"
	"net"
	"os"
)

// leaky forgets the handle on the happy path.
func leaky(path string) (int64, error) {
	f, err := os.Open(path) // want "not closed on every path"
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// closed defers the close: fine.
func closed(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// closedInDeferredClosure is the dump-trace fix shape: the close (and its
// error check) live in a deferred closure.
func closedInDeferredClosure(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "close:", cerr)
		}
	}()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "hello")
	return w.Flush()
}

// bufferedLeak hands the file to a borrower and forgets it: bufio.NewWriter
// does not take ownership, so the obligation survives to the nil return.
func bufferedLeak(path string) error {
	f, err := os.Create(path) // want "not closed on every path"
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "data")
	_ = w.Flush()
	return nil
}

// consume takes ownership and closes: its Closes summary discharges callers.
func consume(f *os.File) {
	defer f.Close()
}

// handedOff transfers ownership to the loaded closer: fine.
func handedOff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

// size borrows: the summary proves it does not close its argument.
func size(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// inspected passes the handle to a loaded non-closer and drops it.
func inspected(path string) error {
	f, err := os.Open(path) // want "not closed on every path"
	if err != nil {
		return err
	}
	size(f)
	return nil
}

// opener returns the handle: the caller inherits the obligation (the
// function's ReturnsOpen summary re-runs this check at every call site).
func opener(path string) (*os.File, error) {
	return os.Open(path)
}

// callerLeaks inherits the obligation from opener and drops it.
func callerLeaks(path string) {
	f, _ := opener(path) // want "not closed on every path"
	size(f)
}

// callerCloses inherits and discharges: fine.
func callerCloses(path string) error {
	f, err := opener(path)
	if err != nil {
		return err
	}
	defer f.Close()
	size(f)
	return nil
}

type holder struct{ f *os.File }

// stored escapes into a struct: ownership moved, path-local reasoning ends.
func stored(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// listenerLeak drops a net.Listener on the non-error path.
func listenerLeak() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0") // want "not closed on every path"
	if err != nil {
		return err
	}
	_ = ln.Addr()
	return nil
}

// exitsProcess: os.Exit on the failure path is not a leak, and the happy
// path returns the handle to the caller.
func exitsProcess(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		os.Exit(1)
	}
	return f
}
