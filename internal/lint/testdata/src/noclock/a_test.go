package noclock

import "time"

// Test files may read the wall clock freely.
func helperForTests() time.Time {
	return time.Now()
}
