package noclock

import "time"

func stamp() time.Time {
	return time.Now() // want "time\.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time\.Since reads the wall clock"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time\.Until reads the wall clock"
}

func injected(at time.Time) time.Time {
	return at.Add(time.Minute) // deriving from an injected timestamp is the contract
}

func clockFunc(now func() time.Time) time.Time {
	return now()
}
