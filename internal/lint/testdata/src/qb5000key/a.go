// Package qb5000key exercises annotation-key hygiene: a typo'd qb5000: key
// must be reported instead of silently voiding the contract it meant to
// declare.
package qb5000key

import "sync"

type counter struct {
	mu sync.Mutex
	// qb5000:guardedby mu
	n int
}

// qb5000:noalock the fast path must stay allocation-free // want "unknown qb5000: annotation key"
func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
