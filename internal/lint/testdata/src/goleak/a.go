// Package goleakfix exercises the goleak analyzer: goroutines must have a
// termination path, spawns inside unbounded loops are leak amplifiers, and
// http.Server literals must bound client read time.
package goleakfix

import (
	"context"
	"net/http"
)

// blockForever loops with no exit path at all.
func blockForever() {
	for {
	}
}

// viaCallee reaches the blocker one static call deep.
func viaCallee() { blockForever() }

func spawnDirect() {
	go blockForever() // want "no termination path"
}

func spawnTransitive() {
	go viaCallee() // want "no termination path"
}

func spawnLit() {
	go func() { // want "no termination path"
		for {
		}
	}()
}

// spawnDoneBreak looks cancellable, but the break binds the select, not the
// loop: the goroutine spins forever.
func spawnDoneBreak(ctx context.Context) {
	go func() { // want "no termination path"
		for {
			select {
			case <-ctx.Done():
				break
			default:
			}
		}
	}()
}

// spawnCancellable returns out of the loop on ctx.Done: fine.
func spawnCancellable(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticks:
			}
		}
	}()
}

// spawnDrain terminates when the channel is closed: fine.
func spawnDrain(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

func handle() {}

// spawnPerMessage leaks one goroutine per message, forever.
func spawnPerMessage(jobs chan int) {
	for range jobs {
		go handle() // want "unbounded loop"
	}
}

// spawnForever spawns in a bare infinite loop.
func spawnForever() {
	for {
		go handle() // want "unbounded loop"
	}
}

// spawnPerItem is bounded by the slice length: fine.
func spawnPerItem(items []int) {
	for range items {
		go handle()
	}
}

// spawnBoundedPool is the counted worker-pool shape: fine.
func spawnBoundedPool(n int) {
	for g := 0; g < n; g++ {
		go handle()
	}
}

func badServer() *http.Server {
	return &http.Server{Addr: ":0"} // want "http.Server without ReadHeaderTimeout"
}

func goodServer() *http.Server {
	return &http.Server{Addr: ":0", ReadHeaderTimeout: 1}
}
