package errflow

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

func doWork() error { return nil }

func open2() (int, error) { return 0, nil }

func discarded() {
	doWork() // want "call to doWork discards its error"
}

func handled() error {
	if err := doWork(); err != nil {
		return err
	}
	return nil
}

func blanked() {
	_ = doWork() // want "blanks the error from doWork"
}

func partialBlank() int {
	v, _ := open2() // keeping the value shows intent: no report
	return v
}

func deferCreate(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()     // want "deferred call to f.Close discards its error"
	fmt.Fprintf(f, "x") // want "call to fmt.Fprintf discards its error"
	return nil
}

func deferOpen(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // read-only handle: Close cannot lose buffered writes
	return nil
}

func mixedProvenance(path string, w bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if w {
		f, err = os.Create(path)
		if err != nil {
			return err
		}
	}
	defer f.Close() // want "deferred call to f.Close discards its error"
	return nil
}

func printers(buf *bytes.Buffer) {
	fmt.Println("stdout printers are exempt")
	fmt.Fprintf(buf, "in-memory writers are exempt")
	buf.WriteString("buffer methods are exempt")
}

func explicitCloseRead(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Close() // read-only handle: no report even without defer
	return nil
}

func explicitCloseWrite(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close() // want "call to f.Close discards its error"
	return nil
}

func stderrDiag() {
	fmt.Fprintln(os.Stderr, "diagnostics to std streams are exempt")
}

func valueBuilder() string {
	var sb strings.Builder
	sb.WriteString("value-typed builders are exempt too")
	return sb.String()
}

func hashWrite(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s)) // hash.Hash.Write is documented to never fail: exempt
	return h.Sum32()
}

func goroutine() {
	go doWork() // want "goroutine call to doWork discards its error"
}

func closureChecked() {
	f := func() {
		doWork() // want "call to doWork discards its error"
	}
	f()
}
