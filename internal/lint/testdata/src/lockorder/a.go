// Package lockorder exercises the interprocedural deadlock analyzer: order
// cycles (direct and via callee summaries), self-deadlocks, blocking points
// under a held lock, and the qb5000:lockorder / qb5000:locked annotations.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }
type RW struct{ mu sync.RWMutex }
type S struct{ mu sync.Mutex }

type G struct {
	mu sync.Mutex
	n  int
}

type H struct{ mu sync.Mutex }

// abOrder nests B under A: the A→B half of an observed cycle.
func abOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle: acquiring lockorder.B.mu while lockorder.A.mu is held"
	b.mu.Unlock()
	a.mu.Unlock()
}

// baOrder nests A under B: the edge that closes the cycle.
func baOrder(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock-order cycle: acquiring lockorder.A.mu while lockorder.B.mu is held"
	a.mu.Unlock()
	b.mu.Unlock()
}

// deferIdiom re-witnesses the A→B edge (deduped: the finding stays pinned to
// abOrder) and exercises the Lock-then-defer-Unlock transfer.
func deferIdiom(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func relock(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "Lock of a.mu while already holding it"
	a.mu.Unlock()
}

func upgrade(r *RW) {
	r.mu.RLock()
	r.mu.Lock() // want "RLock→Lock upgrade on r.mu"
	r.mu.Unlock()
}

func readUnderWrite(r *RW) {
	r.mu.Lock()
	r.mu.RLock() // want "RLock on r.mu while already write-holding it"
	r.mu.RUnlock()
}

func sendUnderLock(a *A, ch chan int) {
	a.mu.Lock()
	ch <- 1 // want "channel send while holding a.mu"
	a.mu.Unlock()
}

func recvUnderLock(a *A, ch chan int) {
	a.mu.Lock()
	<-ch // want "channel receive while holding a.mu"
	a.mu.Unlock()
}

// recvNonBlocking is fine: a select with a default clause never blocks.
func recvNonBlocking(a *A, ch chan int) {
	a.mu.Lock()
	select {
	case <-ch:
	default:
	}
	a.mu.Unlock()
}

func waitUnderLock(a *A, wg *sync.WaitGroup) {
	a.mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait while holding a.mu"
	a.mu.Unlock()
}

// spin never returns; holding a lock across a call to it is reported via the
// MayBlockForever summary bit.
func spin() {
	for {
	}
}

func blockUnderLock(a *A) {
	a.mu.Lock()
	spin() // want "call to spin"
	a.mu.Unlock()
}

// lockD acquires D directly; callers observe it through the Acquires
// summary, so the C→D edge below is a via-call edge.
func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func nestDUnderC(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want "lock-order cycle: acquiring lockorder.D.mu while lockorder.C.mu is held"
	c.mu.Unlock()
}

func nestCUnderD(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want "lock-order cycle: acquiring lockorder.C.mu while lockorder.D.mu is held"
	c.mu.Unlock()
	d.mu.Unlock()
}

// The declared global order between E and F; respectOrder follows it, so
// only the violation in violateOrder is reported.
//
// qb5000:lockorder lockorder.E.mu < lockorder.F.mu
func respectOrder(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func violateOrder(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want "contradicts the declared order lockorder.E.mu < lockorder.F.mu"
	e.mu.Unlock()
	f.mu.Unlock()
}

// qb5000:lockorder lockorder.E.mu before lockorder.F.mu // want "malformed qb5000:lockorder annotation"

// bump runs with g.mu already held by contract (qb5000:locked seeds the
// entry fact), so re-locking inside is a self-deadlock.
//
// qb5000:locked mu
func (g *G) bump() {
	g.mu.Lock() // want "Lock of g.mu while already holding it"
	g.n++
	g.mu.Unlock()
}

// lock is a lock()-helper: its HeldAtExit summary threads lockorder.H.mu
// into callers' held sets.
func (h *H) lock() { h.mu.Lock() }

func helperThreads(h *H, ch chan int) {
	h.lock()
	ch <- 1 // want "channel send while holding h.mu"
	h.mu.Unlock()
}

func reenterViaHelper(h *H) {
	h.lock()
	h.lock() // want "possible self-deadlock if it is the same lock"
	h.mu.Unlock()
}

// twoInstances interleaves two locks of one class with no order between the
// instances.
func twoInstances(s1, s2 *S) {
	s1.mu.Lock()
	s2.mu.Lock() // want "no global order between instances"
	s2.mu.Unlock()
	s1.mu.Unlock()
}

// sequential holds at most one lock at a time: no edges, no findings.
func sequential(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// branchy releases on both paths; the join keeps the fact consistent.
func branchy(a *A, cond bool) {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// spawnOpaque runs the send on another goroutine: the go operand does not
// execute at its textual position, so nothing blocks under the lock here.
func spawnOpaque(a *A, ch chan int) {
	a.mu.Lock()
	go send(ch)
	a.mu.Unlock()
}

func send(ch chan int) { ch <- 1 }
