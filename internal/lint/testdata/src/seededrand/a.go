package seededrand

import "math/rand"

func global() int {
	return rand.Intn(10) // want "global rand\.Intn draws from process-wide state"
}

func globalFloat() float64 {
	return rand.Float64() // want "global rand\.Float64"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand\.Shuffle"
}

func reseed() {
	rand.Seed(42) // want "global rand\.Seed"
}

func asValue() func(int) int {
	return rand.Intn // want "global rand\.Intn"
}

func seeded() int {
	rng := rand.New(rand.NewSource(1)) // constructors build the sanctioned local generator
	return rng.Intn(10)
}

func zipf(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.2, 1, 100)
	return z.Uint64()
}
