package seededrand

import randv2 "math/rand/v2"

func globalV2() int {
	return randv2.IntN(10) // want "global rand/v2\.IntN"
}

func seededV2() uint64 {
	src := randv2.NewPCG(1, 2)
	return src.Uint64()
}
