package ctxfirst

import "context"

func Good(ctx context.Context, n int) {}

func Bad(n int, ctx context.Context) {} // want "context\.Context must be the first parameter of exported Bad"

func TrailingCtx(a, b string, ctx context.Context, n int) { // want "context\.Context must be the first parameter of exported TrailingCtx"
}

func unexported(n int, ctx context.Context) {} // convention is only enforced on the exported surface

type Runner struct{}

func (r *Runner) Run(n int, ctx context.Context) {} // want "context\.Context must be the first parameter of exported Run"

func Spawner(ctx context.Context, n int) {
	go worker(ctx) // threaded: fine

	go func() { // want "goroutine does not thread the enclosing context\.Context"
		_ = n + 1
	}()

	derived, cancel := context.WithCancel(ctx)
	defer cancel()
	go worker(derived) // a derived context counts as threading

	go func(c context.Context) { // passing ctx as an argument counts
		<-c.Done()
	}(ctx)
}

func worker(ctx context.Context) {}

func noCtxInScope() {
	go func() {}() // nothing to thread: allowed
}
