package sliceshare

import "sync"

// pool mirrors internal/parallel's surface so the fixture stays import-free;
// the analyzer matches the receiver name "parallel" syntactically, exactly as
// the maporder fixture does.
type pool struct{}

func (pool) ForEach(n int, fn func(i int) error) error { return nil }
func (pool) Map(n int, fn func(i int) error) error     { return nil }

var parallel pool

func disjointSlots(in []int) []int {
	out := make([]int, len(in))
	parallel.ForEach(len(in), func(i int) error {
		out[i] = in[i] * 2
		return nil
	})
	return out
}

func derivedIndex(in []int) []int {
	out := make([]int, 2*len(in))
	parallel.Map(len(in), func(i int) error {
		j := i * 2
		out[j] = in[i]
		out[j+1] = in[i]
		return nil
	})
	return out
}

func collidingIndex(in []int, k int) []int {
	out := make([]int, len(in))
	parallel.ForEach(len(in), func(i int) error {
		out[k] = in[i] // want "not derived from the worker index"
		return nil
	})
	return out
}

func appendRace(in []int) []int {
	var out []int
	parallel.ForEach(len(in), func(i int) error {
		out = append(out, in[i]) // want "reassigned inside a parallel worker"
		return nil
	})
	return out
}

func mapWrite(in []int) map[int]int {
	m := make(map[int]int)
	parallel.ForEach(len(in), func(i int) error {
		m[i] = in[i] // want "map m is written inside a parallel worker"
		return nil
	})
	return m
}

func lockedWrite(in []int, k int) []int {
	out := make([]int, len(in))
	var mu sync.Mutex
	parallel.ForEach(len(in), func(i int) error {
		mu.Lock()
		out[k] = in[i] // serialized under mu: no report
		mu.Unlock()
		return nil
	})
	return out
}

func localScratch(in []int) {
	parallel.ForEach(len(in), func(i int) error {
		tmp := make([]int, 4)
		tmp[0] = in[i] // worker-local: no report
		_ = tmp
		return nil
	})
}

func readOnlyCapture(in, out []int) int {
	total := 0
	parallel.ForEach(len(in), func(i int) error {
		_ = in[i] // reads are always fine
		return nil
	})
	return total
}

func deleteRace(m map[int]int, keys []int) {
	parallel.ForEach(len(keys), func(i int) error {
		delete(m, keys[i]) // want "delete on captured map"
		return nil
	})
}

func copyRace(dst, src []int) {
	parallel.ForEach(1, func(i int) error {
		copy(dst, src) // want "copy into captured slice dst"
		return nil
	})
}

func incCollide(out []int, k int) {
	parallel.ForEach(len(out), func(i int) error {
		out[k]++ // want "not derived from the worker index"
		return nil
	})
}

func loopIndexNotDisjoint(out []int) {
	parallel.ForEach(len(out), func(i int) error {
		for j := 0; j < 3; j++ {
			out[j] = i // want "not derived from the worker index"
		}
		return nil
	})
}
