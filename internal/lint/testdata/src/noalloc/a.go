// Package noalloc exercises the zero-alloc contract checker: flagged
// allocation shapes, the pooled-scratch and error-path exemptions, and the
// Allocates summary bit on unannotated callees.
package noalloc

import (
	"fmt"
	"sync"
)

type point struct{ x, y int }

var lookup = map[string]int{"A": 1}

var pool sync.Pool

// qb5000:noalloc
func bad(m map[string]int, v int) {
	b := make([]byte, 8) // want "make allocates"
	_ = b
	p := new(int) // want "new allocates"
	_ = p
	s := []int{1, 2} // want "slice literal allocates its backing array"
	_ = s
	mm := map[string]int{} // want "map literal allocates"
	_ = mm
	m["k"] = v                   // want "map assignment may allocate"
	m["k"]++                     // want "map update may allocate"
	fmt.Println(v)               // want "call to fmt.Println allocates"
	go send(v)                   // want "go statement allocates a new goroutine"
	f := func() int { return v } // want "function literal allocates its closure"
	_ = f
}

func send(int) {}

// stackOnly shows the shapes that stay quiet: array and struct value
// literals live on the stack.
//
// qb5000:noalloc
func stackOnly() int {
	arr := [2]int{1, 2}
	pt := point{3, 4}
	return arr[0] + pt.x
}

type sinkIface interface{ sink() }

func takeAny(x any) {}

func sinkAll(xs ...any) {}

// qb5000:noalloc
func boxes(v int, xs []int, pre []any) any {
	var a any = v // want "var initialization boxes int into any"
	_ = a
	var ifc any
	ifc = xs // want "assignment boxes ..int into any"
	_ = ifc
	takeAny(v) // want "argument boxes int into any"
	sinkAll(v) // want "argument boxes int into any"
	sinkAll(pre...)
	return v // want "return boxes int into any"
}

// qb5000:noalloc
func ptrBox(p *point) any {
	return p // quiet: pointer-shaped values fit the interface word
}

// qb5000:noalloc
func constBox() any {
	return 42 // quiet: constants never box at run time
}

// qb5000:noalloc
func conversions(b []byte, s string, n int) {
	_ = lookup[string(b)] // quiet: map-read key conversion is elided
	x := string(b)        // want "string conversion allocates a copy"
	_ = x
	y := []byte(s) // want "conversion allocates a copy"
	_ = y
	z := string(rune(n)) // want "integer→string conversion allocates"
	_ = z
	lookup[string(b)] = n // want "string conversion allocates a copy" "map assignment may allocate"
}

// qb5000:noalloc
func appendParam(dst []int, v int) []int {
	dst = append(dst, v) // quiet: caller-owned backing
	dst = append(dst, v) // quiet: self-append
	return dst
}

// qb5000:noalloc
func appendReslice(buf []int, v int) []int {
	buf = buf[:0]
	buf = append(buf, v) // quiet: reslice keeps the caller's backing
	return buf
}

// qb5000:noalloc
func appendPooled(v int) []int {
	buf := pool.Get().([]int)
	buf = append(buf, v) // quiet: pool-recycled backing
	return buf
}

// qb5000:noalloc
func appendFresh(v int) []int {
	var out []int
	out = append(out, v) // want "append into out may grow a non-pooled backing array"
	return out
}

// makeSlice is unannotated: its allocation reaches annotated callers through
// the Allocates summary bit.
func makeSlice() []int { return make([]int, 4) }

// qb5000:noalloc
func callsHelper() []int {
	return makeSlice() // want "call to makeSlice allocates"
}

// qb5000:noalloc
func leaf(v int) int { return v + 1 }

// qb5000:noalloc
func callsLeaf(v int) int {
	return leaf(v) // quiet: annotated callees are verified on their own
}

type parseErr struct{ msg string }

func (e *parseErr) Error() string { return e.msg }

// qb5000:noalloc
func errPath(ok bool, pos int) error {
	if !ok {
		return &parseErr{msg: fmt.Sprintf("bad token at %d", pos)} // quiet: error construction is cold by contract
	}
	return nil
}

// qb5000:noalloc
func escapes() *point {
	return &point{1, 2} // want "literal escapes to the heap"
}

// qb5000:noalloc
func joins(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// unannotated is free to allocate.
func unannotated() []byte { return make([]byte, 1) }
