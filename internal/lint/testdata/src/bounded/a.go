// Package boundedfix exercises the bounded analyzer: code reachable from a
// qb5000:serving entry point must use constant channel bounds, non-blocking
// sends, gated spawns, and len()-bounded captured queues.
package boundedfix

import (
	"context"
	"sync"
	"time"
)

const chunk = 64

// qb5000:serving
func serve(ctx context.Context, n int, items []int) {
	sized := make(chan int, chunk)
	_ = make(chan int)       // unbuffered: capacity 0 is a constant
	bad := make(chan int, n) // want "non-constant capacity"

	select {
	case sized <- 1: // non-blocking: default escape
	default:
	}
	select {
	case sized <- 2: // non-blocking: ctx escape
	case <-ctx.Done():
	}
	select {
	case sized <- 3: // non-blocking: deadline escape
	case <-time.After(time.Millisecond):
	}
	bad <- 4 // want "blocking channel send"
	select {
	case bad <- 5: // want "blocking channel send" — no default, no escape
	case bad <- 6: // want "blocking channel send"
	}

	go drain(bad) // want "ungated goroutine spawn"

	pooled(items)
	ungated(items) // want "call to ungated on a serving path spawns goroutines without a proven bound"

	var batch []int
	flush := func(v int) {
		batch = append(batch, v) // want "append grows captured batch"
		if v > 0 {
			return
		}
	}
	flush(1)

	var guardedBatch []int
	bounded := func(v int) {
		guardedBatch = append(guardedBatch, v)
		if len(guardedBatch) >= chunk {
			guardedBatch = guardedBatch[:0]
		}
	}
	bounded(2)

	seen := make(map[int]bool)
	mark := func(v int) {
		seen[v] = true // want "map write grows captured seen"
	}
	mark(3)

	local := func() {
		var mine []int
		mine = append(mine, 1) // per-invocation local: quiet
		_ = mine
	}
	local()
}

func drain(ch chan int) {
	for range ch {
	}
}

// pooled is an audited bounded spawner: the WaitGroup caps the fleet at
// len(items) per call and joins before returning.
//
// qb5000:bounded spawn fan-out is joined before return; nothing outlives the call
func pooled(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// ungated spawns with no gate at all; both the spawn and its serving-path
// callers are reported.
func ungated(items []int) {
	for range items {
		go func() {}() // want "ungated goroutine spawn"
	}
}

// offline is not reachable from any serving entry: every shape the analyzer
// flags above is quiet here.
func offline(n int, items []int) {
	q := make(chan int, n)
	q <- 1
	go drain(q)
	var all []int
	grow := func(v int) { all = append(all, v) }
	grow(2)
	ungatedOffline(items)
}

func ungatedOffline(items []int) {
	for range items {
		go func() {}()
	}
}
