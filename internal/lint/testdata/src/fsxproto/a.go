// Package fsx (fixture) exercises the protocol must-analysis the durable
// analyzer runs inside any package named fsx: every os.Rename must be
// preceded by an fsync of the written file on all incoming paths.
package fsx

import "os"

// good follows write-temp → fsync → close → rename.
func good(path, tmpName string, tmp *os.File) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// bad renames with no fsync at all: the data may still be in the page
// cache when the name changes.
func bad(path, tmpName string, tmp *os.File) error {
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path) // want "os.Rename without an fsync"
}

// branchy syncs on only one of the two paths reaching the rename.
func branchy(path, tmpName string, tmp *os.File, fast bool) error {
	if !fast {
		if err := tmp.Sync(); err != nil {
			return err
		}
	}
	return os.Rename(tmpName, path) // want "os.Rename without an fsync"
}

// allPaths syncs on both branches, so the must-set survives the join.
func allPaths(path, tmpName string, tmp *os.File, fast bool) error {
	if fast {
		if err := tmp.Sync(); err != nil {
			return err
		}
	} else {
		if err := tmp.Sync(); err != nil {
			return err
		}
	}
	return os.Rename(tmpName, path)
}
