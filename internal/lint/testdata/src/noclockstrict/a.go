package noclockstrict

import "time"

// This fixture is loaded under a strict model-package import path, where
// noclock suppressions are rejected outright.
func stamp() time.Time {
	//lint:ignore noclock suppressions must not work in model packages
	return time.Now() // want "suppression ignored: wall-clock reads are forbidden in model packages"
}
