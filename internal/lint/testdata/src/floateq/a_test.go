package floateq

// Test files may compare floats exactly: determinism tests assert
// bit-identical results on purpose.
func exactInTest(a, b float64) bool {
	return a == b
}
