package floateq

func exactEq(a, b float64) bool {
	return a == b // want "exact floating-point == comparison"
}

func exactNeq(a, b float64) bool {
	return a != b // want "exact floating-point != comparison"
}

func zeroGuard(s float64) float64 {
	if s == 0 { // want "exact floating-point == comparison"
		return 0
	}
	return 1 / s
}

func float32Too(a, b float32) bool {
	return a == b // want "exact floating-point == comparison"
}

func almostEqual(a, b float64) bool {
	return a == b || absDiff(a, b) < 1e-9 // epsilon helpers may short-circuit on exact equality
}

func withinEps(a, b, eps float64) bool {
	return a == b || absDiff(a, b) <= eps
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func nanCheck(x float64) bool {
	return x != x // the portable NaN test is allowed
}

func ints(a, b int) bool {
	return a == b // integers compare exactly by design
}

func ordered(a, b float64) bool {
	return a < b // only == and != are exact-comparison hazards
}
