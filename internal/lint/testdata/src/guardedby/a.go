package guardedby

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	// qb5000:guardedby mu
	n int
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) DeferStyle() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want "access to c.n .* without holding c.mu"
}

func (c *counter) OneArm(cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n++ // want "without holding c.mu on every path"
	if cond {
		c.mu.Unlock()
	}
}

func (c *counter) AfterUnlock() int {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	return c.n // want "without holding c.mu"
}

// qb5000:locked mu
func (c *counter) bump() {
	c.n++
}

func (c *counter) CallsLockedGood() {
	c.mu.Lock()
	c.bump()
	c.mu.Unlock()
}

func (c *counter) CallsLockedBad() {
	c.bump() // want "requires c.mu held"
}

func (c *counter) ClosureLosesLock() {
	c.mu.Lock()
	f := func() {
		c.n++ // want "without holding c.mu"
	}
	f()
	c.mu.Unlock()
}

type table struct {
	mu sync.RWMutex
	// qb5000:guardedby mu
	rows map[string]int
}

func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

func (t *table) Snapshot() map[string]int {
	return t.rows // want "without holding t.mu"
}

type stats struct {
	// qb5000:guardedby atomic
	hits atomic.Int64
}

func (s *stats) Hit()        { s.hits.Add(1) }
func (s *stats) Read() int64 { return s.hits.Load() }

func (s *stats) Leak() *atomic.Int64 {
	return &s.hits // want "guardedby atomic"
}

type badGuard struct {
	// qb5000:guardedby missing
	x int // want "not a sync.Mutex/RWMutex field"
}

type wrongType struct {
	lock int
	// qb5000:guardedby lock
	y int // want "not a sync.Mutex/RWMutex field"
}

// qb5000:locked mu
func orphan() {} // want "without a receiver"

func use(b *badGuard, w *wrongType) int { return b.x + w.y + w.lock }
