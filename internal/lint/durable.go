package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"regexp"
	"strings"
)

// Durable enforces the crash-safety contract around fsx.WriteAtomic
// (DESIGN.md §8). A path value annotated
//
//	// qb5000:durable
//
// on its declaration (var spec, := statement, or struct field), or named in
// a function's doc comment as
//
//	// qb5000:durable <param> [param...]
//
// holds the location of a durable file: one whose previous contents must
// survive a crash mid-replace. The analyzer reports any durable value that
// reaches a direct filesystem mutation — os.Create, os.WriteFile,
// os.Rename, os.Remove(All), os.Truncate, or os.OpenFile with write flags —
// because the bare os sequence tears on crash; the only sanctioned write
// path is a callee whose own parameter carries the annotation (fsx's
// WriteAtomic, or a wrapper that forwards to it). Handing a durable value
// to a loaded, unannotated callee whose summary says it PerformsIO is also
// reported: laundering the write through a helper must not void the
// contract.
//
// Inside package fsx itself the direct calls are the implementation, so the
// flow checks are skipped; instead a CFG must-analysis proves the protocol:
// every os.Rename is preceded, on all paths, by a Sync of the written
// *os.File (write-temp → fsync → close → rename).
//
// os.OpenFile with a provably read-only flag expression is quiet; an
// unprovable flag argument is reported (conservative in the loud direction:
// the annotation is an explicit request for checking). _test.go files are
// not checked.
var Durable = &Analyzer{
	Name: "durable",
	Doc:  "qb5000:durable paths must be written through fsx (atomic write-temp → fsync → rename), never by direct os calls",
	Run:  runDurable,
}

// durableRe matches the annotation and captures the optional parameter-name
// list.
var durableRe = regexp.MustCompile(`^//\s*qb5000:durable\s*(.*)$`)

// osDurableBans maps the os-package calls that tear durable files on crash
// to the reason shown in the finding.
var osDurableBans = map[string]string{
	"Create":    "truncates in place (a crash mid-write destroys the previous contents)",
	"WriteFile": "truncates in place (a crash mid-write destroys the previous contents)",
	"Rename":    "renames without the fsync protocol (the data may not be on disk when the name changes)",
	"Remove":    "deletes a durable file",
	"RemoveAll": "deletes a durable file",
	"Truncate":  "truncates a durable file in place",
}

// durableParams returns, per symbolic function ID, the parameter indices
// annotated qb5000:durable in the function's doc comment — built lazily
// once per Program, like noallocIDs, so the contract transfers across
// package boundaries.
func (prog *Program) durableParams() map[string]map[int]bool {
	if prog.durable == nil {
		prog.durable = make(map[string]map[int]bool)
		for _, u := range prog.Units {
			for _, file := range u.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if idx := durableParamIndices(fd); len(idx) > 0 {
						prog.durable[declID(u, fd)] = idx
					}
				}
			}
		}
	}
	return prog.durable
}

// durableParamIndices resolves the names in fd's doc annotation to
// positional parameter indices.
func durableParamIndices(fd *ast.FuncDecl) map[int]bool {
	if fd.Doc == nil {
		return nil
	}
	names := map[string]bool{}
	for _, c := range fd.Doc.List {
		m := durableRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		for _, name := range strings.Fields(m[1]) {
			names[name] = true
		}
	}
	if len(names) == 0 || fd.Type.Params == nil {
		return nil
	}
	idx := map[int]bool{}
	i := 0
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if names[name.Name] {
				idx[i] = true
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return idx
}

// collectDurable gathers this unit's durable objects: values whose
// declaration line (or the line above it) carries a bare annotation, struct
// fields annotated in their doc or line comment, and parameters named in
// function doc annotations.
func collectDurable(p *Pass) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, file := range p.Files {
		// Bare annotations by line: the annotation marks the declaration on
		// its own line or the line directly below.
		annotated := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if m := durableRe.FindStringSubmatch(c.Text); m != nil && strings.TrimSpace(m[1]) == "" {
					annotated[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		markIdent := func(id *ast.Ident) {
			if id.Name == "_" {
				return
			}
			if obj := p.Info.Defs[id]; obj != nil {
				objs[obj] = true
			}
		}
		onAnnotatedLine := func(n ast.Node) bool {
			l := p.Fset.Position(n.Pos()).Line
			return annotated[l] || annotated[l-1]
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ValueSpec:
				if onAnnotatedLine(x) {
					for _, name := range x.Names {
						markIdent(name)
					}
				}
			case *ast.AssignStmt:
				if onAnnotatedLine(x) {
					for _, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							markIdent(id)
						}
					}
				}
			case *ast.Field:
				if onAnnotatedLine(x) {
					for _, name := range x.Names {
						markIdent(name)
					}
				}
			case *ast.FuncDecl:
				idx := durableParamIndices(x)
				if len(idx) == 0 {
					return true
				}
				i := 0
				for _, f := range x.Type.Params.List {
					for _, name := range f.Names {
						if idx[i] {
							markIdent(name)
						}
						i++
					}
					if len(f.Names) == 0 {
						i++
					}
				}
			}
			return true
		})
	}
	return objs
}

func runDurable(p *Pass) {
	if p.Pkg != nil && p.Pkg.Name() == "fsx" {
		checkFsxProtocol(p)
		return
	}
	durables := collectDurable(p)
	if len(durables) == 0 {
		return
	}
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && durables[p.Info.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return found
	}
	var calleeDurable map[string]map[int]bool
	if p.Prog != nil {
		calleeDurable = p.Prog.durableParams()
	}
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			durableArgs := make([]int, 0, len(call.Args))
			for i, arg := range call.Args {
				if mentions(arg) {
					durableArgs = append(durableArgs, i)
				}
			}
			if len(durableArgs) == 0 {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isPkgIdent(p.Info, sel.X, "os") {
				if reason, banned := osDurableBans[sel.Sel.Name]; banned {
					p.Reportf(call.Pos(), "os.%s on a qb5000:durable path %s; write it through fsx.WriteAtomic", sel.Sel.Name, reason)
					return true
				}
				if sel.Sel.Name == "OpenFile" {
					checkOpenFileFlags(p, call)
					return true
				}
			}
			tf := staticCallee(p.Info, call)
			if tf == nil {
				return true
			}
			id := funcID(tf)
			ann := calleeDurable[id]
			allAnnotated := true
			for _, i := range durableArgs {
				if !ann[i] {
					allAnnotated = false
				}
			}
			if allAnnotated {
				return true // the callee carries the contract forward
			}
			if p.Prog != nil {
				if cs := p.Prog.Summaries[id]; cs != nil && cs.PerformsIO {
					p.Reportf(call.Pos(), "qb5000:durable path handed to %s, which performs filesystem writes without a qb5000:durable parameter contract; route the write through fsx.WriteAtomic or annotate the callee's parameter", tf.Name())
				}
			}
			return true
		})
	}
}

// checkOpenFileFlags reports os.OpenFile on a durable path unless the flag
// argument provably contains no write bits.
func checkOpenFileFlags(p *Pass, call *ast.CallExpr) {
	if len(call.Args) >= 2 {
		if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact {
				const writeBits = int64(os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC)
				if v&writeBits == 0 {
					return // provably read-only
				}
			}
		}
	}
	p.Reportf(call.Pos(), "os.OpenFile on a qb5000:durable path with write flags (or flags the analyzer cannot prove read-only); write it through fsx.WriteAtomic")
}

// checkFsxProtocol is the must-analysis run inside package fsx: at every
// os.Rename element, some Sync of a written *os.File must have happened on
// every incoming path.
func checkFsxProtocol(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRenameSynced(p, fd.Body)
		}
	}
}

// syncedFact is the must-set of *os.File objects fsynced on every path to
// the current point. Facts are persistent: transfer copies before adding.
type syncedFact map[types.Object]bool

func checkRenameSynced(p *Pass, body *ast.BlockStmt) {
	g := buildCFG(body)
	transfer := func(f syncedFact, n ast.Node) syncedFact {
		var add []types.Object
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sync" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if t := p.Info.TypeOf(id); t == nil || t.String() != "*os.File" {
				return true
			}
			if obj := p.Info.ObjectOf(id); obj != nil {
				add = append(add, obj)
			}
			return true
		})
		if len(add) == 0 {
			return f
		}
		nf := make(syncedFact, len(f)+len(add))
		for k := range f {
			nf[k] = true
		}
		for _, obj := range add {
			nf[obj] = true
		}
		return nf
	}
	join := func(a, b syncedFact) syncedFact {
		out := syncedFact{}
		for k := range a {
			if b[k] {
				out[k] = true
			}
		}
		return out
	}
	equal := func(a, b syncedFact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	forwardFlow(g, syncedFact{}, transfer, join, equal, func(n ast.Node, f syncedFact) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Rename" || !isPkgIdent(p.Info, sel.X, "os") {
				return true
			}
			if len(f) == 0 {
				p.Reportf(call.Pos(), "os.Rename without an fsync of the written file on every path to it; the atomic-write protocol is write-temp → fsync → close → rename")
			}
			return true
		})
	})
}
