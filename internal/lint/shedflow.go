package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ShedFlow enforces the overload-propagation contract around
// internal/admission (DESIGN.md §9). An admission check that fires but whose
// signal goes nowhere is worse than none at all: the gate counts a shed
// request while the handler serves it anyway. Three checks:
//
//   - Propagation: the error returned by Gate.TryAcquire / Gate.Acquire
//     must flow somewhere. A result discarded as a statement, assigned to
//     `_`, or stored in a variable no later use can see (the same
//     reaching-definitions analysis faultpath uses) silently un-sheds the
//     request.
//   - Release obligation: a successful acquire holds inflight weight until
//     the matching <gate>.Release. The obligation flow (mirroring
//     handlelife) requires a Release on every path that can follow a
//     successful acquire; a return inside the acquire error's own
//     `err != nil` block is the shed path and owes nothing. A leaked
//     permit never comes back — the gate's capacity ratchets down until
//     the server sheds everything.
//   - 429 mapping: an HTTP handler (func(w http.ResponseWriter,
//     r *http.Request)) whose static call tree performs an admission check
//     must map ErrOverload to 429 somewhere in that tree — a mention of
//     http.StatusTooManyRequests (or a literal 429). Shedding with a 500
//     tells clients to retry immediately, which is the opposite of
//     backpressure.
//
// The admission package itself is exempt (it implements the primitives),
// as are _test.go files.
var ShedFlow = &Analyzer{
	Name: "shedflow",
	Doc:  "admission errors must propagate to a 429 and every acquired permit must be released on all paths",
	Run:  runShedFlow,
}

// admissionPkgPath is where the gate lives; methods of the same names on
// other types are ignored.
const admissionPkgPath = "qb5000/internal/admission"

// gateMethod reports the receiver expression and method name if call is a
// TryAcquire/Acquire/Release on an admission.Gate.
func gateMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "TryAcquire", "Acquire", "Release":
	default:
		return nil, "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil, "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Gate" || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != admissionPkgPath {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// isAcquireCall reports an admission acquire (the error-producing pair).
func isAcquireCall(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	recv, name, ok := gateMethod(info, call)
	if !ok || name == "Release" {
		return nil, "", false
	}
	return recv, name, true
}

func runShedFlow(p *Pass) {
	if strings.TrimSuffix(p.Unit.Path, "_test") == admissionPkgPath {
		return
	}
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		parents := parentMap(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkAcquireFlow(parents, fd.Recv, fd.Type, fd.Body)
			p.checkReleaseObligations(fd.Body)
			inspectFuncLits(fd.Body, func(fl *ast.FuncLit) {
				p.checkAcquireFlow(parents, nil, fl.Type, fl.Body)
				p.checkReleaseObligations(fl.Body)
			})
			p.checkHandler429(fd)
		}
	}
}

// checkAcquireFlow verifies that each acquire error in one function body
// reaches a real use — faultpath's propagation machinery pointed at the
// admission gate.
func (p *Pass) checkAcquireFlow(parents map[ast.Node]ast.Node, recv *ast.FieldList, ft *ast.FuncType, body *ast.BlockStmt) {
	var acquires []*ast.CallExpr
	methods := make(map[*ast.CallExpr]string)
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, ok := isAcquireCall(p.Info, call); ok {
				acquires = append(acquires, call)
				methods[call] = name
			}
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}
	var reach *reaching
	for _, call := range acquires {
		parent := parents[call]
		for {
			if pe, ok := parent.(*ast.ParenExpr); ok {
				parent = parents[pe]
				continue
			}
			break
		}
		switch pa := parent.(type) {
		case *ast.ExprStmt:
			p.Reportf(call.Pos(), "admission %s result discarded; ErrOverload never propagates and overload is never shed", methods[call])
		case *ast.AssignStmt:
			idx := -1
			for i, rhs := range pa.Rhs {
				if ast.Unparen(rhs) == call {
					idx = i
				}
			}
			if idx < 0 || idx >= len(pa.Lhs) {
				continue
			}
			id, ok := pa.Lhs[idx].(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				p.Reportf(call.Pos(), "admission %s result assigned to _; ErrOverload never propagates and overload is never shed", methods[call])
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if reach == nil {
				reach = newReaching(p.Info, recv, ft, body)
			}
			if !injectDefUsed(p.Info, parents, reach, body, pa, obj) {
				p.Reportf(call.Pos(), "the error from admission %s is never read after this assignment; ErrOverload never propagates and overload is never shed", methods[call])
			}
		}
	}
}

// gateFact maps each gate class (the receiver expression, textually) to the
// position of the acquire holding its permit. Persistent: the transfer
// copies before mutating.
type gateFact map[string]token.Pos

// checkReleaseObligations runs the permit obligation flow over one body.
func (p *Pass) checkReleaseObligations(body *ast.BlockStmt) {
	shedReturns := p.shedReturns(body)
	g := buildCFG(body)
	sums := p.summaries()
	transfer := func(f gateFact, n ast.Node) gateFact {
		return p.gateTransfer(f, n, shedReturns, sums)
	}
	exit, reachable := forwardFlow(g, gateFact{}, transfer, joinGates, equalGates, nil)
	if !reachable {
		return
	}
	type leak struct {
		pos   token.Pos
		class string
	}
	var leaks []leak
	for class, pos := range exit {
		leaks = append(leaks, leak{pos, class})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		p.Reportf(l.pos, "admission permit on %s acquired here is not released on every path; pair a successful acquire with a deferred %s.Release", l.class, l.class)
	}
}

// shedReturns finds the returns that owe no Release: those inside the body
// of an `if err != nil` whose err is the binding of an acquire on some gate
// class. Each such return clears that class (the acquire failed on the path
// that reaches it — the fact was minted path-insensitively).
func (p *Pass) shedReturns(body *ast.BlockStmt) map[*ast.ReturnStmt]map[string]bool {
	errClass := make(map[types.Object]string)
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, _, ok := isAcquireCall(p.Info, call)
		if !ok {
			return true
		}
		if id, isID := as.Lhs[0].(*ast.Ident); isID && id.Name != "_" {
			if obj := p.Info.ObjectOf(id); obj != nil {
				errClass[obj] = types.ExprString(recv)
			}
		}
		return true
	})
	out := make(map[*ast.ReturnStmt]map[string]bool)
	if len(errClass) == 0 {
		return out
	}
	inspectShallow(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return true
		}
		id, ok := ast.Unparen(cond.X).(*ast.Ident)
		if !ok {
			return true
		}
		class, tracked := errClass[p.Info.ObjectOf(id)]
		if !tracked || !isNilIdent(cond.Y) {
			return true
		}
		inspectShallow(ifs.Body, func(m ast.Node) bool {
			if ret, isRet := m.(*ast.ReturnStmt); isRet {
				if out[ret] == nil {
					out[ret] = make(map[string]bool)
				}
				out[ret][class] = true
			}
			return true
		})
		return true
	})
	return out
}

// isNilIdent reports the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// gateTransfer applies one element's effect on the permit obligations.
func (p *Pass) gateTransfer(f gateFact, n ast.Node, shedReturns map[*ast.ReturnStmt]map[string]bool, sums map[string]*FuncSummary) gateFact {
	// Releases discharge wherever they appear in the element's subtree —
	// plain, deferred, or inside a deferred closure.
	if len(f) > 0 {
		var released []string
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, name, ok := gateMethod(p.Info, call); ok && name == "Release" {
				released = append(released, types.ExprString(recv))
			}
			return true
		})
		for _, class := range released {
			if _, held := f[class]; held {
				nf := make(gateFact, len(f))
				for k, v := range f {
					if k != class {
						nf[k] = v
					}
				}
				f = nf
			}
		}
	}
	switch st := n.(type) {
	case *ast.ReturnStmt:
		if clears := shedReturns[st]; len(clears) > 0 {
			nf := make(gateFact, len(f))
			for k, v := range f {
				if !clears[k] {
					nf[k] = v
				}
			}
			return nf
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isExitingCall(p.Info, call, sums) {
			return gateFact{}
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
				if recv, _, ok := isAcquireCall(p.Info, call); ok {
					if len(st.Lhs) == 1 {
						if id, isID := st.Lhs[0].(*ast.Ident); isID && id.Name != "_" {
							nf := make(gateFact, len(f)+1)
							for k, v := range f {
								nf[k] = v
							}
							nf[types.ExprString(recv)] = call.Pos()
							return nf
						}
					}
				}
			}
		}
	}
	return f
}

func joinGates(a, b gateFact) gateFact {
	out := make(gateFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalGates(a, b gateFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// checkHandler429 verifies the overload-status mapping for one declared
// HTTP handler: if anything in its static call tree acquires admission,
// something in that tree must produce a 429.
func (p *Pass) checkHandler429(fd *ast.FuncDecl) {
	if !p.isHandlerSig(fd.Type) || p.Prog == nil {
		return
	}
	node := p.Prog.Graph.NodeFor(fd)
	if node == nil {
		return
	}
	family := p.handlerFamily(node)
	acquires := false
	maps429 := false
	for _, m := range family {
		if m.Body == nil {
			continue
		}
		ast.Inspect(m.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if _, _, isAcq := isAcquireCall(m.Pkg.Info, call); isAcq {
					acquires = true
				}
			}
			if mentions429(m.Pkg.Info, n) {
				maps429 = true
			}
			return true
		})
	}
	if acquires && !maps429 {
		p.Reportf(fd.Pos(), "HTTP handler %s performs admission checks but never maps ErrOverload to 429 (http.StatusTooManyRequests)", fd.Name.Name)
	}
}

// isHandlerSig matches func(w http.ResponseWriter, r *http.Request).
func (p *Pass) isHandlerSig(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var typs []string
	for _, field := range ft.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			return false
		}
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		for i := 0; i < names; i++ {
			typs = append(typs, t.String())
		}
	}
	return len(typs) == 2 && typs[0] == "net/http.ResponseWriter" && typs[1] == "*net/http.Request"
}

// handlerFamily is the static call tree under a handler: non-Dynamic,
// non-go edges, plus every literal of each reachable declaration (literals
// run on the handler goroutine unless spawned).
func (p *Pass) handlerFamily(root *FuncNode) []*FuncNode {
	seen := make(map[string]bool)
	var out []*FuncNode
	var queue []*FuncNode
	visit := func(m *FuncNode) {
		if m == nil || seen[m.ID] {
			return
		}
		seen[m.ID] = true
		out = append(out, m)
		queue = append(queue, m)
	}
	visit(root)
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if m.Decl != nil {
			prefix := m.ID + "$lit"
			for _, x := range p.Prog.Graph.Order {
				if strings.HasPrefix(x.ID, prefix) {
					visit(x)
				}
			}
		}
		for _, e := range m.Out {
			if e.Dynamic || e.Go {
				continue
			}
			visit(e.Callee)
		}
	}
	return out
}

// mentions429 reports a node that produces the Too Many Requests status:
// the http.StatusTooManyRequests constant or a literal 429.
func mentions429(info *types.Info, n ast.Node) bool {
	switch x := n.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "StatusTooManyRequests" && isPkgIdent(info, x.X, "net/http")
	case *ast.BasicLit:
		return x.Kind == token.INT && x.Value == "429"
	}
	return false
}
