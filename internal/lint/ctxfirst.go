package lint

import (
	"go/ast"
)

// CtxFirst enforces the project's context conventions: exported functions
// that accept a context.Context must take it as the first parameter, and a
// function that was handed a context must thread it (or a context derived
// from it) into every goroutine it spawns — otherwise cancellation stops at
// the spawn site and workers leak past shutdown.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context first in exported signatures; goroutines must thread the context",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Name.IsExported() {
				p.checkCtxPosition(fd)
			}
			return true
		})
		p.checkGoStmts(file)
	}
}

// checkCtxPosition reports an exported function whose context.Context
// parameter is not first.
func (p *Pass) checkCtxPosition(fd *ast.FuncDecl) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if p.isCtxType(field.Type) && pos > 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter of exported %s", fd.Name.Name)
		}
		pos += width
	}
}

func (p *Pass) isCtxType(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t != nil {
		return t.String() == "context.Context"
	}
	// Syntactic fallback for fixtures without full type info.
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context"
}

// checkGoStmts walks function bodies tracking the context parameters in
// scope; a `go` statement inside a context-carrying function whose subtree
// never mentions a context value is reported.
func (p *Pass) checkGoStmts(file *ast.File) {
	var ctxDepth int // number of enclosing funcs that take a ctx
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch x := m.(type) {
			case *ast.FuncDecl:
				p.walkFunc(x.Type, x.Body, &ctxDepth, walk)
				return false
			case *ast.FuncLit:
				p.walkFunc(x.Type, x.Body, &ctxDepth, walk)
				return false
			case *ast.GoStmt:
				if ctxDepth > 0 && !p.mentionsContext(x) {
					p.Reportf(x.Pos(), "goroutine does not thread the enclosing context.Context; pass ctx (or a derived context) so cancellation reaches it")
				}
				// Keep walking inside: nested func lits / go stmts.
				return true
			}
			return true
		})
	}
	walk(file)
}

func (p *Pass) walkFunc(ft *ast.FuncType, body *ast.BlockStmt, depth *int, walk func(ast.Node)) {
	if body == nil {
		return
	}
	has := false
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if p.isCtxType(field.Type) {
				has = true
			}
		}
	}
	if has {
		*depth++
		defer func() { *depth-- }()
	}
	walk(body)
}

// mentionsContext reports whether any expression inside the go statement has
// type context.Context (the original parameter or anything derived from it).
func (p *Pass) mentionsContext(gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(gs, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := p.Info.TypeOf(e); t != nil && t.String() == "context.Context" {
			found = true
			return false
		}
		// Fixture fallback: an identifier literally named ctx.
		if id, ok := e.(*ast.Ident); ok && p.Info.TypeOf(e) == nil && id.Name == "ctx" {
			found = true
			return false
		}
		return true
	})
	return found
}
