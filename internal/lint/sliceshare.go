package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SliceShare polices the data-sharing contract of internal/parallel worker
// closures — the exact bug class the pipeline's bit-identical-at-any-
// parallelism guarantee depends on. A slice or map captured by the function
// literal handed to parallel.ForEach / parallel.Map / parallel.Each must be
// one of:
//
//   - read-only inside the worker;
//   - written only at indices derived from the worker's own index parameter
//     (index-disjoint slots, the pool's sanctioned result pattern); or
//   - written with a mutex provably held (dataflow.go's must-hold walk).
//
// Everything else is reported: appends or reassignments of a captured slice
// (racing on the shared header), writes at indices the analysis cannot tie
// to the worker index (possible slot collisions), and any write or delete
// on a captured map (Go maps are never write-safe concurrently, disjoint
// keys or not). Whether an index derives from the worker index is resolved
// through reaching definitions, so `j := i * 2; out[j] = v` is recognized.
var SliceShare = &Analyzer{
	Name: "sliceshare",
	Doc:  "slices/maps captured by parallel workers must be read-only, index-disjoint, or locked",
	Run:  runSliceShare,
}

func runSliceShare(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelCall(p, call) {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			if sel.Sel.Name != "ForEach" && sel.Sel.Name != "Map" && sel.Sel.Name != "Each" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
			if !ok {
				return true // a named worker func is opaque; nothing to check
			}
			p.checkWorker(lit)
			return true
		})
	}
}

// workerIndexObj returns the object of the worker's index parameter: the
// first int-typed parameter of the closure (fn(ctx, i) / fn(ctx, i, item)).
func (p *Pass) workerIndexObj(lit *ast.FuncLit) types.Object {
	if lit.Type.Params == nil {
		return nil
	}
	for _, field := range lit.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		isInt := false
		if b, ok := t.(*types.Basic); ok && b.Kind() == types.Int {
			isInt = true
		} else if t == nil {
			// Fixture fallback: a parameter literally typed "int".
			if id, ok := field.Type.(*ast.Ident); ok && id.Name == "int" {
				isInt = true
			}
		}
		if !isInt {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			return p.Info.ObjectOf(name)
		}
	}
	return nil
}

// capturedVar resolves id to a variable declared outside the worker closure
// (a capture), or nil.
func (p *Pass) capturedVar(id *ast.Ident, lit *ast.FuncLit) *types.Var {
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return nil // declared inside the worker
	}
	return v
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkWorker analyzes one worker closure: reaching definitions resolve
// index provenance, the lock walk resolves protected regions.
func (p *Pass) checkWorker(lit *ast.FuncLit) {
	idx := p.workerIndexObj(lit)
	reach := newReaching(p.Info, nil, lit.Type, lit.Body)
	g := buildCFG(lit.Body)
	transfer := func(f lockSet, n ast.Node) lockSet { return lockTransfer(p, f, n) }
	forwardFlow(g, lockSet{}, transfer, joinLocks, equalLocks, func(n ast.Node, held lockSet) {
		locked := len(held) > 0
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				p.checkWorkerWrite(lit, idx, reach, n, lhs, locked)
			}
			// x = append(x, ...) is caught via the lhs; append into a
			// *different* captured slice via the rhs is caught when it is
			// assigned, which covers the racy shapes.
		case *ast.IncDecStmt:
			p.checkWorkerWrite(lit, idx, reach, n, st.X, locked)
		case *ast.ExprStmt:
			p.checkWorkerBuiltins(lit, idx, reach, n, st.X, locked)
		}
	})
}

// checkWorkerWrite validates one write destination inside a worker.
func (p *Pass) checkWorkerWrite(lit *ast.FuncLit, idx types.Object, reach *reaching, element ast.Node, lhs ast.Expr, locked bool) {
	switch dst := lhs.(type) {
	case *ast.Ident:
		v := p.capturedVar(dst, lit)
		if v == nil || !(isSliceType(v.Type()) || isMapType(v.Type())) || locked {
			return
		}
		p.Reportf(dst.Pos(), "captured %s %s is reassigned inside a parallel worker; workers race on the shared header — write into per-index slots or guard it with a mutex",
			containerKind(v.Type()), dst.Name)
	case *ast.IndexExpr:
		base := baseIdent(dst.X)
		if base == nil {
			return
		}
		v := p.capturedVar(base, lit)
		if v == nil || locked {
			return
		}
		bt := p.Info.TypeOf(dst.X)
		switch {
		case isMapType(bt):
			p.Reportf(dst.Pos(), "captured map %s is written inside a parallel worker; map writes race even on disjoint keys — assemble the map sequentially after the pool returns, or guard it", base.Name)
		case isSliceType(bt) && !(isSliceType(v.Type()) || isMapType(v.Type())):
			// Indexing a slice reached through a struct field or pointer
			// capture still races; treat like a direct slice capture.
			fallthrough
		case isSliceType(bt):
			if idx != nil && p.indexDerived(dst.Index, idx, reach, element, make(map[types.Object]bool)) {
				return // the sanctioned one-slot-per-index pattern
			}
			p.Reportf(dst.Pos(), "captured slice %s is written at index %q, which is not derived from the worker index; workers may collide on a slot — index by the worker's own i or lock",
				base.Name, types.ExprString(dst.Index))
		}
	}
}

// checkWorkerBuiltins flags copy/delete statements that mutate captures.
func (p *Pass) checkWorkerBuiltins(lit *ast.FuncLit, idx types.Object, reach *reaching, element ast.Node, e ast.Expr, locked bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || locked {
		return
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	base := baseIdent(call.Args[0])
	if base == nil {
		return
	}
	v := p.capturedVar(base, lit)
	if v == nil {
		return
	}
	switch fn.Name {
	case "copy":
		if isSliceType(p.Info.TypeOf(call.Args[0])) {
			p.Reportf(call.Pos(), "copy into captured slice %s inside a parallel worker; bound the destination to the worker's index slot or lock", base.Name)
		}
	case "delete":
		if isMapType(p.Info.TypeOf(call.Args[0])) {
			p.Reportf(call.Pos(), "delete on captured map %s inside a parallel worker; map mutation is never concurrency-safe — collect keys and delete after the pool returns", base.Name)
		}
	}
}

// indexDerived reports whether expr provably derives from the worker index
// parameter: the parameter itself, constants, arithmetic over derived
// operands, len/cap (loop-invariant, so i*len(chunk)+k stays disjoint per
// i), or a local whose every reaching definition is itself derived.
func (p *Pass) indexDerived(expr ast.Expr, idx types.Object, reach *reaching, element ast.Node, visiting map[types.Object]bool) bool {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.ParenExpr:
		return p.indexDerived(e.X, idx, reach, element, visiting)
	case *ast.UnaryExpr:
		return (e.Op == token.ADD || e.Op == token.SUB) && p.indexDerived(e.X, idx, reach, element, visiting)
	case *ast.BinaryExpr:
		return p.indexDerived(e.X, idx, reach, element, visiting) && p.indexDerived(e.Y, idx, reach, element, visiting)
	case *ast.CallExpr:
		if fn, ok := e.Fun.(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
			return true
		}
		return false
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil {
			return false
		}
		if obj == idx {
			return true
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true
		}
		if visiting[obj] {
			return false // cyclic defs (j = j + 1 across iterations) are not provably disjoint
		}
		visiting[obj] = true
		defer delete(visiting, obj)
		defs := reach.defsAt(element, obj)
		if len(defs) == 0 {
			return false
		}
		for _, d := range defs {
			if d.param || d.rhs == nil {
				return false
			}
			if !p.indexDerived(d.rhs, idx, reach, d.site, visiting) {
				return false
			}
		}
		return true
	}
	return false
}

func containerKind(t types.Type) string {
	if isMapType(t) {
		return "map"
	}
	return "slice"
}
