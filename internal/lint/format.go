package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the driver-facing output layer: machine-readable finding
// formats (JSON for scripting, SARIF 2.1.0 for code-scanning UIs and CI
// artifacts), the baseline store that lets CI fail only on *new* findings
// while a sweep lands, and the //lint:ignore inventory behind `qb5000vet
// -debt`. Paths are rendered relative to a caller-supplied root (the module
// directory) so output is stable across checkouts.

// relTo renders filename relative to root; absolute paths outside root (or
// an empty root) pass through unchanged.
func relTo(root, filename string) string {
	if root == "" {
		return filename
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// jsonFinding is the -format=json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON emits findings as a JSON array with root-relative paths.
func WriteJSON(w io.Writer, root string, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relTo(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, minimally: one run, one rule per analyzer, one result per
// finding. Only the fields code-scanning consumers actually read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string    `json:"id"`
	ShortDesc sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits findings as a SARIF 2.1.0 log. analyzers populates the
// rule table; the pseudo-analyzer "lint" (directive hygiene) is always
// included so its results resolve.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := []sarifRule{{ID: "lint", ShortDesc: sarifText{Text: "//lint:ignore directive hygiene"}}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDesc: sarifText{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{Physical: sarifPhysical{
				Artifact: sarifArtifact{URI: relTo(root, f.Pos.Filename)},
				Region:   sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "qb5000vet", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ---- Baseline ----

// A Baseline records accepted findings as "file|analyzer|message" keys with
// occurrence counts. Keys carry no line numbers, so unrelated edits that
// shift a finding do not break the baseline; moving a finding to a new file
// or changing its message does, which is the conservative direction.
type Baseline struct {
	Counts map[string]int `json:"counts"`
}

func baselineKey(root string, f Finding) string {
	return relTo(root, f.Pos.Filename) + "|" + f.Analyzer + "|" + f.Message
}

// NewBaseline captures the given findings as an accepted baseline.
func NewBaseline(root string, findings []Finding) *Baseline {
	b := &Baseline{Counts: make(map[string]int)}
	for _, f := range findings {
		b.Counts[baselineKey(root, f)]++
	}
	return b
}

// ReadBaseline decodes a baseline written by Write.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{}
	if err := json.NewDecoder(r).Decode(b); err != nil {
		return nil, fmt.Errorf("decoding baseline: %w", err)
	}
	if b.Counts == nil {
		b.Counts = make(map[string]int)
	}
	return b, nil
}

// Write encodes the baseline as stable, diff-friendly JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Filter splits findings into those not covered by the baseline (fresh —
// CI should fail on these) and reports baseline entries that no longer
// match anything (stale — the debt was paid and the entry should be
// deleted). Each baseline count absorbs that many matching findings.
func (b *Baseline) Filter(root string, findings []Finding) (fresh []Finding, stale []string) {
	remaining := make(map[string]int, len(b.Counts))
	for k, v := range b.Counts {
		remaining[k] = v
	}
	for _, f := range findings {
		k := baselineKey(root, f)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for k, v := range remaining {
		if v > 0 {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// ---- Suppression-debt inventory ----

// A DirectiveUse is one //lint:ignore occurrence, attributed to every
// analyzer it names.
type DirectiveUse struct {
	Pos       token.Position
	Analyzers []string
	Reason    string
}

// DirectiveUses inventories the well-formed //lint:ignore directives in the
// unit's files (malformed ones are already findings). Results are sorted by
// position.
func DirectiveUses(fset *token.FileSet, files []*ast.File) []DirectiveUse {
	var out []DirectiveUse
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names, reason := m[1], strings.TrimSpace(m[2])
				if names == "" || reason == "" {
					continue
				}
				var analyzers []string
				for _, name := range strings.Split(names, ",") {
					if knownAnalyzers[name] {
						analyzers = append(analyzers, name)
					}
				}
				if len(analyzers) == 0 {
					continue
				}
				out = append(out, DirectiveUse{Pos: fset.Position(c.Pos()), Analyzers: analyzers, Reason: reason})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}
