package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow flags discarded error returns — the dropped-error class that turns
// a truncated trace file or a half-written snapshot into silently corrupt
// forecasting state. A call whose last result is `error` must have that
// result consumed; the analyzer reports:
//
//   - expression statements that discard an error-returning call;
//   - discarded `x.Close()` (deferred or not) where reaching definitions
//     prove x may have been opened writable (os.Create / os.OpenFile);
//     handles provably from os.Open are exempt because Close on a read
//     handle cannot lose data;
//   - `go f()` discarding f's error on a goroutine boundary;
//   - assignments that blank every error result (`_ = f()`).
//
// Print-family calls are exempt: fmt.Print/Println/Printf always, and
// fmt.Fprint* unless the destination's static type is *os.File or
// *bufio.Writer (writes into in-memory buffers cannot fail; writes to
// files and buffered file writers can). Diagnostic writes to os.Stderr /
// os.Stdout, methods on in-memory sinks (bytes.Buffer, strings.Builder),
// and Write on the hash.Hash interfaces are likewise exempt — their errors
// are documented as always nil or have no recovery path.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "error-returning calls must not be silently discarded",
	Run:  runErrFlow,
}

func runErrFlow(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkErrFlowFunc(fd.Recv, fd.Type, fd.Body)
			inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
				p.checkErrFlowFunc(nil, lit.Type, lit.Body)
			})
		}
	}
}

// checkErrFlowFunc walks one function body. Reaching definitions over the
// body resolve whether a deferred Close receiver was opened writable.
func (p *Pass) checkErrFlowFunc(recv *ast.FieldList, ft *ast.FuncType, body *ast.BlockStmt) {
	var reach *reaching // built lazily: only defer Close needs provenance
	getReach := func() *reaching {
		if reach == nil {
			reach = newReaching(p.Info, recv, ft, body)
		}
		return reach
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				p.checkDiscardedCall(call, getReach, st)
			}
		case *ast.DeferStmt:
			p.checkDiscardedCall(st.Call, getReach, st)
		case *ast.GoStmt:
			if _, isLit := st.Call.Fun.(*ast.FuncLit); !isLit {
				p.checkDiscardedCall(st.Call, nil, st)
			}
		case *ast.AssignStmt:
			p.checkBlankAssign(st)
		}
		return true
	})
}

// checkDiscardedCall reports call if it returns an error that the enclosing
// statement throws away. getReach is non-nil only in defer position, where
// Close provenance decides between the read-only exemption and a report.
func (p *Pass) checkDiscardedCall(call *ast.CallExpr, getReach func() *reaching, element ast.Node) {
	if !p.returnsError(call) || p.errExempt(call) {
		return
	}
	if getReach != nil && p.isReadOnlyClose(call, getReach(), element) {
		return
	}
	verb := "call"
	if _, isDefer := element.(*ast.DeferStmt); isDefer {
		verb = "deferred call"
	} else if _, isGo := element.(*ast.GoStmt); isGo {
		verb = "goroutine call"
	}
	p.Reportf(call.Pos(), "%s to %s discards its error; check it, or blank it with an explanatory //lint:ignore errflow", verb, callName(call))
}

// checkBlankAssign reports assignments whose left side blanks every
// error-typed result of an error-returning call (e.g. `_ = f()` or
// `v, _ := open()` where only the error is blanked is fine — at least one
// named result shows intent; all-blank is not).
func (p *Pass) checkBlankAssign(st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || !p.returnsError(call) || p.errExempt(call) {
		return
	}
	for _, lhs := range st.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	p.Reportf(st.Pos(), "assignment blanks the error from %s; handle it, or suppress with a reasoned //lint:ignore errflow", callName(call))
}

// returnsError reports whether call's last result is the builtin error type.
func (p *Pass) returnsError(call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	if t == nil {
		// Fixture fallback: well-known error-returning method names keep
		// golden tests meaningful even without full type info.
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		if rt.Len() == 0 {
			return false
		}
		return isErrorType(rt.At(rt.Len() - 1).Type())
	default:
		return isErrorType(rt)
	}
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error"
}

// errExempt applies the audited exemption list: calls whose error is
// documented never to matter for data integrity.
func (p *Pass) errExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt printers.
	if pkgID, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			name := sel.Sel.Name
			if name == "Print" || name == "Println" || name == "Printf" {
				return true
			}
			if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
				if p.isStdStream(call.Args[0]) {
					return true
				}
				return !p.isFailableWriter(p.Info.TypeOf(call.Args[0]))
			}
		}
	}
	// Methods on in-memory sinks whose errors are always nil.
	if rt := p.Info.TypeOf(sel.X); rt != nil {
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		s := rt.String()
		if s == "bytes.Buffer" || s == "strings.Builder" {
			return true
		}
		// hash.Hash.Write is documented to never return an error; every
		// stdlib implementation honors that contract.
		if sel.Sel.Name == "Write" && (s == "hash.Hash" || s == "hash.Hash32" || s == "hash.Hash64") {
			return true
		}
	}
	return false
}

// isStdStream reports whether e is the os.Stderr or os.Stdout variable.
// Diagnostic writes there are exempt: a failing stderr has no recovery
// path, and flagging every progress line would drown the real findings.
func (p *Pass) isStdStream(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stderr" && sel.Sel.Name != "Stdout") {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := p.Info.Uses[pkgID].(*types.PkgName); ok {
		return pn.Imported().Path() == "os"
	}
	return false
}

// isFailableWriter reports whether writes to t can actually fail: a real
// file or a buffered writer in front of one. Everything else (in-memory
// buffers, test writers behind io.Writer) is treated as infallible so the
// experiment harness's Fprintf fan-out stays quiet.
func (p *Pass) isFailableWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	s := t.String()
	return s == "*os.File" || s == "*bufio.Writer"
}

// isReadOnlyClose reports whether call is x.Close() where every definition
// of x reaching the defer is an os.Open call — a read-only handle whose
// Close cannot lose buffered writes.
func (p *Pass) isReadOnlyClose(call *ast.CallExpr, reach *reaching, element ast.Node) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	defs := reach.defsAt(element, obj)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if d.param || d.rhs == nil || !p.isOsOpenCall(d.rhs) {
			return false
		}
	}
	return true
}

// isOsOpenCall reports whether e is a direct os.Open(...) call.
func (p *Pass) isOsOpenCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Open" {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := p.Info.Uses[pkgID].(*types.PkgName); ok {
		return pn.Imported().Path() == "os"
	}
	return pkgID.Name == "os" // fixture fallback without import resolution
}

// callName renders a compact name for diagnostics: pkg.Func, recv.Method,
// or the bare function name.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if base := baseIdent(f.X); base != nil {
			return base.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "function"
}
