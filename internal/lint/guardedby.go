package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// GuardedBy verifies lock-discipline annotations. A struct field annotated
//
//	// qb5000:guardedby <mutex-field>
//
// may only be read or written at points where the dataflow analysis proves
// the named sibling sync.Mutex/RWMutex is held (Lock or RLock on every path
// into the access). Helper methods that rely on the caller's lock declare it
// with
//
//	// qb5000:locked <mutex-field>
//
// on the method: inside, the receiver's lock is assumed held; every call
// site is then checked like a field access. The special guard `atomic`
// restricts a field to method-call access (Load/Store/Add/CompareAndSwap on
// the sync/atomic wrapper types), flagging copies or address escapes.
//
// The analysis is a per-function must-hold lattice walk over the CFG
// (dataflow.go): branches intersect, so a lock taken on only one arm does
// not count. Function literals start with no locks held — a closure may run
// on another goroutine — so guarded accesses inside pool workers must either
// lock or carry an audited //lint:ignore with the reason the access is safe.
// Composite literals (the value under construction is not yet shared) and
// _test.go files are exempt.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated qb5000:guardedby must only be accessed with their mutex held",
	Run:  runGuardedBy,
}

var (
	guardedByRe = regexp.MustCompile(`^//\s*qb5000:guardedby\s+(\S+)\s*$`)
	lockedRe    = regexp.MustCompile(`^//\s*qb5000:locked\s+(\S+)\s*$`)
)

// guardAtomic is the reserved guard name for atomics.
const guardAtomic = "atomic"

// lockSet is the must-hold fact: keys are "<base>.<mutexField>" rendered
// from the access path (e.g. "c.mu"), so distinct receivers of the same
// type stay distinct.
type lockSet map[string]bool

func (s lockSet) with(key string) lockSet {
	if s[key] {
		return s
	}
	n := make(lockSet, len(s)+1)
	for k := range s {
		n[k] = true
	}
	n[key] = true
	return n
}

func (s lockSet) without(key string) lockSet {
	if !s[key] {
		return s
	}
	n := make(lockSet, len(s))
	for k := range s {
		if k != key {
			n[k] = true
		}
	}
	return n
}

func joinLocks(a, b lockSet) lockSet {
	out := make(lockSet)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equalLocks(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// one.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockTransfer updates the held-lock set for one element node: calls of the
// form <base>.<mutexField>.Lock/RLock add "<base>.<mutexField>", Unlock and
// RUnlock remove it. Deferred unlocks run at function exit, so DeferStmt
// elements leave the set unchanged, which is exactly the
// Lock-then-defer-Unlock idiom's semantics. Lock calls inside nested
// function literals do not affect the enclosing function.
func lockTransfer(p *Pass, f lockSet, n ast.Node) lockSet {
	if _, ok := n.(*ast.DeferStmt); ok {
		return f
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var op int // +1 acquire, -1 release
		switch sel.Sel.Name {
		case "Lock", "RLock":
			op = +1
		case "Unlock", "RUnlock":
			op = -1
		default:
			return true
		}
		if !isMutexType(p.Info.TypeOf(sel.X)) {
			return true
		}
		key := types.ExprString(sel.X)
		if op > 0 {
			f = f.with(key)
		} else {
			f = f.without(key)
		}
		return true
	})
	return f
}

// guardInfo is one annotated field.
type guardInfo struct {
	field *types.Var // the guarded field
	guard string     // sibling mutex field name, or "atomic"
}

// guardTable holds the package's annotations.
type guardTable struct {
	fields map[*types.Var]*guardInfo
	locked map[types.Object]string // method → mutex field assumed held
}

// collectGuards scans struct declarations and method docs for annotations,
// reporting malformed ones (unknown guard field, non-mutex guard, locked
// annotation without a receiver) so the grammar stays auditable.
func collectGuards(p *Pass) *guardTable {
	t := &guardTable{
		fields: make(map[*types.Var]*guardInfo),
		locked: make(map[types.Object]string),
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := annotationIn(guardedByRe, field.Doc, field.Comment)
				if guard == "" {
					continue
				}
				if guard != guardAtomic && !structHasMutex(p, st, guard) {
					p.Reportf(field.Pos(), "qb5000:guardedby names %q, which is not a sync.Mutex/RWMutex field of this struct (or the literal %q)", guard, guardAtomic)
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						t.fields[v] = &guardInfo{field: v, guard: guard}
					}
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			guard := annotationIn(lockedRe, fd.Doc, nil)
			if guard == "" {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				p.Reportf(fd.Pos(), "qb5000:locked %s on a function without a receiver; the annotation declares a receiver-held lock", guard)
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				t.locked[obj] = guard
			}
		}
	}
	return t
}

func annotationIn(re *regexp.Regexp, groups ...*ast.CommentGroup) string {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := re.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// structHasMutex reports whether the struct literally declares a mutex field
// with the given name.
func structHasMutex(p *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return isMutexType(p.Info.TypeOf(field.Type))
			}
		}
	}
	return false
}

func runGuardedBy(p *Pass) {
	guards := collectGuards(p)
	if len(guards.fields) == 0 && len(guards.locked) == 0 {
		return
	}
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		parents := parentMap(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := lockSet{}
			if guard, ok := guards.locked[p.Info.Defs[fd.Name]]; ok {
				if recv := receiverName(fd); recv != "" {
					entry = entry.with(recv + "." + guard)
				}
			}
			p.checkLockedBody(guards, parents, fd.Body, entry)
			// Closures nested in the declaration run with no locks held:
			// they may execute on a different goroutine (worker pools).
			inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
				p.checkLockedBody(guards, parents, lit.Body, lockSet{})
			})
		}
	}
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// inspectFuncLits calls f for every function literal under root, including
// literals nested in other literals.
func inspectFuncLits(root ast.Node, f func(*ast.FuncLit)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			f(lit)
		}
		return true
	})
}

// checkLockedBody runs the must-hold analysis over one function body and
// reports guarded-field accesses and qb5000:locked call sites where the
// required lock is not provably held.
func (p *Pass) checkLockedBody(guards *guardTable, parents map[ast.Node]ast.Node, body *ast.BlockStmt, entry lockSet) {
	g := buildCFG(body)
	transfer := func(f lockSet, n ast.Node) lockSet { return lockTransfer(p, f, n) }
	reported := make(map[ast.Node]bool)
	forwardFlow(g, entry, transfer, joinLocks, equalLocks, func(n ast.Node, held lockSet) {
		// Elements synthesized for `range` clauses reuse sub-expressions of
		// the real statement; dedupe so a node is checked once.
		inspectShallow(n, func(m ast.Node) bool {
			if reported[m] {
				return true
			}
			switch x := m.(type) {
			case *ast.SelectorExpr:
				p.checkGuardedSelector(guards, parents, x, held, reported)
			case *ast.CallExpr:
				p.checkLockedCall(guards, x, held, reported)
			}
			return true
		})
	})
}

// checkGuardedSelector validates one <base>.<field> access against the
// annotation table.
func (p *Pass) checkGuardedSelector(guards *guardTable, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr, held lockSet, reported map[ast.Node]bool) {
	obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	gi, ok := guards.fields[obj]
	if !ok {
		return
	}
	if gi.guard == guardAtomic {
		// The only sanctioned shape is a method call on the field:
		// base.field.Load() etc. Anything else (copy, address-of, direct
		// state access) defeats the atomic wrapper.
		if outer, ok := parents[sel].(*ast.SelectorExpr); ok {
			if call, ok := parents[outer].(*ast.CallExpr); ok && call.Fun == outer {
				return
			}
		}
		reported[sel] = true
		p.Reportf(sel.Pos(), "field %s is qb5000:guardedby atomic and must only be used through its atomic method calls (Load/Store/Add/CompareAndSwap)", sel.Sel.Name)
		return
	}
	key := types.ExprString(sel.X) + "." + gi.guard
	if held[key] {
		return
	}
	reported[sel] = true
	p.Reportf(sel.Pos(), "access to %s.%s (qb5000:guardedby %s) without holding %s on every path; lock it, or mark the enclosing method // qb5000:locked %s",
		types.ExprString(sel.X), sel.Sel.Name, gi.guard, key, gi.guard)
}

// checkLockedCall validates a call to a qb5000:locked method: the caller
// must hold the receiver's declared mutex.
func (p *Pass) checkLockedCall(guards *guardTable, call *ast.CallExpr, held lockSet, reported map[ast.Node]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee := p.Info.Uses[sel.Sel]
	if callee == nil {
		return
	}
	guard, ok := guards.locked[callee]
	if !ok {
		return
	}
	key := types.ExprString(sel.X) + "." + guard
	if held[key] {
		return
	}
	reported[call] = true
	p.Reportf(call.Pos(), "call to %s requires %s held (qb5000:locked %s in its declaration)",
		types.ExprString(call.Fun), key, guard)
}

// GuardAnnotations returns a human-readable inventory of the package's
// guardedby/locked annotations — used by the driver's -debt report to show
// how much of the tree is under lock-discipline checking.
func GuardAnnotations(pkg *Package) []string {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, analyzer: GuardedBy}
	t := collectGuards(pass)
	var out []string
	for v, gi := range t.fields {
		out = append(out, v.Name()+" guardedby "+gi.guard)
	}
	for m, guard := range t.locked {
		out = append(out, m.Name()+" locked "+guard)
	}
	sort.Strings(out)
	return out
}
