package lint

// This file is the intraprocedural dataflow layer the semantic analyzers
// (guardedby, sliceshare, errflow) build on: a per-function control-flow
// graph over go/ast, a generic forward worklist solver, and reaching
// definitions. It is deliberately stdlib-only — no golang.org/x/tools —
// matching the loader's zero-dependency contract.
//
// Precision notes. Blocks hold "element" nodes: simple statements and the
// sub-expressions of control statements, in evaluation order. Function
// literals are opaque to the enclosing function's flow (a closure may run on
// another goroutine, so its effects must not leak into the caller's facts);
// analyzers that care about closure bodies build a separate CFG per literal.
// A `range` statement contributes a synthesized AssignStmt (key, value :=
// X) to the loop head so the key/value definitions recur per iteration.
// Unknown or panicking control flow degrades to straight-line, which is the
// conservative direction for the must-analyses built here.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A cfgBlock is one straight-line run of element nodes with successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// A funcCFG is the control-flow graph of one function body. blocks[0] is the
// entry block; exit is the single synthetic exit every return reaches.
type funcCFG struct {
	blocks []*cfgBlock
	exit   *cfgBlock
}

// loopCtx tracks where break/continue jump inside the innermost loops,
// switches, and selects. cont is nil for switch/select contexts (continue
// skips them).
type loopCtx struct {
	brk   *cfgBlock
	cont  *cfgBlock
	label string
}

type cfgBuilder struct {
	g     *funcCFG
	cur   *cfgBlock // nil after a terminating statement (dead code follows)
	loops []loopCtx
	// label bookkeeping for goto: name → target block, plus blocks waiting
	// for a label not yet seen (forward goto).
	labels  map[string]*cfgBlock
	pending map[string][]*cfgBlock
	// nextLabel names the loop/switch started by the labeled statement being
	// built, so `break L` / `continue L` resolve.
	nextLabel string
}

// buildCFG constructs the CFG for a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:       &funcCFG{},
		labels:  make(map[string]*cfgBlock),
		pending: make(map[string][]*cfgBlock),
	}
	b.cur = b.newBlock()
	b.g.exit = &cfgBlock{}
	b.stmtList(body.List)
	b.link(b.cur, b.g.exit)
	b.g.blocks = append(b.g.blocks, b.g.exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// link adds an edge from src to dst, tolerating a nil src (dead code).
func (b *cfgBuilder) link(src, dst *cfgBlock) {
	if src == nil {
		return
	}
	src.succs = append(src.succs, dst)
}

// add appends an element node to the current block. After a terminator the
// current block is nil; a fresh unreachable block keeps later elements
// addressable without wiring them into the flow.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being entered.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.ExprStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.DeferStmt, *ast.GoStmt:
		b.add(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.exit)
		b.cur = nil
	case *ast.LabeledStmt:
		target := b.newBlock()
		b.link(b.cur, target)
		b.cur = target
		b.labels[st.Label.Name] = target
		for _, w := range b.pending[st.Label.Name] {
			b.link(w, target)
		}
		delete(b.pending, st.Label.Name)
		b.nextLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.nextLabel = ""
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st)
	case *ast.RangeStmt:
		b.rangeStmt(st)
	case *ast.SwitchStmt:
		b.stmtIfAny(st.Init)
		b.add(st.Tag)
		b.switchBody(st.Body, nil)
	case *ast.TypeSwitchStmt:
		b.stmtIfAny(st.Init)
		b.add(st.Assign)
		b.switchBody(st.Body, st.Assign)
	case *ast.SelectStmt:
		b.selectStmt(st)
	default:
		// Anything unrecognized is treated as a straight-line element.
		b.add(s)
	}
}

func (b *cfgBuilder) stmtIfAny(s ast.Stmt) {
	if s != nil {
		b.stmt(s)
	}
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	b.add(st)
	name := ""
	if st.Label != nil {
		name = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if name == "" || b.loops[i].label == name {
				b.link(b.cur, b.loops[i].brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].cont != nil && (name == "" || b.loops[i].label == name) {
				b.link(b.cur, b.loops[i].cont)
				break
			}
		}
	case token.GOTO:
		if target, ok := b.labels[name]; ok {
			b.link(b.cur, target)
		} else if b.cur != nil {
			b.pending[name] = append(b.pending[name], b.cur)
		}
	case token.FALLTHROUGH:
		// Wired by switchBody, which knows the next clause's block.
		b.cur = nil
		return
	}
	b.cur = nil
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	b.stmtIfAny(st.Init)
	b.add(st.Cond)
	cond := b.cur
	done := &cfgBlock{}

	thenB := b.newBlock()
	b.link(cond, thenB)
	b.cur = thenB
	b.stmt(st.Body)
	b.link(b.cur, done)

	if st.Else != nil {
		elseB := b.newBlock()
		b.link(cond, elseB)
		b.cur = elseB
		b.stmt(st.Else)
		b.link(b.cur, done)
	} else {
		b.link(cond, done)
	}
	b.g.blocks = append(b.g.blocks, done)
	b.cur = done
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt) {
	label := b.takeLabel()
	b.stmtIfAny(st.Init)
	head := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	b.add(st.Cond)

	done := b.newBlock()
	post := b.newBlock()
	if st.Cond != nil {
		b.link(head, done)
	}
	body := b.newBlock()
	b.link(head, body)

	b.loops = append(b.loops, loopCtx{brk: done, cont: post, label: label})
	b.cur = body
	b.stmt(st.Body)
	b.link(b.cur, post)
	b.loops = b.loops[:len(b.loops)-1]

	b.cur = post
	b.stmtIfAny(st.Post)
	b.link(b.cur, head)
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt) {
	label := b.takeLabel()
	// X is evaluated once, before the loop.
	b.add(st.X)
	head := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	// Key/value are (re)defined every iteration: synthesize the assignment
	// so reaching-definitions sees a fresh def per trip around the loop.
	var lhs []ast.Expr
	if st.Key != nil {
		lhs = append(lhs, st.Key)
	}
	if st.Value != nil {
		lhs = append(lhs, st.Value)
	}
	if len(lhs) > 0 {
		b.add(&ast.AssignStmt{Lhs: lhs, TokPos: st.For, Tok: st.Tok, Rhs: []ast.Expr{st.X}})
	}

	body := b.newBlock()
	done := b.newBlock()
	b.link(head, body)
	b.link(head, done)

	b.loops = append(b.loops, loopCtx{brk: done, cont: head, label: label})
	b.cur = body
	b.stmt(st.Body)
	b.link(b.cur, head)
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = done
}

// switchBody wires the case clauses of a switch or type switch. Each
// clause's guard expressions and body share one block; fallthrough jumps to
// the next clause's block.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, _ ast.Stmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock()
	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock()
		b.link(head, caseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, done)
	}
	b.loops = append(b.loops, loopCtx{brk: done, label: label})
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for j, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(cc.Body)-1 {
				fallsThrough = true
				if i+1 < len(caseBlocks) {
					b.link(b.cur, caseBlocks[i+1])
				}
				b.cur = nil
				continue
			}
			b.stmt(s)
		}
		if !fallsThrough {
			b.link(b.cur, done)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	done := b.newBlock()
	b.loops = append(b.loops, loopCtx{brk: done, label: label})
	for _, s := range st.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.link(head, blk)
		b.cur = blk
		b.stmtIfAny(cc.Comm)
		b.stmtList(cc.Body)
		b.link(b.cur, done)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = done
}

// inspectShallow walks n like ast.Inspect but does not descend into function
// literals: a closure's body belongs to its own flow, not the enclosing
// function's.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// forwardFlow solves a forward dataflow problem over g with a worklist,
// then replays the fixpoint calling visit(node, factBefore) for every
// element of every reachable block. entry seeds the entry block; transfer
// must be pure (it is re-applied during the replay); join merges facts where
// edges meet; equal bounds the iteration.
//
// It returns the fact flowing into the synthetic exit block and whether the
// exit is reachable at all (an infinite loop leaves it unreached, in which
// case the zero fact comes back). Callers that only need the per-element
// replay ignore the return values.
func forwardFlow[F any](g *funcCFG, entry F,
	transfer func(F, ast.Node) F,
	join func(F, F) F,
	equal func(F, F) bool,
	visit func(ast.Node, F),
) (F, bool) {
	var zero F
	if len(g.blocks) == 0 {
		return zero, false
	}
	in := make(map[*cfgBlock]F, len(g.blocks))
	seen := make(map[*cfgBlock]bool, len(g.blocks))
	in[g.blocks[0]] = entry
	seen[g.blocks[0]] = true
	work := []*cfgBlock{g.blocks[0]}
	queued := map[*cfgBlock]bool{g.blocks[0]: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		f := in[blk]
		for _, n := range blk.nodes {
			f = transfer(f, n)
		}
		for _, s := range blk.succs {
			var nf F
			if !seen[s] {
				nf = f
			} else {
				nf = join(in[s], f)
				if equal(nf, in[s]) {
					continue
				}
			}
			in[s] = nf
			seen[s] = true
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	if visit != nil {
		for _, blk := range g.blocks {
			if !seen[blk] {
				continue
			}
			f := in[blk]
			for _, n := range blk.nodes {
				visit(n, f)
				f = transfer(f, n)
			}
		}
	}
	return in[g.exit], seen[g.exit]
}

// ---- Reaching definitions ----

// A defSite is one definition of a variable that may reach a use.
type defSite struct {
	// site is the defining node: an AssignStmt (possibly synthesized from a
	// range clause), DeclStmt, IncDecStmt, or — for parameters — the
	// parameter's *ast.Ident.
	site ast.Node
	// rhs is the defining expression when it is uniquely attributable (the
	// matching right-hand side, or the shared call of a multi-value
	// assignment); nil when unknown.
	rhs ast.Expr
	// param marks the function-entry definition of a parameter.
	param bool
}

// defFact maps each variable to the set of definitions that may reach the
// current point. Facts are persistent: transfer copies before mutating.
type defFact map[types.Object][]defSite

// reaching computes reaching definitions for one function body and answers
// queries at element granularity.
type reaching struct {
	before map[ast.Node]defFact
}

// defsAt returns the definitions of obj that may reach the given element
// node (a node stored in a CFG block — a statement, not a sub-expression).
func (r *reaching) defsAt(element ast.Node, obj types.Object) []defSite {
	return r.before[element][obj]
}

// newReaching solves reaching definitions over body. recv and params seed
// the entry fact; info resolves identifiers.
func newReaching(info *types.Info, recv *ast.FieldList, ft *ast.FuncType, body *ast.BlockStmt) *reaching {
	g := buildCFG(body)
	entry := defFact{}
	seedParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					entry[obj] = []defSite{{site: name, param: true}}
				}
			}
		}
	}
	seedParams(recv)
	if ft != nil {
		seedParams(ft.Params)
		seedParams(ft.Results)
	}

	r := &reaching{before: make(map[ast.Node]defFact)}
	transfer := func(f defFact, n ast.Node) defFact {
		return defTransfer(info, f, n)
	}
	forwardFlow(g, entry, transfer, joinDefs, equalDefs,
		func(n ast.Node, f defFact) {
			if _, dup := r.before[n]; !dup {
				r.before[n] = f
			}
		})
	return r
}

// defTransfer applies the kill/gen effect of one element node. Effects
// hidden inside function literals are deliberately ignored (see the file
// comment); everything else falls through unchanged.
func defTransfer(info *types.Info, f defFact, n ast.Node) defFact {
	gen := func(id *ast.Ident, site ast.Node, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		nf := make(defFact, len(f)+1)
		for k, v := range f {
			nf[k] = v
		}
		nf[obj] = []defSite{{site: site, rhs: rhs}}
		f = nf
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(st.Rhs) == len(st.Lhs) {
				rhs = st.Rhs[i]
			} else if len(st.Rhs) == 1 {
				// Multi-value form: every lhs is defined by the one call
				// (or range clause, where Rhs is the ranged operand).
				rhs = st.Rhs[0]
			}
			gen(id, st, rhs)
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return f
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					rhs = vs.Values[0]
				}
				gen(name, st, rhs)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := st.X.(*ast.Ident); ok {
			gen(id, st, nil)
		}
	}
	return f
}

func joinDefs(a, b defFact) defFact {
	out := make(defFact, len(a)+len(b))
	for obj, defs := range a {
		out[obj] = defs
	}
	for obj, defs := range b {
		if existing, ok := out[obj]; ok {
			merged := existing
			have := make(map[ast.Node]bool, len(existing))
			for _, d := range existing {
				have[d.site] = true
			}
			for _, d := range defs {
				if !have[d.site] {
					merged = append(merged[:len(merged):len(merged)], d)
				}
			}
			out[obj] = merged
		} else {
			out[obj] = defs
		}
	}
	return out
}

func equalDefs(a, b defFact) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, da := range a {
		db, ok := b[obj]
		if !ok || len(da) != len(db) {
			return false
		}
		sites := make(map[ast.Node]bool, len(da))
		for _, d := range da {
			sites[d.site] = true
		}
		for _, d := range db {
			if !sites[d.site] {
				return false
			}
		}
	}
	return true
}
