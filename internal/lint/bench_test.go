package lint

import (
	"testing"
)

// BenchmarkVetTree measures one full analyzer sweep over the module so the
// cost of the suite (now including the dataflow-based analyzers) stays
// visible in CI's bench-smoke job. Loading/type-checking happens once
// outside the timed region; the timed body is the pure analysis cost.
func BenchmarkVetTree(b *testing.B) {
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		b.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		b.Fatal("no packages loaded")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, pkg := range pkgs {
			total += len(Run(pkg, All))
		}
		_ = total
	}
}
