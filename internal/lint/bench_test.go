package lint

import (
	"testing"
)

// BenchmarkVetTree measures one full analyzer sweep over the module so the
// cost of the suite (now including the interprocedural analyzers) stays
// visible in CI's bench-smoke job. Loading/type-checking happens once
// outside the timed region; the timed body is the graph + summary build
// plus the pure analysis cost — exactly what one qb5000vet run pays after
// type checking.
func BenchmarkVetTree(b *testing.B) {
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		b.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		b.Fatal("no packages loaded")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := NewProgram(pkgs)
		total := 0
		for _, pkg := range pkgs {
			total += len(prog.Run(pkg, All))
		}
		_ = total
	}
}

// BenchmarkCallGraph isolates the interprocedural layer: building the
// package-set call graph and computing the bottom-up function summaries,
// without running any analyzer. The delta between this and BenchmarkVetTree
// is the per-analyzer walking cost.
func BenchmarkCallGraph(b *testing.B) {
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		b.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		b.Fatal("no packages loaded")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := NewProgram(pkgs)
		if len(prog.Graph.Nodes) == 0 {
			b.Fatal("empty call graph")
		}
	}
}
