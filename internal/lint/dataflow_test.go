package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// checkSrc parses and type-checks a single import-free file.
func checkSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

// sinkDefs runs reaching definitions over the named function and, for each
// call to sink(x) in source order, renders the definitions of the argument
// as a sorted "L<line>" / "param" list.
func sinkDefs(t *testing.T, src, fn string) []string {
	t.Helper()
	fset, file, info := checkSrc(t, src)
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == fn {
			fd = f
		}
	}
	if fd == nil {
		t.Fatalf("function %s not found", fn)
	}
	r := newReaching(info, fd.Recv, fd.Type, fd.Body)

	// Collect sink(...) calls with their enclosing element statements.
	type sinkUse struct {
		element ast.Node
		arg     *ast.Ident
	}
	var uses []sinkUse
	parents := parentMap(file)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "sink" {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if !ok {
			t.Fatalf("sink argument must be an identifier")
		}
		element := parents[call]
		for {
			if _, ok := element.(*ast.ExprStmt); ok {
				break
			}
			element = parents[element]
		}
		uses = append(uses, sinkUse{element: element, arg: arg})
		return true
	})
	sort.Slice(uses, func(i, j int) bool { return uses[i].arg.Pos() < uses[j].arg.Pos() })

	var out []string
	for _, u := range uses {
		defs := r.defsAt(u.element, info.ObjectOf(u.arg))
		var labels []string
		for _, d := range defs {
			if d.param {
				labels = append(labels, "param")
			} else {
				labels = append(labels, fmt.Sprintf("L%d", fset.Position(d.site.Pos()).Line))
			}
		}
		sort.Slice(labels, func(i, j int) bool {
			// Numeric line order, with "param" sorting last.
			li, lj := labels[i], labels[j]
			if (li == "param") != (lj == "param") {
				return lj == "param"
			}
			if len(li) != len(lj) {
				return len(li) < len(lj)
			}
			return li < lj
		})
		out = append(out, strings.Join(labels, ","))
	}
	return out
}

// TestReachingDefs drives the CFG builder and the reaching-definitions
// solver through every control construct the analyzers rely on. Each sink(x)
// call expects the line numbers of the definitions of x that may reach it.
func TestReachingDefs(t *testing.T) {
	const header = "package p\n\nfunc sink(int) {}\n\n"
	cases := []struct {
		name string
		src  string // line 5 is the first line of src
		want []string
	}{
		{
			name: "straight line",
			src: `func f() {
	x := 1
	sink(x)
}`,
			want: []string{"L6"},
		},
		{
			name: "reassignment kills",
			src: `func f() {
	x := 1
	x = 2
	sink(x)
}`,
			want: []string{"L7"},
		},
		{
			name: "if merge keeps both",
			src: `func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	sink(x)
}`,
			want: []string{"L6,L8"},
		},
		{
			name: "if else kills initial",
			src: `func f(c bool) {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	sink(x)
}`,
			want: []string{"L8,L10"},
		},
		{
			name: "loop back edge",
			src: `func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		sink(x)
		x = 2
	}
	sink(x)
}`,
			want: []string{"L6,L9", "L6,L9"},
		},
		{
			name: "range defines per iteration",
			src: `func f(xs []int) {
	for _, v := range xs {
		sink(v)
	}
}`,
			want: []string{"L6"},
		},
		{
			name: "parameter reaches until shadowing assignment",
			src: `func f(a int, c bool) {
	sink(a)
	if c {
		a = 3
	}
	sink(a)
}`,
			want: []string{"param", "L8,param"},
		},
		{
			name: "switch fallthrough unions clauses",
			src: `func f(c, d bool) {
	x := 1
	switch {
	case c:
		x = 2
		fallthrough
	case d:
		sink(x)
	}
}`,
			want: []string{"L6,L9"},
		},
		{
			name: "goto skips dead assignment",
			src: `func f() {
	x := 1
	goto L
	x = 2
L:
	sink(x)
}`,
			want: []string{"L6"},
		},
		{
			name: "continue carries loop def to head",
			src: `func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		if i == 0 {
			x = 2
			continue
		}
		sink(x)
	}
}`,
			want: []string{"L6,L9"},
		},
		{
			name: "closure effects are opaque",
			src: `func f() {
	x := 1
	g := func() {
		x = 2
	}
	g()
	sink(x)
}`,
			want: []string{"L6"},
		},
		{
			name: "break leaves loop def visible after",
			src: `func f(n int) {
	x := 1
	for {
		x = 2
		if n > 0 {
			break
		}
	}
	sink(x)
}`,
			want: []string{"L8"},
		},
		{
			name: "select clauses merge",
			src: `func f(ch chan int, c bool) {
	x := 1
	select {
	case x = <-ch:
	default:
		if c {
			x = 3
		}
	}
	sink(x)
}`,
			want: []string{"L6,L8,L11"},
		},
		{
			name: "var decl with initializer",
			src: `func f(c bool) {
	var x = 1
	var y int
	if c {
		y = x
	}
	sink(y)
}`,
			want: []string{"L7,L9"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := sinkDefs(t, header+tc.src, "f")
			if len(got) != len(tc.want) {
				t.Fatalf("got %d sink sites %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("sink %d: reaching defs = %s, want %s", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestReachingDefsRHS checks that definitions carry their defining
// expression: the multi-value `f, err := open()` form attributes the shared
// call, and range definitions attribute the ranged operand.
func TestReachingDefsRHS(t *testing.T) {
	src := `package p

func sink(int) {}

func open() (int, error) { return 0, nil }

func f(xs []int) {
	v, _ := open()
	sink(v)
	for _, e := range xs {
		sink(e)
	}
}`
	fset, file, info := checkSrc(t, src)
	fd := file.Decls[2].(*ast.FuncDecl)
	r := newReaching(info, fd.Recv, fd.Type, fd.Body)
	parents := parentMap(file)
	var checked int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "sink" {
			return true
		}
		arg := call.Args[0].(*ast.Ident)
		element := parents[call].(*ast.ExprStmt)
		defs := r.defsAt(element, info.ObjectOf(arg))
		if len(defs) != 1 {
			t.Fatalf("%s: got %d defs, want 1", arg.Name, len(defs))
		}
		rhs := defs[0].rhs
		if rhs == nil {
			t.Fatalf("%s: def has no attributed rhs", arg.Name)
		}
		switch arg.Name {
		case "v":
			if _, ok := rhs.(*ast.CallExpr); !ok {
				t.Errorf("v: rhs = %T at %v, want the open() call", rhs, fset.Position(rhs.Pos()))
			}
		case "e":
			if rid, ok := rhs.(*ast.Ident); !ok || rid.Name != "xs" {
				t.Errorf("e: rhs = %T, want the ranged operand xs", rhs)
			}
		}
		checked++
		return true
	})
	if checked != 2 {
		t.Fatalf("checked %d sinks, want 2", checked)
	}
}

// TestCFGTerminations pins structural properties: every function's exit block
// is reached, and statements after a return are not wired into the flow.
func TestCFGTerminations(t *testing.T) {
	src := `package p

func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`
	_, file, _ := checkSrc(t, src)
	fd := file.Decls[0].(*ast.FuncDecl)
	g := buildCFG(fd.Body)
	reached := make(map[*cfgBlock]bool)
	var walk func(*cfgBlock)
	walk = func(b *cfgBlock) {
		if reached[b] {
			return
		}
		reached[b] = true
		for _, s := range b.succs {
			walk(s)
		}
	}
	walk(g.blocks[0])
	if !reached[g.exit] {
		t.Fatalf("exit block unreachable from entry")
	}
}
