package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadLockOrderFixture(t *testing.T) (*Program, *Package) {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src", "lockorder"), "fixture/lockorder")
	if err != nil {
		t.Fatalf("loading lockorder fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("lockorder fixture has type errors: %v", terr)
	}
	return NewProgram([]*Package{pkg}), pkg
}

// TestLockSummaryBits checks the two new interprocedural facts: Acquires
// propagates lock classes over static call edges, and HeldAtExit captures
// the lock()-helper shape.
func TestLockSummaryBits(t *testing.T) {
	prog, _ := loadLockOrderFixture(t)
	sum := func(id string) *FuncSummary {
		t.Helper()
		s := prog.Summary("fixture/lockorder." + id)
		if s == nil {
			t.Fatalf("no summary for %s", id)
		}
		return s
	}
	if !sum("lockD").Acquires["lockorder.D.mu"] {
		t.Error("lockD must have Acquires[lockorder.D.mu]")
	}
	if len(sum("lockD").HeldAtExit) != 0 {
		t.Errorf("lockD releases what it takes; HeldAtExit = %v", sum("lockD").HeldAtExit)
	}
	if !sum("nestDUnderC").Acquires["lockorder.D.mu"] {
		t.Error("nestDUnderC must inherit Acquires[lockorder.D.mu] from lockD")
	}
	if !sum("nestDUnderC").Acquires["lockorder.C.mu"] {
		t.Error("nestDUnderC must have Acquires[lockorder.C.mu] from its own body")
	}
	if !sum("(H).lock").HeldAtExit["lockorder.H.mu"] {
		t.Error("(*H).lock must have HeldAtExit[lockorder.H.mu]")
	}
	if !sum("(H).lock").Acquires["lockorder.H.mu"] {
		t.Error("(*H).lock must have Acquires[lockorder.H.mu]")
	}
	// Spawned callees' lock traffic happens off this frame.
	if sum("spawnOpaque").Acquires["lockorder.A.mu"] != true {
		t.Error("spawnOpaque locks A.mu directly")
	}
}

// TestAllocatesSummary checks the Allocates bit over the noalloc fixture:
// plainly allocating helpers are marked, clean leaves are not.
func TestAllocatesSummary(t *testing.T) {
	pkg, err := LoadFixture(filepath.Join("testdata", "src", "noalloc"), "fixture/noalloc")
	if err != nil {
		t.Fatalf("loading noalloc fixture: %v", err)
	}
	prog := NewProgram([]*Package{pkg})
	sum := func(id string) *FuncSummary {
		t.Helper()
		s := prog.Summary("fixture/noalloc." + id)
		if s == nil {
			t.Fatalf("no summary for %s", id)
		}
		return s
	}
	if !sum("makeSlice").Allocates {
		t.Error("makeSlice must have Allocates (make)")
	}
	if !sum("callsHelper").Allocates {
		t.Error("callsHelper must inherit Allocates from makeSlice")
	}
	if sum("leaf").Allocates {
		t.Error("leaf must not have Allocates")
	}
	if sum("appendParam").Allocates {
		t.Error("appendParam appends into caller-owned backing; must not have Allocates")
	}
}

// TestLockGraphEdges checks the assembled order graph: edge kinds, cycle
// marking, and the via-call provenance of summary-propagated acquisitions.
func TestLockGraphEdges(t *testing.T) {
	prog, _ := loadLockOrderFixture(t)
	g := prog.LockGraph()
	find := func(from, to string, declared bool) *LockEdge {
		for _, e := range g.Edges {
			if e.From == from && e.To == to && e.Declared == declared {
				return e
			}
		}
		return nil
	}
	ab := find("lockorder.A.mu", "lockorder.B.mu", false)
	if ab == nil || !ab.InCycle || ab.ViaCall {
		t.Errorf("A.mu→B.mu: want a direct in-cycle edge, got %+v", ab)
	}
	cd := find("lockorder.C.mu", "lockorder.D.mu", false)
	if cd == nil || !cd.ViaCall || !cd.InCycle {
		t.Errorf("C.mu→D.mu: want a via-call in-cycle edge, got %+v", cd)
	}
	ef := find("lockorder.E.mu", "lockorder.F.mu", true)
	if ef == nil || !ef.InCycle {
		t.Errorf("declared E.mu<F.mu: want an in-cycle declared edge, got %+v", ef)
	}
	if e := find("lockorder.S.mu", "lockorder.S.mu", false); e == nil || !e.InCycle {
		t.Errorf("S.mu→S.mu: want a self-loop edge marked in-cycle, got %+v", e)
	}
}

func TestWriteLockDOT(t *testing.T) {
	prog, _ := loadLockOrderFixture(t)
	var sb strings.Builder
	if err := WriteLockDOT(&sb, prog.LockGraph()); err != nil {
		t.Fatalf("WriteLockDOT: %v", err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph qb5000_lockorder {",
		`"lockorder.A.mu" -> "lockorder.B.mu" [color=red];`,
		`"lockorder.C.mu" -> "lockorder.D.mu" [style=dotted, color=red];`,
		`style=dashed, label="declared"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// TestLockOrderSelfDeclare checks the one annotation shape the golden fixture
// cannot carry (a well-formed annotation line has no room for a want
// comment): declaring a class ordered before itself.
func TestLockOrderSelfDeclare(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\n// qb5000:lockorder p.T.mu < p.T.mu\n\nfunc f() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(dir, "fixture/selfdeclare")
	if err != nil {
		t.Fatalf("loading temp fixture: %v", err)
	}
	findings := Run(pkg, []*Analyzer{LockOrder})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "an order must relate two distinct lock classes") {
		t.Errorf("want exactly the self-declare finding, got %v", findings)
	}
}
