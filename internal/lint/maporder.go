package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// MapOrder flags `range` over a map whose body performs order-sensitive work
// — appending to a slice that outlives the loop, accumulating into a
// floating-point variable (float addition is not associative, so iteration
// order changes the bits), or fanning work out through internal/parallel —
// unless a deterministic sort follows the loop in the enclosing statement
// list. This is the classic silent-nondeterminism bug in centroid and
// feature loops: Go randomizes map iteration order per run, so every such
// loop silently reorders downstream arithmetic.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work inside map iteration without a subsequent sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			hazard := p.mapRangeHazard(rs)
			if hazard == "" {
				return true
			}
			if sortFollows(p, parents, rs) {
				return true
			}
			p.Reportf(rs.For, "map iteration order is randomized and the loop body %s; iterate over sorted keys or sort the result afterwards", hazard)
			return true
		})
	}
}

// mapRangeHazard scans the loop body for order-sensitive operations and
// describes the first one found. Two shapes are deliberately exempt because
// their result does not depend on iteration order: work keyed by the range
// key itself (out[k] += v builds each key's value independently), and the
// clone idiom out[k] = append([]T(nil), v...), which grows a fresh slice.
func (p *Pass) mapRangeHazard(rs *ast.RangeStmt) string {
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = p.Info.ObjectOf(id)
	}
	var hazard string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			base := baseIdent(st.Lhs[0])
			if base == nil || !p.declaredOutside(base, rs) {
				return true
			}
			if p.indexedByKey(st.Lhs[0], keyObj) {
				return true
			}
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok && st.Tok == token.ASSIGN {
				if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
					// Only the grow idiom x = append(x, ...) records map
					// order in element positions.
					if arg := baseIdent(call.Args[0]); arg != nil && p.Info.ObjectOf(arg) != nil &&
						p.Info.ObjectOf(arg) == p.Info.ObjectOf(base) {
						hazard = "appends to " + base.Name + " (element order follows map order)"
						return false
					}
				}
			}
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloat(p.Info.TypeOf(st.Lhs[0])) {
					hazard = "accumulates floats into " + base.Name + " (float addition is order-sensitive)"
					return false
				}
			}
		case *ast.CallExpr:
			if isParallelCall(p, st) {
				hazard = "dispatches work through internal/parallel in map order"
				return false
			}
		}
		return true
	})
	return hazard
}

// indexedByKey reports whether lhs is an index expression whose index is the
// range statement's own key variable.
func (p *Pass) indexedByKey(lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && p.Info.ObjectOf(id) == keyObj
}

// baseIdent unwraps selectors, indexing, parens, and derefs down to the root
// identifier of an assignable expression.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's object is declared outside the range
// statement, i.e. the mutated state outlives the loop.
func (p *Pass) declaredOutside(id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		// No type info (broken fixture import); assume it escapes.
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// isParallelCall reports whether call invokes a function from the
// internal/parallel package (resolved via type info, with a syntactic
// fallback on the package name for fixtures).
func isParallelCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := p.Info.Uses[x].(*types.PkgName); ok {
		return pathIsParallel(pn.Imported().Path())
	}
	return x.Name == "parallel"
}

func pathIsParallel(path string) bool {
	return path == "qb5000/internal/parallel" || path == "parallel"
}

var sortishName = regexp.MustCompile(`(?i)sort`)

// sortFollows climbs from the range statement through enclosing statement
// lists and reports whether any later sibling statement (at any nesting
// level on the way up to the function boundary) performs a sort.
func sortFollows(p *Pass, parents map[ast.Node]ast.Node, rs *ast.RangeStmt) bool {
	var cur ast.Node = rs
	for {
		parent := parents[cur]
		if parent == nil {
			return false
		}
		switch pb := parent.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if laterStmtSorts(p, pb.List, cur) {
				return true
			}
		case *ast.CaseClause:
			if laterStmtSorts(p, pb.Body, cur) {
				return true
			}
		case *ast.CommClause:
			if laterStmtSorts(p, pb.Body, cur) {
				return true
			}
		}
		cur = parent
	}
}

func laterStmtSorts(p *Pass, list []ast.Stmt, cur ast.Node) bool {
	idx := -1
	for i, s := range list {
		if s == cur {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range list[idx+1:] {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isSortish(p, call) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortish recognizes calls into the sort/slices packages and, as a
// fallback, any callee whose name mentions "sort" (covering local helpers
// like sortedKeys).
func isSortish(p *Pass, call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[x].(*types.PkgName); ok {
				path := pn.Imported().Path()
				if path == "sort" || path == "slices" {
					return true
				}
			}
		}
		return sortishName.MatchString(fn.Sel.Name)
	case *ast.Ident:
		return sortishName.MatchString(fn.Name)
	}
	return false
}

// parentMap records each node's parent within the file.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
