package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexps of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re  *regexp.Regexp
	met bool
}

// loadExpectations harvests `// want` comments from the fixture sources,
// keyed by file:line.
func loadExpectations(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", k, m[1], err)
					}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// runGolden loads a fixture directory, runs one analyzer over it, and
// compares the surviving findings against the fixture's want comments.
func runGolden(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := LoadFixture(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s has type errors: %v", fixture, terr)
	}
	wants := loadExpectations(t, pkg)
	for _, f := range Run(pkg, []*Analyzer{a}) {
		k := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[k] {
			if !w.met && w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.met {
				t.Errorf("%s: expected finding matching %q, got none", k, w.re)
			}
		}
	}
}

func TestSeededRandGolden(t *testing.T) { runGolden(t, SeededRand, "seededrand", "fixture/seededrand") }
func TestNoClockGolden(t *testing.T)    { runGolden(t, NoClock, "noclock", "fixture/noclock") }
func TestMapOrderGolden(t *testing.T)   { runGolden(t, MapOrder, "maporder", "fixture/maporder") }
func TestCtxFirstGolden(t *testing.T)   { runGolden(t, CtxFirst, "ctxfirst", "fixture/ctxfirst") }
func TestFloatEqGolden(t *testing.T)    { runGolden(t, FloatEq, "floateq", "fixture/floateq") }

func TestGuardedByGolden(t *testing.T)  { runGolden(t, GuardedBy, "guardedby", "fixture/guardedby") }
func TestSliceShareGolden(t *testing.T) { runGolden(t, SliceShare, "sliceshare", "fixture/sliceshare") }
func TestErrFlowGolden(t *testing.T)    { runGolden(t, ErrFlow, "errflow", "fixture/errflow") }

func TestGoLeakGolden(t *testing.T)     { runGolden(t, GoLeak, "goleak", "fixture/goleak") }
func TestCtxPropGolden(t *testing.T)    { runGolden(t, CtxProp, "ctxprop", "fixture/ctxprop") }
func TestHandleLifeGolden(t *testing.T) { runGolden(t, HandleLife, "handlelife", "fixture/handlelife") }

func TestLockOrderGolden(t *testing.T) { runGolden(t, LockOrder, "lockorder", "fixture/lockorder") }
func TestNoAllocGolden(t *testing.T)   { runGolden(t, NoAlloc, "noalloc", "fixture/noalloc") }
func TestDurableGolden(t *testing.T)   { runGolden(t, Durable, "durable", "fixture/durable") }
func TestFaultPathGolden(t *testing.T) { runGolden(t, FaultPath, "faultpath", "fixture/faultpath") }
func TestBoundedGolden(t *testing.T)   { runGolden(t, Bounded, "bounded", "fixture/bounded") }
func TestShedFlowGolden(t *testing.T)  { runGolden(t, ShedFlow, "shedflow", "fixture/shedflow") }

// TestFsxProtocolGolden drives the durable analyzer's in-fsx mode: the
// fixture's package clause is named fsx, so the sync-before-rename
// must-analysis runs instead of the annotation flow checks.
func TestFsxProtocolGolden(t *testing.T) { runGolden(t, Durable, "fsxproto", "fixture/fsxproto") }

// TestUnknownAnnotationKeyGolden checks the qb5000: key hygiene scan: a
// typo'd annotation key is a finding, regardless of which analyzer runs.
func TestUnknownAnnotationKeyGolden(t *testing.T) {
	runGolden(t, NoAlloc, "qb5000key", "fixture/qb5000key")
}

// TestSuppression checks that valid //lint:ignore directives (leading,
// trailing, and multi-analyzer) swallow findings, while directives naming a
// different analyzer do not.
func TestSuppression(t *testing.T) { runGolden(t, SeededRand, "suppress", "fixture/suppress") }

// TestNoClockStrict loads the fixture under a model-package import path,
// where noclock suppressions must be rejected.
func TestNoClockStrict(t *testing.T) {
	runGolden(t, NoClock, "noclockstrict", "qb5000/internal/core")
}

// TestDirectiveHygiene exercises the malformed-directive findings directly:
// a missing reason, a missing analyzer name, and an unknown analyzer must
// each be reported under the "lint" pseudo-analyzer.
func TestDirectiveHygiene(t *testing.T) {
	src := `package p

func a() {
	//lint:ignore seededrand
	_ = 1
}

func b() {
	//lint:ignore
	_ = 2
}

func c() {
	//lint:ignore bogusname because I said so
	_ = 3
}

func d() {
	//lint:ignore floateq this one is fine
	_ = 4
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "hygiene.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := directives(fset, []*ast.File{file})
	wantMsgs := []string{
		"must carry a reason",
		"names no analyzer",
		`unknown analyzer "bogusname"`,
	}
	if len(bad) != len(wantMsgs) {
		t.Fatalf("got %d hygiene findings, want %d: %v", len(bad), len(wantMsgs), bad)
	}
	for i, f := range bad {
		if f.Analyzer != "lint" {
			t.Errorf("finding %d reported under %q, want \"lint\"", i, f.Analyzer)
		}
		if !strings.Contains(f.Message, wantMsgs[i]) {
			t.Errorf("finding %d = %q, want it to mention %q", i, f.Message, wantMsgs[i])
		}
	}
	// The one well-formed directive must have registered a suppression that
	// covers its own line and the next.
	ok := Finding{Pos: token.Position{Filename: "hygiene.go", Line: 20}, Analyzer: "floateq"}
	if !sup.suppresses(ok) {
		t.Errorf("well-formed directive did not register a suppression")
	}
	if sup.suppresses(Finding{Pos: token.Position{Filename: "hygiene.go", Line: 20}, Analyzer: "seededrand"}) {
		t.Errorf("suppression leaked to an analyzer the directive does not name")
	}
}
