package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadCallGraphFixture builds a single-unit Program over the callgraph
// fixture package.
func loadCallGraphFixture(t *testing.T) *Program {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src", "callgraph"), "fixture/callgraph")
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture has type errors: %v", terr)
	}
	return NewProgram([]*Package{pkg})
}

// edgesFrom collects callerID's out-edges keyed by callee ID.
func edgesFrom(t *testing.T, prog *Program, callerID string) map[string]*CallEdge {
	t.Helper()
	node := prog.Graph.Nodes[callerID]
	if node == nil {
		t.Fatalf("no node %q in graph (have %d nodes)", callerID, len(prog.Graph.Nodes))
	}
	out := make(map[string]*CallEdge, len(node.Out))
	for _, e := range node.Out {
		out[e.Callee.ID] = e
	}
	return out
}

func TestCallGraphStaticEdges(t *testing.T) {
	prog := loadCallGraphFixture(t)
	out := edgesFrom(t, prog, "fixture/callgraph.spinsViaCallee")
	e, ok := out["fixture/callgraph.spin"]
	if !ok {
		t.Fatal("spinsViaCallee -> spin edge missing")
	}
	if e.Go || e.Defer || e.Dynamic {
		t.Errorf("spinsViaCallee -> spin should be a plain static edge, got go=%v defer=%v dynamic=%v", e.Go, e.Defer, e.Dynamic)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadCallGraphFixture(t)

	// Runner has one method: both A and B cover it.
	out := edgesFrom(t, prog, "fixture/callgraph.dispatch")
	for _, want := range []string{"fixture/callgraph.(A).Run", "fixture/callgraph.(B).Run"} {
		e, ok := out[want]
		if !ok {
			t.Errorf("dispatch is missing may-call edge to %s", want)
			continue
		}
		if !e.Dynamic {
			t.Errorf("dispatch -> %s must be tagged Dynamic", want)
		}
	}

	// TwoFace needs Run+Close: only B's receiver covers the set.
	out2 := edgesFrom(t, prog, "fixture/callgraph.dispatch2")
	if _, ok := out2["fixture/callgraph.(B).Run"]; !ok {
		t.Error("dispatch2 is missing may-call edge to (B).Run")
	}
	if _, ok := out2["fixture/callgraph.(A).Run"]; ok {
		t.Error("dispatch2 must not may-call (A).Run: A lacks Close, so it cannot satisfy TwoFace")
	}
}

func TestCallGraphGoDeferTags(t *testing.T) {
	prog := loadCallGraphFixture(t)
	out := edgesFrom(t, prog, "fixture/callgraph.spawnAndDefer")
	if e, ok := out["fixture/callgraph.worker"]; !ok || !e.Go {
		t.Errorf("spawnAndDefer -> worker must exist with the Go tag (got %+v)", e)
	}
	if e, ok := out["fixture/callgraph.cleanup"]; !ok || !e.Defer {
		t.Errorf("spawnAndDefer -> cleanup must exist with the Defer tag (got %+v)", e)
	}
}

func TestCallGraphLiteralNode(t *testing.T) {
	prog := loadCallGraphFixture(t)
	out := edgesFrom(t, prog, "fixture/callgraph.callsLit")
	if _, ok := out["fixture/callgraph.callsLit$lit0"]; !ok {
		t.Errorf("callsLit must have an edge to its own literal node; edges: %v", keys(out))
	}
}

func TestCallGraphSCC(t *testing.T) {
	prog := loadCallGraphFixture(t)
	var mutualSCC []*FuncNode
	for _, scc := range prog.Graph.SCCs {
		for _, n := range scc {
			if n.ID == "fixture/callgraph.mutual1" {
				mutualSCC = scc
			}
		}
	}
	if mutualSCC == nil {
		t.Fatal("mutual1 not found in any SCC")
	}
	if len(mutualSCC) != 2 {
		t.Fatalf("mutual1's SCC should have exactly 2 members, got %d", len(mutualSCC))
	}
	found := false
	for _, n := range mutualSCC {
		if n.ID == "fixture/callgraph.mutual2" {
			found = true
		}
	}
	if !found {
		t.Error("mutual2 must share mutual1's SCC")
	}

	// Bottom-up order: a callee's SCC appears before its caller's.
	pos := make(map[string]int)
	for i, scc := range prog.Graph.SCCs {
		for _, n := range scc {
			pos[n.ID] = i
		}
	}
	if pos["fixture/callgraph.spin"] > pos["fixture/callgraph.spinsViaCallee"] {
		t.Error("SCC order is not bottom-up: spin (callee) must come before spinsViaCallee (caller)")
	}
}

func TestFuncSummaries(t *testing.T) {
	prog := loadCallGraphFixture(t)
	sum := func(id string) *FuncSummary {
		t.Helper()
		s := prog.Summary("fixture/callgraph." + id)
		if s == nil {
			t.Fatalf("no summary for %s", id)
		}
		return s
	}
	if !sum("spin").MayBlockForever {
		t.Error("spin must be MayBlockForever")
	}
	if !sum("spinsViaCallee").MayBlockForever {
		t.Error("spinsViaCallee must inherit MayBlockForever from spin")
	}
	if !sum("spawnAndDefer").Spawns {
		t.Error("spawnAndDefer must be Spawns")
	}
	if !sum("spawnAndDefer").AcceptsCtx {
		t.Error("spawnAndDefer must be AcceptsCtx")
	}
	if !sum("closesArg").Closes[0] {
		t.Error("closesArg must close its first parameter")
	}
	if !sum("closesTransitively").Closes[0] {
		t.Error("closesTransitively must inherit Closes[0] through closesArg")
	}
	if !sum("returnsOpen").ReturnsOpen {
		t.Error("returnsOpen must be ReturnsOpen")
	}
	if !sum("die").NoReturn {
		t.Error("die must be NoReturn")
	}
	if sum("cleanup").MayBlockForever || sum("cleanup").Spawns || sum("cleanup").NoReturn {
		t.Error("cleanup must have a quiet summary")
	}
	// Dynamic edges must not leak summaries: dispatch may-calls Run
	// implementations but proves nothing by it.
	if s := sum("dispatch"); s.MayBlockForever || s.Spawns {
		t.Error("dispatch must not inherit bits over dynamic edges")
	}
}

func TestWriteDOT(t *testing.T) {
	prog := loadCallGraphFixture(t)
	var sb strings.Builder
	if err := WriteDOT(&sb, prog.Graph); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph qb5000 {",
		`"fixture/callgraph.spawnAndDefer" -> "fixture/callgraph.worker" [color=red, label="go"];`,
		`"fixture/callgraph.spawnAndDefer" -> "fixture/callgraph.cleanup" [style=dashed, label="defer"];`,
		`style=dotted`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func keys(m map[string]*CallEdge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
