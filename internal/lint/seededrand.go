package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand forbids the global math/rand (and math/rand/v2) top-level
// functions. Those draw from a process-wide generator whose state depends on
// everything else that ran before, so two retrainings of the same trace
// diverge. All randomness must flow through a seeded *rand.Rand derived from
// Config.Seed; the constructors that build one are allowed.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions; use a seeded *rand.Rand from Config.Seed",
	Run:  runSeededRand,
}

// seededRandConstructors build a local generator and are the only permitted
// top-level entry points.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes the *rand.Rand it draws from
	"NewPCG":     true, // math/rand/v2 seeded sources
	"NewChaCha8": true,
}

func runSeededRand(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on an explicit *rand.Rand are the sanctioned route.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if seededRandConstructors[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "global %s.%s draws from process-wide state; route randomness through a seeded *rand.Rand derived from Config.Seed", shortPath(path), fn.Name())
			return true
		})
	}
}

func shortPath(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
