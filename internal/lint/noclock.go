package lint

import (
	"go/ast"
	"go/types"
)

// NoClock flags wall-clock reads in non-test code. Model quality in QB5000
// is a pure function of the trace: timestamps must come from the trace being
// replayed or from an injected clock, never from time.Now. Legitimate
// wall-clock uses (measuring elapsed training time in experiments, daemon
// scheduling in cmd/) carry a //lint:ignore noclock directive with a reason;
// inside the strict model packages (internal/{core,cluster,forecast,nn,
// timeseries,preprocess}) even suppressions are rejected.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc:  "forbid time.Now/Since/Until in non-test code; use trace timestamps or an injected clock",
	Run:  runNoClock,
}

var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runNoClock(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil || !clockFuncs[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock; derive time from trace timestamps or an injected clock", fn.Name())
			return true
		})
	}
}
