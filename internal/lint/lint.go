// Package lint implements qb5000vet, the project's determinism and
// concurrency analyzer suite (DESIGN.md §7). QB5000's accuracy tables are
// only meaningful if retraining the same trace yields bit-identical models,
// so the analyzers forbid the usual sources of silent nondeterminism —
// unseeded global RNG, wall-clock reads in model code, order-dependent map
// iteration, unthreaded contexts, and exact float comparison — rather than
// relying on spot tests to catch regressions.
//
// Findings can be suppressed with a directive on the offending line or on
// the line directly above it:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// The reason is mandatory; a directive without one (or naming an unknown
// analyzer) is itself a finding. noclock findings inside the strict model
// packages (internal/{core,cluster,forecast,nn,timeseries,preprocess})
// cannot be suppressed at all: time there must come from trace timestamps
// or an injected clock.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// An Analyzer checks one rule of the determinism contract over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the full qb5000vet suite.
var All = []*Analyzer{SeededRand, NoClock, MapOrder, CtxFirst, FloatEq, GuardedBy, SliceShare, ErrFlow, GoLeak, CtxProp, HandleLife, LockOrder, NoAlloc, Durable, FaultPath, Bounded, ShedFlow}

// A Pass carries one type-checked package through the analyzers.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Prog is the interprocedural context (call graph + summaries) shared by
	// every unit of the run. The summary-based analyzers degrade to their
	// purely local checks when it is nil.
	Prog *Program

	// Unit is the package unit under analysis, so program-wide analyzers
	// (lockorder) can attribute their per-unit findings.
	Unit *Package

	analyzer *Analyzer
	findings []Finding
}

// Reportf records a finding for the running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls inside a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// strictClockPackages are the model-code packages where wall-clock reads are
// forbidden outright: noclock findings there ignore suppression directives.
var strictClockPackages = map[string]bool{
	"qb5000/internal/core":       true,
	"qb5000/internal/cluster":    true,
	"qb5000/internal/forecast":   true,
	"qb5000/internal/nn":         true,
	"qb5000/internal/timeseries": true,
	"qb5000/internal/preprocess": true,
}

// strictClockUnit reports whether unitPath is a strict model package (the
// in-package unit or its external _test unit).
func strictClockUnit(unitPath string) bool {
	return strictClockPackages[strings.TrimSuffix(unitPath, "_test")]
}

// Run executes the analyzers over one package unit in isolation: a
// single-unit Program is built on the fly, so the summary-based analyzers
// see the unit's own call graph but nothing across packages. The driver
// uses Program.Run instead to share one graph across the whole set.
func Run(pkg *Package, analyzers []*Analyzer) []Finding {
	return NewProgram([]*Package{pkg}).Run(pkg, analyzers)
}

// Run executes the analyzers over one unit of the program and returns the
// findings that survive //lint:ignore suppression, plus any
// directive-hygiene findings, sorted by position.
func (prog *Program) Run(pkg *Package, analyzers []*Analyzer) []Finding {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, Prog: prog, Unit: pkg}
	for _, a := range analyzers {
		pass.analyzer = a
		a.Run(pass)
	}
	sup, out := directives(pkg.Fset, pkg.Files)
	strict := strictClockUnit(pkg.Path)
	for _, f := range pass.findings {
		if sup.suppresses(f) {
			if strict && f.Analyzer == NoClock.Name {
				f.Message += " (suppression ignored: wall-clock reads are forbidden in model packages)"
			} else {
				continue
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreRe matches "//lint:ignore <names> <reason>"; the reason group is
// validated separately so an empty one can be reported.
var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?\s*(.*)$`)

// suppressions records, per filename, the lines carrying an ignore directive
// for each analyzer. A directive suppresses findings on its own line and on
// the line directly below it.
type suppressions map[string]map[int]bool // "analyzer\x00filename" is too fiddly; see key()

func key(analyzer, filename string) string { return analyzer + "\x00" + filename }

func (s suppressions) add(analyzer, filename string, line int) {
	k := key(analyzer, filename)
	if s[k] == nil {
		s[k] = make(map[int]bool)
	}
	s[k][line] = true
}

func (s suppressions) suppresses(f Finding) bool {
	lines := s[key(f.Analyzer, f.Pos.Filename)]
	return lines[f.Pos.Line] || lines[f.Pos.Line-1]
}

// knownAnalyzers validates directive names against the full suite, so a
// fixture run with a single analyzer still accepts directives for the rest.
var knownAnalyzers = func() map[string]bool {
	m := make(map[string]bool, len(All))
	for _, a := range All {
		m[a.Name] = true
	}
	return m
}()

// annotationKeyRe matches the key of any qb5000: source annotation. It is
// anchored so the indented example blocks in doc comments (`//\t// qb5000:…`)
// do not match.
var annotationKeyRe = regexp.MustCompile(`^//\s*qb5000:([A-Za-z0-9_-]+)`)

// knownAnnotationKeys is the full annotation grammar; a typo'd key
// (qb5000:noalock) would otherwise be silently ignored, quietly voiding the
// contract it meant to declare.
var knownAnnotationKeys = map[string]bool{
	"bounded":   true,
	"durable":   true,
	"guardedby": true,
	"locked":    true,
	"lockorder": true,
	"noalloc":   true,
	"serving":   true,
}

// directives scans comments for //lint:ignore markers. It returns the
// suppression table plus hygiene findings (reported under the pseudo-analyzer
// "lint") for directives that omit the mandatory reason or name an unknown
// analyzer, and for qb5000: annotations whose key is not in the grammar.
func directives(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Finding{Pos: fset.Position(pos), Analyzer: "lint", Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if km := annotationKeyRe.FindStringSubmatch(c.Text); km != nil && !knownAnnotationKeys[km[1]] {
					report(c.Pos(), "unknown qb5000: annotation key %q (known: bounded, durable, guardedby, locked, lockorder, noalloc, serving)", km[1])
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names, reason := m[1], strings.TrimSpace(m[2])
				if names == "" {
					report(c.Pos(), "lint:ignore directive names no analyzer; use //lint:ignore analyzer reason")
					continue
				}
				if reason == "" {
					report(c.Pos(), "lint:ignore directive must carry a reason: //lint:ignore %s <why this is safe>", names)
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					if !knownAnalyzers[name] {
						report(c.Pos(), "lint:ignore names unknown analyzer %q (known: seededrand, noclock, maporder, ctxfirst, floateq, guardedby, sliceshare, errflow, goleak, ctxprop, handlelife, lockorder, noalloc, durable, faultpath, bounded, shedflow)", name)
						continue
					}
					sup.add(name, pos.Filename, pos.Line)
				}
			}
		}
	}
	return sup, bad
}
