package lint

// CtxProp enforces context propagation one level deeper than ctxfirst: a
// function that was handed a context.Context must actually thread it.
// Two failure shapes are reported, both summary-based:
//
//  1. A ctx-carrying function passes a *fresh* context —
//     context.Background() or context.TODO() — as a call argument. The
//     cancellation chain is severed at that exact argument.
//  2. A ctx-carrying function statically calls a loaded function that does
//     not accept a context but (transitively, per its summary) conjures a
//     fresh one inside. The wrapper swallows the caller's deadline one
//     level down where no diff review will see it.
//
// Calls that accept a context and receive any context-typed argument are
// fine: deriving (WithCancel/WithTimeout) counts as forwarding. Test files
// are skipped, and so are nil-ctx guards (`if ctx == nil { ctx =
// context.Background() }`) — those assign, not pass.

import (
	"go/ast"
)

var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc:  "a function that receives a context must forward it, not mint fresh ones",
	Run:  runCtxProp,
}

func runCtxProp(p *Pass) {
	for _, file := range p.Files {
		if p.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if p.hasCtxParam(fd.Type) {
				p.checkCtxPropFunc(fd.Body)
			}
			// A closure sees its enclosing ctx via capture; check literals
			// under a ctx-carrying declaration too, and literals with their
			// own ctx parameter regardless.
			encl := p.hasCtxParam(fd.Type)
			inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
				if encl || p.hasCtxParam(lit.Type) {
					p.checkCtxPropFunc(lit.Body)
				}
			})
		}
	}
}

// hasCtxParam reports whether the function type declares a context.Context
// parameter.
func (p *Pass) hasCtxParam(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if p.isCtxType(f.Type) {
			return true
		}
	}
	return false
}

// checkCtxPropFunc walks one ctx-carrying body reporting severed chains.
func (p *Pass) checkCtxPropFunc(body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Shape 1: a fresh context passed as an argument.
		for _, arg := range call.Args {
			if ac, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isFreshCtxCall(p.Info, ac) {
				p.Reportf(ac.Pos(), "%s severs the cancellation chain: this function received a ctx; pass it (or a context derived from it) instead of a fresh one", callName(ac))
			}
		}
		// Shape 2: a loaded callee that swallows the context internally.
		if p.Prog == nil {
			return true
		}
		tf := staticCallee(p.Info, call)
		if tf == nil {
			return true
		}
		sum := p.Prog.Summary(funcID(tf))
		if sum != nil && !sum.AcceptsCtx && sum.UsesFreshCtx {
			p.Reportf(call.Pos(), "call to %s drops the context: the callee takes none and mints context.Background() internally; use a ctx-accepting variant or plumb the context through", callName(call))
		}
		return true
	})
}
