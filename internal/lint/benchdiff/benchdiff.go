// Package benchdiff compares two `go test -bench` outputs and reports
// per-benchmark and overall geomean ns/op ratios, for the CI
// perf-regression gate. It is deliberately a tiny stdlib-only subset of
// benchstat: parse the `BenchmarkX-N  iters  ns/op` lines, geomean the
// samples each side collected (run benchmarks with -count to get several),
// and fail when new/old exceeds a threshold.
//
// Single-sample noise is the usual way perf gates go flaky; the geomean over
// -count runs on each side plus the geomean across benchmarks damps it, and
// the threshold (default 15 %) is far above timer jitter on a warm machine
// while still catching a real regression like an allocation or a lock slipped
// into the hot loop.
package benchdiff

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Samples maps a benchmark name (GOMAXPROCS suffix stripped, sub-benchmark
// path kept) to its ns/op samples in input order.
type Samples map[string][]float64

// Parse extracts ns/op samples from `go test -bench` output. Lines that are
// not benchmark result lines (headers, PASS, ok) are ignored.
func Parse(r io.Reader) (Samples, error) {
	s := make(Samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s[name] = append(s[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: read: %w", err)
	}
	return s, nil
}

// parseLine matches `BenchmarkName[-P] <iters> <ns> ns/op ...`.
func parseLine(line string) (name string, ns float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	// The unit follows its value: `123 ns/op`.
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] != "ns/op" {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || v <= 0 {
			return "", 0, false
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			return "", 0, false // iteration count must be an integer
		}
		return stripProcs(fields[0]), v, true
	}
	return "", 0, false
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends
// (`BenchmarkFoo-8` → `BenchmarkFoo`), so baselines recorded on machines
// with different core counts still match.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// usable reports whether a per-side geomean can anchor a ratio: positive and
// finite. NaN compares false to everything, so the single comparison covers
// zero, negative, and NaN inputs alike.
func usable(v float64) bool { return v > 0 && !math.IsInf(v, 0) }

// geomean returns the geometric mean of vs (which must be positive).
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// BenchDelta is the comparison result for one benchmark present in both
// inputs.
type BenchDelta struct {
	Name     string
	Old, New float64 // geomean ns/op on each side
	Ratio    float64 // New / Old; > 1 is a slowdown
}

// Report is the outcome of one comparison.
type Report struct {
	Deltas []BenchDelta
	// Geomean is the overall new/old ratio across Deltas.
	Geomean float64
	// Threshold is the configured failure bar (e.g. 1.15).
	Threshold float64
	// OldOnly and NewOnly list benchmarks present on just one side; they are
	// excluded from Geomean but surfaced so a silently dropped benchmark
	// cannot pass the gate unnoticed.
	OldOnly, NewOnly []string
	// Invalid lists benchmarks whose samples on either side geomean to a
	// non-positive or non-finite ns/op (a zero-valued or corrupt line fed in
	// via the Samples API). They are excluded from Geomean — a ratio against
	// zero is meaningless — and they fail the gate: an unusable baseline must
	// never read as a pass.
	Invalid []string
}

// Failed reports whether the overall regression exceeds the threshold or any
// benchmark had unusable samples.
func (r Report) Failed() bool { return r.Geomean > r.Threshold || len(r.Invalid) > 0 }

// Compare matches benchmarks by name and computes per-benchmark and overall
// geomean ratios. maxRegress is the fractional regression bar: 0.15 fails
// when the overall geomean ns/op grew by more than 15 %.
func Compare(oldS, newS Samples, maxRegress float64) (Report, error) {
	rep := Report{Threshold: 1 + maxRegress}
	var ratios []float64
	for name, olds := range oldS {
		news, ok := newS[name]
		if !ok {
			rep.OldOnly = append(rep.OldOnly, name)
			continue
		}
		d := BenchDelta{Name: name, Old: geomean(olds), New: geomean(news)}
		if !usable(d.Old) || !usable(d.New) {
			rep.Invalid = append(rep.Invalid, name)
			continue
		}
		d.Ratio = d.New / d.Old
		rep.Deltas = append(rep.Deltas, d)
		ratios = append(ratios, d.Ratio)
	}
	for name := range newS {
		if _, ok := oldS[name]; !ok {
			rep.NewOnly = append(rep.NewOnly, name)
		}
	}
	if len(ratios) == 0 {
		if len(rep.Invalid) > 0 {
			sort.Strings(rep.Invalid)
			return rep, fmt.Errorf("benchdiff: every common benchmark has unusable (non-positive ns/op) samples: %s",
				strings.Join(rep.Invalid, ", "))
		}
		return rep, fmt.Errorf("benchdiff: no benchmarks in common")
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	sort.Strings(rep.OldOnly)
	sort.Strings(rep.NewOnly)
	sort.Strings(rep.Invalid)
	rep.Geomean = geomean(ratios)
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r Report) Format(w io.Writer) error {
	var b strings.Builder
	width := len("geomean")
	for _, d := range r.Deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s\n", width, "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range r.Deltas {
		fmt.Fprintf(&b, "%-*s  %12.1f  %12.1f  %+7.1f%%\n", width, d.Name, d.Old, d.New, (d.Ratio-1)*100)
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %+7.1f%%  (limit %+.1f%%)\n",
		width, "geomean", "", "", (r.Geomean-1)*100, (r.Threshold-1)*100)
	for _, n := range r.OldOnly {
		fmt.Fprintf(&b, "missing from new run: %s\n", n)
	}
	for _, n := range r.NewOnly {
		fmt.Fprintf(&b, "not in baseline: %s\n", n)
	}
	for _, n := range r.Invalid {
		fmt.Fprintf(&b, "unusable samples (non-positive ns/op): %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
