package benchdiff

import (
	"math"
	"strings"
	"testing"
)

const oldOut = `goos: linux
goarch: amd64
pkg: qb5000
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkObserveCacheHit-8   	 1000000	       300.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkObserveCacheHit-8   	 1000000	       310.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkObserveCacheMiss-8  	  200000	      7000 ns/op	    1700 B/op	      45 allocs/op
BenchmarkObserveParallel/goroutines=4-8 	  500000	      2500 ns/op
PASS
ok  	qb5000	3.1s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s["BenchmarkObserveCacheHit"]); got != 2 {
		t.Fatalf("CacheHit samples = %d, want 2", got)
	}
	if got := s["BenchmarkObserveCacheMiss"]; len(got) != 1 || got[0] != 7000 {
		t.Fatalf("CacheMiss samples = %v, want [7000]", got)
	}
	// Sub-benchmark names keep their path but lose the -GOMAXPROCS suffix.
	if got := s["BenchmarkObserveParallel/goroutines=4"]; len(got) != 1 {
		t.Fatalf("sub-benchmark not parsed: %v", s)
	}
	if len(s) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(s), s)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	s, err := Parse(strings.NewReader("BenchmarkBad notanumber 12 ns/op\nBenchmarkWorse-8 10 -5 ns/op\nnothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 {
		t.Fatalf("expected malformed lines ignored, got %v", s)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub=2-8":  "BenchmarkFoo/sub=2",
		"BenchmarkFoo/n-ary":    "BenchmarkFoo/n-ary",
		"BenchmarkObserve-fast": "BenchmarkObserve-fast",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func mk(pairs map[string][]float64) Samples { return Samples(pairs) }

func TestCompareWithinThreshold(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100, 100}, "BenchmarkB": {200}})
	cur := mk(map[string][]float64{"BenchmarkA": {110, 110}, "BenchmarkB": {200}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("5%% overall regression failed a 15%% gate: geomean=%v", rep.Geomean)
	}
	// geomean(1.1, 1.0) = sqrt(1.1)
	if want := math.Sqrt(1.1); math.Abs(rep.Geomean-want) > 1e-9 {
		t.Fatalf("geomean = %v, want %v", rep.Geomean, want)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100}, "BenchmarkB": {200}})
	cur := mk(map[string][]float64{"BenchmarkA": {200}, "BenchmarkB": {400}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("2x slowdown passed the gate: geomean=%v", rep.Geomean)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100}})
	cur := mk(map[string][]float64{"BenchmarkA": {20}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatal("a 5x speedup must pass")
	}
}

func TestCompareDisjointSets(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100}, "BenchmarkGone": {50}})
	cur := mk(map[string][]float64{"BenchmarkA": {100}, "BenchmarkNew": {70}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OldOnly) != 1 || rep.OldOnly[0] != "BenchmarkGone" {
		t.Fatalf("OldOnly = %v", rep.OldOnly)
	}
	if len(rep.NewOnly) != 1 || rep.NewOnly[0] != "BenchmarkNew" {
		t.Fatalf("NewOnly = %v", rep.NewOnly)
	}
}

func TestCompareNoCommon(t *testing.T) {
	if _, err := Compare(mk(map[string][]float64{"BenchmarkA": {1}}), mk(map[string][]float64{"BenchmarkB": {1}}), 0.15); err == nil {
		t.Fatal("expected an error when no benchmarks overlap")
	}
}

// TestParseIgnoresZeroValued documents Parse's contract: a `0 ns/op` line is
// not a sample (timers cannot measure it), so it never reaches Compare.
func TestParseIgnoresZeroValued(t *testing.T) {
	s, err := Parse(strings.NewReader("BenchmarkZero-8 1000 0 ns/op\nBenchmarkZero-8 1000 0.00 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 {
		t.Fatalf("zero-valued lines parsed as samples: %v", s)
	}
}

// TestCompareZeroBaseline feeds a zero-valued baseline sample through the
// Samples API: the benchmark must land in Invalid (no divide-by-zero, no
// NaN/Inf geomean), the rest of the report must stay descriptive, and the
// gate must fail rather than silently pass on an unusable baseline.
func TestCompareZeroBaseline(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {0}, "BenchmarkB": {200}})
	cur := mk(map[string][]float64{"BenchmarkA": {100}, "BenchmarkB": {200}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invalid) != 1 || rep.Invalid[0] != "BenchmarkA" {
		t.Fatalf("Invalid = %v, want [BenchmarkA]", rep.Invalid)
	}
	if len(rep.Deltas) != 1 || rep.Deltas[0].Name != "BenchmarkB" {
		t.Fatalf("Deltas = %+v, want only BenchmarkB", rep.Deltas)
	}
	if math.IsNaN(rep.Geomean) || math.IsInf(rep.Geomean, 0) || rep.Geomean != 1 {
		t.Fatalf("geomean = %v, want 1 (zero baseline must not poison it)", rep.Geomean)
	}
	if !rep.Failed() {
		t.Fatal("unusable baseline sample passed the gate")
	}
	var sb strings.Builder
	if err := rep.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unusable samples (non-positive ns/op): BenchmarkA") {
		t.Fatalf("report does not name the unusable benchmark:\n%s", sb.String())
	}
}

// TestCompareZeroNewSide is the mirror: zero samples in the fresh run are just
// as unusable as a zero baseline.
func TestCompareZeroNewSide(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100}, "BenchmarkB": {200}})
	cur := mk(map[string][]float64{"BenchmarkA": {0}, "BenchmarkB": {200}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Invalid) != 1 || rep.Invalid[0] != "BenchmarkA" {
		t.Fatalf("Invalid = %v, want [BenchmarkA]", rep.Invalid)
	}
	if !rep.Failed() {
		t.Fatal("unusable fresh sample passed the gate")
	}
}

// TestCompareAllInvalid: when every common benchmark is unusable there is no
// geomean to gate on; Compare must say so by name instead of reporting "no
// benchmarks in common".
func TestCompareAllInvalid(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {0}})
	cur := mk(map[string][]float64{"BenchmarkA": {100}})
	_, err := Compare(old, cur, 0.15)
	if err == nil {
		t.Fatal("expected an error when every common benchmark is unusable")
	}
	if !strings.Contains(err.Error(), "BenchmarkA") || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("error does not name the unusable benchmark: %v", err)
	}
}

// TestCompareBaselineOnly: a baseline with no counterpart in the fresh run is
// surfaced by name so a silently dropped benchmark is visible in the report.
func TestCompareBaselineOnly(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100}, "BenchmarkGone": {50}})
	cur := mk(map[string][]float64{"BenchmarkA": {100}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OldOnly) != 1 || rep.OldOnly[0] != "BenchmarkGone" {
		t.Fatalf("OldOnly = %v", rep.OldOnly)
	}
	var sb strings.Builder
	if err := rep.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "missing from new run: BenchmarkGone") {
		t.Fatalf("report does not surface the dropped benchmark:\n%s", sb.String())
	}
}

func TestFormat(t *testing.T) {
	old := mk(map[string][]float64{"BenchmarkA": {100}})
	cur := mk(map[string][]float64{"BenchmarkA": {150}, "BenchmarkNew": {10}})
	rep, err := Compare(old, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkA", "+50.0%", "geomean", "not in baseline: BenchmarkNew"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
