package lint

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

func fakeFindings() []Finding {
	return []Finding{
		{Pos: token.Position{Filename: "/repo/internal/a.go", Line: 10, Column: 2}, Analyzer: "errflow", Message: "call to f.Close discards its error"},
		{Pos: token.Position{Filename: "/repo/internal/a.go", Line: 10, Column: 2}, Analyzer: "errflow", Message: "call to f.Close discards its error"},
		{Pos: token.Position{Filename: "/repo/cmd/b.go", Line: 3, Column: 1}, Analyzer: "guardedby", Message: "access without lock"},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "/repo", fakeFindings()); err != nil {
		t.Fatal(err)
	}
	var out []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d findings, want 3", len(out))
	}
	if out[0].File != "internal/a.go" {
		t.Errorf("path not relativized: %q", out[0].File)
	}
	if out[2].Analyzer != "guardedby" || out[2].Line != 3 {
		t.Errorf("finding fields lost: %+v", out[2])
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", All, fakeFindings()); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "qb5000vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every analyzer plus the "lint" pseudo-rule must be present, and every
	// result's ruleId must resolve to a rule.
	rules := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	if len(rules) != len(All)+1 || !rules["lint"] {
		t.Errorf("rule table incomplete: %v", rules)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	for _, res := range run.Results {
		if !rules[res.RuleID] {
			t.Errorf("result ruleId %q has no rule", res.RuleID)
		}
		uri := res.Locations[0].Physical.Artifact.URI
		if strings.HasPrefix(uri, "/") {
			t.Errorf("artifact URI not repo-relative: %q", uri)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := fakeFindings()
	base := NewBaseline("/repo", findings)

	var buf bytes.Buffer
	if err := base.Write(&buf); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// The exact findings are fully absorbed.
	fresh, stale := reread.Filter("/repo", findings)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not clean: fresh=%v stale=%v", fresh, stale)
	}

	// A new finding is fresh; line moves are not (keys carry no line).
	moved := findings
	moved[0].Pos.Line = 99
	extra := append(moved, Finding{
		Pos: token.Position{Filename: "/repo/new.go", Line: 1}, Analyzer: "errflow", Message: "brand new",
	})
	fresh, stale = reread.Filter("/repo", extra)
	if len(fresh) != 1 || fresh[0].Message != "brand new" {
		t.Fatalf("fresh = %v, want only the new finding", fresh)
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}

	// A fixed finding leaves its baseline entry stale.
	fresh, stale = reread.Filter("/repo", findings[:1])
	if len(fresh) != 0 {
		t.Fatalf("fresh = %v, want none", fresh)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want the drained errflow count and the guardedby entry", stale)
	}
}

func TestDirectiveUses(t *testing.T) {
	const src = `package p

//lint:ignore seededrand deterministic seed derived from trace hash
var a = 1

//lint:ignore floateq,maporder audited: compares cluster IDs not floats
var b = 2

//lint:ignore unknownname reason for an unknown analyzer
var c = 3
`
	fset, file, _ := checkSrc(t, src)
	uses := DirectiveUses(fset, []*ast.File{file})
	if len(uses) != 2 {
		t.Fatalf("got %d uses, want 2 (unknown analyzer excluded): %v", len(uses), uses)
	}
	if len(uses[0].Analyzers) != 1 || uses[0].Analyzers[0] != "seededrand" {
		t.Errorf("first use analyzers = %v", uses[0].Analyzers)
	}
	if uses[0].Reason != "deterministic seed derived from trace hash" {
		t.Errorf("first use reason = %q", uses[0].Reason)
	}
	if len(uses[1].Analyzers) != 2 {
		t.Errorf("second use analyzers = %v, want floateq+maporder", uses[1].Analyzers)
	}
}
