package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock analyzer. It reuses the
// guardedby lock-set dataflow to track which mutexes are held at every
// program point, resolves each mutex to a program-wide identity class
// ("pkg.Type.field" for struct fields, "pkg.var" for package-level vars),
// and derives three kinds of findings:
//
//   - Self-deadlocks on any CFG path: re-Lock of a mutex already
//     write-held, an RLock→Lock upgrade, or RLock while write-held — each
//     a guaranteed single-goroutine deadlock on Go's non-reentrant locks.
//
//   - Locks held across statically-known blocking points: channel sends
//     and receives (unless inside a select with a default clause),
//     sync.WaitGroup.Wait, and static calls to a callee whose summary says
//     MayBlockForever.
//
//   - Lock-order cycles: every nested acquisition "B while A held" adds an
//     edge A→B to a global order graph (callee acquisitions propagate via
//     the Acquires summary bit over static call edges); a cycle in that
//     graph is a potential cross-goroutine deadlock. Intended orderings
//     are declarable with
//
//     // qb5000:lockorder <classA> < <classB>
//
//     anywhere in a non-test file; declared edges participate in cycle
//     detection, and an observed edge that contradicts a declaration is
//     reported even without a full observed cycle.
//
// Functions annotated
//
//	// qb5000:locked <mu>
//
// start with the receiver's declared mutex held (write mode), so helper
// methods contribute their nested acquisitions to the graph under the
// caller's lock. Callees whose HeldAtExit summary is non-empty (lock
// helpers) thread those classes into the caller's held set. Function
// literals start with no locks held, mirroring guardedby. _test.go files
// are exempt.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock-acquisition order must be acyclic; no self-deadlocks or blocking calls under a held lock",
	Run:  runLockOrder,
}

var (
	lockOrderRe       = regexp.MustCompile(`^//\s*qb5000:lockorder\s+(\S+)\s*<\s*(\S+)\s*$`)
	lockOrderPrefixRe = regexp.MustCompile(`^//\s*qb5000:lockorder\b`)
)

// lockClassOf resolves the program-wide identity class of a mutex
// expression: "pkg.Type.field" when the mutex is a named struct's field
// (the receiver type is resolved through pointers, so c.mu and sh.mu on
// different variables of one type share a class), "pkg.var" for a
// package-level var, and "" for locals, captures, and anything else the
// type information cannot pin down.
func lockClassOf(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				pkg := ""
				if obj.Pkg() != nil {
					pkg = obj.Pkg().Name()
				}
				return pkg + "." + obj.Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Package-qualified package-level var: pkg.Mu.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, ok := info.Uses[id].(*types.PkgName); ok {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return v.Pkg().Name() + "." + v.Name()
				}
			}
		}
		return ""
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

// A heldLock is one lock in the must-hold fact: its identity class (possibly
// "" for locals) and the mode it was taken in.
type heldLock struct {
	class string
	mode  byte // 'R' or 'W'
}

// heldFact maps expression-rendered mutex keys ("c.mu") to the held lock.
// Facts are persistent: with/without copy before mutating.
type heldFact map[string]heldLock

func (f heldFact) with(key string, l heldLock) heldFact {
	if have, ok := f[key]; ok && have == l {
		return f
	}
	n := make(heldFact, len(f)+1)
	for k, v := range f {
		n[k] = v
	}
	n[key] = l
	return n
}

func (f heldFact) without(key string) heldFact {
	if _, ok := f[key]; !ok {
		return f
	}
	n := make(heldFact, len(f))
	for k, v := range f {
		if k != key {
			n[k] = v
		}
	}
	return n
}

// joinHeld intersects (must-analysis). When the two paths disagree on mode,
// the read mode wins: it is the weaker claim, and a later Lock on the merged
// fact then reports the upgrade that is real on at least one path.
func joinHeld(a, b heldFact) heldFact {
	out := make(heldFact)
	for k, la := range a {
		lb, ok := b[k]
		if !ok {
			continue
		}
		l := la
		if lb.mode == 'R' {
			l.mode = 'R'
		}
		out[k] = l
	}
	return out
}

func equalHeld(a, b heldFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, la := range a {
		if lb, ok := b[k]; !ok || la != lb {
			return false
		}
	}
	return true
}

// A LockEdge is one ordering observation (or declaration) between two lock
// classes: To was acquired while From was held.
type LockEdge struct {
	From, To string
	Pos      token.Position // first witness acquisition, or the annotation
	Unit     string         // unit path the witness lives in
	Declared bool           // from a qb5000:lockorder annotation
	ViaCall  bool           // To comes from a callee's Acquires summary
	InCycle  bool           // the edge lies on a cycle in the order graph
}

// A LockOrderGraph is the program-wide lock-acquisition order graph plus the
// findings its construction produced, bucketed by unit so Program.Run can
// surface each finding in the unit that owns its position.
type LockOrderGraph struct {
	Edges []*LockEdge

	unitFindings map[string][]Finding
}

// LockGraph returns the lazily built program-wide lock-order graph.
func (prog *Program) LockGraph() *LockOrderGraph {
	if prog.lockGraph == nil {
		prog.lockGraph = buildLockGraph(prog)
	}
	return prog.lockGraph
}

func runLockOrder(p *Pass) {
	if p.Prog == nil || p.Unit == nil {
		return
	}
	g := p.Prog.LockGraph()
	for _, f := range g.unitFindings[p.Unit.Path] {
		f.Analyzer = p.analyzer.Name
		p.findings = append(p.findings, f)
	}
}

// lockSink accumulates the per-body analysis results while buildLockGraph
// walks the program.
type lockSink struct {
	unit     *Package
	graph    *LockOrderGraph
	edgeSeen map[string]*LockEdge
	findSeen map[string]bool
}

func (s *lockSink) report(pos token.Pos, format string, args ...any) {
	f := Finding{Pos: s.unit.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
	id := fmt.Sprintf("%s:%d:%d:%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
	if s.findSeen[id] {
		return
	}
	s.findSeen[id] = true
	s.graph.unitFindings[s.unit.Path] = append(s.graph.unitFindings[s.unit.Path], f)
}

// edge records one ordering observation, keeping the first witness per
// (From, To, Declared) triple.
func (s *lockSink) edge(from, to string, pos token.Pos, declared, viaCall bool) {
	id := from + "\x00" + to
	if declared {
		id += "\x00decl"
	}
	if s.edgeSeen[id] != nil {
		return
	}
	e := &LockEdge{
		From: from, To: to,
		Pos:      s.unit.Fset.Position(pos),
		Unit:     s.unit.Path,
		Declared: declared,
		ViaCall:  viaCall,
	}
	s.edgeSeen[id] = e
	s.graph.Edges = append(s.graph.Edges, e)
}

// buildLockGraph runs the held-lock dataflow over every non-test function in
// every unit, collecting order edges, declared orderings, and local
// findings, then closes the graph with cycle detection.
func buildLockGraph(prog *Program) *LockOrderGraph {
	sink := &lockSink{
		graph:    &LockOrderGraph{unitFindings: make(map[string][]Finding)},
		edgeSeen: make(map[string]*LockEdge),
		findSeen: make(map[string]bool),
	}
	for _, u := range prog.Units {
		sink.unit = u
		for _, file := range u.Files {
			if strings.HasSuffix(u.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			collectDeclaredOrder(sink, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				entry := heldFact{}
				if guard := annotationIn(lockedRe, fd.Doc, nil); guard != "" {
					if recv := receiverName(fd); recv != "" {
						entry = entry.with(recv+"."+guard, heldLock{class: lockedClass(u, fd, guard), mode: 'W'})
					}
				}
				analyzeLockBody(sink, prog, u, fd.Body, entry)
				// Closures start with no locks held (they may run on another
				// goroutine), exactly like guardedby.
				inspectFuncLits(fd.Body, func(lit *ast.FuncLit) {
					analyzeLockBody(sink, prog, u, lit.Body, heldFact{})
				})
			}
		}
	}
	closeLockGraph(sink)
	return sink.graph
}

// lockedClass renders the identity class a qb5000:locked annotation pins:
// the receiver's named type plus the declared guard field.
func lockedClass(u *Package, fd *ast.FuncDecl, guard string) string {
	name := recvName(fd.Recv.List[0].Type)
	if name == "" {
		return ""
	}
	return u.Types.Name() + "." + name + "." + guard
}

// collectDeclaredOrder scans a file's comments for qb5000:lockorder
// annotations, recording well-formed ones as declared edges and reporting
// malformed ones.
func collectDeclaredOrder(sink *lockSink, file *ast.File) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !lockOrderPrefixRe.MatchString(c.Text) {
				continue
			}
			m := lockOrderRe.FindStringSubmatch(c.Text)
			if m == nil {
				sink.report(c.Pos(), "malformed qb5000:lockorder annotation; use // qb5000:lockorder <classA> < <classB>")
				continue
			}
			if m[1] == m[2] {
				sink.report(c.Pos(), "qb5000:lockorder declares %s < itself; an order must relate two distinct lock classes", m[1])
				continue
			}
			sink.edge(m[1], m[2], c.Pos(), true, false)
		}
	}
}

// visitCtx carries the reporting-side state of one body's flow replay. It is
// nil during the pure transfer.
type visitCtx struct {
	sink        *lockSink
	nonBlocking map[ast.Node]bool
	reported    map[ast.Node]bool
}

func analyzeLockBody(sink *lockSink, prog *Program, u *Package, body *ast.BlockStmt, entry heldFact) {
	g := buildCFG(body)
	goDefer := goDeferOperands(body)
	vc := &visitCtx{
		sink:        sink,
		nonBlocking: nonBlockingChanOps(body),
		reported:    make(map[ast.Node]bool),
	}
	transfer := func(f heldFact, n ast.Node) heldFact {
		return lockStep(prog, u, f, n, goDefer, nil)
	}
	forwardFlow(g, entry, transfer, joinHeld, equalHeld, func(n ast.Node, f heldFact) {
		lockStep(prog, u, f, n, goDefer, vc)
	})
}

// goDeferOperands collects the calls that are the direct operand of a go or
// defer statement; they do not run at their textual position.
func goDeferOperands(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	ops := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			ops[st.Call] = true
		case *ast.DeferStmt:
			ops[st.Call] = true
		}
		return true
	})
	return ops
}

// nonBlockingChanOps marks the channel operations appearing as the comm
// clause of a select that has a default clause: such a select never blocks.
func nonBlockingChanOps(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, s := range sel.Body.List {
			if cc, ok := s.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, s := range sel.Body.List {
			cc, ok := s.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.SendStmt:
					out[x] = true
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						out[x] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// lockStep is both the transfer function and the reporting visit of the
// held-lock flow: with vc == nil it only updates the fact; with vc set it
// additionally reports self-deadlocks, blocking points, and order edges.
// Defer statements leave the fact unchanged (deferred unlocks run at exit —
// the Lock-then-defer-Unlock idiom keeps the lock held below); go statements
// run their operand on another goroutine and are opaque.
func lockStep(prog *Program, u *Package, f heldFact, n ast.Node, goDefer map[*ast.CallExpr]bool, vc *visitCtx) heldFact {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return f
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.SendStmt:
			chanOpUnderLock(vc, x, x.Arrow, "channel send", f)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				chanOpUnderLock(vc, x, x.OpPos, "channel receive", f)
			}
		case *ast.CallExpr:
			if goDefer[x] {
				return true
			}
			v := vc
			if v != nil {
				// Elements synthesized for range clauses reuse sub-expressions
				// of the real statement; report each call site once.
				if v.reported[x] {
					v = nil
				} else {
					v.reported[x] = true
				}
			}
			f = lockCall(prog, u, f, x, v)
		}
		return true
	})
	return f
}

// chanOpUnderLock reports a potentially blocking channel operation reached
// with locks held.
func chanOpUnderLock(vc *visitCtx, node ast.Node, pos token.Pos, what string, held heldFact) {
	if vc == nil || len(held) == 0 || vc.nonBlocking[node] || vc.reported[node] {
		return
	}
	vc.reported[node] = true
	vc.sink.report(pos, "%s while holding %s; a blocked %s keeps the lock held indefinitely (wrap it in a select with a default, or release first)",
		what, heldList(held), what)
}

// heldList renders the held set deterministically for messages.
func heldList(held heldFact) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// lockCall applies one call's effect on the held set and, when vc is set,
// reports the deadlock shapes it witnesses.
func lockCall(prog *Program, u *Package, f heldFact, call *ast.CallExpr, vc *visitCtx) heldFact {
	info := u.Info
	if name, onMutex := mutexMethod(info, call); onMutex {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return f
		}
		key := types.ExprString(sel.X)
		switch name {
		case "Lock", "RLock":
			mode := byte('W')
			if name == "RLock" {
				mode = 'R'
			}
			class := lockClassOf(info, sel.X)
			if vc != nil {
				reportAcquire(vc, call, key, class, mode, f)
			}
			return f.with(key, heldLock{class: class, mode: mode})
		case "Unlock", "RUnlock":
			return f.without(key)
		}
		return f
	}
	// sync.WaitGroup.Wait blocks until workers finish; with a lock held that
	// is a deadlock whenever a worker needs the same lock.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && len(call.Args) == 0 {
		if t := info.TypeOf(sel.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if t.String() == "sync.WaitGroup" && vc != nil && len(f) > 0 {
				vc.sink.report(call.Pos(), "sync.WaitGroup.Wait while holding %s; workers that need the lock deadlock against this wait", heldList(f))
			}
		}
	}
	tf := staticCallee(info, call)
	if tf == nil {
		return f
	}
	cs := prog.Summaries[funcID(tf)]
	if cs == nil {
		return f
	}
	if vc != nil {
		if cs.MayBlockForever && len(f) > 0 {
			vc.sink.report(call.Pos(), "call to %s (summary: may block forever) while holding %s", tf.Name(), heldList(f))
		}
		reportCalleeAcquires(vc, call, tf, cs, f)
	}
	// A lock()-helper callee leaves locks held: thread them into the fact so
	// the matching later Unlock (keyed the same way) releases them.
	for _, class := range sortedClassList(cs.HeldAtExit) {
		f = f.with(heldKeyFor(call, class), heldLock{class: class, mode: 'W'})
	}
	return f
}

// reportAcquire handles one direct Lock/RLock: self-deadlock checks against
// the same key, and order-graph edges from every other held lock's class.
func reportAcquire(vc *visitCtx, call *ast.CallExpr, key, class string, mode byte, held heldFact) {
	if have, ok := held[key]; ok {
		switch {
		case have.mode == 'R' && mode == 'W':
			vc.sink.report(call.Pos(), "RLock→Lock upgrade on %s: RWMutex write-lock waits for readers, so the goroutine deadlocks on its own read lock", key)
		case have.mode == 'W' && mode == 'W':
			vc.sink.report(call.Pos(), "Lock of %s while already holding it: Go mutexes are not reentrant, this self-deadlocks", key)
		case have.mode == 'W' && mode == 'R':
			vc.sink.report(call.Pos(), "RLock on %s while already write-holding it: the read lock waits for the writer, so this self-deadlocks", key)
			// R after R stays quiet: legal today, though it can deadlock
			// against a pending writer; guardedby's must-analysis keeps the
			// pattern rare here.
		}
	}
	if class == "" {
		return
	}
	for k, hl := range held {
		if k == key || hl.class == "" {
			continue
		}
		vc.sink.edge(hl.class, class, call.Pos(), false, false)
	}
}

// reportCalleeAcquires projects a static callee's Acquires summary into the
// caller's context: classes already held may re-acquire (possible
// self-deadlock); new classes become via-call order edges.
func reportCalleeAcquires(vc *visitCtx, call *ast.CallExpr, tf *types.Func, cs *FuncSummary, held heldFact) {
	if len(cs.Acquires) == 0 || len(held) == 0 {
		return
	}
	heldClasses := make(map[string]string, len(held)) // class → key
	for k, hl := range held {
		if hl.class != "" {
			heldClasses[hl.class] = k
		}
	}
	for _, class := range sortedClassList(cs.Acquires) {
		if k, ok := heldClasses[class]; ok {
			// The callee leaving this class held is the lock()-helper shape:
			// it acquires the caller's lock on the caller's behalf only when
			// the caller did NOT already hold it, which held[k] contradicts.
			vc.sink.report(call.Pos(), "call to %s may acquire %s while %s (same lock class) is held: possible self-deadlock if it is the same lock", tf.Name(), class, k)
			continue
		}
		for _, from := range sortedClassValues(heldClasses) {
			vc.sink.edge(from, class, call.Pos(), false, true)
		}
	}
}

func sortedClassList(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func sortedClassValues(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// heldKeyFor renders the held-set key for a class a callee left locked: the
// call's receiver expression plus the class's field segment, so that the
// caller's own later "<recv>.<field>.Unlock()" releases it.
func heldKeyFor(call *ast.CallExpr, class string) string {
	field := class
	if i := strings.LastIndex(class, "."); i >= 0 {
		field = class[i+1:]
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + field
	}
	return field
}

// closeLockGraph runs cycle detection over the assembled edges. Classes in
// one strongly connected component can be acquired in conflicting orders;
// every edge inside such a component is reported at its witness (a declared
// edge that merely contradicts an observed one pins the message to the
// observation, the actionable site).
func closeLockGraph(sink *lockSink) {
	g := sink.graph
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	declared := make(map[string]*LockEdge)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From], nodes[e.To] = true, true
		if e.Declared {
			declared[e.From+"\x00"+e.To] = e
		}
	}
	comp := sccOf(nodes, adj)
	cycleFinding := func(e *LockEdge, format string, args ...any) {
		e.InCycle = true
		g.unitFindings[e.Unit] = append(g.unitFindings[e.Unit], Finding{
			Pos:     e.Pos,
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, e := range g.Edges {
		if e.From == e.To {
			cycleFinding(e, "locks of class %s are acquired while another %s is held, with no global order between instances: two goroutines interleaving them deadlock", e.From, e.From)
			continue
		}
		if comp[e.From] != comp[e.To] {
			continue
		}
		if e.Declared {
			// A declared edge is only its own finding when two declarations
			// conflict; cycles with observed edges report at the code sites.
			if d := declared[e.To+"\x00"+e.From]; d != nil {
				cycleFinding(e, "declared order %s < %s conflicts with the declared order %s < %s (%s)", e.From, e.To, d.From, d.To, d.Pos)
			} else {
				e.InCycle = true
			}
			continue
		}
		if d := declared[e.To+"\x00"+e.From]; d != nil {
			cycleFinding(e, "acquiring %s while %s is held contradicts the declared order %s < %s (%s)", e.To, e.From, d.From, d.To, d.Pos)
			continue
		}
		if declared[e.From+"\x00"+e.To] != nil {
			// The observation follows a declared order; the edge that closed
			// the cycle is the violation and carries the finding.
			e.InCycle = true
			continue
		}
		members := sccMembers(comp, comp[e.From])
		cycleFinding(e, "lock-order cycle: acquiring %s while %s is held closes a cycle among {%s}; acquire these locks in one global order", e.To, e.From, strings.Join(members, ", "))
	}
}

// sccOf computes strongly connected components (iterative Tarjan) over the
// class graph, returning a component id per node.
func sccOf(nodes map[string]bool, adj map[string][]string) map[string]int {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(adj[n])
	}

	comp := make(map[string]int, len(nodes))
	index := make(map[string]int, len(nodes))
	lowlink := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	next, compID := 1, 0

	type frame struct {
		node string
		succ int
	}
	for _, root := range names {
		if index[root] != 0 {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			v := fr.node
			if fr.succ == 0 {
				index[v] = next
				lowlink[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.succ < len(adj[v]) {
				w := adj[v][fr.succ]
				fr.succ++
				if index[w] == 0 {
					work = append(work, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if lowlink[v] == index[v] {
				compID++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compID
					if w == v {
						break
					}
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	return comp
}

// sccMembers lists the classes in one component, sorted.
func sccMembers(comp map[string]int, id int) []string {
	var out []string
	for n, c := range comp {
		if c == id {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// WriteLockDOT renders the lock-order graph in Graphviz DOT form (the
// driver's -lockgraph flag). Declared edges are dashed, via-call edges
// dotted, and edges on a cycle red.
func WriteLockDOT(w io.Writer, g *LockOrderGraph) error {
	bw := &strings.Builder{}
	fmt.Fprintln(bw, "digraph qb5000_lockorder {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=box, fontsize=10];")

	nodes := make(map[string]bool)
	for _, e := range g.Edges {
		nodes[e.From], nodes[e.To] = true, true
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(bw, "  %q;\n", n)
	}

	edges := make([]*LockEdge, len(g.Edges))
	copy(edges, g.Edges)
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return !a.Declared && b.Declared
	})
	for _, e := range edges {
		var attrs []string
		if e.Declared {
			attrs = append(attrs, "style=dashed", `label="declared"`)
		}
		if e.ViaCall {
			attrs = append(attrs, "style=dotted")
		}
		if e.InCycle {
			attrs = append(attrs, "color=red")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(bw, "  %q -> %q [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(bw, "  %q -> %q;\n", e.From, e.To)
		}
	}
	fmt.Fprintln(bw, "}")
	_, err := io.WriteString(w, bw.String())
	return err
}
