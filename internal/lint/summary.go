package lint

// Per-function summaries over the call graph. Summaries are computed once
// per Program in bottom-up SCC order with a fixed point over recursive
// components; every bit is monotone (false → true only), so the iteration
// terminates. Dynamic (interface may-call) edges never contribute to a
// summary: a may-edge proves nothing about what actually runs.

import (
	"go/ast"
	"go/types"
)

// A FuncSummary condenses the interprocedurally relevant behavior of one
// function. Bits are conservative in the quiet direction: "false" always
// means "not proven", never "proven absent".
type FuncSummary struct {
	// AcceptsCtx: the function has a context.Context parameter.
	AcceptsCtx bool
	// ForwardsCtx: some call in the body receives a context-typed argument.
	ForwardsCtx bool
	// UsesFreshCtx: the function calls context.Background()/context.TODO(),
	// directly or through a static callee that does not itself accept a
	// context (a ctx-accepting callee insulates its callers: its fresh
	// context is its own business, e.g. a nil-ctx guard).
	UsesFreshCtx bool
	// Spawns: the function starts a goroutine, directly or via static callees.
	Spawns bool
	// MayBlockForever: the body contains an unbounded loop (for with no
	// condition) with no exit path, or an empty select, or statically calls
	// (including defers) a function that does.
	MayBlockForever bool
	// NoReturn: the function never returns normally — its body ends in a
	// call to os.Exit / log.Fatal* / panic / runtime.Goexit or a NoReturn
	// callee, or it blocks forever.
	NoReturn bool
	// ReturnsOpen: the function returns a handle it opened itself (directly
	// or by forwarding a ReturnsOpen callee's result); callers inherit the
	// close obligation.
	ReturnsOpen bool
	// AcquiresLock / ReleasesLock: the body calls Lock/RLock (resp.
	// Unlock/RUnlock) on a sync.Mutex or sync.RWMutex.
	AcquiresLock, ReleasesLock bool
	// Allocates: the body performs a heap allocation the noalloc analyzer
	// would flag (make/new, escaping composites, fmt, conversions, closures,
	// map writes, goroutine spawns), directly or via a static non-go callee.
	Allocates bool
	// PerformsIO: the body mutates the filesystem (os.Create/WriteFile/
	// Rename/Remove/…, or writes through an *os.File), directly or via any
	// static callee — go statements included, since a spawned write still
	// touches disk on the caller's behalf. The durable analyzer uses it to
	// catch annotated paths laundered through an unannotated helper.
	PerformsIO bool
	// Bounded: every goroutine the function spawns (directly or via static
	// callees) is gated by an audited bounded pool/semaphore. Unlike the
	// other bits this is a greatest fixed point — it starts true and is
	// cleared (true → false only) by an ungated `go` statement or by calling
	// a spawning callee whose own Bounded bit was cleared. A
	// // qb5000:bounded doc annotation vouches for the whole body: nothing
	// under an annotated function clears the bit. The bounded analyzer
	// requires Bounded on everything reachable from a qb5000:serving entry.
	Bounded bool
	// Closes marks parameters the function closes on some path (including
	// via static callees); key -1 is the method receiver.
	Closes map[int]bool
	// Acquires is the set of lock classes (see lockClassOf) the function may
	// acquire, directly or via static non-go callees.
	Acquires map[string]bool
	// HeldAtExit is the set of lock classes the function acquires and does
	// not release before returning — the lock()-helper shape. A class with
	// any Unlock/RUnlock in the body (deferred ones included) is excluded.
	HeldAtExit map[string]bool
}

// A Program is the package set under analysis with its interprocedural
// artifacts: the call graph and the per-function summaries.
type Program struct {
	Units     []*Package
	Graph     *CallGraph
	Summaries map[string]*FuncSummary

	// Lazily built program-wide artifacts: the lock-order graph (lockorder),
	// the set of qb5000:noalloc-annotated function IDs (noalloc), the
	// per-function qb5000:durable parameter indices (durable), the
	// failpoint registry cross-reference (faultpath), and the set of node
	// IDs reachable from qb5000:serving entry points (bounded).
	lockGraph *LockOrderGraph
	noalloc   map[string]bool
	durable   map[string]map[int]bool
	failpts   *fpRegistry
	servingID map[string]bool
}

// NewProgram builds the call graph and summaries over the given units.
func NewProgram(units []*Package) *Program {
	prog := &Program{Units: units, Graph: buildCallGraph(units)}
	prog.Summaries = computeSummaries(prog.Graph)
	return prog
}

// Summary returns the summary for a symbolic function ID, or nil for
// functions outside the loaded set.
func (prog *Program) Summary(id string) *FuncSummary { return prog.Summaries[id] }

// computeSummaries walks the SCC condensation bottom-up, iterating each
// component to a fixed point.
func computeSummaries(g *CallGraph) map[string]*FuncSummary {
	sums := make(map[string]*FuncSummary, len(g.Order))
	for _, n := range g.Order {
		sums[n.ID] = &FuncSummary{
			Bounded:    true, // greatest fixed point: cleared, never set
			Closes:     make(map[int]bool),
			Acquires:   make(map[string]bool),
			HeldAtExit: make(map[string]bool),
		}
	}
	for _, scc := range g.SCCs {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if summarize(n, sums) {
					changed = true
				}
			}
		}
	}
	return sums
}

// summarize recomputes one node's summary from its body and its callees'
// current summaries, reporting whether any bit changed.
// bits snapshots the comparable part of a summary (everything but the maps,
// which are tracked by size — entries are only ever added).
func (s *FuncSummary) bits() [12]bool {
	return [12]bool{s.AcceptsCtx, s.ForwardsCtx, s.UsesFreshCtx, s.Spawns,
		s.MayBlockForever, s.NoReturn, s.ReturnsOpen, s.AcquiresLock, s.ReleasesLock,
		s.Allocates, s.PerformsIO, s.Bounded}
}

func summarize(n *FuncNode, sums map[string]*FuncSummary) bool {
	s := sums[n.ID]
	old := s.bits()
	oldCloses := len(s.Closes)
	oldAcquires := len(s.Acquires)
	oldHeld := len(s.HeldAtExit)
	info := n.Pkg.Info

	params, recvObj := paramObjects(info, n)
	if n.Type != nil && n.Type.Params != nil {
		for _, f := range n.Type.Params.List {
			if isCtxExpr(info, f.Type) {
				s.AcceptsCtx = true
			}
		}
	}

	released := map[string]bool{}
	if n.Body != nil {
		scanOwnBody(n, s, info, sums)
		scanCloses(n, s, info, params, recvObj, sums)
		scanReturnsOpen(n, s, info, sums)
		var acquired map[string]bool
		acquired, released = scanLockClasses(n, info)
		for c := range acquired {
			s.Acquires[c] = true
			if !released[c] {
				s.HeldAtExit[c] = true
			}
		}
		if !s.Allocates && bodyAllocates(info, n.Body, params) {
			s.Allocates = true
		}
		if !s.PerformsIO && bodyPerformsIO(info, n.Body) {
			s.PerformsIO = true
		}
	}

	// Callee propagation over static edges only.
	for _, e := range n.Out {
		if e.Dynamic || e.Callee == nil {
			continue
		}
		cs := sums[e.Callee.ID]
		if cs == nil {
			continue
		}
		if cs.Spawns {
			s.Spawns = true
			// An unproven spawner taints its callers unless this function's
			// annotation vouches for the whole call tree under it.
			if !cs.Bounded && !n.boundedAnn {
				s.Bounded = false
			}
		}
		// A spawned callee blocking forever does not block the spawner.
		if cs.MayBlockForever && !e.Go {
			s.MayBlockForever = true
		}
		if cs.UsesFreshCtx && !cs.AcceptsCtx {
			s.UsesFreshCtx = true
		}
		// Filesystem effects propagate across go edges too: the disk does
		// not care which goroutine issued the write.
		if cs.PerformsIO {
			s.PerformsIO = true
		}
		// A spawned callee's lock traffic and allocations happen on the new
		// goroutine, not in this frame.
		if !e.Go {
			if cs.Allocates {
				s.Allocates = true
			}
			for c := range cs.Acquires {
				s.Acquires[c] = true
			}
			for c := range cs.HeldAtExit {
				if !released[c] {
					s.HeldAtExit[c] = true
				}
			}
		}
	}
	if s.MayBlockForever {
		s.NoReturn = true
	}

	return s.bits() != old || len(s.Closes) != oldCloses ||
		len(s.Acquires) != oldAcquires || len(s.HeldAtExit) != oldHeld
}

// scanLockClasses resolves the lock classes the body itself acquires and
// releases. Only receiver-resolved classes count (lockClassOf); locks on
// locals stay intraprocedural. Closure bodies are their own nodes and are
// excluded.
func scanLockClasses(n *FuncNode, info *types.Info) (acquired, released map[string]bool) {
	acquired, released = map[string]bool{}, map[string]bool{}
	inspectShallow(n.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, onMutex := mutexMethod(info, call)
		if !onMutex {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		class := lockClassOf(info, sel.X)
		if class == "" {
			return true
		}
		switch name {
		case "Lock", "RLock":
			acquired[class] = true
		case "Unlock", "RUnlock":
			released[class] = true
		}
		return true
	})
	return acquired, released
}

// paramObjects resolves the node's parameter objects (positionally) and its
// receiver object.
func paramObjects(info *types.Info, n *FuncNode) ([]types.Object, types.Object) {
	var params []types.Object
	if n.Type != nil && n.Type.Params != nil {
		for _, f := range n.Type.Params.List {
			if len(f.Names) == 0 {
				params = append(params, nil)
				continue
			}
			for _, name := range f.Names {
				params = append(params, info.Defs[name])
			}
		}
	}
	var recvObj types.Object
	if n.Decl != nil && n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 && len(n.Decl.Recv.List[0].Names) > 0 {
		recvObj = info.Defs[n.Decl.Recv.List[0].Names[0]]
	}
	return params, recvObj
}

// scanOwnBody computes the purely local bits: spawning, fresh contexts,
// context forwarding, lock traffic, unbounded loops, and no-return endings.
func scanOwnBody(n *FuncNode, s *FuncSummary, info *types.Info, sums map[string]*FuncSummary) {
	inspectShallow(n.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			s.Spawns = true
			if !n.boundedAnn {
				s.Bounded = false
			}
		case *ast.CallExpr:
			if isFreshCtxCall(info, x) {
				s.UsesFreshCtx = true
			}
			for _, arg := range x.Args {
				if isCtxExpr(info, arg) {
					s.ForwardsCtx = true
				}
			}
			if name, onMutex := mutexMethod(info, x); onMutex {
				switch name {
				case "Lock", "RLock":
					s.AcquiresLock = true
				case "Unlock", "RUnlock":
					s.ReleasesLock = true
				}
			}
		case *ast.ForStmt:
			if x.Cond == nil && !loopExits(info, x, sums) {
				s.MayBlockForever = true
			}
		case *ast.SelectStmt:
			if len(x.Body.List) == 0 {
				s.MayBlockForever = true
			}
		}
		return true
	})
	if last := lastStmt(n.Body); last != nil {
		if es, ok := last.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && isExitingCall(info, call, sums) {
				s.NoReturn = true
			}
		}
	}
}

// scanCloses records which parameters (and the receiver) the function closes,
// either directly or by handing them to a static callee that closes them.
// The scan covers the full subtree — defers and closures included — because
// a close anywhere still discharges the obligation on some path.
func scanCloses(n *FuncNode, s *FuncSummary, info *types.Info,
	params []types.Object, recvObj types.Object, sums map[string]*FuncSummary) {
	indexOf := func(obj types.Object) (int, bool) {
		if obj == nil {
			return 0, false
		}
		if obj == recvObj {
			return -1, true
		}
		for i, p := range params {
			if p != nil && p == obj {
				return i, true
			}
		}
		return 0, false
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct x.Close().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" && len(call.Args) == 0 {
			if id, ok := sel.X.(*ast.Ident); ok {
				if i, ok := indexOf(info.ObjectOf(id)); ok {
					s.Closes[i] = true
				}
			}
		}
		// Forwarded to a callee that closes the matching parameter.
		if tf := staticCallee(info, call); tf != nil {
			if cs := sums[funcID(tf)]; cs != nil && len(cs.Closes) > 0 {
				for j, arg := range call.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok || !cs.Closes[j] {
						continue
					}
					if i, ok := indexOf(info.ObjectOf(id)); ok {
						s.Closes[i] = true
					}
				}
			}
		}
		return true
	})
}

// scanReturnsOpen marks functions that hand an open handle to their caller:
// a return whose result is an opener call directly, or an identifier that
// was assigned from one and is never closed in this body.
func scanReturnsOpen(n *FuncNode, s *FuncSummary, info *types.Info, sums map[string]*FuncSummary) {
	opened := make(map[types.Object]bool)
	closed := make(map[types.Object]bool)
	inspectShallow(n.Body, func(node ast.Node) bool {
		x, ok := node.(*ast.AssignStmt)
		if !ok || len(x.Rhs) != 1 {
			return true
		}
		if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok && isOpenerCall(info, call, sums) {
			if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := info.ObjectOf(id); obj != nil {
					opened[obj] = true
				}
			}
		}
		return true
	})
	// Closes discharge wherever they appear — defers and closures included.
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" && len(call.Args) == 0 {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						closed[obj] = true
					}
				}
			}
		}
		return true
	})
	inspectShallow(n.Body, func(node ast.Node) bool {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			switch r := ast.Unparen(res).(type) {
			case *ast.CallExpr:
				if isOpenerCall(info, r, sums) {
					s.ReturnsOpen = true
				}
			case *ast.Ident:
				if obj := info.ObjectOf(r); obj != nil && opened[obj] && !closed[obj] {
					s.ReturnsOpen = true
				}
			}
		}
		return true
	})
}

// osMutators are the os-package calls that mutate the filesystem; together
// with writes through an *os.File they define the PerformsIO bit. os.Open
// is deliberately absent: reading is not a durability hazard.
var osMutators = map[string]bool{
	"Create": true, "CreateTemp": true, "OpenFile": true, "WriteFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "Symlink": true, "Link": true,
}

// osFileWriteMethods are the (*os.File) methods that land bytes or metadata
// on disk.
var osFileWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Sync": true, "Truncate": true,
}

// bodyPerformsIO is the summary-layer filesystem scan feeding PerformsIO.
// The walk covers closures too: a FuncLit defined here that writes runs on
// this function's behalf wherever it ends up.
func bodyPerformsIO(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isPkgIdent(info, sel.X, "os") && osMutators[sel.Sel.Name] {
			found = true
			return false
		}
		if osFileWriteMethods[sel.Sel.Name] {
			if t := info.TypeOf(sel.X); t != nil && t.String() == "*os.File" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// osOpeners and netOpeners are the stdlib calls that mint close obligations.
var osOpeners = map[string]bool{"Open": true, "Create": true, "OpenFile": true, "CreateTemp": true}
var netOpeners = map[string]bool{"Listen": true, "ListenTCP": true, "ListenUDP": true, "ListenUnix": true,
	"ListenPacket": true, "Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true, "DialUnix": true}

// isOpenerCall reports whether call mints a close obligation: an os/net
// opener, or a loaded callee whose summary says it returns an open handle.
func isOpenerCall(info *types.Info, call *ast.CallExpr, sums map[string]*FuncSummary) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if isPkgIdent(info, sel.X, "os") && osOpeners[sel.Sel.Name] {
			return true
		}
		if isPkgIdent(info, sel.X, "net") && netOpeners[sel.Sel.Name] {
			return true
		}
	}
	if sums != nil {
		if tf := staticCallee(info, call); tf != nil {
			if cs := sums[funcID(tf)]; cs != nil && cs.ReturnsOpen {
				return true
			}
		}
	}
	return false
}

// lastStmt returns the final statement of a block, or nil.
func lastStmt(body *ast.BlockStmt) ast.Stmt {
	if body == nil || len(body.List) == 0 {
		return nil
	}
	return body.List[len(body.List)-1]
}

// isCtxExpr reports whether e's static type is context.Context.
func isCtxExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && t.String() == "context.Context"
}

// isFreshCtxCall reports a call to context.Background or context.TODO.
func isFreshCtxCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	return isPkgIdent(info, sel.X, "context")
}

// isPkgIdent reports whether e is an identifier naming the import of pkgPath.
func isPkgIdent(info *types.Info, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path() == pkgPath
	}
	return false
}

// mutexMethod reports the method name if call is a method on sync.Mutex or
// sync.RWMutex (possibly behind a pointer).
func mutexMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "sync.Mutex", "sync.RWMutex":
		return sel.Sel.Name, true
	}
	return "", false
}

// isExitingCall reports whether call never returns to its caller: os.Exit,
// log.Fatal*, runtime.Goexit, the panic builtin, or a loaded callee whose
// summary says NoReturn. sums may be nil when summaries are not available.
func isExitingCall(info *types.Info, call *ast.CallExpr, sums map[string]*FuncSummary) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if f.Name == "panic" && info.Uses[f] == nil {
			return true // builtin
		}
	case *ast.SelectorExpr:
		name := f.Sel.Name
		if isPkgIdent(info, f.X, "os") && name == "Exit" {
			return true
		}
		if isPkgIdent(info, f.X, "log") && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Panic" || name == "Panicf" || name == "Panicln") {
			return true
		}
		if isPkgIdent(info, f.X, "runtime") && name == "Goexit" {
			return true
		}
		if tm, ok := info.TypeOf(f.X).(*types.Pointer); ok && tm.Elem().String() == "testing.T" && (name == "Fatal" || name == "Fatalf" || name == "FailNow" || name == "Skip" || name == "Skipf" || name == "SkipNow") {
			return true
		}
	}
	if sums != nil {
		if tf := staticCallee(info, call); tf != nil {
			if cs := sums[funcID(tf)]; cs != nil && cs.NoReturn {
				return true
			}
		}
	}
	return false
}

// loopExits reports whether an unconditional for loop has any path out:
// a return, a break binding to this loop (directly or by label), a goto, or
// a call that never returns. sums propagates NoReturn callees when set.
//
// The walk is nesting-aware: an unlabeled break inside a nested for, switch,
// or select binds to that construct, not to the loop under test — the
// classic `case <-ctx.Done(): break` bug therefore does NOT count as an
// exit. Function literals are opaque (their control flow is their own).
func loopExits(info *types.Info, loop *ast.ForStmt, sums map[string]*FuncSummary) bool {
	exits := false
	var walk func(node ast.Node, depth int)
	walk = func(node ast.Node, depth int) {
		if node == nil || exits {
			return
		}
		switch x := node.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch x.Tok.String() {
			case "break":
				// A labeled break always escapes at least this loop (labels
				// can only name enclosing statements); an unlabeled one
				// escapes only when it binds directly to this loop.
				if x.Label != nil || depth == 0 {
					exits = true
				}
			case "goto":
				exits = true // conservatively an escape
			}
			return
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isExitingCall(info, call, sums) {
				exits = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			walkChildren(x, func(c ast.Node) { walk(c, depth+1) })
			return
		}
		walkChildren(node, func(c ast.Node) { walk(c, depth) })
	}
	walk(loop.Body, 0)
	return exits
}

// walkChildren invokes f on each direct child of n.
func walkChildren(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m == nil {
			return false
		}
		f(m)
		return false
	})
}
