// Package admission implements the serving tier's load-shedding gate
// (DESIGN.md §9): a weighted semaphore bounding how much work is in flight
// at once, composed with an optional token-bucket rate limiter smoothing
// the sustained admission rate. The paper's deployment (§3, §6) runs the
// forecasting framework beside live traffic, so the observe path must shed
// overload instead of queueing it — a request that cannot be admitted
// immediately is answered with ErrOverload and never touches the catalog.
//
// TryAcquire/Release form the zero-alloc fast path (qb5000:noalloc, gated
// by the noalloc analyzer); Acquire is the ctx-bounded slow path for
// callers that prefer brief queueing over shedding. The shedflow analyzer
// pins the calling convention: the returned error must propagate to a 429
// and every successful acquire needs a Release on all paths.
package admission

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverload is the typed overload signal an admission check produces.
// HTTP handlers must map it to 429 Too Many Requests (the shedflow
// analyzer enforces this); errors from Acquire additionally unwrap to the
// context error when the caller's deadline expired while queued.
var ErrOverload = &overloadError{}

// overloadError is a distinct type so ErrOverload survives wrapping and
// comparison without allocation on the fast path.
type overloadError struct{}

func (*overloadError) Error() string { return "admission: overload" }

// A queueError is returned by Acquire when the caller's context ends while
// queued. It unwraps to both ErrOverload (for shed accounting and the 429
// mapping) and the context error (so callers can tell cancellation from
// deadline expiry).
type queueError struct{ cause error }

func (e *queueError) Error() string   { return "admission: overload: " + e.cause.Error() }
func (e *queueError) Unwrap() []error { return []error{ErrOverload, e.cause} }

// Options configures a Gate. The zero value admits everything.
type Options struct {
	// MaxInflight caps the admitted units concurrently in flight
	// (0 = unlimited).
	MaxInflight int64
	// Rate is the sustained admission rate in units per second, smoothed by
	// a token bucket (0 = unlimited).
	Rate float64
	// Burst is the token-bucket depth; 0 selects one second of Rate
	// (minimum 1) so short spikes inside the budget are not shed.
	Burst float64

	// nowNanos overrides the bucket clock in tests.
	nowNanos func() int64
}

// A Gate is one admission-control point: a weighted semaphore plus an
// optional token bucket, with admitted/shed/queued counters. The zero
// value is not usable; construct with New.
type Gate struct {
	maxInflight int64
	inflight    atomic.Int64
	// slot carries release wakeups to queued Acquire calls. Capacity 1 by
	// construction: a wakeup is a hint, waiters re-check the semaphore and
	// re-arm the hint for the next waiter.
	slot chan struct{}

	rate, burst float64
	nowNs       func() int64
	bmu         sync.Mutex
	// qb5000:guardedby bmu
	tokens float64
	// qb5000:guardedby bmu
	lastNs int64

	admitted atomic.Int64
	shed     atomic.Int64
	queued   atomic.Int64
}

// Stats is a point-in-time snapshot of one gate's counters.
type Stats struct {
	// Admitted counts calls that acquired the gate.
	Admitted int64
	// Shed counts calls rejected with ErrOverload (TryAcquire denials and
	// Acquire calls whose context ended while queued).
	Shed int64
	// Queued counts Acquire calls that could not be admitted immediately
	// and waited.
	Queued int64
	// Inflight is the admitted weight currently outstanding.
	Inflight int64
	// MaxInflight and Rate echo the configuration (0 = unlimited).
	MaxInflight int64
	Rate        float64
}

// wallNanos is the production bucket clock.
func wallNanos() int64 {
	//lint:ignore noclock token-bucket refill measures real elapsed time by design; tests inject a fake clock via Options.nowNanos
	return time.Now().UnixNano()
}

// New builds a gate from o.
func New(o Options) *Gate {
	g := &Gate{
		maxInflight: o.MaxInflight,
		slot:        make(chan struct{}, 1),
		rate:        o.Rate,
		burst:       o.Burst,
		nowNs:       o.nowNanos,
	}
	if g.nowNs == nil {
		g.nowNs = wallNanos
	}
	if g.rate > 0 && g.burst <= 0 {
		g.burst = g.rate
	}
	if g.rate > 0 && g.burst < 1 {
		g.burst = 1
	}
	g.bmu.Lock()
	g.tokens = g.burst
	g.lastNs = g.nowNs()
	g.bmu.Unlock()
	return g
}

// TryAcquire admits n units of work (n <= 0 counts as 1) without blocking,
// or sheds the call with ErrOverload. Every nil return must be paired with
// a Release of the same weight on all paths (the shedflow analyzer checks
// this at call sites).
//
// qb5000:noalloc
func (g *Gate) TryAcquire(n int64) error {
	if n <= 0 {
		n = 1
	}
	if !g.admit(n) {
		g.shed.Add(1)
		return ErrOverload
	}
	g.admitted.Add(1)
	return nil
}

// Acquire admits n units (n <= 0 counts as 1), waiting while the gate is
// full until ctx ends. On expiry it sheds: the error unwraps to ErrOverload
// and to ctx.Err().
func (g *Gate) Acquire(ctx context.Context, n int64) error {
	if n <= 0 {
		n = 1
	}
	if g.admit(n) {
		g.admitted.Add(1)
		return nil
	}
	g.queued.Add(1)
	// Release wakeups cover semaphore slots; when a rate limit is active the
	// bucket also refills on its own, so poll it at quarter-token cadence.
	var refill <-chan time.Time
	if g.rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second)/g.rate/4) + 1)
		defer t.Stop()
		refill = t.C
	}
	for {
		select {
		case <-ctx.Done():
			g.shed.Add(1)
			return &queueError{cause: ctx.Err()}
		case <-g.slot:
		case <-refill:
		}
		if g.admit(n) {
			g.admitted.Add(1)
			// More than one waiter may fit now; pass the hint along.
			select {
			case g.slot <- struct{}{}:
			default:
			}
			return nil
		}
	}
}

// Release returns n units (n <= 0 counts as 1) admitted by a successful
// TryAcquire or Acquire and wakes one queued waiter.
//
// qb5000:noalloc
func (g *Gate) Release(n int64) {
	if n <= 0 {
		n = 1
	}
	g.inflight.Add(-n)
	// Non-blocking by contract: Release runs on serving paths (the bounded
	// analyzer rejects a send here that could park the request goroutine).
	select {
	case g.slot <- struct{}{}:
	default:
	}
}

// admit is the uncounted core: semaphore first, then the bucket, rolling
// the semaphore back when the bucket is dry.
//
// qb5000:noalloc
func (g *Gate) admit(n int64) bool {
	if !g.trySem(n) {
		return false
	}
	if !g.takeTokens(float64(n)) {
		g.inflight.Add(-n)
		return false
	}
	return true
}

// trySem reserves n units of inflight weight if the cap allows.
//
// qb5000:noalloc
func (g *Gate) trySem(n int64) bool {
	if g.maxInflight <= 0 {
		g.inflight.Add(n)
		return true
	}
	for {
		cur := g.inflight.Load()
		if cur+n > g.maxInflight {
			return false
		}
		if g.inflight.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// takeTokens refills the bucket from elapsed time and spends n tokens if
// available.
//
// qb5000:noalloc
func (g *Gate) takeTokens(n float64) bool {
	if g.rate <= 0 {
		return true
	}
	now := g.nowNs()
	g.bmu.Lock()
	if elapsed := float64(now-g.lastNs) / float64(time.Second); elapsed > 0 {
		g.tokens += elapsed * g.rate
		if g.tokens > g.burst {
			g.tokens = g.burst
		}
		g.lastNs = now
	}
	ok := g.tokens >= n
	if ok {
		g.tokens -= n
	}
	g.bmu.Unlock()
	return ok
}

// Stats snapshots the counters.
func (g *Gate) Stats() Stats {
	return Stats{
		Admitted:    g.admitted.Load(),
		Shed:        g.shed.Load(),
		Queued:      g.queued.Load(),
		Inflight:    g.inflight.Load(),
		MaxInflight: g.maxInflight,
		Rate:        g.rate,
	}
}

// RetryAfterSeconds suggests a client backoff for a shed request, suitable
// for a Retry-After header: the time one admission token takes to refill
// under rate limiting, and 1 second otherwise (inflight pressure clears as
// fast as requests complete).
func (g *Gate) RetryAfterSeconds() int {
	if g.rate > 0 && g.rate < 1 {
		secs := int(1 / g.rate)
		if float64(secs)*g.rate < 1 {
			secs++
		}
		return secs
	}
	return 1
}
