//go:build race

package admission

// raceEnabled reports whether the race detector instrumented this build.
// Allocation-count assertions are skipped under -race: the detector adds
// shadow allocations that would make AllocsPerRun budgets meaningless.
const raceEnabled = true
