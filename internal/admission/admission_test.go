package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"qb5000/internal/leakcheck"
)

// fakeClock is a deterministic nanosecond clock for the token bucket.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

func TestTryAcquireSemaphore(t *testing.T) {
	g := New(Options{MaxInflight: 2})
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if err := g.TryAcquire(1); !errors.Is(err, ErrOverload) {
		t.Fatalf("third acquire = %v, want ErrOverload", err)
	}
	g.Release(1)
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	s := g.Stats()
	if s.Admitted != 3 || s.Shed != 1 || s.Inflight != 2 {
		t.Fatalf("stats = %+v, want admitted 3, shed 1, inflight 2", s)
	}
}

func TestTryAcquireWeighted(t *testing.T) {
	g := New(Options{MaxInflight: 3})
	if err := g.TryAcquire(2); err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if err := g.TryAcquire(2); !errors.Is(err, ErrOverload) {
		t.Fatalf("second acquire 2 = %v, want ErrOverload", err)
	}
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("acquire 1 into remaining slot: %v", err)
	}
	g.Release(2)
	g.Release(1)
	if got := g.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

func TestTokenBucketRate(t *testing.T) {
	clk := &fakeClock{}
	g := New(Options{Rate: 10, Burst: 2, nowNanos: clk.now})
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("second (burst): %v", err)
	}
	if err := g.TryAcquire(1); !errors.Is(err, ErrOverload) {
		t.Fatalf("third = %v, want ErrOverload (bucket dry)", err)
	}
	clk.advance(100 * time.Millisecond) // one token at 10/s
	if err := g.TryAcquire(1); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	// Refill is capped at the burst.
	clk.advance(time.Hour)
	if err := g.TryAcquire(1); err != nil {
		t.Fatal(err)
	}
	if err := g.TryAcquire(1); err != nil {
		t.Fatal(err)
	}
	if err := g.TryAcquire(1); !errors.Is(err, ErrOverload) {
		t.Fatalf("burst cap not enforced: %v", err)
	}
	g.Release(1)
}

func TestAcquireWaitsForRelease(t *testing.T) {
	leakcheck.Check(t, func() {
		g := New(Options{MaxInflight: 1})
		if err := g.TryAcquire(1); err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() {
			got <- g.Acquire(context.Background(), 1)
		}()
		// The waiter must be parked, not admitted.
		select {
		case err := <-got:
			t.Fatalf("Acquire returned %v while the gate was full", err)
		case <-time.After(20 * time.Millisecond):
		}
		g.Release(1)
		if err := <-got; err != nil {
			t.Fatalf("Acquire after release: %v", err)
		}
		g.Release(1)
		s := g.Stats()
		if s.Queued != 1 {
			t.Fatalf("queued = %d, want 1", s.Queued)
		}
	})
}

func TestAcquireCtxExpiry(t *testing.T) {
	leakcheck.Check(t, func() {
		g := New(Options{MaxInflight: 1})
		if err := g.TryAcquire(1); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		err := g.Acquire(ctx, 1)
		if !errors.Is(err, ErrOverload) {
			t.Fatalf("err = %v, want ErrOverload", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want it to unwrap to DeadlineExceeded", err)
		}
		g.Release(1)
		s := g.Stats()
		if s.Admitted != 1 || s.Shed != 1 || s.Queued != 1 {
			t.Fatalf("stats = %+v, want admitted 1, shed 1, queued 1", s)
		}
	})
}

func TestUnlimitedGate(t *testing.T) {
	g := New(Options{})
	for i := 0; i < 100; i++ {
		if err := g.TryAcquire(1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := g.Stats().Inflight; got != 100 {
		t.Fatalf("inflight = %d, want 100", got)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	if got := New(Options{MaxInflight: 1}).RetryAfterSeconds(); got != 1 {
		t.Fatalf("inflight-only gate: %d, want 1", got)
	}
	if got := New(Options{Rate: 0.25}).RetryAfterSeconds(); got != 4 {
		t.Fatalf("rate 0.25: %d, want 4", got)
	}
	if got := New(Options{Rate: 100}).RetryAfterSeconds(); got != 1 {
		t.Fatalf("rate 100: %d, want 1", got)
	}
}

// TestFastPathAllocs is the runtime companion to the qb5000:noalloc
// annotations on TryAcquire/Release: the admit/shed fast path must not
// allocate, including the shed return of the ErrOverload sentinel.
func TestFastPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	clk := &fakeClock{}
	g := New(Options{MaxInflight: 1, Rate: 1e9, nowNanos: clk.now})
	allocs := testing.AllocsPerRun(1000, func() {
		clk.advance(time.Microsecond)
		if err := g.TryAcquire(1); err != nil {
			t.Fatal(err)
		}
		if err := g.TryAcquire(1); err == nil { // full: shed path
			t.Fatal("expected overload")
		}
		g.Release(1)
	})
	if allocs > 0 {
		t.Errorf("TryAcquire/Release fast path allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	leakcheck.Check(t, func() {
		g := New(Options{MaxInflight: 4})
		const goroutines, per = 8, 200
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < per; j++ {
					if err := g.TryAcquire(1); err == nil {
						g.Release(1)
					}
				}
			}()
		}
		wg.Wait()
		s := g.Stats()
		if s.Admitted+s.Shed != goroutines*per {
			t.Fatalf("admitted %d + shed %d != %d calls", s.Admitted, s.Shed, goroutines*per)
		}
		if s.Inflight != 0 {
			t.Fatalf("inflight = %d after all releases, want 0", s.Inflight)
		}
	})
}
