//go:build !race

package admission

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = false
