package nn

import "math/rand"

// Dense is a fully-connected layer y = W·x + b.
type Dense struct {
	In, Out int
	W       *Param // Out x In, row-major
	B       *Param // Out
}

// NewDense creates a Glorot-initialized dense layer.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, W: NewParam(in * out), B: NewParam(out)}
	d.W.InitXavier(rng, in, out)
	return d
}

// Forward computes the layer output for x.
func (d *Dense) Forward(x []float64) []float64 {
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		s := d.B.W[o]
		row := d.W.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward accumulates parameter gradients for the forward pass that
// consumed x and produced dy upstream gradient, returning dx.
func (d *Dense) Backward(x, dy []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		//lint:ignore floateq skipping exact-zero gradients is a fast path, not a tolerance check
		if g == 0 {
			continue
		}
		d.B.G[o] += g
		row := d.W.W[o*d.In : (o+1)*d.In]
		grow := d.W.G[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += g * row[i]
		}
	}
	return dx
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// NumWeights reports the weight count, used for model-size accounting
// (Table 4).
func (d *Dense) NumWeights() int { return len(d.W.W) + len(d.B.W) }
