package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates dLoss/dw for one weight by central differences.
func numericalGrad(w *float64, loss func() float64) float64 {
	const eps = 1e-6
	orig := *w
	*w = orig + eps
	up := loss()
	*w = orig - eps
	down := loss()
	*w = orig
	return (up - down) / (2 * eps)
}

func TestDenseForward(t *testing.T) {
	d := &Dense{In: 2, Out: 1, W: NewParam(2), B: NewParam(1)}
	d.W.W[0], d.W.W[1], d.B.W[0] = 2, 3, 1
	got := d.Forward([]float64{4, 5})
	if got[0] != 2*4+3*5+1 {
		t.Fatalf("Forward = %v", got)
	}
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 3, 2)
	x := []float64{0.5, -1.2, 0.3}
	target := []float64{1, -1}

	loss := func() float64 {
		y := d.Forward(x)
		var l float64
		for i := range y {
			diff := y[i] - target[i]
			l += diff * diff
		}
		return l
	}

	// Analytic gradients.
	y := d.Forward(x)
	dy := make([]float64, len(y))
	for i := range y {
		dy[i] = 2 * (y[i] - target[i])
	}
	dx := d.Backward(x, dy)

	for i := range d.W.W {
		want := numericalGrad(&d.W.W[i], loss)
		if math.Abs(d.W.G[i]-want) > 1e-5 {
			t.Fatalf("dW[%d] = %v, numerical %v", i, d.W.G[i], want)
		}
	}
	for i := range d.B.W {
		want := numericalGrad(&d.B.W[i], loss)
		if math.Abs(d.B.G[i]-want) > 1e-5 {
			t.Fatalf("dB[%d] = %v, numerical %v", i, d.B.G[i], want)
		}
	}
	// Input gradient via perturbation.
	for i := range x {
		want := numericalGrad(&x[i], loss)
		if math.Abs(dx[i]-want) > 1e-5 {
			t.Fatalf("dx[%d] = %v, numerical %v", i, dx[i], want)
		}
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(rng, 2, 3)
	xs := [][]float64{{0.4, -0.2}, {0.1, 0.9}, {-0.5, 0.3}}
	target := []float64{0.2, -0.1, 0.4}

	loss := func() float64 {
		st := l.NewState()
		for _, x := range xs {
			st, _ = l.Step(x, st)
		}
		var lv float64
		for i, h := range st.H {
			d := h - target[i]
			lv += d * d
		}
		return lv
	}

	// Analytic: forward with caches, backward through time.
	st := l.NewState()
	caches := make([]*lstmCache, len(xs))
	for i, x := range xs {
		st, caches[i] = l.Step(x, st)
	}
	dH := make([]float64, l.Hidden)
	dC := make([]float64, l.Hidden)
	for i, h := range st.H {
		dH[i] = 2 * (h - target[i])
	}
	for i := len(xs) - 1; i >= 0; i-- {
		_, dH, dC = l.StepBackward(caches[i], dH, dC)
	}

	for i := range l.W.W {
		want := numericalGrad(&l.W.W[i], loss)
		if math.Abs(l.W.G[i]-want) > 1e-4 {
			t.Fatalf("dW[%d] = %v, numerical %v", i, l.W.G[i], want)
		}
	}
	for i := range l.B.W {
		want := numericalGrad(&l.B.W[i], loss)
		if math.Abs(l.B.G[i]-want) > 1e-4 {
			t.Fatalf("dB[%d] = %v, numerical %v", i, l.B.G[i], want)
		}
	}
}

func TestLSTMNetGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewLSTMNet(rng, 2, 4, []int{3, 3}, 2)
	seq := [][]float64{{0.1, 0.2}, {-0.3, 0.4}, {0.5, -0.6}}
	target := []float64{0.7, -0.2}

	loss := func() float64 {
		y := net.Predict(seq)
		var l float64
		for i := range y {
			d := y[i] - target[i]
			l += d * d
		}
		return l / float64(len(y)) // TrainBatch normalizes by outputs*batch
	}

	net.TrainBatch([][][]float64{seq}, [][]float64{target})
	params := net.Params()
	for pi, p := range params {
		for i := range p.W {
			want := numericalGrad(&p.W[i], loss)
			if math.Abs(p.G[i]-want) > 1e-4 {
				t.Fatalf("param %d weight %d: grad %v, numerical %v", pi, i, p.G[i], want)
			}
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, 3, 4, 2)
	x := []float64{0.3, -0.7, 0.2}
	target := []float64{0.1, 0.9}

	loss := func() float64 {
		y := m.Forward(x)
		var l float64
		for i := range y {
			d := y[i] - target[i]
			l += d * d
		}
		return l / float64(len(y)) // TrainBatch normalizes by outputs*batch
	}

	m.TrainBatch([][]float64{x}, [][]float64{target})
	for pi, p := range m.Params() {
		for i := range p.W {
			want := numericalGrad(&p.W[i], loss)
			if math.Abs(p.G[i]-want) > 1e-4 {
				t.Fatalf("param %d weight %d: grad %v, numerical %v", pi, i, p.G[i], want)
			}
		}
	}
}

func TestAdamReducesLossOnToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 1, 8, 1)
	opt := NewAdam(0.02, m.Params())
	// Learn y = sin-ish bump via samples of y = x².
	xs := make([][]float64, 64)
	ys := make([][]float64, 64)
	for i := range xs {
		x := float64(i)/32 - 1
		xs[i] = []float64{x}
		ys[i] = []float64{x * x}
	}
	first := m.TrainBatch(xs, ys)
	opt.Step()
	var last float64
	for e := 0; e < 300; e++ {
		last = m.TrainBatch(xs, ys)
		opt.Step()
	}
	if last > first/10 {
		t.Fatalf("Adam failed to reduce loss: first %v, last %v", first, last)
	}
}

func TestLSTMNetLearnsAlternatingSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewLSTMNet(rng, 1, 6, []int{8}, 1)
	opt := NewAdam(0.02, net.Params())
	// Predict the next value of an alternating ±1 sequence: requires
	// remembering the last input's sign.
	var seqs [][][]float64
	var targets [][]float64
	for s := 0; s < 16; s++ {
		seq := make([][]float64, 6)
		sign := 1.0
		if s%2 == 1 {
			sign = -1
		}
		for i := range seq {
			seq[i] = []float64{sign}
			sign = -sign
		}
		seqs = append(seqs, seq)
		targets = append(targets, []float64{sign})
	}
	var last float64
	for e := 0; e < 200; e++ {
		last = net.TrainBatch(seqs, targets)
		opt.Step()
	}
	if last > 0.05 {
		t.Fatalf("LSTM failed to learn alternation: loss %v", last)
	}
	pred := net.Predict(seqs[0])
	if math.Abs(pred[0]-targets[0][0]) > 0.5 {
		t.Fatalf("prediction %v, want %v", pred[0], targets[0][0])
	}
}

func TestAdamGradientClipping(t *testing.T) {
	p := NewParam(2)
	p.G[0], p.G[1] = 3e3, 4e3 // norm 5000
	opt := NewAdam(0.1, []*Param{p})
	opt.Clip = 5
	opt.Step()
	// After clipping the norm to 5 and one Adam step, weights move by at
	// most ~lr in each coordinate.
	for i, w := range p.W {
		if math.Abs(w) > 0.2 {
			t.Fatalf("weight %d moved too far: %v", i, w)
		}
	}
	// Gradients are cleared after the step.
	if p.G[0] != 0 || p.G[1] != 0 {
		t.Fatal("gradients not cleared")
	}
}

func TestParamInit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewParam(1000)
	p.InitXavier(rng, 10, 10)
	bound := math.Sqrt(6.0 / 20)
	for _, w := range p.W {
		if w < -bound || w > bound {
			t.Fatalf("weight %v outside Xavier bound %v", w, bound)
		}
	}
	var nonZero int
	for _, w := range p.W {
		if w != 0 {
			nonZero++
		}
	}
	if nonZero < 900 {
		t.Fatal("initialization left too many zeros")
	}
}

func TestTrainBatchParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	build := func() *LSTMNet { return NewLSTMNet(rand.New(rand.NewSource(20)), 2, 4, []int{5}, 2) }
	var seqs [][][]float64
	var targets [][]float64
	for s := 0; s < 16; s++ {
		seq := make([][]float64, 5)
		for i := range seq {
			seq[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		seqs = append(seqs, seq)
		targets = append(targets, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	serial, parallel := build(), build()
	l1 := serial.TrainBatch(seqs, targets)
	l2 := parallel.TrainBatchParallel(seqs, targets)
	if math.Abs(l1-l2) > 1e-9*(1+math.Abs(l1)) {
		t.Fatalf("loss mismatch: %v vs %v", l1, l2)
	}
	sp, pp := serial.Params(), parallel.Params()
	for pi := range sp {
		for i := range sp[pi].G {
			if math.Abs(sp[pi].G[i]-pp[pi].G[i]) > 1e-9*(1+math.Abs(sp[pi].G[i])) {
				t.Fatalf("param %d grad %d: %v vs %v", pi, i, sp[pi].G[i], pp[pi].G[i])
			}
		}
	}
}

func TestTrainBatchParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	var seqs [][][]float64
	var targets [][]float64
	for s := 0; s < 24; s++ {
		seq := make([][]float64, 4)
		for i := range seq {
			seq[i] = []float64{rng.NormFloat64()}
		}
		seqs = append(seqs, seq)
		targets = append(targets, []float64{rng.NormFloat64()})
	}
	run := func() float64 {
		net := NewLSTMNet(rand.New(rand.NewSource(40)), 1, 3, []int{4}, 1)
		net.TrainBatchParallel(seqs, targets)
		var sum float64
		for _, p := range net.Params() {
			for _, g := range p.G {
				sum += g
			}
		}
		return sum
	}
	if run() != run() {
		t.Fatal("parallel training not deterministic")
	}
}
