package nn

import (
	"math"
	"math/rand"
)

// MLP is a feed-forward network with tanh hidden activations and a linear
// output layer — the FNN baseline from the paper's evaluation (§7.2).
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a network with the given layer sizes, e.g.
// NewMLP(rng, 24, 32, 3) is 24 → 32(tanh) → 3(linear).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewDense(rng, sizes[i], sizes[i+1]))
	}
	return m
}

// Forward runs the network on x.
func (m *MLP) Forward(x []float64) []float64 {
	y, _ := m.forward(x)
	return y
}

// forward returns the output and the input to every layer (pre-layer
// activations) for backprop.
func (m *MLP) forward(x []float64) ([]float64, [][]float64) {
	inputs := make([][]float64, len(m.Layers))
	cur := x
	for i, l := range m.Layers {
		inputs[i] = cur
		cur = l.Forward(cur)
		if i+1 < len(m.Layers) { // hidden activation
			for j, v := range cur {
				cur[j] = math.Tanh(v)
			}
		}
	}
	return cur, inputs
}

// TrainBatch accumulates gradients of the mean squared error over the batch
// and returns the batch loss. Callers step the optimizer afterwards.
func (m *MLP) TrainBatch(xs, ys [][]float64) float64 {
	var loss float64
	for n, x := range xs {
		pred, inputs := m.forward(x)
		target := ys[n]
		dy := make([]float64, len(pred))
		for i, p := range pred {
			d := p - target[i]
			loss += d * d
			dy[i] = 2 * d / float64(len(pred)*len(xs))
		}
		for i := len(m.Layers) - 1; i >= 0; i-- {
			dy = m.Layers[i].Backward(inputs[i], dy)
			if i > 0 {
				// Undo tanh: inputs[i] holds tanh outputs of layer i-1.
				for j, a := range inputs[i] {
					dy[j] *= 1 - a*a
				}
			}
		}
	}
	return loss / float64(len(xs))
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumWeights reports the total weight count.
func (m *MLP) NumWeights() int {
	n := 0
	for _, l := range m.Layers {
		n += l.NumWeights()
	}
	return n
}
