// Package nn is the neural-network substrate for QB5000's non-linear
// forecasting models: dense layers, an LSTM cell with backpropagation
// through time, and the Adam optimizer. The paper trained its RNN models
// with PyTorch; this package provides the equivalent pieces in pure Go.
package nn

import (
	"math"
	"math/rand"
)

// Param is a flat tensor of trainable weights together with its gradient
// and Adam moment buffers.
type Param struct {
	W []float64 // weights
	G []float64 // accumulated gradient
	m []float64 // Adam first moment
	v []float64 // Adam second moment
}

// NewParam allocates a parameter of n weights.
func NewParam(n int) *Param {
	return &Param{
		W: make([]float64, n),
		G: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
	}
}

// InitUniform fills the weights uniformly in [-scale, scale].
func (p *Param) InitUniform(rng *rand.Rand, scale float64) {
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * scale
	}
}

// InitXavier applies Glorot-uniform initialization for a layer with the
// given fan-in and fan-out.
func (p *Param) InitXavier(rng *rand.Rand, fanIn, fanOut int) {
	scale := math.Sqrt(6 / float64(fanIn+fanOut))
	p.InitUniform(rng, scale)
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Adam is the Adam optimizer over a set of parameters.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	Clip    float64 // global gradient-norm clip; 0 disables
	step    int
	params  []*Param
}

// NewAdam creates an optimizer with the usual defaults (lr as given,
// β1=0.9, β2=0.999, ε=1e-8, clip=5).
func NewAdam(lr float64, params []*Param) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8, Clip: 5, params: params}
}

// Step applies one Adam update from the accumulated gradients and clears
// them.
func (a *Adam) Step() {
	a.step++
	if a.Clip > 0 {
		var norm2 float64
		for _, p := range a.params {
			for _, g := range p.G {
				norm2 += g * g
			}
		}
		if norm := math.Sqrt(norm2); norm > a.Clip {
			scale := a.Clip / norm
			for _, p := range a.params {
				for i := range p.G {
					p.G[i] *= scale
				}
			}
		}
	}
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range a.params {
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / c1
			vHat := p.v[i] / c2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
		p.ZeroGrad()
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
