package nn

import (
	"math"
	"math/rand"
)

// LSTM is a single long short-term memory layer (Hochreiter & Schmidhuber
// 1997), the RNN variant QB5000 uses for its non-linear forecaster (§6.1).
// Gate order in the packed weight matrices is input, forget, cell, output.
type LSTM struct {
	In, Hidden int
	// W is (4*Hidden) x (In+Hidden) row-major: each gate row sees the
	// concatenated [x, hPrev].
	W *Param
	// B is 4*Hidden.
	B *Param
}

// NewLSTM creates an LSTM layer with Xavier-initialized weights and the
// forget-gate bias set to 1 (the standard trick that lets memory persist
// early in training).
func NewLSTM(rng *rand.Rand, in, hidden int) *LSTM {
	l := &LSTM{In: in, Hidden: hidden, W: NewParam(4 * hidden * (in + hidden)), B: NewParam(4 * hidden)}
	l.W.InitXavier(rng, in+hidden, hidden)
	for i := hidden; i < 2*hidden; i++ { // forget gate bias
		l.B.W[i] = 1
	}
	return l
}

// LSTMState is the recurrent (h, c) pair.
type LSTMState struct {
	H, C []float64
}

// NewState returns a zero state.
func (l *LSTM) NewState() LSTMState {
	return LSTMState{H: make([]float64, l.Hidden), C: make([]float64, l.Hidden)}
}

// lstmCache stores the per-step activations needed by BPTT.
type lstmCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64
	c, tanhC        []float64
}

// Step advances the layer one timestep, returning the new state and the
// cache required to backpropagate through this step.
func (l *LSTM) Step(x []float64, st LSTMState) (LSTMState, *lstmCache) {
	H := l.Hidden
	cache := &lstmCache{
		x: x, hPrev: st.H, cPrev: st.C,
		i: make([]float64, H), f: make([]float64, H),
		g: make([]float64, H), o: make([]float64, H),
		c: make([]float64, H), tanhC: make([]float64, H),
	}
	width := l.In + H
	next := LSTMState{H: make([]float64, H), C: make([]float64, H)}
	for h := 0; h < H; h++ {
		var pre [4]float64
		for gate := 0; gate < 4; gate++ {
			rowIdx := gate*H + h
			row := l.W.W[rowIdx*width : (rowIdx+1)*width]
			s := l.B.W[rowIdx]
			for k, xv := range x {
				s += row[k] * xv
			}
			for k, hv := range st.H {
				s += row[l.In+k] * hv
			}
			pre[gate] = s
		}
		i := sigmoid(pre[0])
		f := sigmoid(pre[1])
		g := math.Tanh(pre[2])
		o := sigmoid(pre[3])
		c := f*st.C[h] + i*g
		tc := math.Tanh(c)
		cache.i[h], cache.f[h], cache.g[h], cache.o[h] = i, f, g, o
		cache.c[h], cache.tanhC[h] = c, tc
		next.C[h] = c
		next.H[h] = o * tc
	}
	return next, cache
}

// StepBackward backpropagates one timestep. dH and dC are the upstream
// gradients w.r.t. this step's output state; it returns the gradients
// w.r.t. the input x and the previous state.
func (l *LSTM) StepBackward(cache *lstmCache, dH, dC []float64) (dx []float64, dHPrev, dCPrev []float64) {
	H := l.Hidden
	width := l.In + H
	dx = make([]float64, l.In)
	dHPrev = make([]float64, H)
	dCPrev = make([]float64, H)
	for h := 0; h < H; h++ {
		i, f, g, o := cache.i[h], cache.f[h], cache.g[h], cache.o[h]
		tc := cache.tanhC[h]
		dOut := dH[h]
		dc := dC[h] + dOut*o*(1-tc*tc)
		// Pre-activation gradients.
		var dPre [4]float64
		dPre[0] = dc * g * i * (1 - i)              // input gate
		dPre[1] = dc * cache.cPrev[h] * f * (1 - f) // forget gate
		dPre[2] = dc * i * (1 - g*g)                // cell candidate
		dPre[3] = dOut * tc * o * (1 - o)           // output gate
		dCPrev[h] += dc * f
		for gate := 0; gate < 4; gate++ {
			gp := dPre[gate]
			//lint:ignore floateq skipping exact-zero gradients is a fast path, not a tolerance check
			if gp == 0 {
				continue
			}
			rowIdx := gate*H + h
			row := l.W.W[rowIdx*width : (rowIdx+1)*width]
			grow := l.W.G[rowIdx*width : (rowIdx+1)*width]
			l.B.G[rowIdx] += gp
			for k, xv := range cache.x {
				grow[k] += gp * xv
				dx[k] += gp * row[k]
			}
			for k, hv := range cache.hPrev {
				grow[l.In+k] += gp * hv
				dHPrev[k] += gp * row[l.In+k]
			}
		}
	}
	return dx, dHPrev, dCPrev
}

// Params returns the layer's trainable parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.W, l.B} }

// NumWeights reports the weight count.
func (l *LSTM) NumWeights() int { return len(l.W.W) + len(l.B.W) }
