package nn

import "math/rand"

// LSTMNet is the forecasting network from the paper (§7.2): a linear
// embedding layer followed by stacked LSTM layers and a linear readout of
// the final hidden state (many-to-one sequence regression).
type LSTMNet struct {
	Embed *Dense
	Cells []*LSTM
	Out   *Dense
}

// NewLSTMNet builds the network. The paper's configuration is an embedding
// of size 25 followed by two LSTM layers of 20 cells each.
func NewLSTMNet(rng *rand.Rand, in, embed int, hidden []int, out int) *LSTMNet {
	net := &LSTMNet{Embed: NewDense(rng, in, embed)}
	prev := embed
	for _, h := range hidden {
		net.Cells = append(net.Cells, NewLSTM(rng, prev, h))
		prev = h
	}
	net.Out = NewDense(rng, prev, out)
	return net
}

// Predict runs the sequence through the network and returns the readout of
// the final step.
func (n *LSTMNet) Predict(seq [][]float64) []float64 {
	states := make([]LSTMState, len(n.Cells))
	for i, c := range n.Cells {
		states[i] = c.NewState()
	}
	var last []float64
	for _, x := range seq {
		cur := n.Embed.Forward(x)
		for i, c := range n.Cells {
			states[i], _ = c.Step(cur, states[i])
			cur = states[i].H
		}
		last = cur
	}
	if last == nil {
		last = make([]float64, n.lastHidden())
	}
	return n.Out.Forward(last)
}

func (n *LSTMNet) lastHidden() int {
	if len(n.Cells) == 0 {
		return n.Embed.Out
	}
	return n.Cells[len(n.Cells)-1].Hidden
}

// netCache stores everything one forward pass needs for BPTT.
type netCache struct {
	embedIn  [][]float64    // raw inputs per step
	embedOut [][]float64    // embedding outputs per step
	caches   [][]*lstmCache // [layer][step]
	lastH    []float64
}

func (n *LSTMNet) forward(seq [][]float64) ([]float64, *netCache) {
	nc := &netCache{caches: make([][]*lstmCache, len(n.Cells))}
	states := make([]LSTMState, len(n.Cells))
	for i, c := range n.Cells {
		states[i] = c.NewState()
	}
	for _, x := range seq {
		nc.embedIn = append(nc.embedIn, x)
		cur := n.Embed.Forward(x)
		nc.embedOut = append(nc.embedOut, cur)
		for i, c := range n.Cells {
			var cache *lstmCache
			states[i], cache = c.Step(cur, states[i])
			nc.caches[i] = append(nc.caches[i], cache)
			cur = states[i].H
		}
		nc.lastH = cur
	}
	return n.Out.Forward(nc.lastH), nc
}

// TrainBatch accumulates MSE gradients over a batch of (sequence, target)
// pairs and returns the batch loss. Callers step the optimizer afterwards.
func (n *LSTMNet) TrainBatch(seqs [][][]float64, targets [][]float64) float64 {
	var loss float64
	for s, seq := range seqs {
		pred, nc := n.forward(seq)
		target := targets[s]
		dy := make([]float64, len(pred))
		for i, p := range pred {
			d := p - target[i]
			loss += d * d
			dy[i] = 2 * d / float64(len(pred)*len(seqs))
		}
		n.backward(nc, dy)
	}
	return loss / float64(len(seqs))
}

// backward backpropagates through time from the final-step readout.
func (n *LSTMNet) backward(nc *netCache, dy []float64) {
	T := len(nc.embedIn)
	if T == 0 {
		return
	}
	L := len(n.Cells)
	// dH[l] and dC[l] carry the recurrent gradient for layer l at the
	// current timestep during the backward sweep.
	dH := make([][]float64, L)
	dC := make([][]float64, L)
	for l, c := range n.Cells {
		dH[l] = make([]float64, c.Hidden)
		dC[l] = make([]float64, c.Hidden)
	}
	// Seed from the readout at the final step.
	dLast := n.Out.Backward(nc.lastH, dy)
	addInto(dH[L-1], dLast)

	for t := T - 1; t >= 0; t-- {
		// dFromAbove is the gradient flowing into layer l's output at step
		// t from layer l+1's input at the same step.
		var dFromAbove []float64
		for l := L - 1; l >= 0; l-- {
			up := dH[l]
			if dFromAbove != nil {
				addInto(up, dFromAbove)
			}
			dx, dHPrev, dCPrev := n.Cells[l].StepBackward(nc.caches[l][t], up, dC[l])
			dH[l], dC[l] = dHPrev, dCPrev
			dFromAbove = dx
		}
		// dFromAbove is now the gradient w.r.t. the embedding output.
		n.Embed.Backward(nc.embedIn[t], dFromAbove)
	}
}

func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// Params returns all trainable parameters.
func (n *LSTMNet) Params() []*Param {
	ps := n.Embed.Params()
	for _, c := range n.Cells {
		ps = append(ps, c.Params()...)
	}
	return append(ps, n.Out.Params()...)
}

// NumWeights reports the total weight count (Table 4 model-size accounting).
func (n *LSTMNet) NumWeights() int {
	total := n.Embed.NumWeights() + n.Out.NumWeights()
	for _, c := range n.Cells {
		total += c.NumWeights()
	}
	return total
}
