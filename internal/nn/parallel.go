package nn

import (
	"qb5000/internal/parallel"
)

// Clone deep-copies the layer's weights (with fresh gradient/moment
// buffers), for data-parallel gradient accumulation.
func (d *Dense) Clone() *Dense {
	c := &Dense{In: d.In, Out: d.Out, W: NewParam(len(d.W.W)), B: NewParam(len(d.B.W))}
	copy(c.W.W, d.W.W)
	copy(c.B.W, d.B.W)
	return c
}

// Clone deep-copies the LSTM layer's weights.
func (l *LSTM) Clone() *LSTM {
	c := &LSTM{In: l.In, Hidden: l.Hidden, W: NewParam(len(l.W.W)), B: NewParam(len(l.B.W))}
	copy(c.W.W, l.W.W)
	copy(c.B.W, l.B.W)
	return c
}

// Clone deep-copies the network's weights.
func (n *LSTMNet) Clone() *LSTMNet {
	c := &LSTMNet{Embed: n.Embed.Clone(), Out: n.Out.Clone()}
	for _, cell := range n.Cells {
		c.Cells = append(c.Cells, cell.Clone())
	}
	return c
}

// trainWorkers is the fixed degree of data parallelism for batch training.
// It is a constant (rather than NumCPU) so gradient summation order — and
// therefore every trained model — is identical on every machine.
const trainWorkers = 4

// TrainBatchParallel behaves like TrainBatch but splits the batch across a
// fixed set of workers on the shared pool, each accumulating gradients into
// a private clone of the network; the per-worker gradients are then combined
// in deterministic order. Results differ from the serial path only by
// floating-point association in the gradient sums.
func (n *LSTMNet) TrainBatchParallel(seqs [][][]float64, targets [][]float64) float64 {
	if len(seqs) < 2*trainWorkers {
		return n.TrainBatch(seqs, targets)
	}
	type chunkResult struct {
		net  *LSTMNet
		loss float64
		size int
	}
	chunkSize := (len(seqs) + trainWorkers - 1) / trainWorkers
	results := make([]chunkResult, 0, trainWorkers)
	for from := 0; from < len(seqs); from += chunkSize {
		to := from + chunkSize
		if to > len(seqs) {
			to = len(seqs)
		}
		results = append(results, chunkResult{net: n.Clone(), size: to - from})
	}
	// Gradient accumulation cannot fail and needs no cancellation, so the
	// infallible pool variant fits: no context to thread, no always-nil
	// error to discard.
	parallel.Each(trainWorkers, len(results), func(i int) {
		from := i * chunkSize
		to := from + results[i].size
		results[i].loss = results[i].net.TrainBatch(seqs[from:to], targets[from:to])
	})

	// Combine: each worker normalized its gradients by its own chunk size;
	// rescale so the sum matches the serial full-batch normalization.
	main := n.Params()
	total := float64(len(seqs))
	var loss float64
	for _, r := range results {
		scale := float64(r.size) / total
		loss += r.loss * scale
		for pi, p := range r.net.Params() {
			dst := main[pi].G
			for i, g := range p.G {
				dst[i] += g * scale
			}
		}
	}
	return loss
}
