package core

import (
	"context"
	"testing"
	"time"

	"qb5000/internal/workload"
)

// TestPipelineSmoke replays a week of BusTracker into the controller, forces
// training with the (cheap) LR model, and checks a 1-hour-ahead forecast is
// produced and roughly tracks the workload's scale.
func TestPipelineSmoke(t *testing.T) {
	w := workload.BusTracker(42)
	ctl := New(Config{
		Model:    "LR",
		Horizons: []time.Duration{time.Hour},
		Seed:     7,
	})

	from := w.Start
	to := from.Add(8 * 24 * time.Hour)
	err := w.Replay(from, to, 5*time.Minute, func(ev workload.Event) error {
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}

	if got := ctl.Preprocessor().Len(); got < 10 {
		t.Fatalf("expected at least 10 templates, got %d", got)
	}

	if err := ctl.Refresh(context.Background(), to); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if ctl.Clusterer().Len() == 0 {
		t.Fatal("no clusters formed")
	}
	if len(ctl.Tracked()) == 0 {
		t.Fatal("no clusters tracked")
	}
	if ctl.TrainCount() == 0 {
		t.Fatal("models never trained")
	}

	preds, err := ctl.Forecast(time.Hour)
	if err != nil {
		t.Fatalf("forecast: %v", err)
	}
	if len(preds) != len(ctl.Tracked()) {
		t.Fatalf("got %d forecasts for %d tracked clusters", len(preds), len(ctl.Tracked()))
	}
	var total float64
	for _, p := range preds {
		if p.PerTemplateRate < 0 {
			t.Fatalf("negative predicted rate %v", p.PerTemplateRate)
		}
		total += p.TotalRate
	}
	if total <= 0 {
		t.Fatalf("expected positive total predicted volume, got %v", total)
	}
}
