package core

import (
	"context"
	"testing"
	"time"

	"qb5000/internal/workload"
)

func replayDays(t *testing.T, ctl *Controller, w *workload.Workload, days int) time.Time {
	t.Helper()
	to := w.Start.Add(time.Duration(days) * 24 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatal(err)
	}
	return to
}

func TestTickCadence(t *testing.T) {
	w := workload.BusTracker(3)
	ctl := New(Config{Model: "LR", ClusterEvery: 24 * time.Hour, Seed: 1})
	to := replayDays(t, ctl, w, 3)

	ran, err := ctl.Tick(context.Background(), to)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("first tick should recluster")
	}
	// Immediately after, nothing is due and no new templates appeared.
	ran, err = ctl.Tick(context.Background(), to.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("tick re-ran without cadence or trigger")
	}
	ran, err = ctl.Tick(context.Background(), to.Add(25*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("daily cadence did not fire")
	}
}

func TestNewTemplateTriggerForcesRecluster(t *testing.T) {
	w := workload.BusTracker(3)
	ctl := New(Config{Model: "LR", ClusterEvery: 240 * time.Hour, NewTemplateTrigger: 0.2, Seed: 1})
	to := replayDays(t, ctl, w, 2)
	if _, err := ctl.Tick(context.Background(), to); err != nil {
		t.Fatal(err)
	}
	// Inject a burst of brand-new templates (> 20% of catalog).
	n := ctl.Preprocessor().Len()
	for i := 0; i < n; i++ {
		sql := "SELECT brand_new_" + string(rune('a'+i%26)) + " FROM novel WHERE z = 1"
		if err := ctl.Ingest(sql, to.Add(time.Minute), 1); err != nil {
			t.Fatal(err)
		}
	}
	ran, err := ctl.Tick(context.Background(), to.Add(2*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("new-template trigger did not fire")
	}
}

func TestForecastUnknownHorizon(t *testing.T) {
	ctl := New(Config{Model: "LR", Seed: 1})
	if _, err := ctl.Forecast(42 * time.Hour); err == nil {
		t.Fatal("expected error for untrained horizon")
	}
}

func TestForecastClampsAbsurdPredictions(t *testing.T) {
	w := workload.BusTracker(3)
	ctl := New(Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 1})
	to := replayDays(t, ctl, w, 8)
	if err := ctl.Refresh(context.Background(), to); err != nil {
		t.Fatal(err)
	}
	preds, err := ctl.Forecast(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// No forecast may exceed e× the highest training rate (the clamp).
	for _, p := range preds {
		if p.PerTemplateRate > 3*60*10000 {
			t.Fatalf("unclamped prediction: %v", p.PerTemplateRate)
		}
		if p.TotalRate < p.PerTemplateRate {
			t.Fatalf("TotalRate %v below per-template %v", p.TotalRate, p.PerTemplateRate)
		}
	}
}

func TestMultipleHorizons(t *testing.T) {
	w := workload.BusTracker(3)
	ctl := New(Config{
		Model:    "LR",
		Horizons: []time.Duration{time.Hour, 12 * time.Hour},
		Seed:     1,
	})
	to := replayDays(t, ctl, w, 8)
	if err := ctl.Refresh(context.Background(), to); err != nil {
		t.Fatal(err)
	}
	hs := ctl.Horizons()
	if len(hs) != 2 || hs[0] != time.Hour || hs[1] != 12*time.Hour {
		t.Fatalf("Horizons = %v", hs)
	}
	for _, h := range hs {
		if _, err := ctl.Forecast(h); err != nil {
			t.Fatalf("horizon %v: %v", h, err)
		}
	}
}

func TestRetrainSkipsWhenHistoryTooShort(t *testing.T) {
	w := workload.BusTracker(3)
	ctl := New(Config{Model: "LR", Horizons: []time.Duration{time.Hour}, Seed: 1})
	// Only 2 hours of data: not enough for a one-day input window.
	to := w.Start.Add(2 * time.Hour)
	err := w.Replay(w.Start, to, 10*time.Minute, func(ev workload.Event) error {
		return ctl.Ingest(ev.SQL, ev.At, ev.Count)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Refresh(context.Background(), to); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Forecast(time.Hour); err == nil {
		t.Fatal("expected no model with 2h of history")
	}
}

func TestLastSeenTracksIngest(t *testing.T) {
	ctl := New(Config{Seed: 1})
	at := time.Date(2018, 3, 1, 10, 0, 0, 0, time.UTC)
	if err := ctl.Ingest("SELECT a FROM t WHERE x = 1", at, 1); err != nil {
		t.Fatal(err)
	}
	if !ctl.LastSeen().Equal(at) {
		t.Fatalf("LastSeen = %v", ctl.LastSeen())
	}
	// Older arrivals do not move the clock backwards.
	ctl.Ingest("SELECT a FROM t WHERE x = 2", at.Add(-time.Hour), 1)
	if !ctl.LastSeen().Equal(at) {
		t.Fatal("LastSeen moved backwards")
	}
}

// TestEnsembleModelThroughController exercises the RNN training path inside
// the controller with a reduced epoch budget.
func TestEnsembleModelThroughController(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an LSTM")
	}
	w := workload.BusTracker(3)
	ctl := New(Config{
		Model:    "ENSEMBLE",
		Horizons: []time.Duration{time.Hour},
		Epochs:   3,
		Seed:     1,
	})
	to := replayDays(t, ctl, w, 8)
	if err := ctl.Refresh(context.Background(), to); err != nil {
		t.Fatal(err)
	}
	preds, err := ctl.Forecast(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range preds {
		total += p.TotalRate
	}
	if total <= 0 {
		t.Fatalf("ensemble forecast total = %v", total)
	}
}

// TestHybridModelThroughController exercises the spike-model wiring.
func TestHybridModelThroughController(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an LSTM")
	}
	w := workload.BusTracker(3)
	ctl := New(Config{
		Model:    "HYBRID",
		Horizons: []time.Duration{time.Hour},
		Epochs:   2,
		Seed:     1,
	})
	to := replayDays(t, ctl, w, 9)
	if err := ctl.Refresh(context.Background(), to); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Forecast(time.Hour); err != nil {
		t.Fatal(err)
	}
}
