package core

// Snapshot envelope: a torn-write-detecting frame around the preprocess
// layer's canonical gob body (DESIGN.md §8). The body stays byte-identical
// across shard counts and cache settings; the envelope adds exactly what a
// crash-recovery path needs to refuse a damaged file with a descriptive
// error instead of feeding the decoder partial state:
//
//	[8]  magic "QB5KSNP2"
//	[8]  big-endian uint64 body length
//	[n]  gob body (preprocess snapshot, format v2)
//	[4]  big-endian CRC32-IEEE of the body
//
// Truncation is caught by the length prefix, bit flips by the checksum, and
// appended garbage by an explicit EOF probe after the trailer.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// snapshotMagic identifies an enveloped v2 snapshot. Pre-envelope snapshots
// (raw gob) fail the magic check and are reported as such.
const snapshotMagic = "QB5KSNP2"

// maxSnapshotBody bounds the declared body length so a corrupted length
// field cannot drive an absurd read. 1 TiB is orders of magnitude beyond
// any real catalog.
const maxSnapshotBody = 1 << 40

// writeSnapshotEnvelope frames body with the magic/length header and CRC
// trailer.
func writeSnapshotEnvelope(w io.Writer, body []byte) error {
	var hdr [16]byte
	copy(hdr[:8], snapshotMagic)
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("core: write snapshot body: %w", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("core: write snapshot trailer: %w", err)
	}
	return nil
}

// readSnapshotEnvelope validates the frame and returns the body. Every
// failure mode — short file, wrong magic, bit flip, trailing garbage — is a
// distinct descriptive error; none of them reach the gob decoder.
func readSnapshotEnvelope(r io.Reader) ([]byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: snapshot truncated in the envelope header (want 16 bytes): %w", err)
	}
	if !bytes.Equal(hdr[:8], []byte(snapshotMagic)) {
		return nil, fmt.Errorf("core: not a QB5000 snapshot: bad magic %q (want %q; pre-envelope snapshots must be regenerated)", hdr[:8], snapshotMagic)
	}
	n := binary.BigEndian.Uint64(hdr[8:])
	if n > maxSnapshotBody {
		return nil, fmt.Errorf("core: snapshot corrupt: implausible body length %d", n)
	}
	// LimitReader + ReadAll grows the buffer as bytes actually arrive, so a
	// bit-flipped length field cannot force a giant up-front allocation.
	body, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, fmt.Errorf("core: read snapshot body: %w", err)
	}
	if uint64(len(body)) != n {
		return nil, fmt.Errorf("core: snapshot truncated: header declares %d body bytes, only %d present", n, len(body))
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("core: snapshot truncated in the CRC trailer: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("core: snapshot corrupt: body CRC32 %08x does not match trailer %08x", got, want)
	}
	var probe [1]byte
	if _, err := io.ReadFull(r, probe[:]); err != io.EOF {
		return nil, fmt.Errorf("core: snapshot has trailing data after the CRC trailer")
	}
	return body, nil
}
