// Package core wires QB5000's three stages together (paper §3, Figure 2):
// the Pre-Processor ingests raw SQL and maintains templates in real time;
// the Clusterer periodically regroups templates by arrival-rate similarity;
// the Forecaster trains one model per prediction horizon on the largest
// clusters and answers arrival-rate predictions for the planning module.
//
// The controller is safe for concurrent use and keeps ingest off the DBMS's
// critical path: Ingest/IngestMany go straight to the sharded catalog's
// stripe locks, maintenance (Tick/Refresh) serializes behind its own mutex
// and builds clusters and models against cloned catalog snapshots off to
// the side, and the finished result is published as an immutable epoch
// swapped in through one atomic pointer. Forecast and the read accessors
// load the current epoch without blocking, so a retrain never stalls either
// ingestion or predictions.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/parallel"
	"qb5000/internal/preprocess"
	"qb5000/internal/timeseries"
)

// Config tunes the controller. Zero values select the paper's operating
// point.
type Config struct {
	// Rho is the clustering similarity threshold (default 0.8, Appendix A).
	Rho float64
	// Gamma is the HYBRID spike-override threshold (default 1.5, App. C).
	Gamma float64
	// Interval is the prediction interval (default one hour, §7.4).
	Interval time.Duration
	// Horizons are the prediction horizons to maintain models for
	// (default: 1 hour).
	Horizons []time.Duration
	// TrainWindow bounds the history used for model training (default
	// three weeks, §7.2).
	TrainWindow time.Duration
	// CoverageTarget selects how many clusters to model: the smallest set
	// of highest-volume clusters covering this fraction of the workload
	// (default 0.95, §7.2), capped at MaxClusters.
	CoverageTarget float64
	// MaxClusters caps the modeled clusters (default 5, §5.3).
	MaxClusters int
	// ClusterEvery is the periodic re-cluster cadence (default 24 h, §7.1).
	ClusterEvery time.Duration
	// NewTemplateTrigger re-clusters early when the fraction of
	// previously-unseen templates exceeds it (default 0.2, §5.2).
	NewTemplateTrigger float64
	// Model selects the forecasting model family (default "HYBRID").
	Model string
	// FeatureMode selects arrival-rate (default) or logical clustering
	// features (the §7.7 baseline).
	FeatureMode cluster.FeatureMode
	// Seed drives all randomness.
	Seed int64
	// Epochs and LearnRate tune the gradient-trained models.
	Epochs    int
	LearnRate float64
	// FeatureSize is the clustering feature dimensionality (§5.1).
	FeatureSize int
	// Lag is the model input-window length (default one day, §7.2).
	Lag time.Duration
	// EvictAfter drops templates idle for this long (default 14 days).
	EvictAfter time.Duration
	// Parallelism bounds the worker pool shared by model retraining and the
	// clusterer's similarity scans: 0 selects GOMAXPROCS, 1 forces the
	// sequential path. Per-model seeds are derived deterministically from
	// Seed, so results are bit-identical at every setting.
	Parallelism int
	// Shards is the template catalog's lock-stripe count (rounded up to a
	// power of two; 0 selects GOMAXPROCS rounded up). Template IDs depend
	// on the stripe count, so pin Shards to 1 when cross-machine
	// reproducibility of IDs matters (the experiment harnesses do).
	Shards int
	// FingerprintCacheSize bounds the raw-SQL→template fingerprint cache
	// (entries across all cache shards); 0 disables it. The cache is pure
	// derived state — hits mutate the catalog exactly as their misses would —
	// so enabling it changes only ingest latency, never results.
	FingerprintCacheSize int
}

func (c Config) withDefaults() Config {
	//lint:ignore floateq zero is the exact "use the default" sentinel, never a computed value
	if c.Rho == 0 {
		c.Rho = 0.8
	}
	//lint:ignore floateq zero is the exact "use the default" sentinel
	if c.Gamma == 0 {
		c.Gamma = forecast.DefaultGamma
	}
	if c.Interval == 0 {
		c.Interval = time.Hour
	}
	if len(c.Horizons) == 0 {
		c.Horizons = []time.Duration{time.Hour}
	}
	if c.TrainWindow == 0 {
		c.TrainWindow = 21 * 24 * time.Hour
	}
	//lint:ignore floateq zero is the exact "use the default" sentinel
	if c.CoverageTarget == 0 {
		c.CoverageTarget = 0.95
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 5
	}
	if c.ClusterEvery == 0 {
		c.ClusterEvery = 24 * time.Hour
	}
	//lint:ignore floateq zero is the exact "use the default" sentinel
	if c.NewTemplateTrigger == 0 {
		c.NewTemplateTrigger = 0.2
	}
	if c.Model == "" {
		c.Model = "HYBRID"
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 14 * 24 * time.Hour
	}
	return c
}

// epoch is one immutable published snapshot of the derived state: the
// tracked clusters (cluster snapshots over cloned templates), the trained
// models, and the training-time forecast cap. Epochs are built off to the
// side by the maintenance path and swapped in atomically; readers treat
// every field as read-only. Models are shared across epochs — Predict is
// already safe for concurrent use.
type epoch struct {
	// tracked are the modeled clusters, highest volume first.
	tracked []*cluster.Cluster
	// models maps each horizon to its trained model.
	models map[time.Duration]forecast.Model
	// maxTrainLog caps forecasts: no prediction may exceed e× the largest
	// arrival rate seen during training (in log space, +1). Models
	// extrapolating across a workload shift can otherwise emit absurd
	// volumes that would mislead the planning module.
	maxTrainLog float64
	// builtAt is the maintenance timestamp that produced this epoch.
	builtAt time.Time
}

// Controller is the QB5000 framework instance.
type Controller struct {
	cfg Config
	pre *preprocess.Preprocessor
	clu *cluster.Clusterer

	// maintainMu serializes the maintenance path (Tick/Refresh). Ingest
	// and the read accessors never take it.
	maintainMu sync.Mutex
	// lastCluster is the last maintenance timestamp.
	// qb5000:guardedby maintainMu
	lastCluster time.Time

	// cur is the atomically published current epoch; nil until the first
	// successful maintenance pass.
	// qb5000:guardedby atomic
	cur atomic.Pointer[epoch]

	// trainCount counts completed model (re)trains.
	// qb5000:guardedby atomic
	trainCount atomic.Int64

	// lastSeenNS/firstSeenNS bound the ingested timestamps in Unix
	// nanoseconds (0 = nothing ingested yet). They are CAS max/min loops so
	// concurrent ingest needs no lock; the helpers take them by pointer,
	// which is why they carry no atomic annotation.
	lastSeenNS  atomic.Int64
	firstSeenNS atomic.Int64
}

// New creates a controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg: cfg,
		pre: preprocess.New(preprocess.Options{
			Seed:                 cfg.Seed,
			EvictAfter:           cfg.EvictAfter,
			Shards:               cfg.Shards,
			FingerprintCacheSize: cfg.FingerprintCacheSize,
		}),
		clu: cluster.New(cluster.Options{
			Rho:         cfg.Rho,
			Seed:        cfg.Seed + 1,
			Mode:        cfg.FeatureMode,
			FeatureSize: cfg.FeatureSize,
			Parallelism: cfg.Parallelism,
		}),
	}
}

// storeMaxNS CAS-raises a to ns; 0 means "unset" and always loses.
//
// qb5000:noalloc
func storeMaxNS(a *atomic.Int64, ns int64) {
	for {
		cur := a.Load()
		if cur != 0 && ns <= cur {
			return
		}
		if a.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// storeMinNS CAS-lowers a to ns; 0 means "unset" and always loses.
//
// qb5000:noalloc
func storeMinNS(a *atomic.Int64, ns int64) {
	for {
		cur := a.Load()
		if cur != 0 && ns >= cur {
			return
		}
		if a.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// noteSeen advances the ingest clock bounds.
//
// qb5000:noalloc
func (c *Controller) noteSeen(at time.Time) {
	if at.IsZero() {
		return
	}
	ns := at.UnixNano()
	storeMaxNS(&c.lastSeenNS, ns)
	storeMinNS(&c.firstSeenNS, ns)
}

// Ingest forwards one query observation (with an arrival count, for batched
// replay) into the Pre-Processor. It contends only on the catalog stripe
// the query's template hashes to, never on maintenance.
func (c *Controller) Ingest(sql string, at time.Time, count int64) error {
	c.noteSeen(at)
	_, err := c.pre.ProcessBatch(sql, at, count)
	return err
}

// IngestMany forwards a batch of observations, parsing lock-free and taking
// each catalog stripe's lock once. It returns query-weighted counts of how
// much folded and how much was rejected (unparseable SQL or negative
// counts).
func (c *Controller) IngestMany(obs []preprocess.Observation) (ingested, rejected int64) {
	for i := range obs {
		c.noteSeen(obs[i].At)
	}
	return c.pre.ProcessMany(obs)
}

// Preprocessor exposes the template catalog (itself safe for concurrent
// use).
func (c *Controller) Preprocessor() *preprocess.Preprocessor { return c.pre }

// Clusterer exposes the clustering state (itself safe for concurrent use).
func (c *Controller) Clusterer() *cluster.Clusterer { return c.clu }

// Tracked returns the clusters modeled by the current epoch, largest first.
// The returned clusters are immutable snapshots; callers may read them
// without synchronization.
func (c *Controller) Tracked() []*cluster.Cluster {
	ep := c.cur.Load()
	if ep == nil {
		return nil
	}
	return ep.tracked
}

// TrainCount reports how many times the forecasting models have been
// (re)trained; every cluster-assignment change forces a retrain (§3).
func (c *Controller) TrainCount() int { return int(c.trainCount.Load()) }

// LastSeen returns the most recent ingested timestamp (the controller's
// notion of "now" during trace replay).
func (c *Controller) LastSeen() time.Time {
	ns := c.lastSeenNS.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// firstSeen returns the earliest ingested timestamp, or the zero time.
func (c *Controller) firstSeen() time.Time {
	ns := c.firstSeenNS.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// Tick performs due maintenance at the (simulated or wall-clock) time now:
// history compaction, periodic re-clustering, the early re-cluster trigger
// on new-template share, and model retraining whenever assignments changed.
// It returns whether a re-cluster ran. Cancelling ctx aborts the clustering
// and training work between pool items; the controller keeps its previous
// epoch and cluster state is refreshed by the next pass. Concurrent Tick
// and Refresh calls serialize behind the maintenance mutex; ingest and
// Forecast never wait on them.
func (c *Controller) Tick(ctx context.Context, now time.Time) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.maintainMu.Lock()
	defer c.maintainMu.Unlock()
	due := now.Sub(c.lastCluster) >= c.cfg.ClusterEvery
	trigger := c.pre.NewTemplateRatio() > c.cfg.NewTemplateTrigger && c.pre.Len() > 0
	if !due && !trigger {
		return false, nil
	}
	return true, c.refreshLocked(ctx, now)
}

// Refresh forces a full re-cluster and model retrain. The paper's framework
// periodically updates both the cluster assignments and the forecasting
// models (§3), and additionally retrains whenever assignments change; since
// Refresh IS the periodic update, it always retrains on the latest history.
func (c *Controller) Refresh(ctx context.Context, now time.Time) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.maintainMu.Lock()
	defer c.maintainMu.Unlock()
	return c.refreshLocked(ctx, now)
}

// refreshLocked is the maintenance pass body. It works entirely against a
// cloned catalog snapshot: ingestion keeps folding into the stripes while
// clustering and training run, and the finished epoch is published
// atomically at the end.
//
// qb5000:locked maintainMu
func (c *Controller) refreshLocked(ctx context.Context, now time.Time) error {
	c.pre.Maintain(now)
	if _, err := c.clu.Update(ctx, now, c.pre.Templates()); err != nil {
		return err
	}
	c.pre.MarkNewTemplates()
	c.lastCluster = now
	return c.retrain(ctx, now)
}

// retrain rebuilds the tracked-cluster set, fits one model per horizon, and
// publishes the result as a new epoch. The per-horizon fits — the hottest
// path in the framework (Table 4: RNN training dominates) — run on the
// worker pool. Every horizon's model seeds from Config.Seed plus the
// horizon, exactly as the sequential path always did, and each worker
// writes only its own result slot, so the trained models are bit-identical
// at every Parallelism setting. On error nothing is published and the
// previous epoch stays live; horizons whose fit was skipped for lack of
// history carry the previous epoch's model forward.
//
// qb5000:locked maintainMu
func (c *Controller) retrain(ctx context.Context, now time.Time) error {
	prev := c.cur.Load()
	next := &epoch{
		tracked: c.selectTracked(now),
		models:  make(map[time.Duration]forecast.Model, len(c.cfg.Horizons)),
		builtAt: now,
	}
	if prev != nil {
		next.maxTrainLog = prev.maxTrainLog
		for h, m := range prev.models {
			next.models[h] = m
		}
	}
	if len(next.tracked) == 0 {
		c.cur.Store(next)
		return nil
	}
	hist := c.historyMatrix(now, next.tracked)
	if hist.Rows < 4 {
		// Not enough history yet; publish the new tracked set with the
		// previous models.
		c.cur.Store(next)
		return nil
	}
	maxLog := 0.0
	for _, v := range hist.Data {
		if v > maxLog {
			maxLog = v
		}
	}
	// The HYBRID spike history is shared read-only by every horizon's fit;
	// build it once instead of per horizon.
	var spikeHist *mat.Matrix
	if c.cfg.Model == "HYBRID" {
		spikeHist = fullHourlyMatrix(now, next.tracked)
	}
	fitted := make([]forecast.Model, len(c.cfg.Horizons))
	err := parallel.ForEach(ctx, c.cfg.Parallelism, len(c.cfg.Horizons), func(_ context.Context, i int) error {
		h := c.cfg.Horizons[i]
		horizon := int(h / c.cfg.Interval)
		if horizon < 1 {
			horizon = 1
		}
		cfg := forecast.Config{
			Lag:       c.lagIntervals(),
			Horizon:   horizon,
			Outputs:   len(next.tracked),
			Seed:      c.cfg.Seed + int64(h/time.Minute),
			Epochs:    c.cfg.Epochs,
			LearnRate: c.cfg.LearnRate,
		}
		if hist.Rows < cfg.Lag+cfg.Horizon+1 {
			return nil
		}
		m, err := forecast.NewByName(c.cfg.Model, cfg)
		if err != nil {
			return err
		}
		if err := m.Fit(hist); err != nil {
			return fmt.Errorf("core: fit %s horizon %v: %w", c.cfg.Model, h, err)
		}
		if hy, ok := m.(*forecast.Hybrid); ok {
			// The spike model trains on the entire hourly history; a young
			// deployment may not have enough of it yet, in which case the
			// hybrid degrades to plain ENSEMBLE. Any other failure is real
			// and must surface.
			if err := hy.FitSpike(spikeHist); err != nil && !errors.Is(err, forecast.ErrInsufficientData) {
				return fmt.Errorf("core: fit %s spike model horizon %v: %w", c.cfg.Model, h, err)
			}
		}
		fitted[i] = m
		return nil
	})
	if err != nil {
		// Abort without publishing: the previous epoch (and its models)
		// stays live, so a cancelled pass never leaves half-trained state.
		return err
	}
	next.maxTrainLog = maxLog
	trained := false
	for i, h := range c.cfg.Horizons {
		if fitted[i] == nil {
			continue
		}
		next.models[h] = fitted[i]
		trained = true
	}
	if trained {
		c.trainCount.Add(1)
	}
	c.cur.Store(next)
	return nil
}

// lagIntervals is the model input window: one day of intervals by default
// (§7.2 uses the last day's arrival rate as input).
func (c *Controller) lagIntervals() int {
	lag := c.cfg.Lag
	if lag == 0 {
		lag = 24 * time.Hour
	}
	n := int(lag / c.cfg.Interval)
	if n < 2 {
		n = 2
	}
	return n
}

// selectTracked picks the highest-volume clusters covering the target
// fraction of the last day's workload, capped at MaxClusters, and snapshots
// them so the epoch is immune to the clusterer's next in-place Update.
//
// qb5000:locked maintainMu
func (c *Controller) selectTracked(now time.Time) []*cluster.Cluster {
	window := 24 * time.Hour
	clusters := c.clu.Clusters(now, window)
	var total float64
	vols := make([]float64, len(clusters))
	for i, cl := range clusters {
		vols[i] = c.clu.Volume(cl, now, window)
		total += vols[i]
	}
	var tracked []*cluster.Cluster
	var covered float64
	for i, cl := range clusters {
		if len(tracked) >= c.cfg.MaxClusters {
			break
		}
		tracked = append(tracked, cl.Snapshot())
		covered += vols[i]
		if total > 0 && covered/total >= c.cfg.CoverageTarget {
			break
		}
	}
	return tracked
}

// historyMatrix builds the training matrix: rows are intervals over the
// training window, columns are tracked clusters, values are log1p of the
// cluster-center (per-template average) arrival rate per interval.
func (c *Controller) historyMatrix(now time.Time, tracked []*cluster.Cluster) *mat.Matrix {
	from := now.Add(-c.cfg.TrainWindow).Truncate(c.cfg.Interval)
	// Never train on fabricated zeros from before the first observation.
	if first := c.firstSeen(); !first.IsZero() {
		if fs := first.Truncate(c.cfg.Interval); fs.After(from) {
			from = fs
		}
	}
	to := now.Truncate(c.cfg.Interval)
	rows := int(to.Sub(from) / c.cfg.Interval)
	if rows < 0 {
		rows = 0
	}
	m := mat.New(rows, len(tracked))
	for j, cl := range tracked {
		s := cluster.CenterSeries(cl, from, to, c.cfg.Interval)
		for i := 0; i < rows && i < s.Len(); i++ {
			m.Set(i, j, timeseries.Log1pClamped(s.Data[i]))
		}
	}
	return m
}

// fullHourlyMatrix builds the entire-history hourly matrix the HYBRID spike
// model trains on (§6.2).
func fullHourlyMatrix(now time.Time, tracked []*cluster.Cluster) *mat.Matrix {
	if len(tracked) == 0 {
		return mat.New(0, 0)
	}
	var from time.Time
	for _, cl := range tracked {
		for _, t := range cl.Members {
			start := t.History.Coarse().Start
			if t.History.Coarse().Len() == 0 {
				start = t.History.Fine().Start
			}
			if from.IsZero() || start.Before(from) {
				from = start
			}
		}
	}
	if from.IsZero() {
		return mat.New(0, len(tracked))
	}
	to := now.Truncate(time.Hour)
	rows := int(to.Sub(from) / time.Hour)
	if rows < 0 {
		rows = 0
	}
	m := mat.New(rows, len(tracked))
	for j, cl := range tracked {
		if len(cl.Members) == 0 {
			continue
		}
		for _, t := range cl.Members {
			full := t.History.FullHourly()
			for i := 0; i < rows; i++ {
				m.Set(i, j, m.At(i, j)+full.At(from.Add(time.Duration(i)*time.Hour)))
			}
		}
		inv := 1 / float64(len(cl.Members))
		for i := 0; i < rows; i++ {
			m.Set(i, j, timeseries.Log1pClamped(m.At(i, j)*inv))
		}
	}
	return m
}

// ClusterForecast is the prediction for one tracked cluster.
type ClusterForecast struct {
	// Cluster is the forecasted cluster, with members resolved against the
	// latest catalog histories at forecast time. It is a snapshot private
	// to this call; callers may read it without synchronization.
	Cluster *cluster.Cluster
	// PerTemplateRate is the predicted average arrival rate of the
	// cluster's templates, in queries per interval.
	PerTemplateRate float64
	// TotalRate scales the center by the member count: the cluster's total
	// predicted volume per interval.
	TotalRate float64
}

// Forecast predicts the workload `horizon` into the future from the most
// recent data (§3: predictions always use the latest history as input). It
// reads the current epoch's models without blocking — maintenance and
// ingest keep running — and resolves the tracked clusters' member
// histories against the live catalog in one pass, so the model input
// reflects arrivals ingested since the epoch was built.
func (c *Controller) Forecast(horizon time.Duration) ([]ClusterForecast, error) {
	ep := c.cur.Load()
	if ep == nil {
		return nil, fmt.Errorf("core: no model trained for horizon %v", horizon)
	}
	m, ok := ep.models[horizon]
	if !ok {
		return nil, fmt.Errorf("core: no model trained for horizon %v", horizon)
	}
	now := c.LastSeen().Truncate(c.cfg.Interval)
	live := c.liveTracked(ep)
	recent := recentMatrix(now, live, c.lagIntervals(), c.cfg.Interval)
	pred, err := m.Predict(recent)
	if err != nil {
		return nil, err
	}
	out := make([]ClusterForecast, 0, len(live))
	cap := ep.maxTrainLog + 1
	for j, cl := range live {
		p := pred[j]
		if p > cap {
			p = cap
		}
		rate := timeseries.Expm1Clamped(p)
		out = append(out, ClusterForecast{
			Cluster:         cl,
			PerTemplateRate: rate,
			TotalRate:       rate * float64(len(cl.Members)),
		})
	}
	return out, nil
}

// liveTracked re-points the epoch's tracked clusters at fresh clones of
// their member templates, fetched from the catalog in a single pass
// (one stripe lock each instead of one catalog lock per member). Members
// evicted from the catalog since the epoch was built keep their
// epoch-frozen clone.
func (c *Controller) liveTracked(ep *epoch) []*cluster.Cluster {
	var ids []int64
	for _, cl := range ep.tracked {
		ids = append(ids, cl.MemberIDs()...)
	}
	fresh := c.pre.CloneByID(ids)
	out := make([]*cluster.Cluster, 0, len(ep.tracked))
	for _, cl := range ep.tracked {
		live := cl.Snapshot()
		for id := range live.Members {
			if t, ok := fresh[id]; ok {
				live.Members[id] = t
			}
		}
		out = append(out, live)
	}
	return out
}

// recentMatrix assembles the model input: the last lag intervals ending at
// now.
func recentMatrix(now time.Time, tracked []*cluster.Cluster, lag int, interval time.Duration) *mat.Matrix {
	from := now.Add(-time.Duration(lag) * interval)
	m := mat.New(lag, len(tracked))
	for j, cl := range tracked {
		s := cluster.CenterSeries(cl, from, now, interval)
		for i := 0; i < lag && i < s.Len(); i++ {
			m.Set(i, j, timeseries.Log1pClamped(s.Data[i]))
		}
	}
	return m
}

// Snapshot persists the controller's durable state (the template catalog
// with arrival histories) framed in the torn-write-detecting envelope (see
// envelope.go). Clusters and models are derived state and are rebuilt by
// the first Refresh after a restore.
func (c *Controller) Snapshot(w io.Writer) error {
	var body bytes.Buffer
	if err := c.pre.Snapshot(&body); err != nil {
		return err
	}
	return writeSnapshotEnvelope(w, body.Bytes())
}

// RestoreController rebuilds a controller from a snapshot stream, rejecting
// truncated, bit-flipped, or trailing-garbage input with a descriptive
// error before any state is decoded. The returned controller has an empty
// clustering/model state; call Refresh (or let Tick fire) to rebuild it
// from the restored histories.
func RestoreController(cfg Config, r io.Reader) (*Controller, error) {
	body, err := readSnapshotEnvelope(r)
	if err != nil {
		return nil, err
	}
	c := New(cfg)
	pre, err := preprocess.RestoreSnapshotCache(bytes.NewReader(body), c.cfg.Shards, c.cfg.FingerprintCacheSize)
	if err != nil {
		return nil, err
	}
	c.pre = pre
	for _, t := range pre.Templates() {
		c.noteSeen(t.FirstSeen)
		c.noteSeen(t.LastSeen)
	}
	return c, nil
}

// Horizons lists the horizons with trained models, sorted ascending.
func (c *Controller) Horizons() []time.Duration {
	ep := c.cur.Load()
	if ep == nil {
		return nil
	}
	out := make([]time.Duration, 0, len(ep.models))
	for h := range ep.models {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
