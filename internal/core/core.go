// Package core wires QB5000's three stages together (paper §3, Figure 2):
// the Pre-Processor ingests raw SQL and maintains templates in real time;
// the Clusterer periodically regroups templates by arrival-rate similarity;
// the Forecaster trains one model per prediction horizon on the largest
// clusters and answers arrival-rate predictions for the planning module.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"qb5000/internal/cluster"
	"qb5000/internal/forecast"
	"qb5000/internal/mat"
	"qb5000/internal/parallel"
	"qb5000/internal/preprocess"
	"qb5000/internal/timeseries"
)

// Config tunes the controller. Zero values select the paper's operating
// point.
type Config struct {
	// Rho is the clustering similarity threshold (default 0.8, Appendix A).
	Rho float64
	// Gamma is the HYBRID spike-override threshold (default 1.5, App. C).
	Gamma float64
	// Interval is the prediction interval (default one hour, §7.4).
	Interval time.Duration
	// Horizons are the prediction horizons to maintain models for
	// (default: 1 hour).
	Horizons []time.Duration
	// TrainWindow bounds the history used for model training (default
	// three weeks, §7.2).
	TrainWindow time.Duration
	// CoverageTarget selects how many clusters to model: the smallest set
	// of highest-volume clusters covering this fraction of the workload
	// (default 0.95, §7.2), capped at MaxClusters.
	CoverageTarget float64
	// MaxClusters caps the modeled clusters (default 5, §5.3).
	MaxClusters int
	// ClusterEvery is the periodic re-cluster cadence (default 24 h, §7.1).
	ClusterEvery time.Duration
	// NewTemplateTrigger re-clusters early when the fraction of
	// previously-unseen templates exceeds it (default 0.2, §5.2).
	NewTemplateTrigger float64
	// Model selects the forecasting model family (default "HYBRID").
	Model string
	// FeatureMode selects arrival-rate (default) or logical clustering
	// features (the §7.7 baseline).
	FeatureMode cluster.FeatureMode
	// Seed drives all randomness.
	Seed int64
	// Epochs and LearnRate tune the gradient-trained models.
	Epochs    int
	LearnRate float64
	// FeatureSize is the clustering feature dimensionality (§5.1).
	FeatureSize int
	// Lag is the model input-window length (default one day, §7.2).
	Lag time.Duration
	// EvictAfter drops templates idle for this long (default 14 days).
	EvictAfter time.Duration
	// Parallelism bounds the worker pool shared by model retraining and the
	// clusterer's similarity scans: 0 selects GOMAXPROCS, 1 forces the
	// sequential path. Per-model seeds are derived deterministically from
	// Seed, so results are bit-identical at every setting.
	Parallelism int
}

func (c Config) withDefaults() Config {
	//lint:ignore floateq zero is the exact "use the default" sentinel, never a computed value
	if c.Rho == 0 {
		c.Rho = 0.8
	}
	//lint:ignore floateq zero is the exact "use the default" sentinel
	if c.Gamma == 0 {
		c.Gamma = forecast.DefaultGamma
	}
	if c.Interval == 0 {
		c.Interval = time.Hour
	}
	if len(c.Horizons) == 0 {
		c.Horizons = []time.Duration{time.Hour}
	}
	if c.TrainWindow == 0 {
		c.TrainWindow = 21 * 24 * time.Hour
	}
	//lint:ignore floateq zero is the exact "use the default" sentinel
	if c.CoverageTarget == 0 {
		c.CoverageTarget = 0.95
	}
	if c.MaxClusters == 0 {
		c.MaxClusters = 5
	}
	if c.ClusterEvery == 0 {
		c.ClusterEvery = 24 * time.Hour
	}
	//lint:ignore floateq zero is the exact "use the default" sentinel
	if c.NewTemplateTrigger == 0 {
		c.NewTemplateTrigger = 0.2
	}
	if c.Model == "" {
		c.Model = "HYBRID"
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 14 * 24 * time.Hour
	}
	return c
}

// Controller is the QB5000 framework instance.
type Controller struct {
	cfg Config
	pre *preprocess.Preprocessor
	clu *cluster.Clusterer

	tracked     []*cluster.Cluster // modeled clusters, highest volume first
	models      map[time.Duration]forecast.Model
	lastCluster time.Time
	lastSeen    time.Time
	firstSeen   time.Time
	trainCount  int // how many times models were (re)trained
	// maxTrainLog caps forecasts: no prediction may exceed e× the largest
	// arrival rate seen during training (in log space, +1). Models
	// extrapolating across a workload shift can otherwise emit absurd
	// volumes that would mislead the planning module.
	maxTrainLog float64
}

// New creates a controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg: cfg,
		pre: preprocess.New(preprocess.Options{Seed: cfg.Seed, EvictAfter: cfg.EvictAfter}),
		clu: cluster.New(cluster.Options{
			Rho:         cfg.Rho,
			Seed:        cfg.Seed + 1,
			Mode:        cfg.FeatureMode,
			FeatureSize: cfg.FeatureSize,
			Parallelism: cfg.Parallelism,
		}),
		models: make(map[time.Duration]forecast.Model),
	}
}

// Ingest forwards one query observation (with an arrival count, for batched
// replay) into the Pre-Processor.
func (c *Controller) Ingest(sql string, at time.Time, count int64) error {
	if at.After(c.lastSeen) {
		c.lastSeen = at
	}
	if c.firstSeen.IsZero() || at.Before(c.firstSeen) {
		c.firstSeen = at
	}
	_, err := c.pre.ProcessBatch(sql, at, count)
	return err
}

// Preprocessor exposes the template catalog.
func (c *Controller) Preprocessor() *preprocess.Preprocessor { return c.pre }

// Clusterer exposes the clustering state.
func (c *Controller) Clusterer() *cluster.Clusterer { return c.clu }

// Tracked returns the clusters currently being modeled, largest first.
func (c *Controller) Tracked() []*cluster.Cluster { return c.tracked }

// TrainCount reports how many times the forecasting models have been
// (re)trained; every cluster-assignment change forces a retrain (§3).
func (c *Controller) TrainCount() int { return c.trainCount }

// LastSeen returns the most recent ingested timestamp (the controller's
// notion of "now" during trace replay).
func (c *Controller) LastSeen() time.Time { return c.lastSeen }

// Tick performs due maintenance at the (simulated or wall-clock) time now:
// history compaction, periodic re-clustering, the early re-cluster trigger
// on new-template share, and model retraining whenever assignments changed.
// It returns whether a re-cluster ran. Cancelling ctx aborts the clustering
// and training work between pool items; the controller keeps its previous
// models and cluster state is refreshed by the next pass.
func (c *Controller) Tick(ctx context.Context, now time.Time) (bool, error) {
	due := now.Sub(c.lastCluster) >= c.cfg.ClusterEvery
	trigger := c.pre.NewTemplateRatio() > c.cfg.NewTemplateTrigger && c.pre.Len() > 0
	if !due && !trigger {
		return false, nil
	}
	return true, c.Refresh(ctx, now)
}

// Refresh forces a full re-cluster and model retrain. The paper's framework
// periodically updates both the cluster assignments and the forecasting
// models (§3), and additionally retrains whenever assignments change; since
// Refresh IS the periodic update, it always retrains on the latest history.
func (c *Controller) Refresh(ctx context.Context, now time.Time) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.pre.Maintain(now)
	if _, err := c.clu.Update(ctx, now, c.pre.Templates()); err != nil {
		return err
	}
	c.pre.MarkNewTemplates()
	c.lastCluster = now
	return c.retrain(ctx, now)
}

// retrain rebuilds the tracked-cluster set and fits one model per horizon.
// The per-horizon fits — the hottest path in the framework (Table 4: RNN
// training dominates) — run on the worker pool. Every horizon's model seeds
// from Config.Seed plus the horizon, exactly as the sequential path always
// did, and each worker writes only its own result slot, so the trained
// models are bit-identical at every Parallelism setting.
func (c *Controller) retrain(ctx context.Context, now time.Time) error {
	c.selectTracked(now)
	if len(c.tracked) == 0 {
		return nil
	}
	hist := c.historyMatrix(now)
	if hist.Rows < 4 {
		return nil // not enough history yet; keep previous models
	}
	c.maxTrainLog = 0
	for _, v := range hist.Data {
		if v > c.maxTrainLog {
			c.maxTrainLog = v
		}
	}
	// The HYBRID spike history is shared read-only by every horizon's fit;
	// build it once instead of per horizon.
	var spikeHist *mat.Matrix
	if c.cfg.Model == "HYBRID" {
		spikeHist = c.fullHourlyMatrix(now)
	}
	fitted := make([]forecast.Model, len(c.cfg.Horizons))
	err := parallel.ForEach(ctx, c.cfg.Parallelism, len(c.cfg.Horizons), func(_ context.Context, i int) error {
		h := c.cfg.Horizons[i]
		horizon := int(h / c.cfg.Interval)
		if horizon < 1 {
			horizon = 1
		}
		cfg := forecast.Config{
			Lag:       c.lagIntervals(),
			Horizon:   horizon,
			Outputs:   len(c.tracked),
			Seed:      c.cfg.Seed + int64(h/time.Minute),
			Epochs:    c.cfg.Epochs,
			LearnRate: c.cfg.LearnRate,
		}
		if hist.Rows < cfg.Lag+cfg.Horizon+1 {
			return nil
		}
		m, err := forecast.NewByName(c.cfg.Model, cfg)
		if err != nil {
			return err
		}
		if err := m.Fit(hist); err != nil {
			return fmt.Errorf("core: fit %s horizon %v: %w", c.cfg.Model, h, err)
		}
		if hy, ok := m.(*forecast.Hybrid); ok {
			// The spike model trains on the entire hourly history; a young
			// deployment may not have enough of it yet, in which case the
			// hybrid degrades to plain ENSEMBLE. Any other failure is real
			// and must surface.
			if err := hy.FitSpike(spikeHist); err != nil && !errors.Is(err, forecast.ErrInsufficientData) {
				return fmt.Errorf("core: fit %s spike model horizon %v: %w", c.cfg.Model, h, err)
			}
		}
		fitted[i] = m
		return nil
	})
	if err != nil {
		return err
	}
	trained := false
	for i, h := range c.cfg.Horizons {
		if fitted[i] == nil {
			continue
		}
		c.models[h] = fitted[i]
		trained = true
	}
	if trained {
		c.trainCount++
	}
	return nil
}

// lagIntervals is the model input window: one day of intervals by default
// (§7.2 uses the last day's arrival rate as input).
func (c *Controller) lagIntervals() int {
	lag := c.cfg.Lag
	if lag == 0 {
		lag = 24 * time.Hour
	}
	n := int(lag / c.cfg.Interval)
	if n < 2 {
		n = 2
	}
	return n
}

// selectTracked picks the highest-volume clusters covering the target
// fraction of the last day's workload, capped at MaxClusters.
func (c *Controller) selectTracked(now time.Time) {
	window := 24 * time.Hour
	clusters := c.clu.Clusters(now, window)
	var total float64
	vols := make([]float64, len(clusters))
	for i, cl := range clusters {
		vols[i] = c.clu.Volume(cl, now, window)
		total += vols[i]
	}
	c.tracked = c.tracked[:0]
	var covered float64
	for i, cl := range clusters {
		if len(c.tracked) >= c.cfg.MaxClusters {
			break
		}
		c.tracked = append(c.tracked, cl)
		covered += vols[i]
		if total > 0 && covered/total >= c.cfg.CoverageTarget {
			break
		}
	}
}

// historyMatrix builds the training matrix: rows are intervals over the
// training window, columns are tracked clusters, values are log1p of the
// cluster-center (per-template average) arrival rate per interval.
func (c *Controller) historyMatrix(now time.Time) *mat.Matrix {
	from := now.Add(-c.cfg.TrainWindow).Truncate(c.cfg.Interval)
	// Never train on fabricated zeros from before the first observation.
	if !c.firstSeen.IsZero() {
		if fs := c.firstSeen.Truncate(c.cfg.Interval); fs.After(from) {
			from = fs
		}
	}
	to := now.Truncate(c.cfg.Interval)
	rows := int(to.Sub(from) / c.cfg.Interval)
	if rows < 0 {
		rows = 0
	}
	m := mat.New(rows, len(c.tracked))
	for j, cl := range c.tracked {
		s := cluster.CenterSeries(cl, from, to, c.cfg.Interval)
		for i := 0; i < rows && i < s.Len(); i++ {
			m.Set(i, j, timeseries.Log1pClamped(s.Data[i]))
		}
	}
	return m
}

// fullHourlyMatrix builds the entire-history hourly matrix the HYBRID spike
// model trains on (§6.2).
func (c *Controller) fullHourlyMatrix(now time.Time) *mat.Matrix {
	if len(c.tracked) == 0 {
		return mat.New(0, 0)
	}
	var from time.Time
	for _, cl := range c.tracked {
		for _, t := range cl.Members {
			start := t.History.Coarse().Start
			if t.History.Coarse().Len() == 0 {
				start = t.History.Fine().Start
			}
			if from.IsZero() || start.Before(from) {
				from = start
			}
		}
	}
	if from.IsZero() {
		return mat.New(0, len(c.tracked))
	}
	to := now.Truncate(time.Hour)
	rows := int(to.Sub(from) / time.Hour)
	if rows < 0 {
		rows = 0
	}
	m := mat.New(rows, len(c.tracked))
	for j, cl := range c.tracked {
		if len(cl.Members) == 0 {
			continue
		}
		for _, t := range cl.Members {
			full := t.History.FullHourly()
			for i := 0; i < rows; i++ {
				m.Set(i, j, m.At(i, j)+full.At(from.Add(time.Duration(i)*time.Hour)))
			}
		}
		inv := 1 / float64(len(cl.Members))
		for i := 0; i < rows; i++ {
			m.Set(i, j, timeseries.Log1pClamped(m.At(i, j)*inv))
		}
	}
	return m
}

// ClusterForecast is the prediction for one tracked cluster.
type ClusterForecast struct {
	// Cluster is the forecasted cluster.
	Cluster *cluster.Cluster
	// PerTemplateRate is the predicted average arrival rate of the
	// cluster's templates, in queries per interval.
	PerTemplateRate float64
	// TotalRate scales the center by the member count: the cluster's total
	// predicted volume per interval.
	TotalRate float64
}

// Forecast predicts the workload `horizon` into the future from the most
// recent data (§3: predictions always use the latest history as input).
func (c *Controller) Forecast(horizon time.Duration) ([]ClusterForecast, error) {
	m, ok := c.models[horizon]
	if !ok {
		return nil, fmt.Errorf("core: no model trained for horizon %v", horizon)
	}
	now := c.lastSeen.Truncate(c.cfg.Interval)
	recent := c.recentMatrix(now)
	pred, err := m.Predict(recent)
	if err != nil {
		return nil, err
	}
	out := make([]ClusterForecast, 0, len(c.tracked))
	cap := c.maxTrainLog + 1
	for j, cl := range c.tracked {
		p := pred[j]
		if p > cap {
			p = cap
		}
		rate := timeseries.Expm1Clamped(p)
		out = append(out, ClusterForecast{
			Cluster:         cl,
			PerTemplateRate: rate,
			TotalRate:       rate * float64(len(cl.Members)),
		})
	}
	return out, nil
}

// recentMatrix assembles the model input: the last lag intervals ending at
// now.
func (c *Controller) recentMatrix(now time.Time) *mat.Matrix {
	lag := c.lagIntervals()
	from := now.Add(-time.Duration(lag) * c.cfg.Interval)
	m := mat.New(lag, len(c.tracked))
	for j, cl := range c.tracked {
		s := cluster.CenterSeries(cl, from, now, c.cfg.Interval)
		for i := 0; i < lag && i < s.Len(); i++ {
			m.Set(i, j, timeseries.Log1pClamped(s.Data[i]))
		}
	}
	return m
}

// Snapshot persists the controller's durable state (the template catalog
// with arrival histories). Clusters and models are derived state and are
// rebuilt by the first Refresh after a restore.
func (c *Controller) Snapshot(w io.Writer) error {
	return c.pre.Snapshot(w)
}

// RestoreController rebuilds a controller from a snapshot stream. The
// returned controller has an empty clustering/model state; call Refresh (or
// let Tick fire) to rebuild it from the restored histories.
func RestoreController(cfg Config, r io.Reader) (*Controller, error) {
	c := New(cfg)
	pre, err := preprocess.RestoreSnapshot(r)
	if err != nil {
		return nil, err
	}
	c.pre = pre
	for _, t := range pre.Templates() {
		if t.LastSeen.After(c.lastSeen) {
			c.lastSeen = t.LastSeen
		}
		if c.firstSeen.IsZero() || t.FirstSeen.Before(c.firstSeen) {
			c.firstSeen = t.FirstSeen
		}
	}
	return c, nil
}

// Horizons lists the horizons with trained models, sorted ascending.
func (c *Controller) Horizons() []time.Duration {
	out := make([]time.Duration, 0, len(c.models))
	for h := range c.models {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
