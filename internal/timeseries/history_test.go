package timeseries

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistoryRecordAndAt(t *testing.T) {
	h := NewHistory(t0)
	h.Record(t0.Add(30*time.Minute), 3)
	if got := h.At(t0.Add(30 * time.Minute)); got != 3 {
		t.Fatalf("At = %v", got)
	}
}

func TestHistoryCompactPreservesTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistory(t0)
		var total float64
		// Spread arrivals over 60 days.
		for i := 0; i < 300; i++ {
			at := t0.Add(time.Duration(rng.Intn(60*24*60)) * time.Minute)
			v := float64(1 + rng.Intn(5))
			h.Record(at, v)
			total += v
		}
		now := t0.Add(60 * 24 * time.Hour)
		h.Compact(now)
		return almostEq(h.Fine().Total()+h.Coarse().Total(), total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestHistoryCompactMovesOldData(t *testing.T) {
	h := NewHistory(t0)
	h.Record(t0, 10)                     // old
	h.Record(t0.Add(45*24*time.Hour), 1) // recent
	now := t0.Add(45 * 24 * time.Hour)
	moved := h.Compact(now)
	if moved == 0 {
		t.Fatal("expected fine bins to be released")
	}
	if h.Coarse().Total() != 10 {
		t.Fatalf("coarse total = %v, want 10", h.Coarse().Total())
	}
	// The old arrival is now readable from the coarse tier (averaged per
	// minute within its hour).
	if got := h.At(t0); got != 10.0/60 {
		t.Fatalf("At old = %v, want %v", got, 10.0/60)
	}
	// Compacting again right away is a no-op.
	if h.Compact(now) != 0 {
		t.Fatal("second compact should move nothing")
	}
}

func TestHistoryFullHourly(t *testing.T) {
	h := NewHistory(t0)
	// 90 arrivals in hour 0, 30 in hour 1, both before the fine window.
	for i := 0; i < 90; i++ {
		h.Record(t0.Add(time.Duration(i%60)*time.Minute), 1)
	}
	h.Record(t0.Add(40*24*time.Hour), 5)
	h.Compact(t0.Add(40 * 24 * time.Hour))
	full := h.FullHourly()
	if got := full.At(t0); got != 90 {
		t.Fatalf("hour 0 = %v, want 90", got)
	}
	if got := full.At(t0.Add(40 * 24 * time.Hour)); got != 5 {
		t.Fatalf("recent hour = %v, want 5", got)
	}
	if full.Total() != 95 {
		t.Fatalf("total = %v, want 95", full.Total())
	}
}

func TestHistoryBytesGrowsAndShrinks(t *testing.T) {
	h := NewHistory(t0)
	for d := 0; d < 50; d++ {
		h.Record(t0.Add(time.Duration(d)*24*time.Hour), 1)
	}
	before := h.Bytes()
	h.Compact(t0.Add(50 * 24 * time.Hour))
	after := h.Bytes()
	if after >= before {
		t.Fatalf("compaction did not shrink storage: %d -> %d", before, after)
	}
}

func TestMetricsKnownValues(t *testing.T) {
	mse, err := MSE([]float64{1, 2}, []float64{3, 2})
	if err != nil || mse != 2 {
		t.Fatalf("MSE = %v, %v", mse, err)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
	lm, err := LogMSE([]float64{0}, []float64{0})
	if err != nil || lm != 0 {
		t.Fatalf("LogMSE = %v, %v", lm, err)
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if v < 0 || v > 1e12 {
			v = 0
		}
		back := Expm1Clamped(Log1pClamped(v))
		d := back - v
		if d < 0 {
			d = -d
		}
		return d <= 1e-6*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Negative inputs clamp to zero.
	if Log1pClamped(-5) != 0 {
		t.Fatal("negative input should clamp")
	}
	if Expm1Clamped(-100) != 0 {
		t.Fatal("negative output should clamp")
	}
}

func TestLogTransformVector(t *testing.T) {
	in := []float64{0, 1, -3}
	out := LogTransform(in)
	if out[0] != 0 || out[2] != 0 {
		t.Fatalf("LogTransform = %v", out)
	}
	back := ExpTransform(out)
	if back[1] < 0.999 || back[1] > 1.001 {
		t.Fatalf("round trip = %v", back)
	}
}

func TestSeriesMarshalRoundTrip(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	s.Add(t0, 1.5)
	s.Add(t0.Add(5*time.Minute), 2.25)
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !back.Start.Equal(s.Start) || back.Interval != s.Interval || back.Len() != s.Len() {
		t.Fatalf("header drift: %+v vs %+v", back, s)
	}
	for i := range s.Data {
		if back.Data[i] != s.Data[i] {
			t.Fatalf("data drift at %d", i)
		}
	}
}

func TestSeriesUnmarshalErrors(t *testing.T) {
	var s Series
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if err := s.UnmarshalBinary([]byte{99}); err == nil {
		t.Fatal("bad version accepted")
	}
	good, _ := NewSeries(t0, time.Minute).MarshalBinary()
	if err := s.UnmarshalBinary(good[:5]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestHistoryMarshalRoundTrip(t *testing.T) {
	h := NewHistory(t0)
	h.Record(t0, 3)
	h.Record(t0.Add(40*24*time.Hour), 7)
	h.Compact(t0.Add(40 * 24 * time.Hour))
	b, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back History
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if back.Fine().Total() != h.Fine().Total() || back.Coarse().Total() != h.Coarse().Total() {
		t.Fatal("tier totals drifted")
	}
	if back.FullHourly().Total() != 10 {
		t.Fatalf("full hourly = %v", back.FullHourly().Total())
	}
	// The restored history keeps recording and compacting.
	back.Record(t0.Add(41*24*time.Hour), 1)
	if back.Fine().Total() != h.Fine().Total()+1 {
		t.Fatal("restored history not writable")
	}
}
