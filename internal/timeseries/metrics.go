package timeseries

import (
	"fmt"
	"math"
)

// MSE returns the mean squared error between predicted and actual values.
func MSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("timeseries: MSE length mismatch %d vs %d", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("timeseries: MSE of empty series")
	}
	var s float64
	for i, p := range pred {
		d := p - actual[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// LogMSE is the evaluation metric from the paper (§7.2): the mean squared
// error computed in log space, i.e. mean((log1p(pred)-log1p(actual))²).
// Negative inputs are clamped to zero since arrival rates cannot be negative.
func LogMSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, fmt.Errorf("timeseries: LogMSE length mismatch %d vs %d", len(pred), len(actual))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("timeseries: LogMSE of empty series")
	}
	var s float64
	for i := range pred {
		d := Log1pClamped(pred[i]) - Log1pClamped(actual[i])
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// Log1pClamped returns log(1+max(v,0)); the transform applied to arrival
// rates before model training.
func Log1pClamped(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

// Expm1Clamped inverts Log1pClamped, clamping the result at zero so model
// outputs always decode to valid (non-negative) arrival rates.
func Expm1Clamped(v float64) float64 {
	r := math.Expm1(v)
	if r < 0 || math.IsNaN(r) {
		return 0
	}
	return r
}

// LogTransform maps a slice through Log1pClamped.
func LogTransform(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = Log1pClamped(x)
	}
	return out
}

// ExpTransform maps a slice through Expm1Clamped.
func ExpTransform(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = Expm1Clamped(x)
	}
	return out
}
