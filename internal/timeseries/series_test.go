package timeseries

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)

func TestAddAndAt(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	s.Add(t0, 2)
	s.Add(t0.Add(90*time.Second), 3) // lands in bin 1
	s.Add(t0.Add(5*time.Minute), 1)
	if got := s.At(t0); got != 2 {
		t.Fatalf("bin 0 = %v", got)
	}
	if got := s.At(t0.Add(time.Minute)); got != 3 {
		t.Fatalf("bin 1 = %v", got)
	}
	if got := s.At(t0.Add(4 * time.Minute)); got != 0 {
		t.Fatalf("empty bin = %v", got)
	}
	if got := s.At(t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("before start = %v", got)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
}

func TestAddBeforeStartFoldsIntoFirstBin(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	s.Add(t0.Add(-time.Hour), 5)
	if got := s.At(t0); got != 5 {
		t.Fatalf("early arrival lost: %v", got)
	}
}

func TestAggregatePreservesTotal(t *testing.T) {
	f := func(vals [50]uint8, factor uint8) bool {
		fac := int(factor)%7 + 1
		s := NewSeries(t0, time.Minute)
		for i, v := range vals {
			s.Add(t0.Add(time.Duration(i)*time.Minute), float64(v))
		}
		agg := s.Aggregate(fac)
		return agg.Total() == s.Total() && agg.Interval == time.Duration(fac)*time.Minute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateTo(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	for i := 0; i < 120; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Minute), 1)
	}
	h, err := s.AggregateTo(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 || h.Data[0] != 60 || h.Data[1] != 60 {
		t.Fatalf("hourly = %v", h.Data)
	}
	if _, err := s.AggregateTo(90 * time.Second); err == nil {
		t.Fatal("expected non-multiple interval error")
	}
}

func TestSlice(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	for i := 0; i < 10; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	got := s.Slice(t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
	if s.Slice(t0, t0) != nil {
		t.Fatal("empty slice should be nil")
	}
}

func TestSampleAt(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	s.Add(t0.Add(3*time.Minute), 9)
	got := s.SampleAt([]time.Time{t0, t0.Add(3 * time.Minute), t0.Add(time.Hour)})
	if got[0] != 0 || got[1] != 9 || got[2] != 0 {
		t.Fatalf("SampleAt = %v", got)
	}
}

func TestAddSeries(t *testing.T) {
	a := NewSeries(t0, time.Minute)
	a.Add(t0, 1)
	b := NewSeries(t0.Add(2*time.Minute), time.Minute)
	b.Add(t0.Add(2*time.Minute), 5)
	if err := a.AddSeries(b); err != nil {
		t.Fatal(err)
	}
	if a.At(t0.Add(2*time.Minute)) != 5 || a.At(t0) != 1 {
		t.Fatalf("AddSeries result: %v", a.Data)
	}
	c := NewSeries(t0, time.Hour)
	if err := a.AddSeries(c); err == nil {
		t.Fatal("expected interval mismatch error")
	}
}

func TestAverage(t *testing.T) {
	a := NewSeries(t0, time.Minute)
	a.Add(t0, 2)
	a.Add(t0.Add(time.Minute), 4)
	b := NewSeries(t0, time.Minute)
	b.Add(t0, 6)
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.At(t0) != 4 {
		t.Fatalf("avg bin0 = %v, want 4", avg.At(t0))
	}
	if avg.At(t0.Add(time.Minute)) != 2 {
		t.Fatalf("avg bin1 = %v, want 2 (4+0)/2", avg.At(t0.Add(time.Minute)))
	}
	if _, err := Average(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestAverageAlignsDifferentStarts(t *testing.T) {
	a := NewSeries(t0, time.Minute)
	a.Add(t0, 10)
	b := NewSeries(t0.Add(-2*time.Minute), time.Minute)
	b.Add(t0.Add(-2*time.Minute), 20)
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !avg.Start.Equal(t0.Add(-2 * time.Minute)) {
		t.Fatalf("avg start = %v", avg.Start)
	}
	if avg.At(t0.Add(-2*time.Minute)) != 10 || avg.At(t0) != 5 {
		t.Fatalf("avg data = %v", avg.Data)
	}
}

func TestScaleAndMean(t *testing.T) {
	s := NewSeries(t0, time.Minute)
	s.Add(t0, 2)
	s.Add(t0.Add(time.Minute), 4)
	s.Scale(0.5)
	if s.Total() != 3 {
		t.Fatalf("Total = %v", s.Total())
	}
	if s.Mean() != 1.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	empty := NewSeries(t0, time.Minute)
	if empty.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestSampleTimestampsSortedAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	from, to := t0, t0.Add(24*time.Hour)
	stamps := SampleTimestamps(rng, from, to, 200)
	if len(stamps) != 200 {
		t.Fatalf("got %d stamps", len(stamps))
	}
	for i, ts := range stamps {
		if ts.Before(from) || !ts.Before(to) {
			t.Fatalf("stamp %v out of range", ts)
		}
		if i > 0 && ts.Before(stamps[i-1]) {
			t.Fatal("stamps not sorted")
		}
	}
	if SampleTimestamps(rng, to, from, 10) != nil {
		t.Fatal("inverted range should yield nil")
	}
}
