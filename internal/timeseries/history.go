package timeseries

import (
	"math/rand"
	"sort"
	"time"
)

// History is the storage structure QB5000 keeps per template: recent arrival
// counts at the one-minute base interval plus an aggregated coarse tier for
// stale records (paper §4: "the system aggregates stale arrival rate records
// into larger intervals to save storage space").
type History struct {
	fine   *Series       // recent 1-minute bins
	coarse *Series       // aggregated older bins
	window time.Duration // how much trailing history stays fine-grained
	ratio  int           // coarse interval = fine interval * ratio
}

// DefaultFineWindow keeps one month of minute-level data, matching the
// clusterer's "last month" feature window (§5.1).
const DefaultFineWindow = 31 * 24 * time.Hour

// DefaultCompactionRatio aggregates stale data into one-hour bins, the
// interval the spike model trains on (§6.2).
const DefaultCompactionRatio = 60

// NewHistory creates a history anchored at start.
func NewHistory(start time.Time) *History {
	return &History{
		fine:   NewSeries(start, Minute),
		coarse: NewSeries(start, Minute*DefaultCompactionRatio),
		window: DefaultFineWindow,
		ratio:  DefaultCompactionRatio,
	}
}

// Record adds count arrivals at t.
func (h *History) Record(t time.Time, count float64) { h.fine.Add(t, count) }

// Compact moves fine bins older than now-window into the coarse tier.
// It returns the number of fine bins released.
func (h *History) Compact(now time.Time) int {
	cutoff := now.Add(-h.window).Truncate(h.coarse.Interval)
	n := h.fine.indexOf(cutoff)
	if n <= 0 {
		return 0
	}
	if n > len(h.fine.Data) {
		n = len(h.fine.Data)
	}
	// Round down to a whole coarse bin so the two tiers never overlap.
	n -= n % h.ratio
	if n <= 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		//lint:ignore floateq empty buckets hold an exact zero; nonzero counts must all roll up
		if v := h.fine.Data[i]; v != 0 {
			h.coarse.Add(h.fine.TimeOf(i), v)
		}
	}
	h.fine = &Series{
		Start:    h.fine.TimeOf(n),
		Interval: h.fine.Interval,
		Data:     append([]float64(nil), h.fine.Data[n:]...),
	}
	return n
}

// Fine returns the fine-grained (minute) tier.
func (h *History) Fine() *Series { return h.fine }

// Coarse returns the aggregated tier.
func (h *History) Coarse() *Series { return h.coarse }

// At returns the arrival count for the minute containing t, consulting
// whichever tier covers it. Counts from the coarse tier are scaled down to a
// per-minute average so both tiers report in the same unit.
func (h *History) At(t time.Time) float64 {
	if !t.Before(h.fine.Start) {
		return h.fine.At(t)
	}
	return h.coarse.At(t) / float64(h.ratio)
}

// FullHourly reconstructs the template's entire arrival history at one-hour
// intervals (coarse tier followed by the aggregated fine tier). This is the
// input the kernel-regression spike model trains on (§6.2).
func (h *History) FullHourly() *Series {
	out := h.coarse.Clone()
	hour := h.fine.Aggregate(60)
	// The fine tier always starts on a coarse boundary after Compact, and
	// before any compaction the coarse tier is empty, so AddSeries is safe.
	if err := out.AddSeries(hour); err != nil {
		// Intervals are constructed to match; an error here is a bug.
		panic(err)
	}
	return out
}

// Clone deep-copies the history. Clones back the immutable template
// snapshots the sharded catalog hands to the clusterer and to API readers:
// the original can keep recording under its shard lock while the clone is
// read without any synchronization.
func (h *History) Clone() *History {
	return &History{
		fine:   h.fine.Clone(),
		coarse: h.coarse.Clone(),
		window: h.window,
		ratio:  h.ratio,
	}
}

// Bytes estimates the storage footprint of the history in bytes
// (8 bytes per bin), used by the Table 4 overhead accounting.
func (h *History) Bytes() int {
	return 8 * (len(h.fine.Data) + len(h.coarse.Data))
}

// SampleTimestamps draws n sorted uniform-random minute-aligned timestamps
// in [from, to). The clusterer samples the feature timestamps this way
// (§5.1: "QB5000 first randomly samples timestamps before the current time
// point").
func SampleTimestamps(rng *rand.Rand, from, to time.Time, n int) []time.Time {
	span := int64(to.Sub(from) / Minute)
	if span <= 0 || n <= 0 {
		return nil
	}
	out := make([]time.Time, n)
	for i := range out {
		out[i] = from.Add(time.Duration(rng.Int63n(span)) * Minute)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
