package timeseries

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Binary layout versions; bump when the wire format changes.
const (
	seriesFormatVersion  = 1
	historyFormatVersion = 1
)

// MarshalBinary implements encoding.BinaryMarshaler: the framework persists
// per-template arrival histories in its catalog snapshots.
func (s *Series) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(seriesFormatVersion)
	writeInt64(&buf, s.Start.Unix())
	writeInt64(&buf, int64(s.Interval))
	writeInt64(&buf, int64(len(s.Data)))
	for _, v := range s.Data {
		writeUint64(&buf, math.Float64bits(v))
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Series) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	ver, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("timeseries: truncated series: %w", err)
	}
	if ver != seriesFormatVersion {
		return fmt.Errorf("timeseries: unsupported series format %d", ver)
	}
	start, err := readInt64(r)
	if err != nil {
		return err
	}
	interval, err := readInt64(r)
	if err != nil {
		return err
	}
	if interval <= 0 {
		return fmt.Errorf("timeseries: invalid interval %d", interval)
	}
	n, err := readInt64(r)
	if err != nil {
		return err
	}
	if n < 0 || n > int64(r.Len()/8) {
		return fmt.Errorf("timeseries: invalid series length %d", n)
	}
	s.Start = time.Unix(start, 0).UTC()
	s.Interval = time.Duration(interval)
	s.Data = make([]float64, n)
	for i := range s.Data {
		bits, err := readUint64(r)
		if err != nil {
			return err
		}
		s.Data[i] = math.Float64frombits(bits)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *History) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(historyFormatVersion)
	writeInt64(&buf, int64(h.window))
	writeInt64(&buf, int64(h.ratio))
	for _, s := range []*Series{h.fine, h.coarse} {
		b, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		writeInt64(&buf, int64(len(b)))
		buf.Write(b)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (h *History) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	ver, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("timeseries: truncated history: %w", err)
	}
	if ver != historyFormatVersion {
		return fmt.Errorf("timeseries: unsupported history format %d", ver)
	}
	window, err := readInt64(r)
	if err != nil {
		return err
	}
	ratio, err := readInt64(r)
	if err != nil {
		return err
	}
	if window <= 0 || ratio <= 0 {
		return fmt.Errorf("timeseries: invalid history params window=%d ratio=%d", window, ratio)
	}
	h.window = time.Duration(window)
	h.ratio = int(ratio)
	for _, dst := range []**Series{&h.fine, &h.coarse} {
		n, err := readInt64(r)
		if err != nil {
			return err
		}
		if n < 0 || n > int64(r.Len()) {
			return fmt.Errorf("timeseries: invalid nested series length %d", n)
		}
		b := make([]byte, n)
		if _, err := r.Read(b); err != nil {
			return err
		}
		s := &Series{}
		if err := s.UnmarshalBinary(b); err != nil {
			return err
		}
		*dst = s
	}
	return nil
}

func writeInt64(buf *bytes.Buffer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}

func writeUint64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func readInt64(r *bytes.Reader) (int64, error) {
	var b [8]byte
	if _, err := r.Read(b[:]); err != nil {
		return 0, fmt.Errorf("timeseries: truncated data: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func readUint64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := r.Read(b[:]); err != nil {
		return 0, fmt.Errorf("timeseries: truncated data: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
