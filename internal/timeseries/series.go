// Package timeseries implements the arrival-rate history data structures
// used throughout QB5000: fixed-interval binned counts, aggregation across
// prediction intervals, timestamp sampling for clustering features, and the
// accuracy metrics used in the evaluation.
//
// The framework records query arrivals at a one-minute granularity (the
// finest prediction interval it offers, paper §6.2) and aggregates into
// coarser intervals on demand for model training.
package timeseries

import (
	"fmt"
	"time"
)

// Minute is the base recording interval of the framework.
const Minute = time.Minute

// Series is a regularly-binned time series of query arrival counts.
// Bin i covers [Start + i*Interval, Start + (i+1)*Interval).
type Series struct {
	Start    time.Time
	Interval time.Duration
	Data     []float64
}

// NewSeries returns an empty series anchored at start, truncated to the
// interval boundary.
func NewSeries(start time.Time, interval time.Duration) *Series {
	if interval <= 0 {
		panic("timeseries: non-positive interval")
	}
	return &Series{Start: start.Truncate(interval), Interval: interval}
}

// Len returns the number of bins.
func (s *Series) Len() int { return len(s.Data) }

// End returns the exclusive end time of the last bin.
func (s *Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Data)) * s.Interval)
}

// indexOf returns the bin index for t, which may be negative or beyond the
// current length.
func (s *Series) indexOf(t time.Time) int {
	return int(t.Sub(s.Start) / s.Interval)
}

// TimeOf returns the start time of bin i.
func (s *Series) TimeOf(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// Add records count arrivals at time t, growing the series as needed.
// Arrivals earlier than Start are folded into the first bin.
func (s *Series) Add(t time.Time, count float64) {
	i := s.indexOf(t)
	if i < 0 {
		i = 0
	}
	if i >= len(s.Data) {
		grown := make([]float64, i+1)
		copy(grown, s.Data)
		s.Data = grown
	}
	s.Data[i] += count
}

// At returns the count in the bin containing t, or 0 outside the range.
func (s *Series) At(t time.Time) float64 {
	i := s.indexOf(t)
	if i < 0 || i >= len(s.Data) {
		return 0
	}
	return s.Data[i]
}

// Clone deep-copies the series.
func (s *Series) Clone() *Series {
	return &Series{Start: s.Start, Interval: s.Interval, Data: append([]float64(nil), s.Data...)}
}

// Slice returns the bins covering [from, to) as a copy; bins outside the
// recorded range are zero.
func (s *Series) Slice(from, to time.Time) []float64 {
	if !to.After(from) {
		return nil
	}
	n := int(to.Sub(from) / s.Interval)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = s.At(from.Add(time.Duration(i) * s.Interval))
	}
	return out
}

// Aggregate sums groups of `factor` consecutive bins into a coarser series,
// e.g. factor=60 turns 1-minute bins into 1-hour bins. The final partial
// group, if any, is included.
func (s *Series) Aggregate(factor int) *Series {
	if factor <= 1 {
		return s.Clone()
	}
	out := &Series{Start: s.Start, Interval: s.Interval * time.Duration(factor)}
	for i := 0; i < len(s.Data); i += factor {
		end := i + factor
		if end > len(s.Data) {
			end = len(s.Data)
		}
		var sum float64
		for _, v := range s.Data[i:end] {
			sum += v
		}
		out.Data = append(out.Data, sum)
	}
	return out
}

// AggregateTo re-bins the series to the given interval, which must be a
// multiple of the current interval.
func (s *Series) AggregateTo(interval time.Duration) (*Series, error) {
	if interval%s.Interval != 0 {
		return nil, fmt.Errorf("timeseries: interval %v is not a multiple of %v", interval, s.Interval)
	}
	return s.Aggregate(int(interval / s.Interval)), nil
}

// SampleAt returns the counts at the given timestamps. Timestamps outside
// the recorded range yield 0, matching the clusterer's treatment of periods
// before a template first appeared.
func (s *Series) SampleAt(stamps []time.Time) []float64 {
	out := make([]float64, len(stamps))
	for i, t := range stamps {
		out[i] = s.At(t)
	}
	return out
}

// AddSeries accumulates other into s bin-by-bin (aligned by time). The two
// series must share the same interval.
func (s *Series) AddSeries(other *Series) error {
	if other.Interval != s.Interval {
		return fmt.Errorf("timeseries: interval mismatch %v vs %v", s.Interval, other.Interval)
	}
	for i, v := range other.Data {
		//lint:ignore floateq empty buckets hold an exact zero; skipping them is a fast path
		if v == 0 {
			continue
		}
		s.Add(other.TimeOf(i), v)
	}
	return nil
}

// Scale multiplies every bin by f in place.
func (s *Series) Scale(f float64) {
	for i := range s.Data {
		s.Data[i] *= f
	}
}

// Total returns the sum over all bins.
func (s *Series) Total() float64 {
	var t float64
	for _, v := range s.Data {
		t += v
	}
	return t
}

// Mean returns the average bin value (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Data) == 0 {
		return 0
	}
	return s.Total() / float64(len(s.Data))
}

// Average returns the element-wise arithmetic mean of several same-interval
// series, aligned on the earliest start and latest end. It is used to
// compute cluster centers (paper §5.2 step 1).
func Average(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("timeseries: Average of no series")
	}
	interval := series[0].Interval
	start, end := series[0].Start, series[0].End()
	for _, s := range series[1:] {
		if s.Interval != interval {
			return nil, fmt.Errorf("timeseries: interval mismatch %v vs %v", interval, s.Interval)
		}
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End().After(end) {
			end = s.End()
		}
	}
	out := NewSeries(start, interval)
	n := int(end.Sub(out.Start) / interval)
	out.Data = make([]float64, n)
	for _, s := range series {
		off := int(s.Start.Sub(out.Start) / interval)
		for i, v := range s.Data {
			out.Data[off+i] += v
		}
	}
	inv := 1 / float64(len(series))
	out.Scale(inv)
	return out, nil
}
