package cluster

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"qb5000/internal/preprocess"
)

var base = time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)

// synthTemplate builds a template whose per-minute arrival rate over the
// past `days` days follows rate(minuteOfDay).
func synthTemplate(t *testing.T, p *preprocess.Preprocessor, sql string, days int, rate func(minuteOfDay int) float64) *preprocess.Template {
	t.Helper()
	var tpl *preprocess.Template
	for d := 0; d < days; d++ {
		for m := 0; m < 24*60; m += 10 {
			v := rate(m)
			if v <= 0 {
				continue
			}
			at := base.Add(time.Duration(d)*24*time.Hour + time.Duration(m)*time.Minute)
			got, err := p.ProcessBatch(sql, at, int64(v))
			if err != nil {
				t.Fatal(err)
			}
			tpl = got
		}
	}
	return tpl
}

func dayPeak(center, width float64, scale float64) func(int) float64 {
	return func(m int) float64 {
		h := float64(m) / 60
		d := h - center
		return scale * (1 + 40*math.Exp(-d*d/(2*width*width)))
	}
}

func TestClusterGroupsSimilarPatterns(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	// Two shapes with the same morning peak at different volumes, one with
	// an opposite (evening) pattern.
	a := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 7, dayPeak(8, 1.5, 2))
	b := synthTemplate(t, p, "SELECT b FROM t WHERE x = 1", 7, dayPeak(8, 1.5, 1))
	c := synthTemplate(t, p, "SELECT c FROM t WHERE x = 1", 7, dayPeak(20, 1.5, 2))

	clu := New(Options{Rho: 0.8, Seed: 2})
	now := base.Add(7 * 24 * time.Hour)
	res, _ := clu.Update(context.Background(), now, p.Templates())
	if res.Assigned != 3 {
		t.Fatalf("assigned %d templates", res.Assigned)
	}
	ca, _ := clu.Assignment(a.ID)
	cb, _ := clu.Assignment(b.ID)
	cc, _ := clu.Assignment(c.ID)
	if ca != cb {
		t.Fatalf("same-pattern templates split: %d vs %d", ca, cb)
	}
	if ca == cc {
		t.Fatal("opposite patterns merged")
	}
	if clu.Len() != 2 {
		t.Fatalf("clusters = %d, want 2", clu.Len())
	}
}

func TestClusterStableAcrossUpdates(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 7, dayPeak(8, 1.5, 2))
	synthTemplate(t, p, "SELECT b FROM t WHERE x = 1", 7, dayPeak(8, 1.5, 1))
	clu := New(Options{Rho: 0.8, Seed: 2})
	now := base.Add(7 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	res, _ := clu.Update(context.Background(), now.Add(time.Hour), p.Templates())
	if res.Moved != 0 || res.Merged != 0 || res.Removed != 0 {
		t.Fatalf("stable workload churned: %+v", res)
	}
}

func TestClusterRemovesDeadTemplates(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	a := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 3, dayPeak(8, 1.5, 1))
	clu := New(Options{Rho: 0.8, Seed: 2})
	now := base.Add(3 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	if clu.Len() != 1 {
		t.Fatalf("clusters = %d", clu.Len())
	}
	// Catalog is now empty: the template must be dropped.
	res, _ := clu.Update(context.Background(), now.Add(time.Hour), nil)
	if res.Removed != 1 || clu.Len() != 0 {
		t.Fatalf("removed = %d, clusters = %d", res.Removed, clu.Len())
	}
	if _, ok := clu.Assignment(a.ID); ok {
		t.Fatal("assignment survived removal")
	}
}

func TestClusterMergesWhenPatternsConverge(t *testing.T) {
	// Two templates start with different patterns (separate clusters), then
	// both shift to the same pattern; the next update should merge or move
	// them together.
	p := preprocess.New(preprocess.Options{Seed: 1})
	morning := dayPeak(8, 1.5, 2)
	evening := dayPeak(20, 1.5, 2)
	a := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 5, morning)
	b := synthTemplate(t, p, "SELECT b FROM t WHERE x = 1", 5, evening)

	clu := New(Options{Rho: 0.8, Seed: 2, FeatureWindow: 5 * 24 * time.Hour})
	now := base.Add(5 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	ca0, _ := clu.Assignment(a.ID)
	cb0, _ := clu.Assignment(b.ID)
	if ca0 == cb0 {
		t.Fatal("expected initial separation")
	}

	// Both now follow the morning pattern for long enough that the feature
	// window (kept short) only sees converged behaviour.
	for d := 5; d < 11; d++ {
		for m := 0; m < 24*60; m += 10 {
			at := base.Add(time.Duration(d)*24*time.Hour + time.Duration(m)*time.Minute)
			p.ProcessBatch("SELECT a FROM t WHERE x = 1", at, int64(morning(m)))
			p.ProcessBatch("SELECT b FROM t WHERE x = 1", at, int64(morning(m)))
		}
	}
	later := base.Add(11 * 24 * time.Hour)
	clu.Update(context.Background(), later, p.Templates())
	ca1, _ := clu.Assignment(a.ID)
	cb1, _ := clu.Assignment(b.ID)
	if ca1 != cb1 {
		t.Fatalf("converged templates still split: %d vs %d", ca1, cb1)
	}
}

func TestVolumeAndCoverage(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	big := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 2, func(int) float64 { return 10 })
	small := synthTemplate(t, p, "SELECT b FROM u WHERE y = 1", 2, dayPeak(3, 0.3, 0)) // tiny
	_ = small
	clu := New(Options{Rho: 0.8, Seed: 2})
	now := base.Add(2 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())

	clusters := clu.Clusters(now, 24*time.Hour)
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	// Largest-first ordering: the constant-10 template dominates.
	if _, ok := clusters[0].Members[big.ID]; !ok {
		t.Fatal("largest cluster should contain the high-volume template")
	}
	cov1 := clu.Coverage(1, now, 24*time.Hour)
	covAll := clu.Coverage(len(clusters), now, 24*time.Hour)
	if cov1 <= 0 || cov1 > 1 {
		t.Fatalf("coverage(1) = %v", cov1)
	}
	if math.Abs(covAll-1) > 1e-9 {
		t.Fatalf("coverage(all) = %v, want 1", covAll)
	}
}

func TestCenterSeriesAveragesMembers(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	a := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 1, func(int) float64 { return 4 })
	b := synthTemplate(t, p, "SELECT b FROM t WHERE x = 1", 1, func(int) float64 { return 2 })
	cl := &Cluster{Members: map[int64]*preprocess.Template{a.ID: a, b.ID: b}}
	s := CenterSeries(cl, base, base.Add(time.Hour), time.Hour)
	// Each template records 4 (resp. 2) arrivals per 10 minutes → 24/12 per
	// hour; the center is the average: (24+12)/2 = 18.
	if got := s.Data[0]; got != 18 {
		t.Fatalf("center = %v, want 18", got)
	}
	tot := TotalSeries(cl, base, base.Add(time.Hour), time.Hour)
	if got := tot.Data[0]; got != 36 {
		t.Fatalf("total = %v, want 36", got)
	}
}

func TestLogicalModeClustersByStructure(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	// Same table/structure, wildly different arrival patterns.
	a := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 3, dayPeak(8, 1.5, 3))
	b := synthTemplate(t, p, "SELECT a FROM t WHERE y = 2", 3, dayPeak(20, 1.5, 3))
	clu := New(Options{Rho: 0.3, Seed: 2, Mode: Logical})
	now := base.Add(3 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	ca, _ := clu.Assignment(a.ID)
	cb, _ := clu.Assignment(b.ID)
	if ca != cb {
		t.Fatalf("logical mode split structurally similar templates (rho low): %d vs %d", ca, cb)
	}
}

func TestManyTemplatesBounded(t *testing.T) {
	// Stress: 60 templates across 3 patterns must yield a small cluster
	// count and a consistent assignment map.
	p := preprocess.New(preprocess.Options{Seed: 1})
	patterns := []func(int) float64{dayPeak(8, 1.5, 1), dayPeak(14, 1.5, 1), dayPeak(20, 1.5, 1)}
	for i := 0; i < 60; i++ {
		synthTemplate(t, p, fmt.Sprintf("SELECT c%d FROM t WHERE x = 1", i), 3, patterns[i%3])
	}
	clu := New(Options{Rho: 0.8, Seed: 2})
	now := base.Add(3 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	if clu.Len() > 6 {
		t.Fatalf("expected ~3 clusters, got %d", clu.Len())
	}
	for _, tpl := range p.Templates() {
		cid, ok := clu.Assignment(tpl.ID)
		if !ok {
			t.Fatalf("template %d unassigned", tpl.ID)
		}
		cl, ok := clu.Cluster(cid)
		if !ok {
			t.Fatalf("assignment to missing cluster %d", cid)
		}
		if _, member := cl.Members[tpl.ID]; !member {
			t.Fatalf("assignment map inconsistent for template %d", tpl.ID)
		}
	}
}
