package cluster

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"qb5000/internal/preprocess"
)

// buildDeterminismTrace replays a fixed multi-pattern workload into a fresh
// preprocessor: several template families with distinct daily shapes so the
// clusterer produces multiple clusters with multiple members each.
func buildDeterminismTrace(t *testing.T) *preprocess.Preprocessor {
	t.Helper()
	p := preprocess.New(preprocess.Options{Seed: 7})
	shapes := []struct {
		center, width, scale float64
	}{
		{8, 1.5, 2}, {8, 1.5, 1}, {8, 1.5, 3},
		{14, 2.0, 2}, {14, 2.0, 1},
		{20, 1.5, 2}, {20, 1.5, 1}, {20, 1.5, 4},
	}
	for i, s := range shapes {
		sql := fmt.Sprintf("SELECT c%d FROM t WHERE x = %d", i, i)
		synthTemplate(t, p, sql, 5, dayPeak(s.center, s.width, s.scale))
	}
	return p
}

// clusterFingerprint captures everything downstream consumers observe: the
// template → cluster assignment and the exact bits of every centroid.
func clusterFingerprint(clu *Clusterer, p *preprocess.Preprocessor) string {
	var b strings.Builder
	for _, tpl := range p.Templates() {
		cid, ok := clu.Assignment(tpl.ID)
		fmt.Fprintf(&b, "assign %d -> %d %v\n", tpl.ID, cid, ok)
	}
	for _, cid := range clu.clusterIDs() {
		cl := clu.clusters[cid]
		fmt.Fprintf(&b, "cluster %d members %v center", cid, cl.MemberIDs())
		for _, v := range cl.center {
			fmt.Fprintf(&b, " %016x", math.Float64bits(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestClusterUpdateDeterministic runs the full feature-extraction /
// assignment / centroid-update pipeline ten times over the same trace and
// requires byte-identical results: identical assignments and bit-identical
// centroids. This is the regression test for the map-iteration-order bugs
// qb5000vet's maporder analyzer exists to catch — any reintroduced
// map-ordered float accumulation shows up here as a flaky fingerprint.
func TestClusterUpdateDeterministic(t *testing.T) {
	now := base.Add(5 * 24 * time.Hour)
	var want string
	for run := 0; run < 10; run++ {
		p := buildDeterminismTrace(t)
		clu := New(Options{Rho: 0.8, Seed: 3, FeatureWindow: 5 * 24 * time.Hour, Parallelism: 4})
		if _, err := clu.Update(context.Background(), now, p.Templates()); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		// A second update exercises the evict/re-assign/merge paths and the
		// incremental recomputeCenter over established members.
		if _, err := clu.Update(context.Background(), now.Add(time.Hour), p.Templates()); err != nil {
			t.Fatalf("run %d second update: %v", run, err)
		}
		got := clusterFingerprint(clu, p)
		if run == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("run %d fingerprint differs from run 0:\nrun 0:\n%s\nrun %d:\n%s", run, want, run, got)
		}
	}
}
