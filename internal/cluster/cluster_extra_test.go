package cluster

import (
	"context"
	"testing"
	"time"

	"qb5000/internal/preprocess"
)

func TestCoverageEdgeCases(t *testing.T) {
	clu := New(Options{Rho: 0.8, Seed: 1})
	now := base.Add(24 * time.Hour)
	if got := clu.Coverage(3, now, 24*time.Hour); got != 0 {
		t.Fatalf("empty clusterer coverage = %v", got)
	}
	p := preprocess.New(preprocess.Options{Seed: 1})
	synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 1, func(int) float64 { return 5 })
	clu.Update(context.Background(), now, p.Templates())
	// k larger than the cluster count covers everything.
	if got := clu.Coverage(99, now, 24*time.Hour); got != 1 {
		t.Fatalf("coverage(99) = %v", got)
	}
}

func TestUpdateResultCounts(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 3, dayPeak(8, 1.5, 1))
	synthTemplate(t, p, "SELECT b FROM t WHERE x = 1", 3, dayPeak(8, 1.5, 2))
	clu := New(Options{Rho: 0.8, Seed: 1})
	now := base.Add(3 * 24 * time.Hour)
	res, _ := clu.Update(context.Background(), now, p.Templates())
	if !res.Changed || res.Assigned != 2 {
		t.Fatalf("first update: %+v", res)
	}
	res, _ = clu.Update(context.Background(), now.Add(time.Hour), p.Templates())
	if res.Changed {
		t.Fatalf("steady state flagged changed: %+v", res)
	}
}

func TestClusterMemberIDsSorted(t *testing.T) {
	p := preprocess.New(preprocess.Options{Seed: 1})
	for _, sql := range []string{
		"SELECT a FROM t WHERE x = 1",
		"SELECT b FROM t WHERE x = 1",
		"SELECT c FROM t WHERE x = 1",
	} {
		synthTemplate(t, p, sql, 2, func(int) float64 { return 3 })
	}
	clu := New(Options{Rho: 0.8, Seed: 1})
	now := base.Add(2 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	for _, cl := range clu.Clusters(now, 24*time.Hour) {
		ids := cl.MemberIDs()
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatal("MemberIDs not sorted")
			}
		}
		if cl.Size() != len(ids) {
			t.Fatal("Size disagrees with MemberIDs")
		}
	}
}

func TestEmptyCatalogUpdate(t *testing.T) {
	clu := New(Options{Rho: 0.8, Seed: 1})
	res, _ := clu.Update(context.Background(), base, nil)
	if res.Changed || clu.Len() != 0 {
		t.Fatalf("empty update: %+v, len %d", res, clu.Len())
	}
}

func TestCenterSeriesEmptyCluster(t *testing.T) {
	cl := &Cluster{Members: map[int64]*preprocess.Template{}}
	s := CenterSeries(cl, base, base.Add(2*time.Hour), time.Hour)
	if s.Len() != 2 || s.Total() != 0 {
		t.Fatalf("empty-cluster series: %v", s.Data)
	}
}

func TestShortFeatureWindowForgetsOldBehaviour(t *testing.T) {
	// With a 2-day feature window, behaviour older than 2 days must not
	// affect clustering decisions.
	p := preprocess.New(preprocess.Options{Seed: 1})
	a := synthTemplate(t, p, "SELECT a FROM t WHERE x = 1", 6, dayPeak(8, 1.5, 2))
	b := synthTemplate(t, p, "SELECT b FROM t WHERE x = 1", 6, dayPeak(8, 1.5, 2))
	clu := New(Options{Rho: 0.8, Seed: 1, FeatureWindow: 48 * time.Hour})
	now := base.Add(6 * 24 * time.Hour)
	clu.Update(context.Background(), now, p.Templates())
	ca, _ := clu.Assignment(a.ID)
	cb, _ := clu.Assignment(b.ID)
	if ca != cb {
		t.Fatal("identical recent behaviour should cluster together")
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions()
	if opts.Rho != 0.8 || opts.FeatureSize == 0 || opts.FeatureWindow == 0 {
		t.Fatalf("DefaultOptions = %+v", opts)
	}
	// A clusterer built from defaults works.
	clu := New(opts)
	if clu.Len() != 0 {
		t.Fatal("fresh clusterer not empty")
	}
}
