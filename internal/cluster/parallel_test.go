package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"qb5000/internal/preprocess"
)

// buildCatalog synthesizes a catalog with several distinct arrival shapes so
// a clustering pass exercises assignment, eviction, and merging.
func buildCatalog(t *testing.T, seed int64) *preprocess.Preprocessor {
	t.Helper()
	p := preprocess.New(preprocess.Options{Seed: seed})
	shapes := []struct {
		center, width, scale float64
	}{
		{8, 1.5, 2}, {8, 1.5, 1}, {8, 1.6, 3},
		{20, 1.5, 2}, {20, 1.4, 1},
		{13, 3.0, 2},
	}
	for i, s := range shapes {
		sql := fmt.Sprintf("SELECT c%d FROM t WHERE x = 1", i)
		synthTemplate(t, p, sql, 7, dayPeak(s.center, s.width, s.scale))
	}
	return p
}

// TestUpdateDeterministicAcrossParallelism verifies the clusterer's core
// contract after the pool wiring: identical assignments, centers, and
// update summaries at every parallelism setting.
func TestUpdateDeterministicAcrossParallelism(t *testing.T) {
	now := base.Add(7 * 24 * time.Hour)

	type outcome struct {
		res     UpdateResult
		assign  map[int64]int64
		centers map[int64][]float64
	}
	run := func(parallelism int) outcome {
		p := buildCatalog(t, 1)
		clu := New(Options{Rho: 0.8, Seed: 2, Parallelism: parallelism})
		res, err := clu.Update(context.Background(), now, p.Templates())
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		// A second pass exercises the eviction scan against existing
		// clusters rather than only fresh assignment.
		if _, err := clu.Update(context.Background(), now.Add(24*time.Hour), p.Templates()); err != nil {
			t.Fatalf("parallelism %d second pass: %v", parallelism, err)
		}
		out := outcome{res: res, assign: map[int64]int64{}, centers: map[int64][]float64{}}
		for _, tpl := range p.Templates() {
			if cid, ok := clu.Assignment(tpl.ID); ok {
				out.assign[tpl.ID] = cid
			}
		}
		for _, id := range clu.clusterIDs() {
			out.centers[id] = clu.clusters[id].center
		}
		return out
	}

	want := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		if got.res != want.res {
			t.Errorf("parallelism %d: UpdateResult %+v, want %+v", par, got.res, want.res)
		}
		if !reflect.DeepEqual(got.assign, want.assign) {
			t.Errorf("parallelism %d: assignments diverge:\n got %v\nwant %v", par, got.assign, want.assign)
		}
		if !reflect.DeepEqual(got.centers, want.centers) {
			t.Errorf("parallelism %d: centers diverge", par)
		}
	}
}

func TestUpdateCancellation(t *testing.T) {
	p := buildCatalog(t, 1)
	clu := New(Options{Rho: 0.8, Seed: 2, Parallelism: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := clu.Update(ctx, base.Add(7*24*time.Hour), p.Templates()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// An uncancelled retry succeeds from the stale state.
	if _, err := clu.Update(context.Background(), base.Add(7*24*time.Hour), p.Templates()); err != nil {
		t.Fatal(err)
	}
}
