// Package cluster implements QB5000's Clusterer (paper §5): an on-line
// variant of DBSCAN that groups query templates whose arrival-rate histories
// follow similar patterns, so a single forecasting model can cover each
// group.
//
// Unlike canonical DBSCAN, membership is decided against the cluster
// *center* (the arithmetic average of member features) rather than any core
// object, because the forecaster trains on the center. Each update period
// the clusterer runs three steps (Figure 4):
//
//  1. assign new templates to the closest center if similarity > ρ,
//     otherwise open a new cluster;
//  2. evict members whose similarity to their center dropped below ρ and
//     re-run step 1 on them (cascading moves are deferred to the next
//     period, so convergence is not guaranteed — matching the paper);
//  3. merge cluster pairs whose centers are more similar than ρ.
package cluster

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"qb5000/internal/kdtree"
	"qb5000/internal/mat"
	"qb5000/internal/parallel"
	"qb5000/internal/preprocess"
	"qb5000/internal/timeseries"
)

// FeatureMode selects which template representation drives clustering.
type FeatureMode int

const (
	// ArrivalRate clusters on sampled arrival-rate history vectors with
	// cosine similarity (the paper's approach, §5.1).
	ArrivalRate FeatureMode = iota
	// Logical clusters on the logical query-structure vector with an
	// L2-derived similarity (the AUTO-LOGICAL baseline, §7.7).
	Logical
)

// Options configure the clusterer.
type Options struct {
	// Rho is the similarity threshold ρ ∈ [0,1]; higher values demand more
	// similar members. The paper settles on 0.8 (Appendix A).
	Rho float64
	// FeatureSize is the number of sampled time points forming the arrival
	// feature vector. The paper uses 10k points over the trailing month;
	// the default here is 2048, which preserves the patterns at the scale
	// of the synthetic traces.
	FeatureSize int
	// FeatureWindow is how far back the sampled time points reach.
	FeatureWindow time.Duration
	// Seed drives timestamp sampling.
	Seed int64
	// Mode selects arrival-rate (default) or logical features.
	Mode FeatureMode
	// Parallelism bounds the worker pool used for the feature extraction,
	// similarity scans, and centroid updates: 0 selects GOMAXPROCS, 1 runs
	// fully sequentially. Results are identical at every setting.
	Parallelism int
}

// DefaultOptions mirror the paper's operating point.
func DefaultOptions() Options {
	return Options{
		Rho:           0.8,
		FeatureSize:   2048,
		FeatureWindow: timeseries.DefaultFineWindow,
		Seed:          1,
	}
}

// Cluster is a group of templates with similar arrival behaviour.
type Cluster struct {
	ID      int64
	Members map[int64]*preprocess.Template
	// center is the average of member feature vectors (unnormalized).
	center []float64
}

// Size returns the number of member templates.
func (c *Cluster) Size() int { return len(c.Members) }

// Snapshot returns a copy of the cluster with fresh maps, so a published
// forecasting epoch is immune to later Update passes mutating membership in
// place. The member templates themselves are the immutable clones the
// catalog handed to Update, so sharing them is safe.
func (c *Cluster) Snapshot() *Cluster {
	members := make(map[int64]*preprocess.Template, len(c.Members))
	for id, t := range c.Members {
		members[id] = t
	}
	return &Cluster{ID: c.ID, Members: members, center: append([]float64(nil), c.center...)}
}

// MemberIDs returns the sorted member template IDs.
func (c *Cluster) MemberIDs() []int64 {
	out := make([]int64, 0, len(c.Members))
	for id := range c.Members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clusterer maintains the template → cluster mapping incrementally. It is
// safe for concurrent use: Update serializes behind a write lock while the
// read accessors (Len, Assignment, Cluster, Clusters) take a read lock, and
// qb5000vet's guardedby analyzer verifies the discipline against the
// annotations below.
type Clusterer struct {
	opts Options
	rng  *rand.Rand

	mu sync.RWMutex
	// qb5000:guardedby mu
	clusters map[int64]*Cluster
	// qb5000:guardedby mu
	assignment map[int64]int64 // template ID → cluster ID
	nextID     int64

	// Per-update state. stamps is only touched by Update's call chain and
	// read-only in pool workers, so it stays unannotated.
	stamps []time.Time
	// qb5000:guardedby mu
	features map[int64][]float64
}

// New creates a Clusterer.
func New(opts Options) *Clusterer {
	//lint:ignore floateq zero is the exact "use the default" sentinel, never a computed value
	if opts.Rho == 0 {
		opts.Rho = 0.8
	}
	if opts.FeatureSize == 0 {
		opts.FeatureSize = 2048
	}
	if opts.FeatureWindow == 0 {
		opts.FeatureWindow = timeseries.DefaultFineWindow
	}
	return &Clusterer{
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		clusters:   make(map[int64]*Cluster),
		assignment: make(map[int64]int64),
	}
}

// UpdateResult summarizes one clustering pass.
type UpdateResult struct {
	// Assigned counts templates newly placed into clusters.
	Assigned int
	// Moved counts templates evicted from one cluster and re-placed.
	Moved int
	// Merged counts cluster merges performed.
	Merged int
	// Removed counts templates dropped because they no longer exist in the
	// catalog.
	Removed int
	// Changed reports whether any assignment changed; the forecaster
	// retrains its models when it did (§3).
	Changed bool
}

// Update runs the three incremental steps against the current catalog at
// time now. Templates absent from the slice are dropped from their clusters.
// The feature extraction, eviction similarity scan, centroid updates, and
// merge scan run on a bounded worker pool (Options.Parallelism); the result
// is identical at every parallelism setting. The only error Update returns
// is a cancelled ctx (or a worker panic), in which case the clusterer must
// be treated as stale and refreshed by a later pass.
func (c *Clusterer) Update(ctx context.Context, now time.Time, templates []*preprocess.Template) (UpdateResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var res UpdateResult

	live := make(map[int64]*preprocess.Template, len(templates))
	for _, t := range templates {
		live[t.ID] = t
	}

	// Drop templates that were evicted from the catalog.
	for id, cid := range c.assignment {
		if _, ok := live[id]; ok {
			continue
		}
		c.removeMember(cid, id)
		delete(c.assignment, id)
		res.Removed++
		res.Changed = true
	}

	// Re-point surviving members at this round's template objects: callers
	// pass freshly cloned catalog snapshots, so keeping last round's
	// pointers would freeze Volume/CenterSeries at stale histories.
	for id, cid := range c.assignment {
		if t, ok := live[id]; ok {
			c.clusters[cid].Members[id] = t
		}
	}

	// Compute this round's features for every live template.
	if err := c.computeFeatures(ctx, now, templates); err != nil {
		return res, err
	}
	if err := c.recomputeAllCenters(ctx); err != nil {
		return res, err
	}

	// Step 2: evict members that drifted away from their center. The
	// similarity of every member against its (snapshotted) center is
	// computed on the pool; evictions are then applied sequentially, so the
	// same set is evicted regardless of worker count.
	sims := make([]float64, len(templates))
	err := parallel.ForEach(ctx, c.opts.Parallelism, len(templates), func(_ context.Context, i int) error {
		t := templates[i]
		//lint:ignore guardedby read-only access; workers run while Update holds mu for writing
		cid, ok := c.assignment[t.ID]
		if !ok {
			return nil
		}
		//lint:ignore guardedby read-only access; workers run while Update holds mu for writing
		sims[i] = c.similarity(c.features[t.ID], c.clusters[cid].center)
		return nil
	})
	if err != nil {
		return res, err
	}
	var unassigned []*preprocess.Template
	seen := make(map[int64]bool)
	for i, t := range templates {
		cid, ok := c.assignment[t.ID]
		if !ok {
			unassigned = append(unassigned, t)
			continue
		}
		seen[t.ID] = true
		if sims[i] < c.opts.Rho {
			c.removeMember(cid, t.ID)
			delete(c.assignment, t.ID)
			unassigned = append(unassigned, t)
			res.Moved++
			res.Changed = true
		}
	}

	// Step 1: place new and evicted templates near the closest center.
	tree := c.buildTree()
	for _, t := range unassigned {
		feat := c.features[t.ID]
		cid, ok := c.nearestCluster(tree, feat)
		if ok && c.similarity(feat, c.clusters[cid].center) >= c.opts.Rho {
			c.addMember(cid, t)
			// Keep the search tree in sync with the moved center.
			c.treeInsert(tree, c.clusters[cid])
		} else {
			cl := c.newCluster(t)
			c.treeInsert(tree, cl)
			cid = cl.ID
		}
		c.assignment[t.ID] = cid
		if !seen[t.ID] {
			res.Assigned++
		}
		res.Changed = true
	}

	// Step 3: merge clusters whose centers are closer than ρ.
	merged, err := c.mergeClusters(ctx)
	if err != nil {
		return res, err
	}
	res.Merged = merged
	if res.Merged > 0 {
		res.Changed = true
	}
	return res, nil
}

// computeFeatures samples this round's timestamps and builds each template's
// feature vector. The per-template history sampling — the clusterer's
// dominant cost, O(templates × FeatureSize) — runs on the pool: timestamps
// are drawn from the RNG once up front, each worker writes only its own
// template's slot, and the map is assembled sequentially afterwards.
//
// qb5000:locked mu
func (c *Clusterer) computeFeatures(ctx context.Context, now time.Time, templates []*preprocess.Template) error {
	c.features = make(map[int64][]float64, len(templates))
	if c.opts.Mode == Logical {
		for _, t := range templates {
			c.features[t.ID] = t.Features.LogicalVector()
		}
		return nil
	}
	c.stamps = timeseries.SampleTimestamps(c.rng, now.Add(-c.opts.FeatureWindow), now, c.opts.FeatureSize)
	feats := make([][]float64, len(templates))
	err := parallel.ForEach(ctx, c.opts.Parallelism, len(templates), func(_ context.Context, i int) error {
		feat := make([]float64, len(c.stamps))
		for j, ts := range c.stamps {
			feat[j] = templates[i].History.At(ts)
		}
		feats[i] = feat
		return nil
	})
	if err != nil {
		return err
	}
	for i, t := range templates {
		c.features[t.ID] = feats[i]
	}
	return nil
}

// recomputeAllCenters refreshes every cluster's center against this round's
// features. Each worker owns one cluster, so the writes never overlap.
//
// qb5000:locked mu
func (c *Clusterer) recomputeAllCenters(ctx context.Context) error {
	ids := c.clusterIDs()
	return parallel.ForEach(ctx, c.opts.Parallelism, len(ids), func(_ context.Context, i int) error {
		//lint:ignore guardedby each worker owns one cluster slot; Update holds mu for the pool's lifetime
		c.recomputeCenter(c.clusters[ids[i]])
		return nil
	})
}

// similarity is cosine for arrival-rate features and an L2-derived score in
// (0,1] for logical features, so the ρ threshold is meaningful in both modes.
func (c *Clusterer) similarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	if c.opts.Mode == Logical {
		var d2 float64
		for i := range a {
			d := a[i] - b[i]
			d2 += d * d
		}
		return 1 / (1 + math.Sqrt(d2))
	}
	return mat.CosineSimilarity(a, b)
}

// qb5000:locked mu
func (c *Clusterer) newCluster(t *preprocess.Template) *Cluster {
	c.nextID++
	cl := &Cluster{
		ID:      c.nextID,
		Members: map[int64]*preprocess.Template{t.ID: t},
		center:  append([]float64(nil), c.features[t.ID]...),
	}
	c.clusters[cl.ID] = cl
	return cl
}

// qb5000:locked mu
func (c *Clusterer) addMember(cid int64, t *preprocess.Template) {
	cl := c.clusters[cid]
	cl.Members[t.ID] = t
	c.recomputeCenter(cl)
}

// qb5000:locked mu
func (c *Clusterer) removeMember(cid, tid int64) {
	cl, ok := c.clusters[cid]
	if !ok {
		return
	}
	delete(cl.Members, tid)
	if len(cl.Members) == 0 {
		delete(c.clusters, cid)
		return
	}
	c.recomputeCenter(cl)
}

// recomputeCenter sets the cluster center to the arithmetic average of its
// members' current feature vectors (§5.2 step 1). Members are visited in
// sorted ID order: float addition is not associative, so summing in map
// iteration order would make the center's low bits vary run to run.
//
// qb5000:locked mu
func (c *Clusterer) recomputeCenter(cl *Cluster) {
	ids := cl.MemberIDs()
	var dim int
	for _, id := range ids {
		if d := len(c.features[id]); d != 0 {
			dim = d
			break
		}
	}
	if dim == 0 {
		return
	}
	center := make([]float64, dim)
	n := 0
	for _, id := range ids {
		feat := c.features[id]
		if len(feat) != dim {
			continue
		}
		for i, v := range feat {
			center[i] += v
		}
		n++
	}
	if n == 0 {
		return
	}
	inv := 1 / float64(n)
	for i := range center {
		center[i] *= inv
	}
	cl.center = center
}

// buildTree indexes normalized cluster centers for nearest-center lookup.
//
// qb5000:locked mu
func (c *Clusterer) buildTree() *kdtree.Tree {
	dim := c.featureDim()
	if dim == 0 {
		return nil
	}
	tree := kdtree.New(dim)
	for _, cl := range c.clusters {
		c.treeInsert(tree, cl)
	}
	return tree
}

// qb5000:locked mu
func (c *Clusterer) featureDim() int {
	for _, f := range c.features {
		return len(f)
	}
	return 0
}

func (c *Clusterer) treeInsert(tree *kdtree.Tree, cl *Cluster) {
	if tree == nil || len(cl.center) != tree.Dim() {
		return
	}
	if err := tree.Insert(cl.ID, normalize(cl.center)); err != nil {
		panic(err) // dimensions are checked above
	}
}

// qb5000:locked mu
func (c *Clusterer) nearestCluster(tree *kdtree.Tree, feat []float64) (int64, bool) {
	if tree == nil || tree.Len() == 0 || len(feat) != tree.Dim() {
		return 0, false
	}
	id, _, _, ok := tree.Nearest(normalize(feat))
	if !ok {
		return 0, false
	}
	if _, exists := c.clusters[id]; !exists {
		return 0, false
	}
	return id, true
}

func normalize(v []float64) []float64 {
	n := mat.Norm2(v)
	out := make([]float64, len(v))
	//lint:ignore floateq only an exactly zero norm cannot be divided by; tiny norms are fine
	if n == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / n
	}
	return out
}

// mergeClusters repeatedly merges the pair of clusters whose centers are
// more similar than ρ until no such pair remains, returning the number of
// merges. Each round's O(k²) pair scan fans out over the rows of the upper
// triangle; every worker records the best partner for its own rows, and the
// sequential reduction over rows reproduces the exact pair the serial
// double loop would pick (ties broken by ascending ID order).
//
// qb5000:locked mu
func (c *Clusterer) mergeClusters(ctx context.Context) (int, error) {
	merged := 0
	for {
		ids := c.clusterIDs()
		type rowBest struct {
			sim float64
			j   int64
		}
		rows := make([]rowBest, len(ids))
		err := parallel.ForEach(ctx, c.opts.Parallelism, len(ids), func(_ context.Context, i int) error {
			best := rowBest{sim: -1}
			//lint:ignore guardedby read-only access; workers run while Update holds mu for writing
			a := c.clusters[ids[i]]
			for j := i + 1; j < len(ids); j++ {
				//lint:ignore guardedby read-only access; workers run while Update holds mu for writing
				b := c.clusters[ids[j]]
				if s := c.similarity(a.center, b.center); s >= c.opts.Rho && s > best.sim {
					best = rowBest{sim: s, j: ids[j]}
				}
			}
			rows[i] = best
			return nil
		})
		if err != nil {
			return merged, err
		}
		var bestA, bestB int64
		best := -1.0
		for i, rb := range rows {
			if rb.sim > best {
				best, bestA, bestB = rb.sim, ids[i], rb.j
			}
		}
		if best < 0 {
			return merged, nil
		}
		dst, src := c.clusters[bestA], c.clusters[bestB]
		for id, t := range src.Members {
			dst.Members[id] = t
			c.assignment[id] = dst.ID
		}
		delete(c.clusters, src.ID)
		c.recomputeCenter(dst)
		merged++
	}
}

// Parallelism reports the clusterer's configured worker bound.
func (c *Clusterer) Parallelism() int { return c.opts.Parallelism }

// qb5000:locked mu
func (c *Clusterer) clusterIDs() []int64 {
	ids := make([]int64, 0, len(c.clusters))
	for id := range c.clusters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of live clusters.
func (c *Clusterer) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.clusters)
}

// Assignment returns the cluster ID a template currently belongs to.
func (c *Clusterer) Assignment(templateID int64) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cid, ok := c.assignment[templateID]
	return cid, ok
}

// Cluster returns the cluster with the given ID.
func (c *Clusterer) Cluster(id int64) (*Cluster, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.clusters[id]
	return cl, ok
}

// Clusters returns all clusters sorted by descending volume over the window
// [now-window, now), then by ID for determinism.
func (c *Clusterer) Clusters(now time.Time, window time.Duration) []*Cluster {
	c.mu.RLock()
	out := make([]*Cluster, 0, len(c.clusters))
	for _, cl := range c.clusters {
		out = append(out, cl)
	}
	c.mu.RUnlock()
	vol := make(map[int64]float64, len(out))
	for _, cl := range out {
		vol[cl.ID] = c.Volume(cl, now, window)
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:ignore floateq exact compare keeps the order a strict weak ordering; an epsilon would break transitivity
		if vol[out[i].ID] != vol[out[j].ID] {
			return vol[out[i].ID] > vol[out[j].ID]
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Volume returns the total query volume of the cluster's members over
// [now-window, now). Members are summed in sorted ID order so the float
// total is bit-identical across runs.
func (c *Clusterer) Volume(cl *Cluster, now time.Time, window time.Duration) float64 {
	var total float64
	from := now.Add(-window)
	for _, id := range cl.MemberIDs() {
		t := cl.Members[id]
		for cur := from; cur.Before(now); cur = cur.Add(time.Minute) {
			total += t.History.At(cur)
		}
	}
	return total
}

// Coverage returns the fraction of total workload volume over the window
// covered by the k highest-volume clusters (Figure 5).
func (c *Clusterer) Coverage(k int, now time.Time, window time.Duration) float64 {
	clusters := c.Clusters(now, window)
	var top, total float64
	for i, cl := range clusters {
		v := c.Volume(cl, now, window)
		total += v
		if i < k {
			top += v
		}
	}
	//lint:ignore floateq guards division by an exactly empty workload
	if total == 0 {
		return 0
	}
	return top / total
}

// CenterSeries returns the average arrival-rate series of the cluster's
// members over [from, to) at the given interval — the signal the forecaster
// trains on (§5.1, Figure 3).
func CenterSeries(cl *Cluster, from, to time.Time, interval time.Duration) *timeseries.Series {
	out := timeseries.NewSeries(from, interval)
	n := int(to.Sub(out.Start) / interval)
	if n < 0 {
		n = 0
	}
	out.Data = make([]float64, n)
	if len(cl.Members) == 0 || n == 0 {
		return out
	}
	minutes := int(interval / time.Minute)
	if minutes < 1 {
		minutes = 1
	}
	// Sorted member order keeps the per-bin float sums bit-identical.
	for _, id := range cl.MemberIDs() {
		t := cl.Members[id]
		for i := 0; i < n; i++ {
			binStart := out.TimeOf(i)
			var sum float64
			for m := 0; m < minutes; m++ {
				sum += t.History.At(binStart.Add(time.Duration(m) * time.Minute))
			}
			out.Data[i] += sum
		}
	}
	out.Scale(1 / float64(len(cl.Members)))
	return out
}

// TotalSeries is like CenterSeries but sums members instead of averaging,
// giving the cluster's total arrival volume (used when replaying predicted
// workloads against the engine).
func TotalSeries(cl *Cluster, from, to time.Time, interval time.Duration) *timeseries.Series {
	out := CenterSeries(cl, from, to, interval)
	out.Scale(float64(len(cl.Members)))
	return out
}
