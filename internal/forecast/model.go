// Package forecast implements QB5000's Forecaster (paper §6): the six
// candidate models evaluated in the paper (LR, ARMA, KR, FNN, RNN, PSRNN)
// plus the ENSEMBLE (LR+RNN average) and HYBRID (ENSEMBLE corrected by KR)
// combiners that QB5000 actually deploys.
//
// All models share one contract: they observe a history matrix whose rows
// are consecutive time intervals and whose columns are the tracked clusters'
// arrival rates in log space (log1p), and they predict the arrival-rate row
// `horizon` intervals after the end of a given recent window. One model is
// trained per prediction horizon (§6.2), jointly across clusters so that
// information is shared between them (§7.2).
package forecast

import (
	"errors"
	"fmt"

	"qb5000/internal/mat"
)

// ErrNotFitted is returned by Predict before Fit succeeds.
var ErrNotFitted = errors.New("forecast: model not fitted")

// ErrInsufficientData is returned when the history is too short to build a
// single training window.
var ErrInsufficientData = errors.New("forecast: insufficient history")

// Model is a multi-output arrival-rate forecaster for one fixed horizon.
type Model interface {
	// Name identifies the model family ("LR", "RNN", ...).
	Name() string
	// Fit trains the model on a history matrix (rows = intervals, cols =
	// clusters, values = log1p arrival rates).
	Fit(hist *mat.Matrix) error
	// Predict forecasts the row `horizon` intervals past the end of recent,
	// which must contain at least Lag rows.
	Predict(recent *mat.Matrix) ([]float64, error)
	// SizeBytes estimates the serialized model footprint (Table 4).
	SizeBytes() int
}

// Config carries the hyperparameters shared by the models. Per the paper
// (§7.2) hyperparameters are fixed across workloads and horizons rather
// than tuned per trial.
type Config struct {
	// Lag is the input window length in intervals; the paper uses the last
	// day's arrival rates as input for LR and KR.
	Lag int
	// Horizon is how many intervals ahead the model predicts.
	Horizon int
	// Outputs is the number of clusters predicted jointly.
	Outputs int
	// Seed drives weight initialization for the iterative models.
	Seed int64
	// Epochs bounds training iterations for the gradient-based models.
	Epochs int
	// LearnRate is the Adam step size.
	LearnRate float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lag <= 0 {
		return fmt.Errorf("forecast: Lag must be positive, got %d", c.Lag)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("forecast: Horizon must be positive, got %d", c.Horizon)
	}
	if c.Outputs <= 0 {
		return fmt.Errorf("forecast: Outputs must be positive, got %d", c.Outputs)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 40
	}
	//lint:ignore floateq zero is the unset-config sentinel
	if c.LearnRate == 0 {
		c.LearnRate = 0.01
	}
	return c
}

// windows builds direct-forecast training pairs from the history: the input
// is the flattened lag window ending at row t-1 and the target is row
// t+horizon-1.
func windows(hist *mat.Matrix, lag, horizon int) (xs, ys [][]float64, err error) {
	t := hist.Rows
	if t < lag+horizon {
		return nil, nil, fmt.Errorf("%w: %d rows, need %d", ErrInsufficientData, t, lag+horizon)
	}
	for end := lag; end+horizon <= t; end++ {
		xs = append(xs, flattenWindow(hist, end-lag, end))
		ys = append(ys, append([]float64(nil), hist.Row(end+horizon-1)...))
	}
	return xs, ys, nil
}

// sequences builds the same pairs but keeps the lag window as a sequence of
// per-interval vectors for the recurrent models.
func sequences(hist *mat.Matrix, lag, horizon int) (seqs [][][]float64, ys [][]float64, err error) {
	t := hist.Rows
	if t < lag+horizon {
		return nil, nil, fmt.Errorf("%w: %d rows, need %d", ErrInsufficientData, t, lag+horizon)
	}
	for end := lag; end+horizon <= t; end++ {
		seq := make([][]float64, lag)
		for i := 0; i < lag; i++ {
			seq[i] = append([]float64(nil), hist.Row(end-lag+i)...)
		}
		seqs = append(seqs, seq)
		ys = append(ys, append([]float64(nil), hist.Row(end+horizon-1)...))
	}
	return seqs, ys, nil
}

// flattenWindow concatenates rows [from, to) of hist.
func flattenWindow(hist *mat.Matrix, from, to int) []float64 {
	out := make([]float64, 0, (to-from)*hist.Cols)
	for i := from; i < to; i++ {
		out = append(out, hist.Row(i)...)
	}
	return out
}

// lastWindow extracts the final lag rows of recent as a flattened vector.
func lastWindow(recent *mat.Matrix, lag int) ([]float64, error) {
	if recent.Rows < lag {
		return nil, fmt.Errorf("%w: recent has %d rows, need %d", ErrInsufficientData, recent.Rows, lag)
	}
	return flattenWindow(recent, recent.Rows-lag, recent.Rows), nil
}

// lastSequence extracts the final lag rows of recent as a sequence.
func lastSequence(recent *mat.Matrix, lag int) ([][]float64, error) {
	if recent.Rows < lag {
		return nil, fmt.Errorf("%w: recent has %d rows, need %d", ErrInsufficientData, recent.Rows, lag)
	}
	seq := make([][]float64, lag)
	for i := 0; i < lag; i++ {
		seq[i] = append([]float64(nil), recent.Row(recent.Rows-lag+i)...)
	}
	return seq, nil
}

// Properties describes a model family along the three axes of Table 3.
type Properties struct {
	Linear bool
	Memory bool
	Kernel bool
}

// ModelProperties reproduces Table 3 of the paper.
func ModelProperties() map[string]Properties {
	return map[string]Properties{
		"LR":    {Linear: true},
		"ARMA":  {Linear: true, Memory: true},
		"KR":    {Kernel: true},
		"RNN":   {Memory: true},
		"FNN":   {},
		"PSRNN": {Memory: true, Kernel: true},
	}
}
