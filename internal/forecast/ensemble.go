package forecast

import (
	"fmt"

	"qb5000/internal/mat"
	"qb5000/internal/timeseries"
)

// Ensemble averages the predictions of its component models with equal
// weights. QB5000's deployed ENSEMBLE combines LR and RNN (§6.1); the paper
// found weighted averaging overfit, so the weights stay uniform.
type Ensemble struct {
	models []Model
}

// NewEnsemble combines the given fitted-or-unfitted models.
func NewEnsemble(models ...Model) (*Ensemble, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("forecast: ensemble needs at least one model")
	}
	return &Ensemble{models: models}, nil
}

// NewDefaultEnsemble builds the paper's LR+RNN ensemble for cfg.
func NewDefaultEnsemble(cfg Config) (*Ensemble, error) {
	lr, err := NewLR(cfg, 0)
	if err != nil {
		return nil, err
	}
	rnn, err := NewRNN(cfg, 0, nil)
	if err != nil {
		return nil, err
	}
	return NewEnsemble(lr, rnn)
}

// Name implements Model.
func (m *Ensemble) Name() string { return "ENSEMBLE" }

// Models exposes the component models.
func (m *Ensemble) Models() []Model { return m.models }

// Fit implements Model by fitting every component.
func (m *Ensemble) Fit(hist *mat.Matrix) error {
	for _, sub := range m.models {
		if err := sub.Fit(hist); err != nil {
			return fmt.Errorf("forecast: ensemble component %s: %w", sub.Name(), err)
		}
	}
	return nil
}

// Predict implements Model: the equal-weight average of component
// predictions.
func (m *Ensemble) Predict(recent *mat.Matrix) ([]float64, error) {
	var sum []float64
	for _, sub := range m.models {
		p, err := sub.Predict(recent)
		if err != nil {
			return nil, fmt.Errorf("forecast: ensemble component %s: %w", sub.Name(), err)
		}
		if sum == nil {
			sum = make([]float64, len(p))
		}
		for i, v := range p {
			sum[i] += v
		}
	}
	inv := 1 / float64(len(m.models))
	for i := range sum {
		sum[i] *= inv
	}
	return sum, nil
}

// SizeBytes implements Model.
func (m *Ensemble) SizeBytes() int {
	n := 0
	for _, sub := range m.models {
		n += sub.SizeBytes()
	}
	return n
}

// DefaultGamma is the spike-override threshold γ the paper settles on
// (150 %, Appendix C).
const DefaultGamma = 1.5

// Hybrid is QB5000's deployed forecaster (§6.1): ENSEMBLE for ordinary
// prediction, overridden by kernel regression when KR foresees a volume
// spike. KR trains on the *entire* history aggregated to one-hour intervals
// (§6.2) so that spikes repeating across years remain in kernel range,
// while ENSEMBLE trains on the recent fine-grained history.
//
// Decision rule: if KR's predicted volume exceeds ENSEMBLE's by more than
// γ (in linear space, per cluster), the KR prediction wins.
type Hybrid struct {
	ensemble *Ensemble
	kr       *KR
	gamma    float64
	// spikeHist is the full hourly history the KR model consumes; Predict
	// needs its tail as the KR input window.
	spikeHist *mat.Matrix
	krLag     int
}

// NewHybrid wires an ensemble with a spike KR model. gamma ≤ 0 selects the
// paper's default of 1.5 (150 %).
func NewHybrid(ensemble *Ensemble, kr *KR, gamma float64) (*Hybrid, error) {
	if ensemble == nil || kr == nil {
		return nil, fmt.Errorf("forecast: hybrid needs both models")
	}
	if gamma <= 0 {
		gamma = DefaultGamma
	}
	return &Hybrid{ensemble: ensemble, kr: kr, gamma: gamma, krLag: kr.cfg.Lag}, nil
}

// Name implements Model.
func (m *Hybrid) Name() string { return "HYBRID" }

// Fit trains the ensemble on the recent history. The KR spike model is
// trained separately via FitSpike because it consumes a different (full,
// hourly) view of the workload.
func (m *Hybrid) Fit(hist *mat.Matrix) error {
	return m.ensemble.Fit(hist)
}

// FitSpike trains the KR component on the full hourly history.
func (m *Hybrid) FitSpike(fullHourly *mat.Matrix) error {
	if err := m.kr.Fit(fullHourly); err != nil {
		return fmt.Errorf("forecast: hybrid KR: %w", err)
	}
	m.spikeHist = fullHourly
	return nil
}

// Predict implements Model over the recent window; the KR override uses the
// tail of the full hourly history provided to FitSpike. Per §6.1 the rule
// compares the total predicted workload volume (in linear query-count
// space): when KR foresees more than (1+γ)× the ensemble's volume, the KR
// prediction replaces the ensemble's.
func (m *Hybrid) Predict(recent *mat.Matrix) ([]float64, error) {
	ens, err := m.ensemble.Predict(recent)
	if err != nil {
		return nil, err
	}
	if m.spikeHist == nil {
		return ens, nil
	}
	spike, err := m.kr.Predict(m.spikeHist)
	if err != nil {
		return nil, err
	}
	if SpikeOverride(ens, spike, m.gamma) {
		return spike, nil
	}
	return ens, nil
}

// SpikeOverride decides the HYBRID rule: it returns true when the KR
// prediction's total linear-space volume exceeds the ensemble's by more
// than gamma.
func SpikeOverride(ens, spike []float64, gamma float64) bool {
	var ev, kv float64
	for _, v := range ens {
		ev += timeseries.Expm1Clamped(v)
	}
	for _, v := range spike {
		kv += timeseries.Expm1Clamped(v)
	}
	return kv > ev*(1+gamma)
}

// AppendSpikeObservation extends the hourly history used for the KR input
// window as new data arrives (the spike model itself is refreshed on the
// retrain cadence).
func (m *Hybrid) AppendSpikeObservation(row []float64) error {
	if m.spikeHist == nil {
		return fmt.Errorf("forecast: hybrid spike model not fitted")
	}
	if len(row) != m.spikeHist.Cols {
		return fmt.Errorf("forecast: spike observation has %d cols, want %d", len(row), m.spikeHist.Cols)
	}
	m.spikeHist.Data = append(m.spikeHist.Data, row...)
	m.spikeHist.Rows++
	return nil
}

// SizeBytes implements Model.
func (m *Hybrid) SizeBytes() int { return m.ensemble.SizeBytes() + m.kr.SizeBytes() }
