package forecast

import (
	"fmt"
	"math/rand"

	"qb5000/internal/mat"
	"qb5000/internal/nn"
)

// RNN is QB5000's non-linear forecaster (§6.1): an LSTM network with a
// linear embedding layer of size 25 followed by two LSTM layers of 20 cells
// each (§7.2), reading the lag window as a sequence and regressing the
// arrival-rate vector `horizon` intervals ahead. Training stops early when
// the held-out validation loss stops improving, matching the paper's §7.5
// protocol.
type RNN struct {
	cfg    Config
	embed  int
	hidden []int
	net    *nn.LSTMNet
	fitted bool
	scale  *standardizer
	// TrainedEpochs records how many epochs ran before early stopping.
	TrainedEpochs int
}

// NewRNN creates the LSTM forecaster with the paper's architecture when
// embed/hidden are zero-valued.
func NewRNN(cfg Config, embed int, hidden []int) (*RNN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if embed <= 0 {
		embed = 25
	}
	if len(hidden) == 0 {
		hidden = []int{20, 20}
	}
	return &RNN{cfg: cfg.withDefaults(), embed: embed, hidden: hidden}, nil
}

// Name implements Model.
func (m *RNN) Name() string { return "RNN" }

// Fit implements Model.
func (m *RNN) Fit(hist *mat.Matrix) error {
	if hist.Cols != m.cfg.Outputs {
		return fmt.Errorf("forecast: RNN fitted with %d cols, configured for %d", hist.Cols, m.cfg.Outputs)
	}
	m.scale = fitStandardizer(hist)
	seqs, ys, err := sequences(m.scale.apply(hist), m.cfg.Lag, m.cfg.Horizon)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 13))
	m.net = nn.NewLSTMNet(rng, m.cfg.Outputs, m.embed, m.hidden, m.cfg.Outputs)
	opt := nn.NewAdam(m.cfg.LearnRate, m.net.Params())

	// Hold out the most recent 20% of windows for early stopping.
	split := len(seqs) * 4 / 5
	if split < 1 {
		split = len(seqs)
	}
	trainSeqs, trainYs := seqs[:split], ys[:split]
	valSeqs, valYs := seqs[split:], ys[split:]

	best := -1.0
	patience := 0
	const maxPatience = 3
	m.TrainedEpochs = 0
	order := make([]int, len(trainSeqs))
	for i := range order {
		order[i] = i
	}
	for e := 0; e < m.cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		const batch = 16
		for from := 0; from < len(order); from += batch {
			to := from + batch
			if to > len(order) {
				to = len(order)
			}
			bs := make([][][]float64, 0, to-from)
			bt := make([][]float64, 0, to-from)
			for _, j := range order[from:to] {
				bs = append(bs, trainSeqs[j])
				bt = append(bt, trainYs[j])
			}
			m.net.TrainBatchParallel(bs, bt)
			opt.Step()
		}
		m.TrainedEpochs = e + 1
		if len(valSeqs) == 0 {
			continue
		}
		val := m.validationLoss(valSeqs, valYs)
		if best < 0 || val < best-1e-6 {
			best = val
			patience = 0
		} else {
			patience++
			if patience >= maxPatience {
				break
			}
		}
	}
	m.fitted = true
	return nil
}

func (m *RNN) validationLoss(seqs [][][]float64, ys [][]float64) float64 {
	var loss float64
	for i, seq := range seqs {
		pred := m.net.Predict(seq)
		for o, p := range pred {
			d := p - ys[i][o]
			loss += d * d
		}
	}
	return loss / float64(len(seqs))
}

// Predict implements Model.
func (m *RNN) Predict(recent *mat.Matrix) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	seq, err := lastSequence(m.scale.apply(recent), m.cfg.Lag)
	if err != nil {
		return nil, err
	}
	return m.scale.invert(m.net.Predict(seq)), nil
}

// SizeBytes implements Model.
func (m *RNN) SizeBytes() int {
	if m.net == nil {
		return 0
	}
	return 8 * m.net.NumWeights()
}
