package forecast

import (
	"fmt"

	"qb5000/internal/mat"
)

// LR is the linear auto-regressive model (§6.1): each cluster's future
// arrival rate is a learned linear function of the flattened lag window of
// all clusters, fitted in closed form with ridge regularization. It needs no
// iterative optimization, which is why the paper recommends it when the
// DBMS is short on compute and the horizon is under a day.
type LR struct {
	cfg     Config
	lambda  float64
	weights *mat.Matrix // Outputs x (Lag*Outputs + 1); last column is bias
}

// NewLR creates a linear auto-regressive model. lambda is the ridge
// coefficient; zero selects a small default that keeps the normal equations
// well-conditioned.
func NewLR(cfg Config, lambda float64) (*LR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lambda <= 0 {
		lambda = 1e-3
	}
	return &LR{cfg: cfg, lambda: lambda}, nil
}

// Name implements Model.
func (m *LR) Name() string { return "LR" }

// Fit implements Model.
func (m *LR) Fit(hist *mat.Matrix) error {
	if hist.Cols != m.cfg.Outputs {
		return fmt.Errorf("forecast: LR fitted with %d cols, configured for %d", hist.Cols, m.cfg.Outputs)
	}
	xs, ys, err := windows(hist, m.cfg.Lag, m.cfg.Horizon)
	if err != nil {
		return err
	}
	in := m.cfg.Lag*m.cfg.Outputs + 1
	x := mat.New(len(xs), in)
	for i, row := range xs {
		copy(x.Row(i), row)
		x.Row(i)[in-1] = 1 // bias
	}
	y, err := mat.FromRows(ys)
	if err != nil {
		return err
	}
	lambda := m.lambda
	// With fewer samples than features the unregularized problem is
	// underdetermined and the fit extrapolates wildly (a hazard during
	// workload shifts when little post-shift history exists); stiffen the
	// ridge until the sample count catches up.
	if len(xs) < 2*in {
		if l := float64(in) / float64(len(xs)); l > lambda {
			lambda = l
		}
	}
	w, err := mat.SolveRidgeMulti(x, y, lambda)
	if err != nil {
		return fmt.Errorf("forecast: LR solve: %w", err)
	}
	m.weights = w
	return nil
}

// Predict implements Model.
func (m *LR) Predict(recent *mat.Matrix) ([]float64, error) {
	if m.weights == nil {
		return nil, ErrNotFitted
	}
	win, err := lastWindow(recent, m.cfg.Lag)
	if err != nil {
		return nil, err
	}
	win = append(win, 1) // bias
	return mat.MulVec(m.weights, win)
}

// SizeBytes implements Model: the learned weights at 8 bytes each.
func (m *LR) SizeBytes() int {
	if m.weights == nil {
		return 0
	}
	return 8 * len(m.weights.Data)
}
