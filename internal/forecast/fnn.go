package forecast

import (
	"fmt"
	"math/rand"

	"qb5000/internal/mat"
	"qb5000/internal/nn"
)

// FNN is the feed-forward neural network baseline (§7.2): a non-linear
// version of LR where the linear map is replaced by an MLP. Unlike the RNN
// it keeps no state between observations, and unlike LR it lacks the
// simplicity that guards against overfitting — the paper finds it rarely
// best and sometimes worst.
type FNN struct {
	cfg    Config
	hidden int
	net    *nn.MLP
	scale  *standardizer
	fitted bool
}

// NewFNN creates a feed-forward model with one tanh hidden layer.
func NewFNN(cfg Config, hidden int) (*FNN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hidden <= 0 {
		hidden = 32
	}
	return &FNN{cfg: cfg.withDefaults(), hidden: hidden}, nil
}

// Name implements Model.
func (m *FNN) Name() string { return "FNN" }

// Fit implements Model.
func (m *FNN) Fit(hist *mat.Matrix) error {
	if hist.Cols != m.cfg.Outputs {
		return fmt.Errorf("forecast: FNN fitted with %d cols, configured for %d", hist.Cols, m.cfg.Outputs)
	}
	m.scale = fitStandardizer(hist)
	xs, ys, err := windows(m.scale.apply(hist), m.cfg.Lag, m.cfg.Horizon)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 7))
	m.net = nn.NewMLP(rng, m.cfg.Lag*m.cfg.Outputs, m.hidden, m.cfg.Outputs)
	opt := nn.NewAdam(m.cfg.LearnRate, m.net.Params())
	trainMiniBatches(rng, m.cfg.Epochs, len(xs), 32, func(idx []int) {
		bx := make([][]float64, len(idx))
		by := make([][]float64, len(idx))
		for i, j := range idx {
			bx[i], by[i] = xs[j], ys[j]
		}
		m.net.TrainBatch(bx, by)
		opt.Step()
	})
	m.fitted = true
	return nil
}

// Predict implements Model.
func (m *FNN) Predict(recent *mat.Matrix) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	win, err := lastWindow(m.scale.apply(recent), m.cfg.Lag)
	if err != nil {
		return nil, err
	}
	return m.scale.invert(m.net.Forward(win)), nil
}

// SizeBytes implements Model.
func (m *FNN) SizeBytes() int {
	if m.net == nil {
		return 0
	}
	return 8 * m.net.NumWeights()
}

// trainMiniBatches runs `epochs` passes over n samples in shuffled
// mini-batches of size batch, invoking step with each batch's indices.
func trainMiniBatches(rng *rand.Rand, epochs, n, batch int, step func(idx []int)) {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for from := 0; from < n; from += batch {
			to := from + batch
			if to > n {
				to = n
			}
			step(order[from:to])
		}
	}
}
