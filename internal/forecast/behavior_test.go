package forecast

import (
	"math"
	"math/rand"
	"testing"

	"qb5000/internal/mat"
)

// driftMatrix is a periodic signal riding on an AR(1) daily level — the
// structure that makes long horizons genuinely harder than short ones.
func driftMatrix(rows int, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(rows, 1)
	level := 0.0
	for i := 0; i < rows; i++ {
		if i%24 == 0 {
			level = 0.8*level + 0.4*rng.NormFloat64()
		}
		m.Set(i, 0, 4+level+math.Sin(2*math.Pi*float64(i)/24))
	}
	return m
}

// TestLRHorizonDegradation: with unpredictable day-scale drift, the one-week
// horizon must be harder than the one-hour horizon (paper §7.2's core
// premise).
func TestLRHorizonDegradation(t *testing.T) {
	hist := driftMatrix(24*35, 3)
	trainRows := 24 * 25
	mseAt := func(horizon int) float64 {
		cfg := Config{Lag: 24, Horizon: horizon, Outputs: 1, Seed: 1}
		lr, err := NewLR(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		train := &mat.Matrix{Rows: trainRows, Cols: 1, Data: hist.Data[:trainRows]}
		if err := lr.Fit(train); err != nil {
			t.Fatal(err)
		}
		var sq float64
		n := 0
		for ts := trainRows; ts+horizon <= hist.Rows; ts++ {
			recent := &mat.Matrix{Rows: 24, Cols: 1, Data: hist.Data[ts-24 : ts]}
			pred, err := lr.Predict(recent)
			if err != nil {
				t.Fatal(err)
			}
			d := pred[0] - hist.At(ts+horizon-1, 0)
			sq += d * d
			n++
		}
		return sq / float64(n)
	}
	short := mseAt(1)
	long := mseAt(168)
	if long < 2*short {
		t.Fatalf("1-week horizon (%v) not clearly harder than 1-hour (%v)", long, short)
	}
}

// TestARMAStationaryForecastBounded: on a stationary series the multi-step
// recursion must stay within the clamped range.
func TestARMAStationaryForecastBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hist := mat.New(400, 1)
	v := 0.0
	for i := 0; i < 400; i++ {
		v = 0.7*v + rng.NormFloat64()
		hist.Set(i, 0, 5+v)
	}
	cfg := Config{Lag: 24, Horizon: 100, Outputs: 1, Seed: 1}
	m, err := NewARMA(cfg, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(hist)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := hist.Data[0], hist.Data[0]
	for _, x := range hist.Data {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	span := hi - lo
	if pred[0] < lo-0.3*span || pred[0] > hi+0.3*span {
		t.Fatalf("100-step ARMA forecast %v escaped the clamp [%v, %v]", pred[0], lo, hi)
	}
}

// TestKRSelectsSmallBandwidthForSharpStructure: a series with rare sharp
// events should drive bandwidth selection away from the oversmoothed end.
func TestKRBandwidthSelectionEffect(t *testing.T) {
	// Deterministic periodic data: the tighter bandwidths let KR separate
	// phases exactly; the model must achieve near-zero error.
	rows := 24 * 20
	hist := mat.New(rows, 1)
	for i := 0; i < rows; i++ {
		hist.Set(i, 0, 3+2*math.Sin(2*math.Pi*float64(i)/24))
	}
	cfg := Config{Lag: 24, Horizon: 1, Outputs: 1, Seed: 1}
	m, err := NewKR(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	trainRows := rows * 3 / 4
	if err := m.Fit(&mat.Matrix{Rows: trainRows, Cols: 1, Data: hist.Data[:trainRows]}); err != nil {
		t.Fatal(err)
	}
	var sq float64
	n := 0
	for ts := trainRows; ts+1 <= rows; ts++ {
		pred, err := m.Predict(&mat.Matrix{Rows: 24, Cols: 1, Data: hist.Data[ts-24 : ts]})
		if err != nil {
			t.Fatal(err)
		}
		d := pred[0] - hist.At(ts, 0)
		sq += d * d
		n++
	}
	if mse := sq / float64(n); mse > 0.01 {
		t.Fatalf("KR MSE %v on noiseless periodic data (bandwidth oversmoothed?)", mse)
	}
}

// TestRNNDeterministicWithSeed: the same seed must give identical fits.
func TestRNNDeterministicWithSeed(t *testing.T) {
	hist := driftMatrix(24*10, 7)
	run := func() []float64 {
		cfg := Config{Lag: 24, Horizon: 1, Outputs: 1, Seed: 9, Epochs: 2}
		m, err := NewRNN(cfg, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(hist); err != nil {
			t.Fatal(err)
		}
		pred, err := m.Predict(hist)
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	a, b := run(), run()
	if a[0] != b[0] {
		t.Fatalf("same seed, different predictions: %v vs %v", a[0], b[0])
	}
}

// TestPSRNNMemoryMatters: PSRNN's filtered prediction from a longer context
// must not error and must differ from the no-context prediction, i.e. the
// recurrent filter actually carries state.
func TestPSRNNMemoryMatters(t *testing.T) {
	hist := driftMatrix(24*12, 11)
	cfg := Config{Lag: 24, Horizon: 1, Outputs: 1, Seed: 1}
	m, err := NewPSRNN(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	exact := &mat.Matrix{Rows: 24, Cols: 1, Data: hist.Data[hist.Rows-24:]}
	longer := &mat.Matrix{Rows: 48, Cols: 1, Data: hist.Data[hist.Rows-48:]}
	p1, err := m.Predict(exact)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Predict(longer)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0] == p2[0] {
		t.Log("filtered and direct predictions coincide; acceptable but unusual")
	}
	if math.IsNaN(p1[0]) || math.IsNaN(p2[0]) {
		t.Fatal("NaN prediction")
	}
}
