package forecast

import "fmt"

// ModelNames lists the model families in the order the paper's Figure 7
// reports them.
var ModelNames = []string{"LR", "KR", "ARMA", "FNN", "RNN", "PSRNN", "ENSEMBLE", "HYBRID"}

// NewByName constructs a model family with its paper-default hyperparameters
// for the given configuration. HYBRID's KR spike component is configured to
// the same horizon but must be trained separately on the full hourly history
// via (*Hybrid).FitSpike.
func NewByName(name string, cfg Config) (Model, error) {
	switch name {
	case "LR":
		return NewLR(cfg, 0)
	case "KR":
		return NewKR(cfg, 0)
	case "ARMA":
		return NewARMA(cfg, 8, 2)
	case "FNN":
		return NewFNN(cfg, 0)
	case "RNN":
		return NewRNN(cfg, 0, nil)
	case "PSRNN":
		return NewPSRNN(cfg, 0)
	case "ENSEMBLE":
		return NewDefaultEnsemble(cfg)
	case "HYBRID":
		ens, err := NewDefaultEnsemble(cfg)
		if err != nil {
			return nil, err
		}
		// The spike KR uses a week of hourly context as its input window so
		// deadline run-ups are visible in the kernel space (Appendix B).
		krCfg := cfg
		krCfg.Lag = 168
		if krCfg.Lag < cfg.Lag {
			krCfg.Lag = cfg.Lag
		}
		kr, err := NewKR(krCfg, 0)
		if err != nil {
			return nil, err
		}
		return NewHybrid(ens, kr, 0)
	default:
		return nil, fmt.Errorf("forecast: unknown model %q", name)
	}
}
