package forecast

import (
	"fmt"
	"math"

	"qb5000/internal/mat"
)

// PSRNN is the predictive-state recurrent network baseline (§7.2, Downey et
// al. 2017). The defining idea is that the recurrent state is a *predictive
// state* — an estimate of the expected future observations given history —
// initialized by a method-of-moments two-stage regression rather than random
// weights.
//
// This implementation keeps the two-stage-regression structure and the
// non-linear (tanh) state filter but omits the optional BPTT refinement
// stage; the paper itself notes that PSRNN's approximate initialization and
// limited training data kept it behind the LSTM RNN, which is the behaviour
// this reproduction preserves (see DESIGN.md).
//
// Stages:
//  1. predictive state: s_t = W_s·φ_t where φ_t is the flattened past
//     window, fitted by ridge regression of future windows on past windows;
//  2. state filter: s_{t+1} ≈ W_u·[tanh(s_t); x_{t+1}], fitted by ridge
//     regression so the state can be carried forward through new
//     observations;
//  3. readout: y_{t+horizon} = W_o·tanh(s_t), fitted by ridge regression.
type PSRNN struct {
	cfg    Config
	future int // length of the future window defining the predictive state
	ws     *mat.Matrix
	wu     *mat.Matrix
	wo     *mat.Matrix
}

// NewPSRNN creates a predictive-state model. future ≤ 0 selects a default
// future-window length of min(Lag, 8) intervals.
func NewPSRNN(cfg Config, future int) (*PSRNN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if future <= 0 {
		future = cfg.Lag
		if future > 8 {
			future = 8
		}
	}
	return &PSRNN{cfg: cfg, future: future}, nil
}

// Name implements Model.
func (m *PSRNN) Name() string { return "PSRNN" }

// Fit implements Model.
func (m *PSRNN) Fit(hist *mat.Matrix) error {
	if hist.Cols != m.cfg.Outputs {
		return fmt.Errorf("forecast: PSRNN fitted with %d cols, configured for %d", hist.Cols, m.cfg.Outputs)
	}
	lag, k := m.cfg.Lag, m.cfg.Outputs
	t := hist.Rows
	need := lag + m.future + m.cfg.Horizon
	if t < need+2 {
		return fmt.Errorf("%w: %d rows, PSRNN needs %d", ErrInsufficientData, t, need+2)
	}

	// Index range where past window, future window, state transition, and
	// horizon target all exist.
	stateDim := m.future * k
	n := 0
	for end := lag; end+m.future+m.cfg.Horizon <= t && end+1+m.future <= t; end++ {
		n++
	}
	if n < stateDim+2 {
		// Not enough samples to regress the state maps; shrink the state.
		m.future = 2
		stateDim = m.future * k
	}

	// Stage 1: W_s : φ → future window.
	var phis, futures [][]float64
	for end := lag; end+m.future <= t; end++ {
		phis = append(phis, flattenWindow(hist, end-lag, end))
		futures = append(futures, flattenWindow(hist, end, end+m.future))
	}
	ws, err := ridgeMulti(phis, futures, 1e-2)
	if err != nil {
		return fmt.Errorf("forecast: PSRNN stage 1: %w", err)
	}
	m.ws = ws

	// Materialize states for every usable index.
	states := make([][]float64, len(phis))
	for i, phi := range phis {
		states[i] = m.applyState(phi)
	}

	// Stage 2: W_u : [tanh(s_t); x_{t+1}] → s_{t+1}.
	var filtIn, filtOut [][]float64
	for i := 0; i+1 < len(states); i++ {
		end := lag + i // states[i] corresponds to window ending at `end`
		in := make([]float64, 0, stateDim+k)
		in = append(in, tanhVec(states[i])...)
		in = append(in, hist.Row(end)...) // observation consumed moving to end+1
		filtIn = append(filtIn, in)
		filtOut = append(filtOut, states[i+1])
	}
	wu, err := ridgeMulti(filtIn, filtOut, 1e-2)
	if err != nil {
		return fmt.Errorf("forecast: PSRNN stage 2: %w", err)
	}
	m.wu = wu

	// Stage 3: W_o : tanh(s_t) → y_{t+horizon}.
	var roIn, roOut [][]float64
	for i := range states {
		end := lag + i
		target := end + m.cfg.Horizon - 1
		if target >= t {
			break
		}
		roIn = append(roIn, tanhVec(states[i]))
		roOut = append(roOut, append([]float64(nil), hist.Row(target)...))
	}
	wo, err := ridgeMulti(roIn, roOut, 1e-2)
	if err != nil {
		return fmt.Errorf("forecast: PSRNN stage 3: %w", err)
	}
	m.wo = wo
	return nil
}

// Predict implements Model: the state is initialized from the earliest lag
// window in recent and filtered forward through the remaining observations,
// exercising the model's memory, then read out.
func (m *PSRNN) Predict(recent *mat.Matrix) ([]float64, error) {
	if m.wo == nil {
		return nil, ErrNotFitted
	}
	lag := m.cfg.Lag
	if recent.Rows < lag {
		return nil, fmt.Errorf("%w: recent has %d rows, PSRNN needs %d", ErrInsufficientData, recent.Rows, lag)
	}
	phi := flattenWindow(recent, 0, lag)
	state := m.applyState(phi)
	for end := lag; end < recent.Rows; end++ {
		in := make([]float64, 0, len(state)+recent.Cols)
		in = append(in, tanhVec(state)...)
		in = append(in, recent.Row(end)...)
		next, err := mat.MulVec(m.wu, append(in, 1))
		if err != nil {
			return nil, err
		}
		state = next
	}
	return mat.MulVec(m.wo, append(tanhVec(state), 1))
}

func (m *PSRNN) applyState(phi []float64) []float64 {
	out, err := mat.MulVec(m.ws, append(append([]float64(nil), phi...), 1))
	if err != nil {
		panic(err) // dimensions fixed at fit time
	}
	return out
}

// SizeBytes implements Model.
func (m *PSRNN) SizeBytes() int {
	n := 0
	for _, w := range []*mat.Matrix{m.ws, m.wu, m.wo} {
		if w != nil {
			n += len(w.Data)
		}
	}
	return 8 * n
}

func tanhVec(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Tanh(x)
	}
	return out
}

// ridgeMulti fits a multi-output ridge regression with bias, returning the
// weight matrix of shape outDim x (inDim+1).
func ridgeMulti(xs, ys [][]float64, lambda float64) (*mat.Matrix, error) {
	if len(xs) == 0 || len(ys) != len(xs) {
		return nil, ErrInsufficientData
	}
	inDim := len(xs[0])
	x := mat.New(len(xs), inDim+1)
	for i, row := range xs {
		copy(x.Row(i), row)
		x.Row(i)[inDim] = 1
	}
	y, err := mat.FromRows(ys)
	if err != nil {
		return nil, err
	}
	return mat.SolveRidgeMulti(x, y, lambda)
}
