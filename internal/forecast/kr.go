package forecast

import (
	"fmt"
	"math"

	"qb5000/internal/mat"
)

// KR is Nadaraya–Watson kernel regression (§6.1): the prediction for an
// input window is the kernel-weighted average of all training targets, where
// weights decay with the distance between the input and each training
// window. It requires no iterative training, assumes no functional form,
// and — uniquely among the evaluated models — recognizes rare repeating
// spikes because a spike-period input lands close to the prior year's
// spike-period inputs in the kernel space (Appendix B).
type KR struct {
	cfg       Config
	bandwidth float64 // 0 → median-distance heuristic at fit time
	xs        [][]float64
	ys        [][]float64
	h2        float64 // resolved squared bandwidth
}

// NewKR creates a kernel-regression model. bandwidth ≤ 0 selects the median
// pairwise-distance heuristic.
func NewKR(cfg Config, bandwidth float64) (*KR, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &KR{cfg: cfg, bandwidth: bandwidth}, nil
}

// Name implements Model.
func (m *KR) Name() string { return "KR" }

// Fit implements Model: KR is non-parametric, so fitting materializes the
// training windows and selects the kernel bandwidth. An explicit bandwidth
// is honored; otherwise candidates derived from the median pairwise distance
// are scored by leave-neighborhood-out validation on the training windows —
// an oversmoothed kernel would average the rare spike windows away, which is
// exactly the failure the paper's spike experiment (§7.3) punishes.
func (m *KR) Fit(hist *mat.Matrix) error {
	if hist.Cols != m.cfg.Outputs {
		return fmt.Errorf("forecast: KR fitted with %d cols, configured for %d", hist.Cols, m.cfg.Outputs)
	}
	xs, ys, err := windows(hist, m.cfg.Lag, m.cfg.Horizon)
	if err != nil {
		return err
	}
	m.xs, m.ys = xs, ys
	if m.bandwidth > 0 {
		m.h2 = m.bandwidth * m.bandwidth
		return nil
	}
	med := medianPairwiseDistance(xs)
	//lint:ignore floateq a degenerate all-identical sample yields exactly zero median distance
	if med == 0 {
		med = 1
	}
	m.h2 = med * med * m.selectBandwidthScale(med)
	return nil
}

// selectBandwidthScale cross-validates multipliers of the median distance.
// It returns the squared multiplier minimizing held-out error over a strided
// sample of training windows, excluding each sample's temporal neighborhood
// (windows overlapping it) from its own prediction.
func (m *KR) selectBandwidthScale(med float64) float64 {
	scales := []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1}
	n := len(m.xs)
	sampleStride := n / 150
	if sampleStride < 1 {
		sampleStride = 1
	}
	exclude := m.cfg.Lag + m.cfg.Horizon

	type sample struct {
		idx int
		d2  []float64
	}
	var samples []sample
	for i := 0; i < n; i += sampleStride {
		d2 := make([]float64, n)
		for j := range m.xs {
			d2[j] = sqDistance(m.xs[i], m.xs[j])
		}
		samples = append(samples, sample{idx: i, d2: d2})
	}

	bestScale, bestErr := 1.0, math.Inf(1)
	for _, sc := range scales {
		h2 := med * med * sc * sc
		var sqErr float64
		count := 0
		for _, s := range samples {
			pred := make([]float64, m.cfg.Outputs)
			var wsum float64
			for j := range m.xs {
				if j > s.idx-exclude && j < s.idx+exclude {
					continue
				}
				w := math.Exp(-s.d2[j] / (2 * h2))
				wsum += w
				for o, v := range m.ys[j] {
					pred[o] += w * v
				}
			}
			//lint:ignore floateq kernel weights underflow to exactly zero, not approximately
			if wsum == 0 {
				continue
			}
			for o := range pred {
				d := pred[o]/wsum - m.ys[s.idx][o]
				sqErr += d * d
			}
			count++
		}
		if count == 0 {
			continue
		}
		if err := sqErr / float64(count); err < bestErr {
			bestErr, bestScale = err, sc
		}
	}
	return bestScale * bestScale
}

// Predict implements Model. The bandwidth adapts per query: the effective
// kernel width is capped by the distance to the k-th nearest training
// window, so a query deep inside a dense normal-period region averages its
// dense neighborhood while a query resembling a rare spike run-up locks onto
// the handful of prior spike-season windows instead of being smoothed into
// the global mean (Appendix B).
func (m *KR) Predict(recent *mat.Matrix) ([]float64, error) {
	if m.xs == nil {
		return nil, ErrNotFitted
	}
	q, err := lastWindow(recent, m.cfg.Lag)
	if err != nil {
		return nil, err
	}
	d2s := make([]float64, len(m.xs))
	minD2 := math.Inf(1)
	for i, x := range m.xs {
		d2s[i] = sqDistance(q, x)
		if d2s[i] < minD2 {
			minD2 = d2s[i]
		}
	}
	h2 := m.h2
	if k := m.neighborhood(); k > 0 && k < len(d2s) {
		sorted := append([]float64(nil), d2s...)
		// Sharpen the kernel so the k nearest windows dominate: at the
		// k-th neighbour's distance the weight has already fallen to e^-2.
		kth := quickselectFloat(sorted, k) / 4
		if kth > 0 && kth < h2 {
			h2 = kth
		}
	}
	out := make([]float64, m.cfg.Outputs)
	var wsum float64
	for i, y := range m.ys {
		// Subtract the minimum exponent for numerical stability.
		w := math.Exp(-(d2s[i] - minD2) / (2 * h2))
		wsum += w
		for o, v := range y {
			out[o] += w * v
		}
	}
	//lint:ignore floateq kernel weights underflow to exactly zero, not approximately
	if wsum == 0 {
		// All weights underflowed; fall back to the nearest neighbour.
		best := 0
		for i, d := range d2s {
			if d < d2s[best] {
				best = i
			}
		}
		copy(out, m.ys[best])
		return out, nil
	}
	for o := range out {
		out[o] /= wsum
	}
	return out, nil
}

// neighborhood is the k used for the adaptive bandwidth cap.
func (m *KR) neighborhood() int {
	k := len(m.xs) / 200
	if k < 6 {
		k = 6
	}
	return k
}

// SizeBytes implements Model: KR must retain its training set, so its
// footprint grows linearly with history length (§7.5).
func (m *KR) SizeBytes() int {
	n := 0
	for _, x := range m.xs {
		n += len(x)
	}
	for _, y := range m.ys {
		n += len(y)
	}
	return 8 * n
}

// TrainingInputs exposes the retained input windows, used by the Appendix B
// analysis that projects the KR input space with PCA (Figure 15).
func (m *KR) TrainingInputs() [][]float64 { return m.xs }

func sqDistance(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// medianPairwiseDistance estimates the kernel bandwidth from a sample of
// pairwise distances (deterministic strided sample to stay O(n)).
func medianPairwiseDistance(xs [][]float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	stride := len(xs)/64 + 1
	var ds []float64
	for i := 0; i < len(xs); i += stride {
		for j := i + stride; j < len(xs); j += stride {
			ds = append(ds, math.Sqrt(sqDistance(xs[i], xs[j])))
		}
	}
	if len(ds) == 0 {
		ds = append(ds, math.Sqrt(sqDistance(xs[0], xs[len(xs)-1])))
	}
	// Median by partial selection.
	k := len(ds) / 2
	return quickselectFloat(ds, k)
}

func quickselectFloat(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
