package forecast

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"qb5000/internal/mat"
)

// periodicMatrix builds a T×k history where each column is a noisy-free
// sinusoid with period 24 plus a column-specific offset, in "log space".
func periodicMatrix(rows, cols int, noise float64, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := 3 + float64(j) + 2*math.Sin(2*math.Pi*float64(i)/24)
			if noise > 0 {
				v += noise * rng.NormFloat64()
			}
			m.Set(i, j, v)
		}
	}
	return m
}

func cfgFor(cols, horizon int) Config {
	return Config{Lag: 24, Horizon: horizon, Outputs: cols, Seed: 1, Epochs: 20}
}

// evalModel fits on the first 3/4 and returns test MSE.
func evalModel(t *testing.T, m Model, hist *mat.Matrix, lag, horizon int) float64 {
	t.Helper()
	trainRows := hist.Rows * 3 / 4
	train := &mat.Matrix{Rows: trainRows, Cols: hist.Cols, Data: hist.Data[:trainRows*hist.Cols]}
	if err := m.Fit(train); err != nil {
		t.Fatalf("%s fit: %v", m.Name(), err)
	}
	var sq float64
	n := 0
	for ts := trainRows; ts+horizon <= hist.Rows; ts++ {
		recent := &mat.Matrix{Rows: lag, Cols: hist.Cols, Data: hist.Data[(ts-lag)*hist.Cols : ts*hist.Cols]}
		pred, err := m.Predict(recent)
		if err != nil {
			t.Fatalf("%s predict: %v", m.Name(), err)
		}
		actual := hist.Row(ts + horizon - 1)
		for j := range pred {
			d := pred[j] - actual[j]
			sq += d * d
		}
		n += hist.Cols
	}
	return sq / float64(n)
}

func TestModelsLearnPeriodicSignal(t *testing.T) {
	hist := periodicMatrix(24*14, 2, 0.05, 3)
	cases := []struct {
		name      string
		threshold float64
	}{
		{"LR", 0.02},
		{"KR", 0.3},
		{"ARMA", 0.2},
		{"FNN", 0.3},
		{"RNN", 0.5},
		{"PSRNN", 0.6},
		{"ENSEMBLE", 0.3},
	}
	for _, c := range cases {
		m, err := NewByName(c.name, cfgFor(2, 1))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		mse := evalModel(t, m, hist, 24, 1)
		if mse > c.threshold {
			t.Errorf("%s: MSE %v exceeds %v on clean periodic signal", c.name, mse, c.threshold)
		}
	}
}

func TestLRExactOnLinearSignal(t *testing.T) {
	// A pure AR(1) signal y[t] = 0.9*y[t-1] is inside LR's hypothesis class.
	hist := mat.New(300, 1)
	v := 5.0
	for i := 0; i < 300; i++ {
		hist.Set(i, 0, v)
		v = 0.9*v + 0.5
	}
	lr, err := NewLR(Config{Lag: 4, Horizon: 1, Outputs: 1, Seed: 1}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	mse := evalModel(t, lr, hist, 4, 1)
	if mse > 1e-6 {
		t.Fatalf("LR should nail a linear recurrence, got MSE %v", mse)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, name := range []string{"LR", "KR", "ARMA", "FNN", "RNN", "PSRNN"} {
		m, err := NewByName(name, cfgFor(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Predict(mat.New(24, 1)); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: Predict before Fit = %v, want ErrNotFitted", name, err)
		}
	}
}

func TestInsufficientData(t *testing.T) {
	for _, name := range []string{"LR", "KR", "FNN", "RNN"} {
		m, err := NewByName(name, cfgFor(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(mat.New(5, 1)); !errors.Is(err, ErrInsufficientData) {
			t.Errorf("%s: Fit on tiny history = %v, want ErrInsufficientData", name, err)
		}
	}
}

func TestWrongColumnCount(t *testing.T) {
	m, _ := NewLR(cfgFor(2, 1), 0)
	if err := m.Fit(periodicMatrix(100, 3, 0, 1)); err == nil {
		t.Fatal("expected column-count error")
	}
}

func TestShortRecentWindow(t *testing.T) {
	hist := periodicMatrix(24*10, 1, 0, 2)
	m, _ := NewLR(cfgFor(1, 1), 0)
	if err := m.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(mat.New(3, 1)); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("short window error = %v", err)
	}
}

func TestEnsembleAveragesComponents(t *testing.T) {
	hist := periodicMatrix(24*10, 1, 0, 4)
	a, _ := NewLR(cfgFor(1, 1), 0)
	b, _ := NewKR(cfgFor(1, 1), 0)
	ens, err := NewEnsemble(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Fit(hist); err != nil {
		t.Fatal(err)
	}
	recent := &mat.Matrix{Rows: 24, Cols: 1, Data: hist.Data[(hist.Rows-24)*1:]}
	pa, _ := a.Predict(recent)
	pb, _ := b.Predict(recent)
	pe, err := ens.Predict(recent)
	if err != nil {
		t.Fatal(err)
	}
	want := (pa[0] + pb[0]) / 2
	if math.Abs(pe[0]-want) > 1e-12 {
		t.Fatalf("ensemble = %v, want %v", pe[0], want)
	}
	if _, err := NewEnsemble(); err == nil {
		t.Fatal("empty ensemble must error")
	}
}

func TestSpikeOverride(t *testing.T) {
	ens := []float64{math.Log(101)} // ~100 in linear space
	spikeLow := []float64{math.Log(201)}
	spikeHigh := []float64{math.Log(300)}
	if SpikeOverride(ens, spikeLow, 1.5) {
		t.Fatal("2x should not trip a 150% threshold")
	}
	if !SpikeOverride(ens, spikeHigh, 1.5) {
		t.Fatal("3x should trip a 150% threshold")
	}
}

func TestHybridUsesKROnSpikes(t *testing.T) {
	// History with a repeating spike every 96 steps; ENSEMBLE trained on a
	// short window cannot see it, KR trained on everything can.
	rows := 96 * 8
	hist := mat.New(rows, 1)
	for i := 0; i < rows; i++ {
		v := 2 + math.Sin(2*math.Pi*float64(i)/24)
		if i%96 >= 90 { // periodic spike
			v = 9
		}
		hist.Set(i, 0, v)
	}
	cfg := Config{Lag: 24, Horizon: 6, Outputs: 1, Seed: 1, Epochs: 4}
	hy, err := NewByName("HYBRID", cfg)
	if err != nil {
		t.Fatal(err)
	}
	hybrid := hy.(*Hybrid)
	trainRows := 96 * 7
	train := &mat.Matrix{Rows: trainRows, Cols: 1, Data: hist.Data[:trainRows]}
	if err := hybrid.Fit(train); err != nil {
		t.Fatal(err)
	}
	// The spike model sees history up to the prediction point: its input
	// window ends at row 96*7+86, so the horizon-6 target (row 96*7+91)
	// falls inside the 8th spike.
	spikeEnd := trainRows + 86
	upToNow := &mat.Matrix{Rows: spikeEnd, Cols: 1, Data: hist.Data[:spikeEnd]}
	if err := hybrid.FitSpike(upToNow); err != nil {
		t.Fatal(err)
	}
	pred, err := hybrid.Predict(upToNow)
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] < 4 {
		t.Fatalf("hybrid failed to predict the periodic spike: %v", pred[0])
	}
	// Away from the spike (window ending mid-cycle) the ensemble's normal
	// prediction must win: no absurd spike forecast.
	calmEnd := trainRows + 30
	calm := &mat.Matrix{Rows: calmEnd, Cols: 1, Data: hist.Data[:calmEnd]}
	if err := hybrid.FitSpike(calm); err != nil {
		t.Fatal(err)
	}
	calmPred, err := hybrid.Predict(calm)
	if err != nil {
		t.Fatal(err)
	}
	if calmPred[0] > 5 {
		t.Fatalf("hybrid predicted a spike in a calm period: %v", calmPred[0])
	}
}

func TestStandardizerRoundTrip(t *testing.T) {
	hist := periodicMatrix(100, 3, 0.5, 9)
	s := fitStandardizer(hist)
	z := s.apply(hist)
	// Standardized data has ~zero mean, ~unit std per column.
	for j := 0; j < 3; j++ {
		var mean float64
		for i := 0; i < z.Rows; i++ {
			mean += z.At(i, j)
		}
		mean /= float64(z.Rows)
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean %v", j, mean)
		}
	}
	back := s.invert(z.Row(0))
	for j := range back {
		if math.Abs(back[j]-hist.At(0, j)) > 1e-9 {
			t.Fatalf("invert mismatch: %v vs %v", back[j], hist.At(0, j))
		}
	}
}

func TestWindowsShape(t *testing.T) {
	hist := periodicMatrix(40, 2, 0, 1)
	xs, ys, err := windows(hist, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 40 - 10 - 3 + 1
	if len(xs) != wantN || len(ys) != wantN {
		t.Fatalf("windows: %d, want %d", len(xs), wantN)
	}
	if len(xs[0]) != 20 || len(ys[0]) != 2 {
		t.Fatalf("window dims: %d, %d", len(xs[0]), len(ys[0]))
	}
	// First target is row lag+horizon-1.
	if ys[0][0] != hist.At(12, 0) {
		t.Fatal("target misaligned")
	}
	if _, _, err := windows(hist, 39, 3); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewByNameUnknown(t *testing.T) {
	if _, err := NewByName("NOPE", cfgFor(1, 1)); err == nil {
		t.Fatal("expected unknown-model error")
	}
	for _, name := range ModelNames {
		if _, err := NewByName(name, cfgFor(1, 1)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestModelProperties(t *testing.T) {
	props := ModelProperties()
	if !props["LR"].Linear || props["LR"].Memory {
		t.Fatal("LR properties wrong")
	}
	if !props["PSRNN"].Memory || !props["PSRNN"].Kernel {
		t.Fatal("PSRNN properties wrong")
	}
	if len(props) != 6 {
		t.Fatalf("expected 6 base models, got %d", len(props))
	}
}

func TestSizeBytesNonZeroAfterFit(t *testing.T) {
	hist := periodicMatrix(24*8, 1, 0.01, 5)
	for _, name := range []string{"LR", "KR", "ARMA", "FNN", "RNN", "PSRNN"} {
		m, err := NewByName(name, Config{Lag: 24, Horizon: 1, Outputs: 1, Seed: 1, Epochs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if m.SizeBytes() != 0 {
			t.Errorf("%s: non-zero size before fit", name)
		}
		if err := m.Fit(hist); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.SizeBytes() == 0 {
			t.Errorf("%s: zero size after fit", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Lag: 0, Horizon: 1, Outputs: 1},
		{Lag: 1, Horizon: 0, Outputs: 1},
		{Lag: 1, Horizon: 1, Outputs: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v should fail validation", c)
		}
	}
}

func TestNamesAndSizes(t *testing.T) {
	cfg := cfgFor(1, 1)
	ens, err := NewDefaultEnsemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Name() != "ENSEMBLE" || len(ens.Models()) != 2 {
		t.Fatalf("ensemble identity: %s / %d models", ens.Name(), len(ens.Models()))
	}
	hy, err := NewByName("HYBRID", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hy.Name() != "HYBRID" {
		t.Fatalf("hybrid name = %s", hy.Name())
	}
	arma, _ := NewARMA(cfg, 4, 1)
	if arma.Name() != "ARMA" {
		t.Fatal("arma name")
	}
	if _, err := NewARMA(cfg, 0, 1); err == nil {
		t.Fatal("ARMA p=0 accepted")
	}
	hist := periodicMatrix(24*10, 1, 0.02, 8)
	if err := ens.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if ens.SizeBytes() == 0 {
		t.Fatal("ensemble size zero after fit")
	}
	hybrid := hy.(*Hybrid)
	if err := hybrid.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if hybrid.SizeBytes() == 0 {
		t.Fatal("hybrid size zero after fit")
	}
}

func TestHybridAppendSpikeObservation(t *testing.T) {
	cfg := Config{Lag: 12, Horizon: 2, Outputs: 1, Seed: 1, Epochs: 2}
	ens, _ := NewDefaultEnsemble(cfg)
	kr, _ := NewKR(Config{Lag: 12, Horizon: 2, Outputs: 1, Seed: 1}, 0)
	hy, err := NewHybrid(ens, kr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := hy.AppendSpikeObservation([]float64{1}); err == nil {
		t.Fatal("append before FitSpike accepted")
	}
	hist := periodicMatrix(24*6, 1, 0.02, 6)
	if err := hy.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if err := hy.FitSpike(hist); err != nil {
		t.Fatal(err)
	}
	if err := hy.AppendSpikeObservation([]float64{2.5}); err != nil {
		t.Fatal(err)
	}
	if err := hy.AppendSpikeObservation([]float64{1, 2}); err == nil {
		t.Fatal("wrong-width observation accepted")
	}
	if _, err := hy.Predict(hist); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHybrid(nil, kr, 0); err == nil {
		t.Fatal("nil ensemble accepted")
	}
}
