package forecast

import (
	"fmt"

	"qb5000/internal/mat"
)

// ARMA is the autoregressive moving-average baseline (§7.2): per cluster, an
// AR(p) part on past observations plus an MA(q) part on past residuals,
// fitted with the Hannan–Rissanen two-stage procedure (a long AR fit
// estimates the innovations, then AR and MA coefficients are regressed
// jointly). Multi-step forecasts recurse with future innovations set to
// zero.
//
// The paper observes this model is the most hyperparameter-sensitive of the
// group; p and q are fixed across workloads here just as in the paper's
// protocol.
type ARMA struct {
	cfg  Config
	p, q int
	// per-output coefficients: const, ar[p], ma[q]
	coef  [][]float64
	resid [][]float64 // training residuals per output (tail, for prediction)
	// bounds clamp the recursive multi-step forecasts to the observed
	// training range (padded); without them an AR polynomial with a root
	// near the unit circle can explode over long horizons.
	lo, hi []float64
}

// NewARMA creates an ARMA(p, q) model.
func NewARMA(cfg Config, p, q int) (*ARMA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 || q < 0 {
		return nil, fmt.Errorf("forecast: invalid ARMA order p=%d q=%d", p, q)
	}
	return &ARMA{cfg: cfg, p: p, q: q}, nil
}

// Name implements Model.
func (m *ARMA) Name() string { return "ARMA" }

// Fit implements Model.
func (m *ARMA) Fit(hist *mat.Matrix) error {
	if hist.Cols != m.cfg.Outputs {
		return fmt.Errorf("forecast: ARMA fitted with %d cols, configured for %d", hist.Cols, m.cfg.Outputs)
	}
	long := m.p + m.q + 4 // long-AR order for innovation estimation
	if hist.Rows < long+m.p+m.q+4 {
		return fmt.Errorf("%w: %d rows for ARMA(%d,%d)", ErrInsufficientData, hist.Rows, m.p, m.q)
	}
	m.coef = make([][]float64, m.cfg.Outputs)
	m.resid = make([][]float64, m.cfg.Outputs)
	m.lo = make([]float64, m.cfg.Outputs)
	m.hi = make([]float64, m.cfg.Outputs)
	for o := 0; o < m.cfg.Outputs; o++ {
		series := column(hist, o)
		coef, resid, err := fitHannanRissanen(series, m.p, m.q, long)
		if err != nil {
			return fmt.Errorf("forecast: ARMA output %d: %w", o, err)
		}
		m.coef[o] = coef
		m.resid[o] = resid
		lo, hi := series[0], series[0]
		for _, v := range series {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		pad := 0.25 * (hi - lo)
		m.lo[o], m.hi[o] = lo-pad, hi+pad
	}
	return nil
}

// Predict implements Model: it recursively forecasts Horizon steps past the
// end of recent and returns the final step.
func (m *ARMA) Predict(recent *mat.Matrix) ([]float64, error) {
	if m.coef == nil {
		return nil, ErrNotFitted
	}
	need := m.p
	if recent.Rows < need {
		return nil, fmt.Errorf("%w: recent has %d rows, ARMA needs %d", ErrInsufficientData, recent.Rows, need)
	}
	out := make([]float64, m.cfg.Outputs)
	for o := 0; o < m.cfg.Outputs; o++ {
		series := column(recent, o)
		out[o] = m.forecastOne(o, series)
	}
	return out, nil
}

func (m *ARMA) forecastOne(o int, series []float64) float64 {
	coef := m.coef[o]
	// Recent residuals: approximate with the tail of the training
	// residuals; beyond the training window they decay to zero.
	resid := append([]float64(nil), m.resid[o]...)
	vals := append([]float64(nil), series...)
	var pred float64
	for step := 0; step < m.cfg.Horizon; step++ {
		pred = coef[0]
		for i := 1; i <= m.p; i++ {
			if len(vals)-i >= 0 && len(vals)-i < len(vals) {
				pred += coef[i] * vals[len(vals)-i]
			}
		}
		for j := 1; j <= m.q; j++ {
			if len(resid)-j >= 0 {
				pred += coef[m.p+j] * resid[len(resid)-j]
			}
		}
		if pred < m.lo[o] {
			pred = m.lo[o]
		}
		if pred > m.hi[o] {
			pred = m.hi[o]
		}
		vals = append(vals, pred)
		resid = append(resid, 0) // expected future innovation
	}
	return pred
}

// SizeBytes implements Model.
func (m *ARMA) SizeBytes() int {
	n := 0
	for _, c := range m.coef {
		n += len(c)
	}
	return 8 * n
}

func column(hist *mat.Matrix, o int) []float64 {
	out := make([]float64, hist.Rows)
	for i := 0; i < hist.Rows; i++ {
		out[i] = hist.At(i, o)
	}
	return out
}

// fitHannanRissanen fits ARMA(p,q) coefficients [const, ar..., ma...] and
// returns the in-sample residual tail.
func fitHannanRissanen(series []float64, p, q, long int) (coef, residTail []float64, err error) {
	n := len(series)
	// Stage 1: long AR fit for innovation estimates.
	arCoef, err := fitAR(series, long)
	if err != nil {
		return nil, nil, err
	}
	resid := make([]float64, n)
	for t := long; t < n; t++ {
		pred := arCoef[0]
		for i := 1; i <= long; i++ {
			pred += arCoef[i] * series[t-i]
		}
		resid[t] = series[t] - pred
	}
	// Stage 2: regress y_t on [1, y_{t-1..t-p}, e_{t-1..t-q}].
	start := long + q
	if start < p {
		start = p
	}
	rows := n - start
	if rows < p+q+2 {
		return nil, nil, fmt.Errorf("%w: %d usable rows for stage-2 ARMA fit", ErrInsufficientData, rows)
	}
	x := mat.New(rows, 1+p+q)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		row := x.Row(r)
		row[0] = 1
		for i := 1; i <= p; i++ {
			row[i] = series[t-i]
		}
		for j := 1; j <= q; j++ {
			row[p+j] = resid[t-j]
		}
		y[r] = series[t]
	}
	coef, err = mat.SolveRidge(x, y, 1e-4)
	if err != nil {
		return nil, nil, err
	}
	// Recompute residuals under the final model for the prediction tail.
	final := make([]float64, 0, q+4)
	for t := n - q - 4; t < n; t++ {
		if t < start {
			continue
		}
		pred := coef[0]
		for i := 1; i <= p; i++ {
			pred += coef[i] * series[t-i]
		}
		for j := 1; j <= q; j++ {
			pred += coef[p+j] * resid[t-j]
		}
		final = append(final, series[t]-pred)
	}
	return coef, final, nil
}

// fitAR fits an AR(k) model with intercept by ridge least squares.
func fitAR(series []float64, k int) ([]float64, error) {
	n := len(series)
	rows := n - k
	if rows < k+2 {
		return nil, fmt.Errorf("%w: %d points for AR(%d)", ErrInsufficientData, n, k)
	}
	x := mat.New(rows, k+1)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := k + r
		row := x.Row(r)
		row[0] = 1
		for i := 1; i <= k; i++ {
			row[i] = series[t-i]
		}
		y[r] = series[t]
	}
	return mat.SolveRidge(x, y, 1e-4)
}
