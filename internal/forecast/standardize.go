package forecast

import (
	"math"

	"qb5000/internal/mat"
)

// standardizer z-scores each cluster column so the neural models' tanh
// units operate in their linear range; predictions are mapped back before
// being returned.
type standardizer struct {
	mean, std []float64
}

// fitStandardizer computes per-column statistics over the history matrix.
func fitStandardizer(hist *mat.Matrix) *standardizer {
	s := &standardizer{mean: make([]float64, hist.Cols), std: make([]float64, hist.Cols)}
	if hist.Rows == 0 {
		for j := range s.std {
			s.std[j] = 1
		}
		return s
	}
	for i := 0; i < hist.Rows; i++ {
		for j, v := range hist.Row(i) {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(hist.Rows)
	}
	for i := 0; i < hist.Rows; i++ {
		for j, v := range hist.Row(i) {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(hist.Rows))
		if s.std[j] < 1e-6 {
			s.std[j] = 1
		}
	}
	return s
}

// apply transforms the matrix into standardized space (copy).
func (s *standardizer) apply(hist *mat.Matrix) *mat.Matrix {
	out := hist.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.mean[j]) / s.std[j]
		}
	}
	return out
}

// invert maps a standardized prediction vector back to log space.
func (s *standardizer) invert(pred []float64) []float64 {
	out := make([]float64, len(pred))
	for j, v := range pred {
		out[j] = v*s.std[j] + s.mean[j]
	}
	return out
}
