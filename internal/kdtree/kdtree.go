// Package kdtree implements a k-d tree over points in R^d with payload IDs.
// QB5000's clusterer uses it to find the closest existing cluster center to
// a template's arrival-rate feature vector (paper §5.2, step 1).
//
// Cluster similarity is cosine, so callers should insert L2-normalized
// vectors: for unit vectors, Euclidean nearest neighbour and maximum cosine
// similarity coincide (‖a−b‖² = 2 − 2·cosθ).
package kdtree

import (
	"fmt"
	"math"
	"sort"
)

type node struct {
	point       []float64
	id          int64
	axis        int
	deleted     bool
	left, right *node
}

// Tree is a k-d tree mapping points to int64 IDs. The zero value is not
// usable; create trees with New.
type Tree struct {
	dim     int
	root    *node
	size    int // live entries
	dead    int // tombstoned entries
	entries map[int64][]float64
}

// New creates a tree for points of the given dimensionality.
func New(dim int) *Tree {
	if dim <= 0 {
		panic("kdtree: non-positive dimension")
	}
	return &Tree{dim: dim, entries: make(map[int64][]float64)}
}

// Dim returns the dimensionality of the tree.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of live points.
func (t *Tree) Len() int { return t.size }

// Insert adds a point under id. If id is already present its point is
// replaced.
func (t *Tree) Insert(id int64, point []float64) error {
	if len(point) != t.dim {
		return fmt.Errorf("kdtree: point has dim %d, want %d", len(point), t.dim)
	}
	if _, ok := t.entries[id]; ok {
		t.Remove(id)
	}
	p := append([]float64(nil), point...)
	t.entries[id] = p
	t.size++
	n := &node{point: p, id: id}
	if t.root == nil {
		t.root = n
		return nil
	}
	cur := t.root
	for {
		n.axis = (cur.axis + 1) % t.dim
		if p[cur.axis] < cur.point[cur.axis] {
			if cur.left == nil {
				cur.left = n
				return nil
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				return nil
			}
			cur = cur.right
		}
	}
}

// Remove tombstones the point stored under id. It reports whether the id was
// present. The tree is rebuilt once tombstones outnumber live points.
func (t *Tree) Remove(id int64) bool {
	if _, ok := t.entries[id]; !ok {
		return false
	}
	delete(t.entries, id)
	t.size--
	t.dead++
	t.markDeleted(t.root, id)
	if t.dead > t.size {
		t.rebuild()
	}
	return true
}

func (t *Tree) markDeleted(n *node, id int64) bool {
	if n == nil {
		return false
	}
	if n.id == id && !n.deleted {
		n.deleted = true
		return true
	}
	return t.markDeleted(n.left, id) || t.markDeleted(n.right, id)
}

// rebuild reconstructs a balanced tree from the live entries.
func (t *Tree) rebuild() {
	ids := make([]int64, 0, len(t.entries))
	for id := range t.entries {
		ids = append(ids, id)
	}
	// Sort before building: quickSelect ties are broken by input order, so an
	// unsorted (map-ordered) id slice yields a run-varying tree shape.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t.root = t.build(ids, 0)
	t.dead = 0
}

func (t *Tree) build(ids []int64, axis int) *node {
	if len(ids) == 0 {
		return nil
	}
	// Median-of-points split via selection sort on the axis; fine for the
	// modest cluster counts the clusterer maintains.
	mid := len(ids) / 2
	quickSelect(ids, mid, func(a, b int64) bool {
		return t.entries[a][axis] < t.entries[b][axis]
	})
	n := &node{point: t.entries[ids[mid]], id: ids[mid], axis: axis}
	next := (axis + 1) % t.dim
	n.left = t.build(ids[:mid], next)
	n.right = t.build(ids[mid+1:], next)
	return n
}

// quickSelect partially sorts ids so that ids[k] is the k-th smallest under
// less.
func quickSelect(ids []int64, k int, less func(a, b int64) bool) {
	lo, hi := 0, len(ids)-1
	for lo < hi {
		pivot := ids[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for less(ids[i], pivot) {
				i++
			}
			for less(pivot, ids[j]) {
				j--
			}
			if i <= j {
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Nearest returns the id and point of the live entry closest (Euclidean) to
// query, along with the squared distance. ok is false when the tree is
// empty.
func (t *Tree) Nearest(query []float64) (id int64, point []float64, dist2 float64, ok bool) {
	if len(query) != t.dim {
		panic(fmt.Sprintf("kdtree: query has dim %d, want %d", len(query), t.dim))
	}
	if t.size == 0 {
		return 0, nil, 0, false
	}
	best := &nnState{bestDist2: math.Inf(1)}
	t.search(t.root, query, best)
	return best.bestID, best.bestPoint, best.bestDist2, true
}

type nnState struct {
	bestID    int64
	bestPoint []float64
	bestDist2 float64
}

func (t *Tree) search(n *node, q []float64, st *nnState) {
	if n == nil {
		return
	}
	if !n.deleted {
		d2 := sqDist(n.point, q)
		if d2 < st.bestDist2 {
			st.bestDist2, st.bestID, st.bestPoint = d2, n.id, n.point
		}
	}
	diff := q[n.axis] - n.point[n.axis]
	near, far := n.left, n.right
	if diff >= 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, st)
	if diff*diff < st.bestDist2 {
		t.search(far, q, st)
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Points returns a snapshot of live id → point entries. The points are the
// stored slices; callers must not mutate them.
func (t *Tree) Points() map[int64][]float64 {
	out := make(map[int64][]float64, len(t.entries))
	for id, p := range t.entries {
		out[id] = p
	}
	return out
}
