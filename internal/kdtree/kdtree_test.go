package kdtree

import (
	"math"
	"math/rand"
	"testing"
)

func bruteNearest(points map[int64][]float64, q []float64) (int64, float64) {
	bestID, best := int64(-1), math.Inf(1)
	for id, p := range points {
		var d2 float64
		for i := range q {
			d := p[i] - q[i]
			d2 += d * d
		}
		// Tie-break on id for determinism.
		if d2 < best || (d2 == best && id < bestID) {
			bestID, best = id, d2
		}
	}
	return bestID, best
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(6)
		tree := New(dim)
		ref := make(map[int64][]float64)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			id := int64(i)
			if err := tree.Insert(id, p); err != nil {
				t.Fatal(err)
			}
			ref[id] = p
		}
		for probe := 0; probe < 50; probe++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.NormFloat64()
			}
			_, _, gotD2, ok := tree.Nearest(q)
			if !ok {
				t.Fatal("Nearest returned !ok on non-empty tree")
			}
			_, wantD2 := bruteNearest(ref, q)
			if math.Abs(gotD2-wantD2) > 1e-12 {
				t.Fatalf("trial %d: nearest d2 %v, want %v", trial, gotD2, wantD2)
			}
		}
	}
}

func TestRemoveAndRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tree := New(3)
	ref := make(map[int64][]float64)
	for i := int64(0); i < 100; i++ {
		p := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tree.Insert(i, p)
		ref[i] = p
	}
	// Remove most points, forcing a rebuild, and verify queries stay right.
	for i := int64(0); i < 80; i++ {
		if !tree.Remove(i) {
			t.Fatalf("Remove(%d) = false", i)
		}
		delete(ref, i)
	}
	if tree.Len() != 20 {
		t.Fatalf("Len = %d, want 20", tree.Len())
	}
	if tree.Remove(5) {
		t.Fatal("double remove should report false")
	}
	for probe := 0; probe < 50; probe++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		gotID, _, gotD2, ok := tree.Nearest(q)
		if !ok {
			t.Fatal("tree empty?")
		}
		if _, alive := ref[gotID]; !alive {
			t.Fatalf("Nearest returned removed id %d", gotID)
		}
		_, wantD2 := bruteNearest(ref, q)
		if math.Abs(gotD2-wantD2) > 1e-12 {
			t.Fatalf("after removes: d2 %v, want %v", gotD2, wantD2)
		}
	}
}

func TestInsertReplacesExisting(t *testing.T) {
	tree := New(2)
	tree.Insert(1, []float64{0, 0})
	tree.Insert(1, []float64{5, 5})
	if tree.Len() != 1 {
		t.Fatalf("Len = %d after replace", tree.Len())
	}
	id, p, _, ok := tree.Nearest([]float64{5, 5})
	if !ok || id != 1 || p[0] != 5 {
		t.Fatalf("replacement lost: id=%d p=%v", id, p)
	}
}

func TestDimensionChecks(t *testing.T) {
	tree := New(2)
	if err := tree.Insert(1, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, _, _, ok := tree.Nearest([]float64{0, 0}); ok {
		t.Fatal("empty tree should return !ok")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched query dim")
		}
	}()
	tree.Nearest([]float64{0})
}

func TestPointsSnapshot(t *testing.T) {
	tree := New(1)
	tree.Insert(7, []float64{3})
	pts := tree.Points()
	if len(pts) != 1 || pts[7][0] != 3 {
		t.Fatalf("Points = %v", pts)
	}
}
