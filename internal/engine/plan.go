package engine

import (
	"strings"

	"qb5000/internal/sqlparse"
)

// conjuncts flattens an expression tree on AND, stripping parentheses.
func conjuncts(e sqlparse.Expr) []sqlparse.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlparse.ParenExpr:
		return conjuncts(x.Inner)
	case *sqlparse.BinaryExpr:
		if x.Op == "AND" {
			return append(conjuncts(x.Left), conjuncts(x.Right)...)
		}
	}
	return []sqlparse.Expr{e}
}

// refsTable reports whether the expression references a column of the given
// table binding (alias or table name), or any unqualified column that the
// table defines.
func refsTable(e sqlparse.Expr, alias string, t *Table) bool {
	found := false
	walkExprTree(e, func(x sqlparse.Expr) {
		c, ok := x.(*sqlparse.ColumnRef)
		if !ok || found {
			return
		}
		qual := strings.ToLower(c.Table)
		if qual == alias || qual == t.Name {
			found = true
			return
		}
		if qual == "" {
			if _, ok := t.ColumnIndex(c.Column); ok {
				found = true
			}
		}
	})
	return found
}

// refsOnlyBound reports whether every column reference in e resolves within
// the given set of bound aliases/tables.
func refsOnlyBound(e sqlparse.Expr, bound []boundSource) bool {
	ok := true
	walkExprTree(e, func(x sqlparse.Expr) {
		c, isCol := x.(*sqlparse.ColumnRef)
		if !isCol || !ok {
			return
		}
		qual := strings.ToLower(c.Table)
		for _, b := range bound {
			if qual != "" {
				if qual == b.alias || qual == b.table.Name {
					return
				}
				continue
			}
			if _, has := b.table.ColumnIndex(c.Column); has {
				return
			}
		}
		ok = false
	})
	return ok
}

// walkExprTree visits every node of an expression tree (read-only).
func walkExprTree(e sqlparse.Expr, fn func(sqlparse.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		walkExprTree(x.Left, fn)
		walkExprTree(x.Right, fn)
	case *sqlparse.NotExpr:
		walkExprTree(x.Inner, fn)
	case *sqlparse.ParenExpr:
		walkExprTree(x.Inner, fn)
	case *sqlparse.InExpr:
		walkExprTree(x.Left, fn)
		for _, it := range x.Items {
			walkExprTree(it, fn)
		}
	case *sqlparse.BetweenExpr:
		walkExprTree(x.Left, fn)
		walkExprTree(x.Lo, fn)
		walkExprTree(x.Hi, fn)
	case *sqlparse.IsNullExpr:
		walkExprTree(x.Left, fn)
	case *sqlparse.FuncCall:
		for _, a := range x.Args {
			walkExprTree(a, fn)
		}
	}
}

// sarg is one index-usable predicate on a column of the scanned table.
type sarg struct {
	column string
	op     string          // "=", "<", "<=", ">", ">=", "IN", "BETWEEN"
	value  sqlparse.Expr   // RHS for single-value ops
	values []sqlparse.Expr // IN items
	lo, hi sqlparse.Expr   // BETWEEN bounds
}

// extractSargs pulls the index-usable predicates on table t (bound as alias)
// whose right-hand sides are computable from the outer binding (i.e. do not
// reference t itself).
func extractSargs(where sqlparse.Expr, alias string, t *Table) map[string][]sarg {
	out := make(map[string][]sarg)
	for _, c := range conjuncts(where) {
		switch x := c.(type) {
		case *sqlparse.BinaryExpr:
			col, rhs, op := matchColumnOp(x, alias, t)
			if col == "" {
				continue
			}
			out[col] = append(out[col], sarg{column: col, op: op, value: rhs})
		case *sqlparse.InExpr:
			if x.Negated {
				continue
			}
			col := columnOf(x.Left, alias, t)
			if col == "" || anyRefsTable(x.Items, alias, t) {
				continue
			}
			out[col] = append(out[col], sarg{column: col, op: "IN", values: x.Items})
		case *sqlparse.BetweenExpr:
			if x.Negated {
				continue
			}
			col := columnOf(x.Left, alias, t)
			if col == "" || refsTable(x.Lo, alias, t) || refsTable(x.Hi, alias, t) {
				continue
			}
			out[col] = append(out[col], sarg{column: col, op: "BETWEEN", lo: x.Lo, hi: x.Hi})
		}
	}
	return out
}

func anyRefsTable(es []sqlparse.Expr, alias string, t *Table) bool {
	for _, e := range es {
		if refsTable(e, alias, t) {
			return true
		}
	}
	return false
}

// matchColumnOp recognizes `t.col op expr` (or mirrored) where expr does not
// reference t.
func matchColumnOp(x *sqlparse.BinaryExpr, alias string, t *Table) (col string, rhs sqlparse.Expr, op string) {
	switch x.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return "", nil, ""
	}
	if c := columnOf(x.Left, alias, t); c != "" && !refsTable(x.Right, alias, t) {
		return c, x.Right, x.Op
	}
	if c := columnOf(x.Right, alias, t); c != "" && !refsTable(x.Left, alias, t) {
		return c, x.Left, mirrorOp(x.Op)
	}
	return "", nil, ""
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// columnOf returns the lower-case column name if e is a reference to a
// column of table t under alias, else "".
func columnOf(e sqlparse.Expr, alias string, t *Table) string {
	c, ok := e.(*sqlparse.ColumnRef)
	if !ok {
		return ""
	}
	qual := strings.ToLower(c.Table)
	if qual != "" && qual != alias && qual != t.Name {
		return ""
	}
	col := strings.ToLower(c.Column)
	if _, has := t.ColumnIndex(col); !has {
		return ""
	}
	return col
}

// accessPath is the chosen way to read a table.
type accessPath struct {
	index *Index
	// eq holds the equality RHS expressions for the index's leading
	// columns; rangeSarg optionally bounds the next column.
	eq        []sqlparse.Expr
	inItems   []sqlparse.Expr // IN expansion on the column after eq prefix
	rangeSarg *sarg
	score     int
}

// choosePath picks the best index for the sargs, preferring the longest
// equality prefix, then an IN, then a range bound. Returns nil for a
// sequential scan.
func choosePath(t *Table, sargs map[string][]sarg) *accessPath {
	var best *accessPath
	for _, ix := range t.Indexes() {
		path := &accessPath{index: ix}
		for _, col := range ix.Columns {
			var eqRHS sqlparse.Expr
			var inS, rangeS *sarg
			for i := range sargs[col] {
				s := &sargs[col][i]
				switch s.op {
				case "=":
					eqRHS = s.value
				case "IN":
					inS = s
				default:
					rangeS = s
				}
			}
			if eqRHS != nil {
				path.eq = append(path.eq, eqRHS)
				path.score += 3
				continue
			}
			if inS != nil {
				path.inItems = inS.values
				path.score += 2
			} else if rangeS != nil {
				path.rangeSarg = rangeS
				path.score++
			}
			break // prefix consumed
		}
		if path.score == 0 {
			continue
		}
		if best == nil || path.score > best.score {
			best = path
		}
	}
	return best
}
