package engine

import (
	"fmt"
	"strings"

	"qb5000/internal/sqlparse"
)

// resultRow pairs output values with the pre-computed ORDER BY keys.
type resultRow struct {
	values    []Value
	orderKeys []Value
}

// aggState accumulates one aggregate call over a group.
type aggState struct {
	count   int64
	sum     float64
	min     Value
	max     Value
	hasMin  bool
	sumInts bool // all inputs were integers
}

// groupState is the accumulator for one GROUP BY bucket.
type groupState struct {
	aggs []*aggState
	rep  []boundRow // binding snapshot of the group's first row
}

// aggregator routes produced join rows either straight to the output (plain
// projection) or into GROUP BY buckets with aggregate accumulation.
type aggregator struct {
	stmt    *sqlparse.SelectStmt
	items   []sqlparse.SelectItem
	grouped bool
	// aggCalls are the aggregate invocations found in items/HAVING/ORDER
	// BY, identified by pointer.
	aggCalls []*sqlparse.FuncCall
	aggIndex map[*sqlparse.FuncCall]int

	groups   map[string]*groupState
	groupSeq []string

	plain []resultRow
}

var engineAggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func newAggregator(s *sqlparse.SelectStmt, sources []boundSource) *aggregator {
	a := &aggregator{stmt: s, aggIndex: make(map[*sqlparse.FuncCall]int)}
	// Expand * projections against the join sources.
	for _, it := range s.Items {
		if c, ok := it.Expr.(*sqlparse.ColumnRef); ok && c.Column == "*" {
			for _, src := range sources {
				if c.Table != "" && strings.ToLower(c.Table) != src.alias && strings.ToLower(c.Table) != src.table.Name {
					continue
				}
				for _, col := range src.table.Columns {
					a.items = append(a.items, sqlparse.SelectItem{
						Expr: &sqlparse.ColumnRef{Table: src.alias, Column: col.Name},
					})
				}
			}
			continue
		}
		a.items = append(a.items, it)
	}
	// Find aggregate calls.
	collect := func(e sqlparse.Expr) {
		walkExprTree(e, func(x sqlparse.Expr) {
			f, ok := x.(*sqlparse.FuncCall)
			if !ok || !engineAggFuncs[f.Name] {
				return
			}
			if _, seen := a.aggIndex[f]; seen {
				return
			}
			a.aggIndex[f] = len(a.aggCalls)
			a.aggCalls = append(a.aggCalls, f)
		})
	}
	for _, it := range a.items {
		collect(it.Expr)
	}
	collect(s.Having)
	for _, o := range s.OrderBy {
		collect(o.Expr)
	}
	a.grouped = len(s.GroupBy) > 0 || s.Having != nil || len(a.aggCalls) > 0
	if a.grouped {
		a.groups = make(map[string]*groupState)
	}
	return a
}

// consume ingests one joined row. It returns false to stop the scan (never
// for grouped queries).
func (a *aggregator) consume(b *binding, cost *Cost) (bool, error) {
	if !a.grouped {
		row := resultRow{values: make([]Value, len(a.items))}
		for i, it := range a.items {
			v, err := evalExpr(it.Expr, b)
			if err != nil {
				return false, err
			}
			row.values[i] = v
		}
		for _, o := range a.stmt.OrderBy {
			v, err := evalExpr(o.Expr, b)
			if err != nil {
				return false, err
			}
			row.orderKeys = append(row.orderKeys, v)
		}
		a.plain = append(a.plain, row)
		return true, nil
	}

	// Group key.
	var kb strings.Builder
	for _, g := range a.stmt.GroupBy {
		v, err := evalExpr(g, b)
		if err != nil {
			return false, err
		}
		kb.WriteString(v.String())
		kb.WriteByte('\x00')
	}
	key := kb.String()
	gs, ok := a.groups[key]
	if !ok {
		gs = &groupState{aggs: make([]*aggState, len(a.aggCalls))}
		for i := range gs.aggs {
			gs.aggs[i] = &aggState{sumInts: true}
		}
		gs.rep = append([]boundRow(nil), b.entries...)
		a.groups[key] = gs
		a.groupSeq = append(a.groupSeq, key)
	}
	for i, call := range a.aggCalls {
		if err := gs.aggs[i].observe(call, b); err != nil {
			return false, err
		}
	}
	return true, nil
}

func (st *aggState) observe(call *sqlparse.FuncCall, b *binding) error {
	if call.Star {
		st.count++
		return nil
	}
	if len(call.Args) != 1 {
		return fmt.Errorf("engine: %s expects one argument", call.Name)
	}
	v, err := evalExpr(call.Args[0], b)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	st.count++
	if f, ok := v.AsFloat(); ok {
		st.sum += f
		if v.Kind != KindInt {
			st.sumInts = false
		}
	}
	if !st.hasMin {
		st.min, st.max, st.hasMin = v, v, true
	} else {
		if Compare(v, st.min) < 0 {
			st.min = v
		}
		if Compare(v, st.max) > 0 {
			st.max = v
		}
	}
	return nil
}

func (st *aggState) result(call *sqlparse.FuncCall) Value {
	switch call.Name {
	case "COUNT":
		return IntVal(st.count)
	case "SUM":
		if st.count == 0 {
			return Null
		}
		if st.sumInts {
			return IntVal(int64(st.sum))
		}
		return FloatVal(st.sum)
	case "AVG":
		if st.count == 0 {
			return Null
		}
		return FloatVal(st.sum / float64(st.count))
	case "MIN":
		if !st.hasMin {
			return Null
		}
		return st.min
	case "MAX":
		if !st.hasMin {
			return Null
		}
		return st.max
	default:
		return Null
	}
}

// produced reports how many plain rows have been emitted (for early LIMIT).
func (a *aggregator) produced() int { return len(a.plain) }

// finish materializes the output rows. For grouped queries it evaluates
// HAVING, the select items, and ORDER BY keys per group.
func (a *aggregator) finish(cost *Cost) ([]resultRow, error) {
	if !a.grouped {
		return a.plain, nil
	}
	var rows []resultRow
	for _, key := range a.groupSeq {
		gs := a.groups[key]
		b := &binding{entries: gs.rep}
		eval := func(e sqlparse.Expr) (Value, error) { return a.evalWithAggs(e, gs, b) }
		if a.stmt.Having != nil {
			v, err := eval(a.stmt.Having)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		row := resultRow{values: make([]Value, len(a.items))}
		for i, it := range a.items {
			v, err := eval(it.Expr)
			if err != nil {
				return nil, err
			}
			row.values[i] = v
		}
		for _, o := range a.stmt.OrderBy {
			v, err := eval(o.Expr)
			if err != nil {
				return nil, err
			}
			row.orderKeys = append(row.orderKeys, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// evalWithAggs evaluates an expression in group context: aggregate calls
// read the group's accumulated state; everything else evaluates against the
// group's representative row.
func (a *aggregator) evalWithAggs(e sqlparse.Expr, gs *groupState, b *binding) (Value, error) {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if idx, ok := a.aggIndex[x]; ok {
			return gs.aggs[idx].result(x), nil
		}
		return Null, fmt.Errorf("engine: unsupported function %s", x.Name)
	case *sqlparse.BinaryExpr:
		l, err := a.evalWithAggs(x.Left, gs, b)
		if err != nil {
			return Null, err
		}
		r, err := a.evalWithAggs(x.Right, gs, b)
		if err != nil {
			return Null, err
		}
		return applyBinaryValues(x.Op, l, r)
	case *sqlparse.ParenExpr:
		return a.evalWithAggs(x.Inner, gs, b)
	case *sqlparse.NotExpr:
		v, err := a.evalWithAggs(x.Inner, gs, b)
		if err != nil {
			return Null, err
		}
		return BoolVal(!v.Truthy()), nil
	default:
		return evalExpr(e, b)
	}
}

// applyBinaryValues applies a binary operator to two already-evaluated
// values (no short-circuiting; used in aggregate context).
func applyBinaryValues(op string, l, r Value) (Value, error) {
	switch op {
	case "AND":
		return BoolVal(l.Truthy() && r.Truthy()), nil
	case "OR":
		return BoolVal(l.Truthy() || r.Truthy()), nil
	case "=":
		return BoolVal(!l.IsNull() && !r.IsNull() && Compare(l, r) == 0), nil
	case "!=":
		return BoolVal(!l.IsNull() && !r.IsNull() && Compare(l, r) != 0), nil
	case "<":
		return BoolVal(Compare(l, r) < 0), nil
	case "<=":
		return BoolVal(Compare(l, r) <= 0), nil
	case ">":
		return BoolVal(Compare(l, r) > 0), nil
	case ">=":
		return BoolVal(Compare(l, r) >= 0), nil
	case "LIKE":
		if l.Kind != KindString || r.Kind != KindString {
			return BoolVal(false), nil
		}
		return BoolVal(likeMatch(l.Str, r.Str)), nil
	default:
		return arith(op, l, r)
	}
}

// columnNames derives output column labels.
func (a *aggregator) columnNames() []string {
	out := make([]string, len(a.items))
	for i, it := range a.items {
		if it.Alias != "" {
			out[i] = strings.ToLower(it.Alias)
			continue
		}
		out[i] = sqlparse.ExprSQL(it.Expr)
	}
	return out
}
