// Package engine implements the embedded relational engine that stands in
// for MySQL/PostgreSQL in the index-selection experiments (paper §7.6,
// Figures 11/12). It provides heap tables, multi-column B+Tree secondary
// indexes, a predicate-driven access-path planner, and a deterministic cost
// model that charges per row examined — enough for the relative
// AUTO/STATIC/AUTO-LOGICAL comparison the paper reports, where a missing
// index costs O(N) per query and a matching index costs O(log N + k).
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind tags a Value.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// Value is a dynamically-typed SQL value.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Null is the SQL NULL value.
var Null = Value{Kind: KindNull}

// IntVal builds an integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatVal builds a float value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// StringVal builds a string value.
func StringVal(v string) Value { return Value{Kind: KindString, Str: v} }

// BoolVal builds a boolean value.
func BoolVal(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// ParseNumber converts a SQL numeric literal into an int or float value.
func ParseNumber(text string) (Value, error) {
	if strings.ContainsAny(text, ".eE") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null, fmt.Errorf("engine: bad number %q: %w", text, err)
		}
		return FloatVal(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return Null, fmt.Errorf("engine: bad number %q: %w", text, err)
		}
		return FloatVal(f), nil
	}
	return IntVal(i), nil
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a WHERE context.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindInt:
		return v.Int != 0
	case KindFloat:
		//lint:ignore floateq SQL truthiness: only the exact zero is false
		return v.Float != 0
	case KindString:
		return v.Str != ""
	default:
		return false
	}
}

// String renders the value for output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", int(v.Kind))
	}
}

// Compare orders two values: -1, 0, or +1. The order is total (index
// B+Trees depend on transitivity): NULL first, then the numeric class
// (ints, floats, booleans — compared after float coercion), then strings,
// then sentinels. Ordering by type *class* rather than raw kind tag keeps
// the relation transitive even though booleans coerce numerically.
func Compare(a, b Value) int {
	ca, cb := typeClass(a), typeClass(b)
	if ca != cb {
		if ca < cb {
			return -1
		}
		return 1
	}
	switch ca {
	case classNumeric:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case classString:
		return strings.Compare(a.Str, b.Str)
	default: // NULLs and sentinels are equal within their class
		return 0
	}
}

// Type classes for the total order.
const (
	classNull = iota
	classNumeric
	classString
	classSentinel
)

func typeClass(v Value) int {
	switch v.Kind {
	case KindNull:
		return classNull
	case KindInt, KindFloat, KindBool:
		return classNumeric
	case KindString:
		return classString
	default:
		return classSentinel
	}
}

// Key is a composite index key.
type Key []Value

// KeyLess is the lexicographic ordering used by index B+Trees.
func KeyLess(a, b Key) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch Compare(a[i], b[i]) {
		case -1:
			return true
		case 1:
			return false
		}
	}
	return len(a) < len(b)
}
