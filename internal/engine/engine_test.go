package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// newTestEngine builds a small catalog:
//
//	users(id INT, name STRING, age INT, city STRING)
//	orders(id INT, user_id INT, amount FLOAT, status STRING)
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if _, err := e.CreateTable("users", []Column{
		{Name: "id", Type: IntCol},
		{Name: "name", Type: StringCol},
		{Name: "age", Type: IntCol},
		{Name: "city", Type: StringCol},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("orders", []Column{
		{Name: "id", Type: IntCol},
		{Name: "user_id", Type: IntCol},
		{Name: "amount", Type: FloatCol},
		{Name: "status", Type: StringCol},
	}); err != nil {
		t.Fatal(err)
	}
	users := [][]Value{
		{IntVal(1), StringVal("ann"), IntVal(30), StringVal("nyc")},
		{IntVal(2), StringVal("bob"), IntVal(25), StringVal("sf")},
		{IntVal(3), StringVal("cara"), IntVal(35), StringVal("nyc")},
		{IntVal(4), StringVal("dan"), IntVal(40), StringVal("chi")},
	}
	for _, r := range users {
		if err := e.InsertValues("users", r); err != nil {
			t.Fatal(err)
		}
	}
	orders := [][]Value{
		{IntVal(10), IntVal(1), FloatVal(9.5), StringVal("paid")},
		{IntVal(11), IntVal(1), FloatVal(20), StringVal("open")},
		{IntVal(12), IntVal(2), FloatVal(7.25), StringVal("paid")},
		{IntVal(13), IntVal(3), FloatVal(40), StringVal("open")},
		{IntVal(14), IntVal(3), FloatVal(5), StringVal("paid")},
	}
	for _, r := range orders {
		if err := e.InsertValues("orders", r); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func rows(t *testing.T, e *Engine, sql string) [][]string {
	t.Helper()
	res, err := e.Execute(sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		for _, v := range r {
			out[i] = append(out[i], v.String())
		}
	}
	return out
}

func TestSelectWhere(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT name FROM users WHERE age > 28 AND city = 'nyc'")
	want := [][]string{{"ann"}, {"cara"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectOrderLimitOffset(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT name FROM users ORDER BY age DESC LIMIT 2 OFFSET 1")
	want := [][]string{{"cara"}, {"ann"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Execute("SELECT * FROM users WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 4 {
		t.Fatalf("star expansion: %v", res.Rows)
	}
	if res.Columns[1] != "users.name" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT o.user_id, COUNT(*), SUM(o.amount) FROM orders o GROUP BY o.user_id ORDER BY o.user_id")
	want := [][]string{
		{"1", "2", "29.5"},
		{"2", "1", "7.25"},
		{"3", "2", "45"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestHaving(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT o.user_id FROM orders o GROUP BY o.user_id HAVING COUNT(*) > 1 ORDER BY o.user_id")
	want := [][]string{{"1"}, {"3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT COUNT(*), AVG(age), MIN(age), MAX(age) FROM users")
	want := [][]string{{"4", "32.5", "25", "40"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJoin(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT u.name, o.amount FROM users u JOIN orders o ON u.id = o.user_id WHERE o.status = 'paid' ORDER BY o.amount DESC")
	want := [][]string{{"ann", "9.5"}, {"bob", "7.25"}, {"cara", "5"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestImplicitJoin(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT u.name FROM users u, orders o WHERE u.id = o.user_id AND o.amount > 30")
	want := [][]string{{"cara"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDistinct(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT DISTINCT o.status FROM orders o ORDER BY o.status")
	want := [][]string{{"open"}, {"paid"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Execute("INSERT INTO users (id, name, age, city) VALUES (5, 'eve', 22, 'la')"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute("UPDATE users SET age = age + 1 WHERE city = 'nyc'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.RowsModified != 2 {
		t.Fatalf("updated %d rows", res.Cost.RowsModified)
	}
	got := rows(t, e, "SELECT age FROM users WHERE name = 'ann'")
	if got[0][0] != "31" {
		t.Fatalf("age after update = %v", got)
	}
	res, err = e.Execute("DELETE FROM users WHERE age < 25")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.RowsModified != 1 {
		t.Fatalf("deleted %d rows", res.Cost.RowsModified)
	}
	tbl, _ := e.Table("users")
	if tbl.RowCount() != 4 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
}

func TestInExpressionAndBetween(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT name FROM users WHERE id IN (1, 3) ORDER BY id")
	want := [][]string{{"ann"}, {"cara"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IN: got %v", got)
	}
	got = rows(t, e, "SELECT name FROM users WHERE age BETWEEN 25 AND 30 ORDER BY id")
	want = [][]string{{"ann"}, {"bob"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BETWEEN: got %v", got)
	}
}

func TestLikeOperator(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT name FROM users WHERE name LIKE 'c%'")
	if len(got) != 1 || got[0][0] != "cara" {
		t.Fatalf("LIKE: got %v", got)
	}
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	// Property: any sargable query returns the same rows with and without
	// an index, and the indexed plan examines fewer rows.
	rng := rand.New(rand.NewSource(31))
	build := func(withIndex bool) *Engine {
		e := New()
		e.CreateTable("items", []Column{
			{Name: "id", Type: IntCol},
			{Name: "cat", Type: IntCol},
			{Name: "price", Type: FloatCol},
		})
		r := rand.New(rand.NewSource(77))
		for i := 0; i < 3000; i++ {
			e.InsertValues("items", []Value{
				IntVal(int64(i)), IntVal(r.Int63n(50)), FloatVal(r.Float64() * 100),
			})
		}
		if withIndex {
			if _, _, err := e.CreateIndex("items", []string{"cat"}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.CreateIndex("items", []string{"id"}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	plain := build(false)
	indexed := build(true)

	queries := []string{
		"SELECT id FROM items WHERE cat = %d ORDER BY id",
		"SELECT id FROM items WHERE cat IN (%d, 7) ORDER BY id",
		"SELECT id FROM items WHERE id BETWEEN %d AND 2100 ORDER BY id",
		"SELECT COUNT(*) FROM items WHERE cat = %d AND price > 50",
	}
	for trial := 0; trial < 25; trial++ {
		q := fmt.Sprintf(queries[trial%len(queries)], rng.Intn(50))
		a, err := plain.Execute(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		b, err := indexed.Execute(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%q: %d rows vs %d", q, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if Compare(a.Rows[i][j], b.Rows[i][j]) != 0 {
					t.Fatalf("%q: row %d mismatch: %v vs %v", q, i, a.Rows[i], b.Rows[i])
				}
			}
		}
		if b.Cost.RowsScanned >= a.Cost.RowsScanned && a.Cost.RowsScanned > 100 {
			t.Fatalf("%q: index did not reduce scanned rows (%d vs %d)", q, b.Cost.RowsScanned, a.Cost.RowsScanned)
		}
	}
}

func TestMultiColumnIndexPath(t *testing.T) {
	e := New()
	e.CreateTable("ev", []Column{
		{Name: "a", Type: IntCol},
		{Name: "b", Type: IntCol},
		{Name: "v", Type: IntCol},
	})
	for i := 0; i < 1000; i++ {
		e.InsertValues("ev", []Value{IntVal(int64(i % 10)), IntVal(int64(i % 100)), IntVal(int64(i))})
	}
	if _, _, err := e.CreateIndex("ev", []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute("SELECT v FROM ev WHERE a = 3 AND b = 13 ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	if res.Cost.RowsScanned != 0 || res.Cost.RowsMatched != 10 {
		t.Fatalf("cost = %+v, expected pure index path", res.Cost)
	}
}

func TestCostAccounting(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Execute("SELECT name FROM users WHERE age > 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.RowsScanned != 4 || res.Cost.RowsReturned != 4 {
		t.Fatalf("cost = %+v", res.Cost)
	}
	if res.Cost.Units() <= 0 {
		t.Fatal("units must be positive")
	}
}

func TestEarlyLimitStopsScan(t *testing.T) {
	e := New()
	e.CreateTable("big", []Column{{Name: "id", Type: IntCol}})
	for i := 0; i < 10000; i++ {
		e.InsertValues("big", []Value{IntVal(int64(i))})
	}
	res, err := e.Execute("SELECT id FROM big LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Cost.RowsScanned > 10 {
		t.Fatalf("early limit scanned %d rows", res.Cost.RowsScanned)
	}
}

func TestExecuteErrors(t *testing.T) {
	e := newTestEngine(t)
	bad := []string{
		"SELECT x FROM missing",
		"SELECT missing_col FROM users",
		"INSERT INTO users (nope) VALUES (1)",
		"UPDATE users SET nope = 1",
		"SELECT a FROM users WHERE ? = 1", // unbound placeholder
	}
	for _, q := range bad {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
}

func TestDropIndex(t *testing.T) {
	e := newTestEngine(t)
	ix, _, err := e.CreateIndex("users", []string{"city"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("users", ix.Name); err != nil {
		t.Fatal(err)
	}
	if err := e.DropIndex("users", ix.Name); err == nil {
		t.Fatal("double drop should fail")
	}
	if _, _, err := e.CreateIndex("users", []string{"nope"}); err == nil {
		t.Fatal("index on missing column should fail")
	}
}

func TestIndexMaintainedAcrossDML(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.CreateIndex("users", []string{"city"}); err != nil {
		t.Fatal(err)
	}
	e.Execute("INSERT INTO users (id, name, age, city) VALUES (9, 'zed', 50, 'nyc')")
	e.Execute("UPDATE users SET city = 'la' WHERE name = 'ann'")
	e.Execute("DELETE FROM users WHERE name = 'cara'")
	got := rows(t, e, "SELECT name FROM users WHERE city = 'nyc' ORDER BY id")
	want := [][]string{{"zed"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after DML: %v, want %v", got, want)
	}
	got = rows(t, e, "SELECT name FROM users WHERE city = 'la'")
	if len(got) != 1 || got[0][0] != "ann" {
		t.Fatalf("moved row not found via index: %v", got)
	}
}

func TestValueCompareOrdering(t *testing.T) {
	vals := []Value{Null, IntVal(-5), FloatVal(-2.5), IntVal(0), FloatVal(1.5), IntVal(7)}
	sorted := append([]Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return Compare(sorted[i], sorted[j]) < 0 })
	for i := 1; i < len(sorted); i++ {
		if Compare(sorted[i-1], sorted[i]) > 0 {
			t.Fatal("Compare not a total order")
		}
	}
	if Compare(Null, IntVal(0)) != -1 {
		t.Fatal("NULL must sort first")
	}
	if Compare(IntVal(2), FloatVal(2.0)) != 0 {
		t.Fatal("numeric coercion broken")
	}
	if Compare(StringVal("a"), StringVal("b")) != -1 {
		t.Fatal("string compare broken")
	}
	if Compare(maxSentinel, StringVal("zzz")) != 1 || Compare(maxSentinel, IntVal(1<<62)) != 1 {
		t.Fatal("max sentinel must dominate")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_x", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestParseNumber(t *testing.T) {
	v, err := ParseNumber("42")
	if err != nil || v.Kind != KindInt || v.Int != 42 {
		t.Fatalf("42 → %+v, %v", v, err)
	}
	v, err = ParseNumber("2.5")
	if err != nil || v.Kind != KindFloat || v.Float != 2.5 {
		t.Fatalf("2.5 → %+v, %v", v, err)
	}
	v, err = ParseNumber("1e3")
	if err != nil || v.Kind != KindFloat || v.Float != 1000 {
		t.Fatalf("1e3 → %+v, %v", v, err)
	}
	if _, err := ParseNumber("abc"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e, "SELECT status, amount FROM orders ORDER BY status ASC, amount DESC")
	want := [][]string{
		{"open", "40"}, {"open", "20"},
		{"paid", "9.5"}, {"paid", "7.25"}, {"paid", "5"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	e := newTestEngine(t)
	// Group by a derived bucket: amount rounded down by tens via division.
	got := rows(t, e, "SELECT COUNT(*) FROM orders o GROUP BY o.status ORDER BY COUNT(*) DESC")
	want := [][]string{{"3"}, {"2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUpdateWithArithmeticOnIndexedColumn(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.CreateIndex("orders", []string{"amount"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("UPDATE orders SET amount = amount * 2 WHERE status = 'paid'"); err != nil {
		t.Fatal(err)
	}
	// The index must reflect the new values.
	got := rows(t, e, "SELECT id FROM orders WHERE amount = 19 ORDER BY id")
	if len(got) != 1 || got[0][0] != "10" {
		t.Fatalf("index stale after update: %v", got)
	}
}

func TestInsertWithoutColumnList(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Execute("INSERT INTO users VALUES (7, 'gil', 28, 'bos')"); err != nil {
		t.Fatal(err)
	}
	got := rows(t, e, "SELECT name FROM users WHERE id = 7")
	if len(got) != 1 || got[0][0] != "gil" {
		t.Fatalf("positional insert: %v", got)
	}
	// Short rows leave trailing NULLs.
	if _, err := e.Execute("INSERT INTO users VALUES (8, 'hana')"); err != nil {
		t.Fatal(err)
	}
	got = rows(t, e, "SELECT name FROM users WHERE id = 8 AND age IS NULL")
	if len(got) != 1 {
		t.Fatalf("trailing NULLs missing: %v", got)
	}
}
