package engine

import (
	"fmt"
	"sort"
	"strings"

	"qb5000/internal/sqlparse"
)

// Result is the outcome of executing one statement.
type Result struct {
	Columns []string
	Rows    [][]Value
	Cost    Cost
}

// Execute parses and executes one SQL statement.
func (e *Engine) Execute(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(stmt)
}

// ExecuteStmt executes a parsed statement.
func (e *Engine) ExecuteStmt(stmt sqlparse.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		return e.execSelect(s)
	case *sqlparse.InsertStmt:
		return e.execInsert(s)
	case *sqlparse.UpdateStmt:
		return e.execUpdate(s)
	case *sqlparse.DeleteStmt:
		return e.execDelete(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// boundSource is one table in the join order.
type boundSource struct {
	alias string
	table *Table
	on    sqlparse.Expr // join condition for this source (nil for the first)
}

// scanSource iterates the rows of table t (bound as alias) that satisfy
// `filter`, using an index when the filter is sargable under the current
// binding. fn receives the row ID and row; returning false stops the scan.
func (e *Engine) scanSource(t *Table, alias string, filter sqlparse.Expr, b *binding, cost *Cost, fn func(id int64, row []Value) (bool, error)) error {
	emit := func(id int64, row []Value) (bool, error) {
		b.push(alias, t, row)
		ok := true
		if filter != nil {
			v, err := evalExpr(filter, b)
			if err != nil {
				b.pop()
				return false, err
			}
			ok = v.Truthy()
		}
		b.pop()
		if !ok {
			return true, nil
		}
		return fn(id, row)
	}

	var path *accessPath
	if filter != nil {
		path = choosePath(t, extractSargs(filter, alias, t))
	}
	if path == nil {
		for id, row := range t.rows {
			if row == nil {
				continue
			}
			cost.RowsScanned++
			cont, err := emit(int64(id), row)
			if err != nil || !cont {
				return err
			}
		}
		return nil
	}

	// Evaluate the key component expressions under the outer binding.
	evalKey := func(ex sqlparse.Expr) (Value, error) { return evalExpr(ex, b) }
	prefix := make(Key, 0, len(path.eq))
	for _, ex := range path.eq {
		v, err := evalKey(ex)
		if err != nil {
			return err
		}
		prefix = append(prefix, v)
	}
	ix := path.index

	runRange := func(lo, hi Key) error {
		cost.IndexPages += int64(ix.Height())
		var inner error
		stopped := false
		ix.tree.Range(&lo, &hi, func(_ Key, id int64) bool {
			row := t.rows[id]
			if row == nil {
				return true
			}
			cost.RowsMatched++
			cont, err := emit(id, row)
			if err != nil {
				inner = err
				return false
			}
			if !cont {
				stopped = true
				return false
			}
			return true
		})
		_ = stopped
		return inner
	}

	switch {
	case path.inItems != nil:
		for _, item := range path.inItems {
			v, err := evalKey(item)
			if err != nil {
				return err
			}
			key := append(append(Key{}, prefix...), v)
			if err := runRange(key, append(append(Key{}, key...), maxSentinel)); err != nil {
				return err
			}
		}
		return nil
	case path.rangeSarg != nil:
		s := path.rangeSarg
		lo := append(Key{}, prefix...)
		hi := append(append(Key{}, prefix...), maxSentinel)
		switch s.op {
		case "BETWEEN":
			lv, err := evalKey(s.lo)
			if err != nil {
				return err
			}
			hv, err := evalKey(s.hi)
			if err != nil {
				return err
			}
			lo = append(lo, lv)
			hi = append(append(Key{}, prefix...), hv, maxSentinel)
		case "<", "<=":
			v, err := evalKey(s.value)
			if err != nil {
				return err
			}
			hi = append(append(Key{}, prefix...), v, maxSentinel)
		case ">", ">=":
			v, err := evalKey(s.value)
			if err != nil {
				return err
			}
			lo = append(lo, v)
		}
		return runRange(lo, hi)
	default:
		// Pure equality prefix.
		lo := append(Key{}, prefix...)
		hi := append(append(Key{}, prefix...), maxSentinel)
		return runRange(lo, hi)
	}
}

// execSelect runs a SELECT with optional joins, grouping, ordering, and
// limits.
func (e *Engine) execSelect(s *sqlparse.SelectStmt) (*Result, error) {
	var cost Cost
	// Assemble the join order: FROM list first, then explicit JOINs.
	var sources []boundSource
	for _, tr := range s.From {
		t, ok := e.Table(tr.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown table %q", tr.Name)
		}
		alias := strings.ToLower(tr.Alias)
		if alias == "" {
			alias = t.Name
		}
		sources = append(sources, boundSource{alias: alias, table: t})
	}
	for i := range s.Joins {
		j := &s.Joins[i]
		t, ok := e.Table(j.Table.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown table %q", j.Table.Name)
		}
		alias := strings.ToLower(j.Table.Alias)
		if alias == "" {
			alias = t.Name
		}
		sources = append(sources, boundSource{alias: alias, table: t, on: j.On})
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("engine: SELECT without FROM is not supported")
	}

	// Partition WHERE conjuncts by the earliest source position where all
	// referenced tables are bound.
	whereConj := conjuncts(s.Where)
	perSource := make([][]sqlparse.Expr, len(sources))
	for _, c := range whereConj {
		placed := false
		for i := range sources {
			if refsOnlyBound(c, sources[:i+1]) {
				perSource[i] = append(perSource[i], c)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("engine: predicate references unknown table: %s", sqlparse.ExprSQL(c))
		}
	}
	for i := range sources {
		if sources[i].on != nil {
			perSource[i] = append(perSource[i], conjuncts(sources[i].on)...)
		}
	}

	agg := newAggregator(s, sources)
	b := &binding{}

	// Early-exit optimization: a LIMIT with no ORDER BY, grouping, or
	// DISTINCT can stop the scan as soon as enough rows are produced.
	earlyLimit := -1
	if s.Limit != nil && len(s.OrderBy) == 0 && !agg.grouped && !s.Distinct {
		n, err := intLiteral(s.Limit)
		if err == nil {
			off := 0
			if s.Offset != nil {
				if o, err := intLiteral(s.Offset); err == nil {
					off = o
				}
			}
			earlyLimit = n + off
		}
	}

	var joinFrom func(level int) (bool, error)
	joinFrom = func(level int) (bool, error) {
		if level == len(sources) {
			cont, err := agg.consume(b, &cost)
			if err != nil {
				return false, err
			}
			if !cont {
				return false, nil
			}
			if earlyLimit >= 0 && agg.produced() >= earlyLimit {
				return false, nil
			}
			return true, nil
		}
		src := sources[level]
		filter := andAll(perSource[level])
		cont := true
		err := e.scanSource(src.table, src.alias, filter, b, &cost, func(_ int64, row []Value) (bool, error) {
			b.push(src.alias, src.table, row)
			c, err := joinFrom(level + 1)
			b.pop()
			if err != nil {
				return false, err
			}
			if !c {
				cont = false
				return false, nil
			}
			return true, nil
		})
		return cont, err
	}
	if _, err := joinFrom(0); err != nil {
		return nil, err
	}

	rows, err := agg.finish(&cost)
	if err != nil {
		return nil, err
	}

	// ORDER BY.
	if len(s.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k := range s.OrderBy {
				c := Compare(rows[i].orderKeys[k], rows[j].orderKeys[k])
				if c == 0 {
					continue
				}
				if s.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// DISTINCT.
	if s.Distinct {
		seen := make(map[string]bool, len(rows))
		dedup := rows[:0]
		for _, r := range rows {
			k := rowKey(r.values)
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup = append(dedup, r)
		}
		rows = dedup
	}

	// OFFSET / LIMIT.
	if s.Offset != nil {
		off, err := intLiteral(s.Offset)
		if err != nil {
			return nil, err
		}
		if off > len(rows) {
			off = len(rows)
		}
		rows = rows[off:]
	}
	if s.Limit != nil {
		n, err := intLiteral(s.Limit)
		if err != nil {
			return nil, err
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}

	res := &Result{Columns: agg.columnNames(), Cost: cost}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.values)
	}
	res.Cost.RowsReturned = int64(len(res.Rows))
	return res, nil
}

func andAll(es []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &sqlparse.BinaryExpr{Op: "AND", Left: out, Right: e}
		}
	}
	return out
}

func intLiteral(e sqlparse.Expr) (int, error) {
	b := &binding{}
	v, err := evalExpr(e, b)
	if err != nil {
		return 0, err
	}
	f, ok := v.AsFloat()
	if !ok {
		return 0, fmt.Errorf("engine: expected integer literal, got %s", v)
	}
	return int(f), nil
}

func rowKey(vals []Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.String())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// execInsert appends the statement's rows.
func (e *Engine) execInsert(s *sqlparse.InsertStmt) (*Result, error) {
	t, ok := e.Table(s.Table.Name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table.Name)
	}
	var cost Cost
	b := &binding{}
	for _, exprRow := range s.Rows {
		row := make([]Value, len(t.Columns))
		for i := range row {
			row[i] = Null
		}
		if len(s.Columns) > 0 {
			if len(exprRow) != len(s.Columns) {
				return nil, fmt.Errorf("engine: %d values for %d columns", len(exprRow), len(s.Columns))
			}
			for i, colName := range s.Columns {
				pos, ok := t.ColumnIndex(colName)
				if !ok {
					return nil, fmt.Errorf("engine: unknown column %q in table %q", colName, t.Name)
				}
				v, err := evalExpr(exprRow[i], b)
				if err != nil {
					return nil, err
				}
				row[pos] = v
			}
		} else {
			if len(exprRow) > len(t.Columns) {
				return nil, fmt.Errorf("engine: %d values for %d columns", len(exprRow), len(t.Columns))
			}
			for i, ex := range exprRow {
				v, err := evalExpr(ex, b)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		t.insert(row)
		cost.RowsModified++
		cost.IndexPages += int64(len(t.indexes))
	}
	return &Result{Cost: cost}, nil
}

// execUpdate modifies matching rows.
func (e *Engine) execUpdate(s *sqlparse.UpdateStmt) (*Result, error) {
	t, ok := e.Table(s.Table.Name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table.Name)
	}
	alias := strings.ToLower(s.Table.Alias)
	if alias == "" {
		alias = t.Name
	}
	var cost Cost
	b := &binding{}
	type pending struct {
		id  int64
		row []Value
	}
	var updates []pending
	err := e.scanSource(t, alias, s.Where, b, &cost, func(id int64, row []Value) (bool, error) {
		newRow := append([]Value(nil), row...)
		b.push(alias, t, row)
		for _, a := range s.Set {
			pos, ok := t.ColumnIndex(a.Column)
			if !ok {
				b.pop()
				return false, fmt.Errorf("engine: unknown column %q in table %q", a.Column, t.Name)
			}
			v, err := evalExpr(a.Value, b)
			if err != nil {
				b.pop()
				return false, err
			}
			newRow[pos] = v
		}
		b.pop()
		updates = append(updates, pending{id: id, row: newRow})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, u := range updates {
		t.update(u.id, u.row)
		cost.RowsModified++
	}
	return &Result{Cost: cost}, nil
}

// execDelete removes matching rows.
func (e *Engine) execDelete(s *sqlparse.DeleteStmt) (*Result, error) {
	t, ok := e.Table(s.Table.Name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table.Name)
	}
	alias := strings.ToLower(s.Table.Alias)
	if alias == "" {
		alias = t.Name
	}
	var cost Cost
	b := &binding{}
	var ids []int64
	err := e.scanSource(t, alias, s.Where, b, &cost, func(id int64, _ []Value) (bool, error) {
		ids = append(ids, id)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		t.delete(id)
		cost.RowsModified++
	}
	return &Result{Cost: cost}, nil
}
