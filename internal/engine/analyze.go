package engine

import (
	"sort"
	"strings"

	"qb5000/internal/sqlparse"
)

// ColumnPredicate is one index-usable predicate found in a statement:
// table.column compared with Op ("=", "<", "<=", ">", ">=", "IN",
// "BETWEEN"). The index selector builds its candidates from these.
type ColumnPredicate struct {
	Table  string
	Column string
	Op     string
}

// AnalyzePredicates extracts the sargable predicates of a statement against
// the engine's catalog, including join equalities (an `a.x = b.y` join
// predicate yields an equality predicate on each side).
func (e *Engine) AnalyzePredicates(stmt sqlparse.Statement) []ColumnPredicate {
	var out []ColumnPredicate
	add := func(t *Table, alias string, filter sqlparse.Expr) {
		if filter == nil {
			return
		}
		// Emit predicates in sorted column order; ranging over the sarg map
		// directly would make the slice order vary run to run.
		sargs := extractSargs(filter, alias, t)
		cols := make([]string, 0, len(sargs))
		for col := range sargs {
			cols = append(cols, col)
		}
		sort.Strings(cols)
		for _, col := range cols {
			for _, s := range sargs[col] {
				out = append(out, ColumnPredicate{Table: t.Name, Column: col, Op: s.op})
			}
		}
	}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		filters := []sqlparse.Expr{s.Where}
		for i := range s.Joins {
			filters = append(filters, s.Joins[i].On)
		}
		combined := andAll(nonNil(filters))
		visit := func(tr sqlparse.TableRef) {
			t, ok := e.Table(tr.Name)
			if !ok {
				return
			}
			alias := strings.ToLower(tr.Alias)
			if alias == "" {
				alias = t.Name
			}
			add(t, alias, combined)
		}
		for _, tr := range s.From {
			visit(tr)
		}
		for i := range s.Joins {
			visit(s.Joins[i].Table)
		}
	case *sqlparse.UpdateStmt:
		if t, ok := e.Table(s.Table.Name); ok {
			alias := strings.ToLower(s.Table.Alias)
			if alias == "" {
				alias = t.Name
			}
			add(t, alias, s.Where)
		}
	case *sqlparse.DeleteStmt:
		if t, ok := e.Table(s.Table.Name); ok {
			alias := strings.ToLower(s.Table.Alias)
			if alias == "" {
				alias = t.Name
			}
			add(t, alias, s.Where)
		}
	}
	return out
}

func nonNil(es []sqlparse.Expr) []sqlparse.Expr {
	out := es[:0]
	for _, e := range es {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// DistinctCount returns the (exact) number of distinct values in a column,
// used by the index selector's selectivity estimates. The scan is O(rows);
// callers cache the result.
func (e *Engine) DistinctCount(table, column string) int {
	t, ok := e.Table(table)
	if !ok {
		return 0
	}
	pos, ok := t.ColumnIndex(column)
	if !ok {
		return 0
	}
	seen := make(map[string]bool)
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		seen[row[pos].String()] = true
	}
	return len(seen)
}

// EstimateCost approximates the execution cost (in cost-model units) of a
// statement given a hypothetical set of available indexes described as
// table → column lists. It mirrors the executor's access-path choice: the
// longest matching equality prefix wins, range predicates bound one more
// column, everything else is a sequential scan.
func (e *Engine) EstimateCost(stmt sqlparse.Statement, hypothetical map[string][][]string, distinct func(table, col string) int) float64 {
	preds := e.AnalyzePredicates(stmt)
	perTable := make(map[string][]ColumnPredicate)
	for _, p := range preds {
		perTable[p.Table] = append(perTable[p.Table], p)
	}

	tables := statementTables(stmt)
	var total float64
	for _, tn := range tables {
		t, ok := e.Table(tn)
		if !ok {
			continue
		}
		n := float64(t.RowCount())
		best := n * unitRowScan // sequential scan baseline
		for _, cols := range hypothetical[t.Name] {
			sel := 1.0
			matched := 0
			for _, c := range cols {
				op := bestOpFor(perTable[t.Name], c)
				if op == "" {
					break
				}
				if op == "=" || op == "IN" {
					d := distinct(t.Name, c)
					if d < 1 {
						d = 1
					}
					sel /= float64(d)
					matched++
					continue
				}
				// Range predicate bounds this column and ends the prefix.
				sel *= 0.05
				matched++
				break
			}
			if matched == 0 {
				continue
			}
			rows := n * sel
			cost := unitIndexPage*12 + unitRowMatch*rows
			if cost < best {
				best = cost
			}
		}
		total += best
	}
	//lint:ignore floateq an exactly zero estimate means no costed predicate matched
	if total == 0 {
		total = unitQueryFixed
	}
	return total
}

func bestOpFor(preds []ColumnPredicate, col string) string {
	op := ""
	for _, p := range preds {
		if p.Column != col {
			continue
		}
		if p.Op == "=" || p.Op == "IN" {
			return "="
		}
		op = p.Op
	}
	return op
}

// statementTables lists the tables a statement touches.
func statementTables(stmt sqlparse.Statement) []string {
	var out []string
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		for _, tr := range s.From {
			out = append(out, strings.ToLower(tr.Name))
		}
		for i := range s.Joins {
			out = append(out, strings.ToLower(s.Joins[i].Table.Name))
		}
	case *sqlparse.InsertStmt:
		out = append(out, strings.ToLower(s.Table.Name))
	case *sqlparse.UpdateStmt:
		out = append(out, strings.ToLower(s.Table.Name))
	case *sqlparse.DeleteStmt:
		out = append(out, strings.ToLower(s.Table.Name))
	}
	return out
}
