package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Engine is the embedded relational engine: a catalog of heap tables plus
// the executor and cost model.
type Engine struct {
	tables map[string]*Table
}

// New creates an empty engine.
func New() *Engine {
	return &Engine{tables: make(map[string]*Table)}
}

// CreateTable registers a new table.
func (e *Engine) CreateTable(name string, cols []Column) (*Table, error) {
	lname := strings.ToLower(name)
	if _, exists := e.tables[lname]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	t, err := newTable(lname, cols)
	if err != nil {
		return nil, err
	}
	e.tables[lname] = t
	return t, nil
}

// Table looks up a table by name.
func (e *Engine) Table(name string) (*Table, bool) {
	t, ok := e.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name.
func (e *Engine) Tables() []*Table {
	out := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InsertValues appends a row given in column order (missing trailing columns
// default to NULL).
func (e *Engine) InsertValues(table string, vals []Value) error {
	t, ok := e.Table(table)
	if !ok {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	if len(vals) > len(t.Columns) {
		return fmt.Errorf("engine: %d values for %d columns in %q", len(vals), len(t.Columns), table)
	}
	row := make([]Value, len(t.Columns))
	for i := range row {
		if i < len(vals) {
			row[i] = vals[i]
		} else {
			row[i] = Null
		}
	}
	t.insert(row)
	return nil
}

// CreateIndex builds a secondary index over the given columns and returns it
// together with the build cost (rows scanned). Index names are derived from
// the table and columns.
func (e *Engine) CreateIndex(table string, cols []string) (*Index, Cost, error) {
	t, ok := e.Table(table)
	if !ok {
		return nil, Cost{}, fmt.Errorf("engine: unknown table %q", table)
	}
	name := indexName(table, cols)
	if _, exists := t.indexes[name]; exists {
		return nil, Cost{}, fmt.Errorf("engine: index %q already exists", name)
	}
	ix := &Index{Name: name, Table: t.Name, Columns: make([]string, len(cols))}
	for i, c := range cols {
		lc := strings.ToLower(c)
		pos, ok := t.ColumnIndex(lc)
		if !ok {
			return nil, Cost{}, fmt.Errorf("engine: unknown column %q in table %q", c, table)
		}
		ix.Columns[i] = lc
		ix.cols = append(ix.cols, pos)
	}
	ix.tree = newIndexTree()
	var cost Cost
	for id, row := range t.rows {
		if row == nil {
			continue
		}
		ix.tree.Insert(ix.keyFor(row), int64(id))
		cost.RowsScanned++
	}
	t.indexes[name] = ix
	return ix, cost, nil
}

// DropIndex removes an index by name.
func (e *Engine) DropIndex(table, name string) error {
	t, ok := e.Table(table)
	if !ok {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	if _, ok := t.indexes[name]; !ok {
		return fmt.Errorf("engine: unknown index %q on %q", name, table)
	}
	delete(t.indexes, name)
	return nil
}

// indexName derives the deterministic index name for a column set.
func indexName(table string, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = strings.ToLower(c)
	}
	return "idx_" + strings.ToLower(table) + "_" + strings.Join(parts, "_")
}

// IndexName exposes the deterministic index naming scheme.
func IndexName(table string, cols []string) string { return indexName(table, cols) }
