package engine

import "qb5000/internal/btree"

// Cost accounts the work one operation performed in engine work units.
type Cost struct {
	// RowsScanned counts heap rows examined (sequential scan work).
	RowsScanned int64
	// IndexPages counts B+Tree pages touched during probes.
	IndexPages int64
	// RowsMatched counts rows fetched through an index.
	RowsMatched int64
	// RowsReturned counts result rows produced.
	RowsReturned int64
	// RowsModified counts rows inserted/updated/deleted.
	RowsModified int64
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.RowsScanned += other.RowsScanned
	c.IndexPages += other.IndexPages
	c.RowsMatched += other.RowsMatched
	c.RowsReturned += other.RowsReturned
	c.RowsModified += other.RowsModified
}

// Cost-model weights, in abstract time units per operation. The absolute
// scale is arbitrary; the Figure 11/12 replay converts units to simulated
// microseconds. The relative weights encode that a heap-row examination
// during a full scan is cheap per row but unavoidable for every row, an
// index page touch is a few rows' worth, and modifying a row (with index
// maintenance) is the most expensive single-row operation.
const (
	unitRowScan    = 1.0
	unitIndexPage  = 4.0
	unitRowMatch   = 2.0
	unitRowReturn  = 0.5
	unitRowModify  = 6.0
	unitQueryFixed = 20.0 // fixed per-query overhead (parse, plan, dispatch)
)

// Units converts the cost into abstract time units.
func (c Cost) Units() float64 {
	return unitQueryFixed +
		unitRowScan*float64(c.RowsScanned) +
		unitIndexPage*float64(c.IndexPages) +
		unitRowMatch*float64(c.RowsMatched) +
		unitRowReturn*float64(c.RowsReturned) +
		unitRowModify*float64(c.RowsModified)
}

// newIndexTree builds the B+Tree used by secondary indexes.
func newIndexTree() *btree.Tree[Key] {
	return btree.New[Key](KeyLess)
}
