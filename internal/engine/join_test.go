package engine

import (
	"reflect"
	"testing"
)

// threeTableEngine: customers → orders → items.
func threeTableEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.CreateTable("customers", []Column{
		{Name: "id", Type: IntCol}, {Name: "name", Type: StringCol},
	})
	e.CreateTable("orders2", []Column{
		{Name: "id", Type: IntCol}, {Name: "cust_id", Type: IntCol},
	})
	e.CreateTable("items", []Column{
		{Name: "order_id", Type: IntCol}, {Name: "sku", Type: StringCol},
	})
	e.InsertValues("customers", []Value{IntVal(1), StringVal("ann")})
	e.InsertValues("customers", []Value{IntVal(2), StringVal("bob")})
	e.InsertValues("orders2", []Value{IntVal(10), IntVal(1)})
	e.InsertValues("orders2", []Value{IntVal(11), IntVal(2)})
	e.InsertValues("items", []Value{IntVal(10), StringVal("hat")})
	e.InsertValues("items", []Value{IntVal(10), StringVal("mug")})
	e.InsertValues("items", []Value{IntVal(11), StringVal("pen")})
	return e
}

func TestThreeWayJoin(t *testing.T) {
	e := threeTableEngine(t)
	got := rows(t, e,
		"SELECT c.name, i.sku FROM customers c JOIN orders2 o ON c.id = o.cust_id JOIN items i ON o.id = i.order_id ORDER BY i.sku")
	want := [][]string{{"ann", "hat"}, {"ann", "mug"}, {"bob", "pen"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJoinUsesInnerIndex(t *testing.T) {
	e := threeTableEngine(t)
	// Without an index the inner table is scanned per outer row.
	noIdx, err := e.Execute("SELECT i.sku FROM orders2 o JOIN items i ON o.id = i.order_id")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.CreateIndex("items", []string{"order_id"}); err != nil {
		t.Fatal(err)
	}
	withIdx, err := e.Execute("SELECT i.sku FROM orders2 o JOIN items i ON o.id = i.order_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(noIdx.Rows) != len(withIdx.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(noIdx.Rows), len(withIdx.Rows))
	}
	if withIdx.Cost.RowsScanned >= noIdx.Cost.RowsScanned {
		t.Fatalf("index probe did not reduce inner scans: %d vs %d",
			withIdx.Cost.RowsScanned, noIdx.Cost.RowsScanned)
	}
	if withIdx.Cost.IndexPages == 0 {
		t.Fatal("no index pages charged")
	}
}

func TestJoinFilterPushdown(t *testing.T) {
	e := threeTableEngine(t)
	// The c.name filter only references the first table, so it must apply
	// before the join fan-out.
	got := rows(t, e,
		"SELECT i.sku FROM customers c JOIN orders2 o ON c.id = o.cust_id JOIN items i ON o.id = i.order_id WHERE c.name = 'bob'")
	want := [][]string{{"pen"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJoinWithAggregates(t *testing.T) {
	e := threeTableEngine(t)
	got := rows(t, e,
		"SELECT c.name, COUNT(*) FROM customers c JOIN orders2 o ON c.id = o.cust_id JOIN items i ON o.id = i.order_id GROUP BY c.name ORDER BY c.name")
	want := [][]string{{"ann", "2"}, {"bob", "1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAggregateErrors(t *testing.T) {
	e := threeTableEngine(t)
	bad := []string{
		"SELECT NOSUCHFUNC(id) FROM customers",
		"SELECT SUM(id, id) FROM customers",
	}
	for _, q := range bad {
		if _, err := e.Execute(q); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
}

func TestMinMaxOnStrings(t *testing.T) {
	e := threeTableEngine(t)
	got := rows(t, e, "SELECT MIN(sku), MAX(sku) FROM items")
	want := [][]string{{"hat", "pen"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	e := New()
	e.CreateTable("t", []Column{{Name: "a", Type: IntCol}})
	e.InsertValues("t", []Value{IntVal(1)})
	e.InsertValues("t", []Value{Null})
	e.InsertValues("t", []Value{IntVal(3)})
	got := rows(t, e, "SELECT COUNT(a), COUNT(*) FROM t")
	want := [][]string{{"2", "3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCrossJoinWithoutCondition(t *testing.T) {
	e := threeTableEngine(t)
	res, err := e.Execute("SELECT c.id, o.id FROM customers c, orders2 o")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 2 × 2 cartesian product
		t.Fatalf("cross join rows = %d", len(res.Rows))
	}
}

func TestDuplicateTableCreation(t *testing.T) {
	e := New()
	if _, err := e.CreateTable("t", []Column{{Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("T", []Column{{Name: "a"}}); err == nil {
		t.Fatal("case-insensitive duplicate allowed")
	}
	if _, err := e.CreateTable("u", []Column{{Name: "a"}, {Name: "A"}}); err == nil {
		t.Fatal("duplicate column allowed")
	}
}

func TestInsertValueCountMismatch(t *testing.T) {
	e := New()
	e.CreateTable("t", []Column{{Name: "a"}})
	if err := e.InsertValues("t", []Value{IntVal(1), IntVal(2)}); err == nil {
		t.Fatal("too many values accepted")
	}
	if err := e.InsertValues("missing", []Value{IntVal(1)}); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestHavingWithArithmeticOnAggregates(t *testing.T) {
	e := newTestEngine(t)
	// HAVING with aggregate arithmetic and comparison exercises the
	// aggregate-context evaluator's operators.
	got := rows(t, e,
		"SELECT o.user_id FROM orders o GROUP BY o.user_id HAVING SUM(o.amount) / COUNT(*) > 10 ORDER BY o.user_id")
	want := [][]string{{"1"}, {"3"}} // avg 14.75 and 22.5 qualify; user 2 avg 7.25
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	got = rows(t, e,
		"SELECT o.user_id FROM orders o GROUP BY o.user_id HAVING COUNT(*) > 1 AND SUM(o.amount) < 40 ORDER BY o.user_id")
	want = [][]string{{"1"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AND in HAVING: got %v, want %v", got, want)
	}
	got = rows(t, e,
		"SELECT o.user_id FROM orders o GROUP BY o.user_id HAVING NOT COUNT(*) > 1 ORDER BY o.user_id")
	want = [][]string{{"2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NOT in HAVING: got %v, want %v", got, want)
	}
}

func TestOrderByAggregateValue(t *testing.T) {
	e := newTestEngine(t)
	got := rows(t, e,
		"SELECT o.user_id, SUM(o.amount) FROM orders o GROUP BY o.user_id ORDER BY SUM(o.amount) DESC")
	want := [][]string{{"3", "45"}, {"1", "29.5"}, {"2", "7.25"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSumAvgOnEmptyGroupIsNull(t *testing.T) {
	e := New()
	e.CreateTable("t", []Column{{Name: "a", Type: IntCol}})
	e.InsertValues("t", []Value{Null})
	got := rows(t, e, "SELECT SUM(a), AVG(a), MIN(a), MAX(a) FROM t")
	want := [][]string{{"NULL", "NULL", "NULL", "NULL"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSumFloatVsInt(t *testing.T) {
	e := New()
	e.CreateTable("t", []Column{{Name: "a", Type: FloatCol}})
	e.InsertValues("t", []Value{IntVal(1)})
	e.InsertValues("t", []Value{FloatVal(2.5)})
	got := rows(t, e, "SELECT SUM(a) FROM t")
	if got[0][0] != "3.5" {
		t.Fatalf("mixed SUM = %v", got)
	}
}

func TestTablesAndIndexNameHelpers(t *testing.T) {
	e := newTestEngine(t)
	tables := e.Tables()
	if len(tables) != 2 || tables[0].Name != "orders" || tables[1].Name != "users" {
		t.Fatalf("Tables() = %v", tables)
	}
	if IndexName("Users", []string{"City", "age"}) != "idx_users_city_age" {
		t.Fatalf("IndexName = %q", IndexName("Users", []string{"City", "age"}))
	}
	ix, _, err := e.CreateIndex("users", []string{"city"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 4 {
		t.Fatalf("index Len = %d", ix.Len())
	}
	tbl, _ := e.Table("users")
	if !tbl.HasIndexOn([]string{"CITY"}) {
		t.Fatal("HasIndexOn case-insensitivity broken")
	}
	if tbl.HasIndexOn([]string{"city", "age"}) {
		t.Fatal("HasIndexOn matched wrong column set")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{RowsScanned: 1, IndexPages: 2, RowsMatched: 3, RowsReturned: 4, RowsModified: 5}
	b := a
	a.Add(b)
	if a.RowsScanned != 2 || a.RowsModified != 10 {
		t.Fatalf("Add = %+v", a)
	}
	if a.Units() <= b.Units() {
		t.Fatal("Units must grow with cost")
	}
}

func TestMirroredComparisons(t *testing.T) {
	// Literal-on-the-left comparisons exercise the mirrored sargable path.
	e := newTestEngine(t)
	if _, _, err := e.CreateIndex("users", []string{"age"}); err != nil {
		t.Fatal(err)
	}
	got := rows(t, e, "SELECT name FROM users WHERE 30 <= age ORDER BY id")
	want := [][]string{{"ann"}, {"cara"}, {"dan"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	got = rows(t, e, "SELECT name FROM users WHERE 25 = age")
	if len(got) != 1 || got[0][0] != "bob" {
		t.Fatalf("mirrored equality: %v", got)
	}
}
