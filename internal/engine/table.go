package engine

import (
	"fmt"
	"sort"
	"strings"

	"qb5000/internal/btree"
)

// ColumnType declares a column's storage type.
type ColumnType int

// Column types.
const (
	IntCol ColumnType = iota
	FloatCol
	StringCol
	BoolCol
)

// Column is a table column definition.
type Column struct {
	Name string
	Type ColumnType
}

// Table is a heap table with optional secondary indexes. Row IDs are slot
// positions; deleted slots are nil.
type Table struct {
	Name    string
	Columns []Column
	colIdx  map[string]int
	rows    [][]Value
	live    int
	indexes map[string]*Index
}

// Index is a (possibly multi-column) secondary index.
type Index struct {
	Name    string
	Table   string
	Columns []string
	cols    []int // resolved column positions
	tree    *btree.Tree[Key]
}

// Len returns the number of (key, row) entries in the index.
func (ix *Index) Len() int { return ix.tree.Len() }

// Height returns the B+Tree height; the cost model charges one page per
// level on a probe.
func (ix *Index) Height() int { return ix.tree.Height() }

func newTable(name string, cols []Column) (*Table, error) {
	t := &Table{
		Name:    strings.ToLower(name),
		Columns: cols,
		colIdx:  make(map[string]int, len(cols)),
		indexes: make(map[string]*Index),
	}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("engine: duplicate column %q in table %q", c.Name, name)
		}
		t.Columns[i].Name = lc
		t.colIdx[lc] = i
	}
	return t, nil
}

// ColumnIndex resolves a column name to its position.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.live }

// Indexes returns the table's indexes sorted by name.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HasIndexOn reports whether an index with exactly these columns exists.
func (t *Table) HasIndexOn(cols []string) bool {
	for _, ix := range t.indexes {
		if len(ix.Columns) != len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Columns[i] != strings.ToLower(c) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// insert appends a row and maintains indexes, returning the row ID.
func (t *Table) insert(row []Value) int64 {
	id := int64(len(t.rows))
	t.rows = append(t.rows, row)
	t.live++
	for _, ix := range t.indexes {
		ix.tree.Insert(ix.keyFor(row), id)
	}
	return id
}

// delete removes the row at id, maintaining indexes.
func (t *Table) delete(id int64) {
	row := t.rows[id]
	if row == nil {
		return
	}
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.keyFor(row), id)
	}
	t.rows[id] = nil
	t.live--
}

// update replaces the row at id, maintaining indexes.
func (t *Table) update(id int64, newRow []Value) {
	old := t.rows[id]
	for _, ix := range t.indexes {
		oldKey, newKey := ix.keyFor(old), ix.keyFor(newRow)
		if !keysEqual(oldKey, newKey) {
			ix.tree.Delete(oldKey, id)
			ix.tree.Insert(newKey, id)
		}
	}
	t.rows[id] = newRow
}

func keysEqual(a, b Key) bool {
	return !KeyLess(a, b) && !KeyLess(b, a)
}

func (ix *Index) keyFor(row []Value) Key {
	k := make(Key, len(ix.cols))
	for i, c := range ix.cols {
		k[i] = row[c]
	}
	return k
}
