package engine

import (
	"testing"

	"qb5000/internal/sqlparse"
)

func TestAnalyzePredicates(t *testing.T) {
	e := newTestEngine(t)
	stmt, err := sqlparse.Parse("SELECT u.name FROM users u JOIN orders o ON u.id = o.user_id WHERE o.status = 'paid' AND u.age > 30")
	if err != nil {
		t.Fatal(err)
	}
	preds := e.AnalyzePredicates(stmt)
	byKey := map[string]string{}
	for _, p := range preds {
		byKey[p.Table+"."+p.Column] = p.Op
	}
	if byKey["orders.status"] != "=" {
		t.Fatalf("missing status predicate: %v", preds)
	}
	if byKey["users.age"] != ">" {
		t.Fatalf("missing age predicate: %v", preds)
	}
	// Join equality counts on both sides.
	if byKey["users.id"] != "=" || byKey["orders.user_id"] != "=" {
		t.Fatalf("join predicates missing: %v", preds)
	}
}

func TestAnalyzePredicatesDML(t *testing.T) {
	e := newTestEngine(t)
	stmt, _ := sqlparse.Parse("UPDATE users SET age = 1 WHERE id = 5")
	preds := e.AnalyzePredicates(stmt)
	if len(preds) != 1 || preds[0].Column != "id" {
		t.Fatalf("update preds = %v", preds)
	}
	stmt, _ = sqlparse.Parse("DELETE FROM orders WHERE status = 'x' AND amount < 5")
	preds = e.AnalyzePredicates(stmt)
	if len(preds) != 2 {
		t.Fatalf("delete preds = %v", preds)
	}
}

func TestDistinctCount(t *testing.T) {
	e := newTestEngine(t)
	if got := e.DistinctCount("users", "city"); got != 3 {
		t.Fatalf("distinct cities = %d", got)
	}
	if got := e.DistinctCount("users", "id"); got != 4 {
		t.Fatalf("distinct ids = %d", got)
	}
	if got := e.DistinctCount("missing", "x"); got != 0 {
		t.Fatalf("missing table = %d", got)
	}
}

func TestEstimateCostPrefersIndex(t *testing.T) {
	// On a table large enough that probing beats scanning, a matching
	// hypothetical index must lower the estimate; an unrelated one must not.
	e := New()
	if _, err := e.CreateTable("big", []Column{
		{Name: "id", Type: IntCol},
		{Name: "grp", Type: IntCol},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := e.InsertValues("big", []Value{IntVal(int64(i)), IntVal(int64(i % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	stmt, _ := sqlparse.Parse("SELECT grp FROM big WHERE id = 2")
	distinct := func(tbl, col string) int { return e.DistinctCount(tbl, col) }
	noIdx := e.EstimateCost(stmt, nil, distinct)
	withIdx := e.EstimateCost(stmt, map[string][][]string{"big": {{"id"}}}, distinct)
	if withIdx >= noIdx {
		t.Fatalf("index estimate %v not cheaper than seq %v", withIdx, noIdx)
	}
	// An index on an unrelated column must not help.
	unrelated := e.EstimateCost(stmt, map[string][][]string{"big": {{"grp"}}}, distinct)
	if unrelated >= noIdx {
		// grp IS referenced only in the projection; no predicate on it.
		t.Logf("unrelated estimate %v, seq %v", unrelated, noIdx)
	}
	if unrelated != noIdx {
		t.Fatalf("unrelated index changed estimate: %v vs %v", unrelated, noIdx)
	}
}
