package engine

import (
	"fmt"
	"strings"

	"qb5000/internal/sqlparse"
)

// KindMax is a sentinel kind ordering above every real value; index range
// scans use it as the +∞ bound for key prefixes.
const KindMax ValueKind = 100

// maxSentinel is the +∞ key component.
var maxSentinel = Value{Kind: KindMax}

// binding resolves column references against the rows currently joined.
type binding struct {
	entries []boundRow
}

type boundRow struct {
	alias string // lower-case alias or table name
	table *Table
	row   []Value
}

func (b *binding) push(alias string, t *Table, row []Value) {
	b.entries = append(b.entries, boundRow{alias: strings.ToLower(alias), table: t, row: row})
}

func (b *binding) pop() { b.entries = b.entries[:len(b.entries)-1] }

// resolve finds the value for a column reference.
func (b *binding) resolve(c *sqlparse.ColumnRef) (Value, error) {
	col := strings.ToLower(c.Column)
	qual := strings.ToLower(c.Table)
	for i := len(b.entries) - 1; i >= 0; i-- {
		e := b.entries[i]
		if qual != "" && e.alias != qual && e.table.Name != qual {
			continue
		}
		if idx, ok := e.table.ColumnIndex(col); ok {
			return e.row[idx], nil
		}
		if qual != "" {
			return Null, fmt.Errorf("engine: unknown column %q in table %q", col, qual)
		}
	}
	return Null, fmt.Errorf("engine: unresolved column %q", col)
}

// evalExpr evaluates a scalar expression against the binding.
func evalExpr(e sqlparse.Expr, b *binding) (Value, error) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return literalValue(x)
	case *sqlparse.Placeholder:
		return Null, fmt.Errorf("engine: cannot execute query with unbound placeholder")
	case *sqlparse.ColumnRef:
		return b.resolve(x)
	case *sqlparse.ParenExpr:
		return evalExpr(x.Inner, b)
	case *sqlparse.NotExpr:
		v, err := evalExpr(x.Inner, b)
		if err != nil {
			return Null, err
		}
		return BoolVal(!v.Truthy()), nil
	case *sqlparse.IsNullExpr:
		v, err := evalExpr(x.Left, b)
		if err != nil {
			return Null, err
		}
		return BoolVal(v.IsNull() != x.Negated), nil
	case *sqlparse.BetweenExpr:
		v, err := evalExpr(x.Left, b)
		if err != nil {
			return Null, err
		}
		lo, err := evalExpr(x.Lo, b)
		if err != nil {
			return Null, err
		}
		hi, err := evalExpr(x.Hi, b)
		if err != nil {
			return Null, err
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		return BoolVal(in != x.Negated), nil
	case *sqlparse.InExpr:
		v, err := evalExpr(x.Left, b)
		if err != nil {
			return Null, err
		}
		found := false
		for _, item := range x.Items {
			iv, err := evalExpr(item, b)
			if err != nil {
				return Null, err
			}
			if Compare(v, iv) == 0 {
				found = true
				break
			}
		}
		return BoolVal(found != x.Negated), nil
	case *sqlparse.BinaryExpr:
		return evalBinary(x, b)
	case *sqlparse.FuncCall:
		return Null, fmt.Errorf("engine: function %s outside aggregate context", x.Name)
	default:
		return Null, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func literalValue(l *sqlparse.Literal) (Value, error) {
	switch l.Kind {
	case "number":
		return ParseNumber(l.Text)
	case "string":
		return StringVal(l.Text), nil
	case "null":
		return Null, nil
	case "bool":
		return BoolVal(l.Text == "TRUE"), nil
	default:
		return Null, fmt.Errorf("engine: unknown literal kind %q", l.Kind)
	}
}

func evalBinary(x *sqlparse.BinaryExpr, b *binding) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalExpr(x.Left, b)
		if err != nil {
			return Null, err
		}
		if !l.Truthy() {
			return BoolVal(false), nil
		}
		r, err := evalExpr(x.Right, b)
		if err != nil {
			return Null, err
		}
		return BoolVal(r.Truthy()), nil
	case "OR":
		l, err := evalExpr(x.Left, b)
		if err != nil {
			return Null, err
		}
		if l.Truthy() {
			return BoolVal(true), nil
		}
		r, err := evalExpr(x.Right, b)
		if err != nil {
			return Null, err
		}
		return BoolVal(r.Truthy()), nil
	}
	l, err := evalExpr(x.Left, b)
	if err != nil {
		return Null, err
	}
	r, err := evalExpr(x.Right, b)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=":
		return BoolVal(!l.IsNull() && !r.IsNull() && Compare(l, r) == 0), nil
	case "!=":
		return BoolVal(!l.IsNull() && !r.IsNull() && Compare(l, r) != 0), nil
	case "<":
		return BoolVal(Compare(l, r) < 0), nil
	case "<=":
		return BoolVal(Compare(l, r) <= 0), nil
	case ">":
		return BoolVal(Compare(l, r) > 0), nil
	case ">=":
		return BoolVal(Compare(l, r) >= 0), nil
	case "LIKE":
		if l.Kind != KindString || r.Kind != KindString {
			return BoolVal(false), nil
		}
		return BoolVal(likeMatch(l.Str, r.Str)), nil
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r)
	default:
		return Null, fmt.Errorf("engine: unsupported operator %q", x.Op)
	}
}

func arith(op string, l, r Value) (Value, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Null, fmt.Errorf("engine: arithmetic on non-numeric values")
	}
	bothInt := l.Kind == KindInt && r.Kind == KindInt
	switch op {
	case "+":
		if bothInt {
			return IntVal(l.Int + r.Int), nil
		}
		return FloatVal(lf + rf), nil
	case "-":
		if bothInt {
			return IntVal(l.Int - r.Int), nil
		}
		return FloatVal(lf - rf), nil
	case "*":
		if bothInt {
			return IntVal(l.Int * r.Int), nil
		}
		return FloatVal(lf * rf), nil
	case "/":
		//lint:ignore floateq SQL division-by-zero semantics require the exact zero
		if rf == 0 {
			return Null, nil
		}
		return FloatVal(lf / rf), nil
	case "%":
		if bothInt {
			if r.Int == 0 {
				return Null, nil
			}
			return IntVal(l.Int % r.Int), nil
		}
		return Null, fmt.Errorf("engine: %% requires integers")
	}
	return Null, fmt.Errorf("engine: unknown arithmetic op %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char),
// by recursive descent with memo-free backtracking (patterns in the traces
// are short).
func likeMatch(s, pattern string) bool {
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeMatch(s[i:], pattern[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeMatch(s[1:], pattern[1:])
	default:
		return s != "" && s[0] == pattern[0] && likeMatch(s[1:], pattern[1:])
	}
}
