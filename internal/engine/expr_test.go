package engine

import (
	"testing"

	"qb5000/internal/sqlparse"
)

// evalString evaluates a scalar SQL expression with no row context.
func evalString(t *testing.T, expr string) Value {
	t.Helper()
	stmt, err := sqlparse.Parse("SELECT a FROM t WHERE " + expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	v, err := evalExpr(stmt.(*sqlparse.SelectStmt).Where, &binding{})
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2 = 3", BoolVal(true)},
		{"7 % 3 = 1", BoolVal(true)},
		{"2 * 3 + 1 = 7", BoolVal(true)},   // precedence
		{"(1 + 2) * 3 = 9", BoolVal(true)}, // grouping
		{"10 / 4 = 2.5", BoolVal(true)},    // division is float
		{"1.5 + 1 = 2.5", BoolVal(true)},   // int/float coercion
	}
	for _, c := range cases {
		if got := evalString(t, c.expr); got.Bool != c.want.Bool {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"NULL IS NULL", true},
		{"1 IS NULL", false},
		{"1 IS NOT NULL", true},
		{"NULL = NULL", false}, // SQL: NULL never equals anything
		{"NULL != 1", false},   // comparisons with NULL are not true
		{"1 + NULL IS NULL", true},
	}
	for _, c := range cases {
		if got := evalString(t, c.expr); got.Truthy() != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	if got := evalString(t, "1 / 0 IS NULL"); !got.Truthy() {
		t.Fatal("1/0 should be NULL")
	}
	if got := evalString(t, "1 % 0 IS NULL"); !got.Truthy() {
		t.Fatal("1%0 should be NULL")
	}
}

func TestBooleanShortCircuit(t *testing.T) {
	// The right side would error (arithmetic on strings) if evaluated.
	if got := evalString(t, "FALSE AND 'x' + 1 = 2"); got.Truthy() {
		t.Fatal("FALSE AND ... must be false")
	}
	if got := evalString(t, "TRUE OR 'x' + 1 = 2"); !got.Truthy() {
		t.Fatal("TRUE OR ... must be true")
	}
}

func TestStringComparisons(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"'abc' = 'abc'", true},
		{"'abc' < 'abd'", true},
		{"'b' > 'a'", true},
		{"'x' IN ('x', 'y')", true},
		{"'z' NOT IN ('x', 'y')", true},
		{"'hello' LIKE 'he%'", true},
		{"'hello' BETWEEN 'ha' AND 'hz'", true},
	}
	for _, c := range cases {
		if got := evalString(t, c.expr); got.Truthy() != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestUnresolvedColumnError(t *testing.T) {
	stmt, _ := sqlparse.Parse("SELECT a FROM t WHERE mystery = 1")
	if _, err := evalExpr(stmt.(*sqlparse.SelectStmt).Where, &binding{}); err == nil {
		t.Fatal("expected unresolved-column error")
	}
}

func TestBindingQualifiedResolution(t *testing.T) {
	tb, err := newTable("t", []Column{{Name: "x", Type: IntCol}})
	if err != nil {
		t.Fatal(err)
	}
	ub, err := newTable("u", []Column{{Name: "x", Type: IntCol}})
	if err != nil {
		t.Fatal(err)
	}
	b := &binding{}
	b.push("t", tb, []Value{IntVal(1)})
	b.push("u", ub, []Value{IntVal(2)})

	// Unqualified x resolves to the innermost (most recently joined) table.
	v, err := b.resolve(&sqlparse.ColumnRef{Column: "x"})
	if err != nil || v.Int != 2 {
		t.Fatalf("unqualified = %v, %v", v, err)
	}
	v, err = b.resolve(&sqlparse.ColumnRef{Table: "t", Column: "x"})
	if err != nil || v.Int != 1 {
		t.Fatalf("t.x = %v, %v", v, err)
	}
	// A qualifier that matches a table but not the column is an error.
	if _, err := b.resolve(&sqlparse.ColumnRef{Table: "t", Column: "nope"}); err == nil {
		t.Fatal("expected error for t.nope")
	}
}

func TestValueTruthyAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{BoolVal(true), true},
		{BoolVal(false), false},
		{IntVal(0), false},
		{IntVal(3), true},
		{FloatVal(0), false},
		{FloatVal(0.1), true},
		{StringVal(""), false},
		{StringVal("x"), true},
		{Null, false},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, c.v.Truthy())
		}
	}
	if Null.String() != "NULL" || BoolVal(true).String() != "TRUE" {
		t.Fatal("String() rendering broken")
	}
}
