package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Null
	case 1:
		return IntVal(rng.Int63n(2000) - 1000)
	case 2:
		return FloatVal((rng.Float64() - 0.5) * 2000)
	case 3:
		return StringVal(string(rune('a' + rng.Intn(26))))
	default:
		return BoolVal(rng.Intn(2) == 0)
	}
}

// TestCompareTotalOrderProperty: Compare must be antisymmetric and
// transitive over random triples, or the B+Tree invariants break.
func TestCompareTotalOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5000; trial++ {
		a, b, c := randomValue(rng), randomValue(rng), randomValue(rng)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated for %v, %v", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated for %v ≤ %v ≤ %v", a, b, c)
		}
	}
}

// TestKeyLessStrictWeakOrder: composite keys must order consistently.
func TestKeyLessStrictWeakOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	randKey := func() Key {
		k := make(Key, 1+rng.Intn(3))
		for i := range k {
			k[i] = randomValue(rng)
		}
		return k
	}
	for trial := 0; trial < 5000; trial++ {
		a, b := randKey(), randKey()
		if KeyLess(a, b) && KeyLess(b, a) {
			t.Fatalf("both a<b and b<a for %v, %v", a, b)
		}
	}
	// Prefix ordering: a shorter key that is a prefix sorts first.
	if !KeyLess(Key{IntVal(1)}, Key{IntVal(1), IntVal(0)}) {
		t.Fatal("prefix must sort before extension")
	}
}

// TestLikeMatchAgainstNaive compares the recursive matcher with a simple
// dynamic-programming reference on random strings/patterns.
func TestLikeMatchAgainstNaive(t *testing.T) {
	naive := func(s, p string) bool {
		// DP over (i, j).
		dp := make([][]bool, len(s)+1)
		for i := range dp {
			dp[i] = make([]bool, len(p)+1)
		}
		dp[0][0] = true
		for j := 1; j <= len(p); j++ {
			if p[j-1] == '%' {
				dp[0][j] = dp[0][j-1]
			}
		}
		for i := 1; i <= len(s); i++ {
			for j := 1; j <= len(p); j++ {
				switch p[j-1] {
				case '%':
					dp[i][j] = dp[i][j-1] || dp[i-1][j]
				case '_':
					dp[i][j] = dp[i-1][j-1]
				default:
					dp[i][j] = dp[i-1][j-1] && s[i-1] == p[j-1]
				}
			}
		}
		return dp[len(s)][len(p)]
	}
	f := func(sRaw, pRaw []byte) bool {
		alphabet := []byte("ab%_")
		s := make([]byte, len(sRaw)%8)
		p := make([]byte, len(pRaw)%8)
		for i := range s {
			s[i] = alphabet[int(sRaw[i])%2] // strings from {a,b}
		}
		for i := range p {
			p[i] = alphabet[int(pRaw[i])%4] // patterns from {a,b,%,_}
		}
		return likeMatch(string(s), string(p)) == naive(string(s), string(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
