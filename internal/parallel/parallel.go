// Package parallel provides the bounded worker pool the pipeline's hot
// paths share: per-horizon model training in core, the clusterer's
// similarity scans and centroid updates, and the experiment fan-out.
//
// The pool is deliberately minimal: callers describe work as n independent
// indices and the pool runs them on up to `workers` goroutines. The first
// error cancels the remaining work, panics inside workers are recovered and
// surfaced as errors, and a cancelled context stops new indices from
// starting. Determinism is the caller's job — the contract here is only that
// every index in [0, n) runs at most once and that results written to
// per-index slots never race.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: values <= 0 select GOMAXPROCS
// (use every core), 1 forces sequential execution, and larger values are
// honored as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError wraps a panic recovered from a pool worker so it propagates as
// an ordinary error instead of tearing down the process from a goroutine.
type PanicError struct {
	// Value is the value the worker panicked with.
	Value any
	// Stack is the worker's stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on up to workers goroutines
// (workers resolved via Workers). The first failure wins: its error is
// returned, the shared context passed to fn is cancelled, and unstarted
// indices are skipped. If the parent context is cancelled first, ForEach
// returns its error. With workers == 1 (or n == 1) the work runs inline on
// the calling goroutine in index order, checking ctx between items — the
// exact sequential semantics Parallelism: 1 promises.
//
// qb5000:bounded the fleet is capped at Workers(workers) and joined before return
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := protect(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	p := &pool{cancel: cancel}
	p.wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer p.wg.Done()
			for {
				i := p.claim()
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := protect(wctx, i, fn); err != nil {
					p.fail(err)
					return
				}
			}
		}()
	}
	p.wg.Wait()
	if err := p.err(); err != nil {
		return err
	}
	// The pool may have stopped early because the parent was cancelled.
	return ctx.Err()
}

// Each runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers resolved via Workers). It is the infallible sibling of ForEach
// for work that cannot fail and needs no cancellation — gradient
// accumulation, feature extraction, metric folds — where threading a
// context.Background() through ForEach and discarding its always-nil error
// only obscures the contract. Panics are not recovered: a panicking fn is a
// caller bug and tears down the process, exactly as it would serially. With
// workers == 1 (or n == 1) the work runs inline in index order.
//
// qb5000:bounded the fleet is capped at Workers(workers) and joined before return
func Each(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// pool is the shared dispatch state of one concurrent ForEach run. The
// annotated fields are shared by every worker goroutine and may only be
// touched through their atomic method calls; qb5000vet's guardedby analyzer
// (guard "atomic") rejects copies, address escapes, and direct state access.
type pool struct {
	// qb5000:guardedby atomic
	next atomic.Int64 // next index to claim
	// qb5000:guardedby atomic
	firstErr atomic.Pointer[error] // first worker failure, wins the race once

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// claim hands out the next unstarted index.
func (p *pool) claim() int { return int(p.next.Add(1) - 1) }

// fail records err if it is the first failure and cancels the pool context
// so the remaining workers stop claiming indices.
func (p *pool) fail(err error) {
	e := err
	if p.firstErr.CompareAndSwap(nil, &e) {
		p.cancel()
	}
}

// err returns the first recorded worker failure, if any.
func (p *pool) err() error {
	if e := p.firstErr.Load(); e != nil {
		return *e
	}
	return nil
}

// protect invokes fn(ctx, i), converting a panic into a *PanicError.
func protect(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Value: r, Stack: buf}
		}
	}()
	return fn(ctx, i)
}

// Map runs fn over items on up to workers goroutines and collects the
// results in input order. On error the returned slice is nil and the first
// error is reported with ForEach's semantics.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(ctx, workers, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
