package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qb5000/internal/leakcheck"
)

func TestWorkers(t *testing.T) {
	tests := []struct {
		name string
		in   int
		want int
	}{
		{"zero selects GOMAXPROCS", 0, runtime.GOMAXPROCS(0)},
		{"negative selects GOMAXPROCS", -3, runtime.GOMAXPROCS(0)},
		{"one stays one", 1, 1},
		{"explicit value honored", 7, 7},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Workers(tc.in); got != tc.want {
				t.Fatalf("Workers(%d) = %d, want %d", tc.in, got, tc.want)
			}
		})
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	tests := []struct {
		name    string
		workers int
		n       int
	}{
		{"empty input", 4, 0},
		{"negative n", 4, -2},
		{"sequential", 1, 17},
		{"single item", 8, 1},
		{"more workers than items", 16, 3},
		{"more items than workers", 3, 64},
		{"default workers", 0, 32},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			counts := make([]atomic.Int32, max(tc.n, 0))
			err := ForEach(context.Background(), tc.workers, tc.n, func(_ context.Context, i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("ForEach: %v", err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times, want 1", i, got)
				}
			}
		})
	}
}

func TestForEachErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	tests := []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var cancelled atomic.Bool
			err := ForEach(context.Background(), tc.workers, 32, func(ctx context.Context, i int) error {
				if i == 3 {
					return fmt.Errorf("index 3: %w", sentinel)
				}
				// Workers that started after the failure must observe the
				// shared context being cancelled.
				select {
				case <-ctx.Done():
					cancelled.Store(true)
				case <-time.After(50 * time.Millisecond):
				}
				return nil
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want wrapped sentinel", err)
			}
			if tc.workers > 1 && !cancelled.Load() {
				t.Error("expected at least one worker to observe cancellation")
			}
		})
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	// Only one error may be reported even when many indices fail.
	var failures atomic.Int32
	err := ForEach(context.Background(), 8, 64, func(_ context.Context, i int) error {
		failures.Add(1)
		return fmt.Errorf("fail %d", i)
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatalf("plain error reported as panic: %v", err)
	}
}

func TestForEachPanicRecovery(t *testing.T) {
	tests := []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := ForEach(context.Background(), tc.workers, 8, func(_ context.Context, i int) error {
				if i == 2 {
					panic("kaboom")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if pe.Value != "kaboom" {
				t.Errorf("panic value = %v, want kaboom", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error lost its stack")
			}
		})
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	defer leakcheck.Take(t).Done()
	const workers = 3
	var cur, peak atomic.Int32
	err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, bound is %d", p, workers)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	defer leakcheck.Take(t).Done()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	var once sync.Once
	err := ForEach(ctx, 2, 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s == 1000 {
		t.Error("cancellation did not stop the pool early")
	}
}

func TestEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			leakcheck.Check(t, func() {
				const n = 100
				counts := make([]atomic.Int32, n)
				Each(workers, n, func(i int) {
					counts[i].Add(1)
				})
				for i := range counts {
					if c := counts[i].Load(); c != 1 {
						t.Fatalf("index %d ran %d times, want exactly once", i, c)
					}
				}
			})
		})
	}
}

func TestEachInlinePath(t *testing.T) {
	// workers == 1 must run in index order on the calling goroutine.
	var order []int
	Each(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("inline Each out of order: %v", order)
		}
	}
	// n <= 0 is a no-op.
	Each(4, 0, func(i int) { t.Fatal("fn must not run for n == 0") })
}

func TestMap(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	out, err := Map(context.Background(), 4, items, func(_ context.Context, i, item int) (int, error) {
		return item * item, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, item := range items {
		if out[i] != item*item {
			t.Fatalf("out[%d] = %d, want %d (order must match input)", i, out[i], item*item)
		}
	}

	sentinel := errors.New("map boom")
	out, err = Map(context.Background(), 4, items, func(_ context.Context, i, item int) (int, error) {
		if item == 5 {
			return 0, sentinel
		}
		return item, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}
