package indexsel

import (
	"fmt"
	"math/rand"
	"testing"

	"qb5000/internal/engine"
	"qb5000/internal/sqlparse"
)

func buildEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New()
	if _, err := e.CreateTable("apps", []engine.Column{
		{Name: "id", Type: engine.IntCol},
		{Name: "student_id", Type: engine.IntCol},
		{Name: "status", Type: engine.StringCol},
		{Name: "created_at", Type: engine.IntCol},
	}); err != nil {
		t.Fatal(err)
	}
	statuses := []string{"draft", "submitted", "accepted"}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		e.InsertValues("apps", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(2000)),
			engine.StringVal(statuses[rng.Intn(len(statuses))]),
			engine.IntVal(rng.Int63n(1 << 30)),
		})
	}
	return e
}

func wq(t *testing.T, sql string, weight float64) WeightedQuery {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return WeightedQuery{SQL: sql, Stmt: stmt, Weight: weight}
}

func TestBestCandidateEqualityFirst(t *testing.T) {
	e := buildEngine(t)
	s := New(e)
	cands := s.BestCandidate(wq(t, "SELECT id FROM apps WHERE student_id = 7 AND created_at > 100", 1))
	if len(cands) != 1 {
		t.Fatalf("candidates = %v", cands)
	}
	c := cands[0]
	if c.Table != "apps" {
		t.Fatalf("table = %q", c.Table)
	}
	// Equality column leads; the range column follows.
	if c.Columns[0] != "student_id" || c.Columns[len(c.Columns)-1] != "created_at" {
		t.Fatalf("columns = %v", c.Columns)
	}
}

func TestBestCandidateNoPredicates(t *testing.T) {
	e := buildEngine(t)
	s := New(e)
	if cands := s.BestCandidate(wq(t, "SELECT id FROM apps", 1)); len(cands) != 0 {
		t.Fatalf("expected no candidates, got %v", cands)
	}
}

func TestSelectPrefersHighWeight(t *testing.T) {
	e := buildEngine(t)
	s := New(e)
	queries := []WeightedQuery{
		wq(t, "SELECT id FROM apps WHERE student_id = 7", 1000),
		wq(t, "SELECT id FROM apps WHERE status = 'draft'", 1),
	}
	chosen := s.Select(queries, 1, nil)
	if len(chosen) != 1 {
		t.Fatalf("chose %v", chosen)
	}
	if chosen[0].Columns[0] != "student_id" {
		t.Fatalf("greedy picked %v, want student_id first (higher weight and selectivity)", chosen[0])
	}
}

func TestSelectRespectsBudget(t *testing.T) {
	e := buildEngine(t)
	s := New(e)
	var queries []WeightedQuery
	for i := 0; i < 4; i++ {
		queries = append(queries, wq(t, fmt.Sprintf("SELECT id FROM apps WHERE student_id = %d", i), 10))
		queries = append(queries, wq(t, "SELECT id FROM apps WHERE status = 'draft'", 10))
		queries = append(queries, wq(t, "SELECT id FROM apps WHERE created_at > 5", 10))
	}
	if got := s.Select(queries, 2, nil); len(got) > 2 {
		t.Fatalf("budget exceeded: %v", got)
	}
	if got := s.Select(queries, 0, nil); got != nil {
		t.Fatalf("zero budget returned %v", got)
	}
}

func TestSelectSkipsExistingIndexBenefit(t *testing.T) {
	e := buildEngine(t)
	s := New(e)
	queries := []WeightedQuery{wq(t, "SELECT id FROM apps WHERE student_id = 7", 100)}
	existing := map[string][][]string{"apps": {{"student_id"}}}
	chosen := s.Select(queries, 2, existing)
	for _, c := range chosen {
		if c.Columns[0] == "student_id" && len(c.Columns) == 1 {
			t.Fatalf("re-selected an existing index: %v", chosen)
		}
	}
}

func TestCandidateKey(t *testing.T) {
	c := Candidate{Table: "Apps", Columns: []string{"a", "b"}}
	if c.Key() != "apps(a,b)" {
		t.Fatalf("Key = %q", c.Key())
	}
}

func TestBestCandidateJoinQuery(t *testing.T) {
	e := buildEngine(t)
	if _, err := e.CreateTable("students", []engine.Column{
		{Name: "id", Type: engine.IntCol},
		{Name: "dept", Type: engine.StringCol},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		e.InsertValues("students", []engine.Value{
			engine.IntVal(int64(i)), engine.StringVal("d"),
		})
	}
	s := New(e)
	cands := s.BestCandidate(wq(t,
		"SELECT a.id FROM apps a JOIN students st ON a.student_id = st.id WHERE st.dept = 'cs'", 1))
	tables := map[string]bool{}
	for _, c := range cands {
		tables[c.Table] = true
	}
	// Join equality makes both sides indexable.
	if !tables["apps"] || !tables["students"] {
		t.Fatalf("join candidates missing a side: %v", cands)
	}
}
