// Package indexsel implements the AutoAdmin-style index selection the paper
// uses in its §7.6 evaluation (Chaudhuri & Narasayya, VLDB'97): first find
// the best candidate index for each query in the (predicted) workload, then
// greedily pick the bounded subset of candidates with the highest total
// estimated benefit. Instead of a sample of the observed workload, QB5000
// feeds it the predicted arrival rates of the largest template clusters.
package indexsel

import (
	"sort"
	"strings"

	"qb5000/internal/engine"
	"qb5000/internal/sqlparse"
)

// WeightedQuery is one representative query with its predicted execution
// count over the planning window.
type WeightedQuery struct {
	SQL    string
	Stmt   sqlparse.Statement
	Weight float64
}

// Candidate is a proposed index.
type Candidate struct {
	Table   string
	Columns []string
}

// Key returns a canonical identity for the candidate.
func (c Candidate) Key() string {
	return strings.ToLower(c.Table) + "(" + strings.Join(c.Columns, ",") + ")"
}

// Selector chooses indexes against an engine's catalog and statistics.
type Selector struct {
	eng      *engine.Engine
	distinct map[string]int // cached distinct counts: "table.col"
}

// New creates a selector for the engine.
func New(eng *engine.Engine) *Selector {
	return &Selector{eng: eng, distinct: make(map[string]int)}
}

func (s *Selector) distinctCount(table, col string) int {
	key := table + "." + col
	if v, ok := s.distinct[key]; ok {
		return v
	}
	v := s.eng.DistinctCount(table, col)
	s.distinct[key] = v
	return v
}

// BestCandidate derives the best single-index candidate per table for one
// query: the equality-predicate columns (ordered by decreasing distinct
// count, i.e. most selective first) followed by at most one range column.
// Queries without sargable predicates yield nothing.
func (s *Selector) BestCandidate(q WeightedQuery) []Candidate {
	preds := s.eng.AnalyzePredicates(q.Stmt)
	perTable := make(map[string][]engine.ColumnPredicate)
	for _, p := range preds {
		perTable[p.Table] = append(perTable[p.Table], p)
	}
	var out []Candidate
	tables := make([]string, 0, len(perTable))
	for t := range perTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, table := range tables {
		var eqCols, rangeCols []string
		seen := map[string]bool{}
		for _, p := range perTable[table] {
			if seen[p.Column] && (p.Op == "=" || p.Op == "IN") {
				// Equality dominates an earlier range on the same column.
				rangeCols = remove(rangeCols, p.Column)
			} else if seen[p.Column] {
				continue
			}
			seen[p.Column] = true
			if p.Op == "=" || p.Op == "IN" {
				eqCols = append(eqCols, p.Column)
			} else {
				rangeCols = append(rangeCols, p.Column)
			}
		}
		// Most selective equality columns first.
		sort.SliceStable(eqCols, func(i, j int) bool {
			return s.distinctCount(table, eqCols[i]) > s.distinctCount(table, eqCols[j])
		})
		cols := eqCols
		if len(rangeCols) > 0 {
			sort.Strings(rangeCols)
			cols = append(cols, rangeCols[0])
		}
		if len(cols) == 0 {
			continue
		}
		if len(cols) > 3 {
			cols = cols[:3]
		}
		out = append(out, Candidate{Table: table, Columns: cols})
	}
	return out
}

// Select runs the greedy bounded search: it generates candidates from every
// query, then repeatedly adds the candidate with the highest remaining total
// benefit until `budget` indexes are chosen or no candidate helps. existing
// describes indexes already built (table → column lists) so their benefit is
// not double-counted.
func (s *Selector) Select(queries []WeightedQuery, budget int, existing map[string][][]string) []Candidate {
	// Candidate pool.
	pool := make(map[string]Candidate)
	for _, q := range queries {
		for _, c := range s.BestCandidate(q) {
			pool[c.Key()] = c
		}
	}
	if len(pool) == 0 || budget <= 0 {
		return nil
	}

	// Current hypothetical configuration starts from the existing indexes.
	config := make(map[string][][]string, len(existing))
	for t, idxs := range existing {
		config[strings.ToLower(t)] = append([][]string(nil), idxs...)
	}
	baseCost := make([]float64, len(queries))
	for i, q := range queries {
		baseCost[i] = q.Weight * s.eng.EstimateCost(q.Stmt, config, s.distinctCount)
	}

	var chosen []Candidate
	keys := sortedKeys(pool)
	for len(chosen) < budget {
		bestKey := ""
		bestBenefit := 0.0
		var bestCosts []float64
		for _, key := range keys {
			c := pool[key]
			trial := cloneConfig(config)
			trial[c.Table] = append(trial[c.Table], c.Columns)
			benefit := 0.0
			costs := make([]float64, len(queries))
			for i, q := range queries {
				costs[i] = q.Weight * s.eng.EstimateCost(q.Stmt, trial, s.distinctCount)
				benefit += baseCost[i] - costs[i]
			}
			if benefit > bestBenefit {
				bestBenefit, bestKey, bestCosts = benefit, key, costs
			}
		}
		if bestKey == "" {
			break
		}
		c := pool[bestKey]
		chosen = append(chosen, c)
		config[c.Table] = append(config[c.Table], c.Columns)
		baseCost = bestCosts
		delete(pool, bestKey)
		keys = sortedKeys(pool)
	}
	return chosen
}

func cloneConfig(in map[string][][]string) map[string][][]string {
	out := make(map[string][][]string, len(in))
	for k, v := range in {
		out[k] = append([][]string(nil), v...)
	}
	return out
}

func sortedKeys(m map[string]Candidate) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func remove(ss []string, target string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != target {
			out = append(out, s)
		}
	}
	return out
}
