package leakcheck

import (
	"strings"
	"testing"
)

// recorder is a fake testingT that captures failures instead of failing.
type recorder struct {
	failures []string
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}

func TestCheckPassesOnCleanCode(t *testing.T) {
	Check(t, func() {
		done := make(chan struct{})
		go func() { close(done) }()
		<-done
	})
}

func TestCheckWaitsForSlowWinddown(t *testing.T) {
	// A goroutine that exits only after Check starts settling must not be
	// reported: the retry window has to absorb the wind-down.
	release := make(chan struct{})
	exited := make(chan struct{})
	Check(t, func() {
		go func() {
			<-release
			close(exited)
		}()
		close(release)
	})
	<-exited
}

func TestCheckReportsALeak(t *testing.T) {
	if testing.Short() {
		t.Skip("leak detection waits out the full settle window")
	}
	rec := &recorder{}
	stuck := make(chan struct{})
	defer close(stuck)
	Check(rec, func() {
		go func() { <-stuck }()
	})
	if len(rec.failures) != 1 {
		t.Fatalf("got %d failures, want 1", len(rec.failures))
	}
	if !strings.Contains(rec.failures[0], "leakcheck") {
		t.Fatalf("failure message %q does not identify leakcheck", rec.failures[0])
	}
}

func TestSnapshotDone(t *testing.T) {
	snap := Take(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	snap.Done()
}
