// Package leakcheck verifies in tests that a block of code does not leak
// goroutines — the runtime companion to qb5000vet's static goleak analyzer.
// The analyzer proves the absence of whole classes of leaks (spawns with no
// termination path, unbounded per-message spawning); this package catches
// the remainder at test time by comparing runtime goroutine counts around
// the code under test.
//
// The check is count-based, not identity-based, so it needs no runtime
// internals and stays stdlib-only. Counts are noisy — the runtime starts
// and retires goroutines of its own, and goroutines wound down by the code
// under test (pool workers draining, http servers closing keep-alive
// connections) take a moment to exit — so the comparison retries on a
// fixed backoff schedule and only fails once the count stays elevated
// through the whole window.
package leakcheck

import (
	"runtime"
	"time"
)

// testingT is the subset of *testing.T the checker needs; an interface so
// the package never imports "testing" into non-test builds of its callers.
type testingT interface {
	Helper()
	Errorf(format string, args ...any)
}

// retries and step bound the settle window: 200 polls 10ms apart, two
// seconds total. The window is deliberately counted sleeps rather than a
// wall-clock deadline (time.Now is reserved for trace timestamps here;
// qb5000vet:noclock enforces that) — under CI scheduling jitter a counted
// schedule stretches with the machine instead of timing out early.
const (
	retries = 200
	step    = 10 * time.Millisecond
)

// Check runs fn and fails t if the goroutine count has not returned to its
// starting level after fn returns and the settle window elapses. Use it
// around code that starts pools, servers, or watchdogs:
//
//	leakcheck.Check(t, func() {
//		pool := startPool()
//		pool.Shutdown()
//	})
func Check(t testingT, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	settle(t, before)
}

// Snapshot captures the current goroutine count for a deferred check:
//
//	defer leakcheck.Snapshot(t).Done()
type Snapshot struct {
	t      testingT
	before int
}

// Take records the goroutine count before the code under test runs.
func Take(t testingT) *Snapshot {
	t.Helper()
	return &Snapshot{t: t, before: runtime.NumGoroutine()}
}

// Done fails the test if the goroutine count is still above the snapshot
// after the settle window.
func (s *Snapshot) Done() {
	s.t.Helper()
	settle(s.t, s.before)
}

// settle polls until the goroutine count drops back to the baseline or the
// window is exhausted, then reports the leak with a stack dump of every
// live goroutine so the leaked one is identifiable.
func settle(t testingT, before int) {
	t.Helper()
	var after int
	for i := 0; i < retries; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(step)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("leakcheck: %d goroutine(s) before, %d after settle window; live stacks:\n%s",
		before, after, buf)
}
