// Package fsx is the only sanctioned way to produce a durable file
// (DESIGN.md §8). WriteAtomic implements the classic crash-safe sequence —
// write a temp file in the destination directory, fsync it, close it,
// rename it over the destination, fsync the parent directory — so a crash
// or error at any point leaves the previous contents of the destination
// byte-identical on disk.
//
// The durable analyzer in qb5000vet enforces the contract from the outside:
// any path value annotated `// qb5000:durable` that reaches a direct
// os.Create / os.WriteFile / os.Rename is reported, and inside this package
// a CFG must-analysis proves every os.Rename is preceded by an fsync of the
// written file on all paths.
//
// Every step carries a named failpoint (FPCreate … FPRename), registered
// here as the central registry the faultpath analyzer cross-checks. Each
// site fires immediately BEFORE its operation, so an injected fault at any
// registered seam aborts the sequence with the destination untouched — the
// invariant the crash-matrix test asserts per site.
package fsx

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"qb5000/internal/failpoint"
)

// Failpoint site names for the atomic-write sequence, one per seam, in
// execution order. This var block is the central failpoint registry.
const (
	FPCreate = "fsx.create"
	FPWrite  = "fsx.write"
	FPSync   = "fsx.sync"
	FPClose  = "fsx.close"
	FPRename = "fsx.rename"
)

var (
	_ = failpoint.Register(FPCreate)
	_ = failpoint.Register(FPWrite)
	_ = failpoint.Register(FPSync)
	_ = failpoint.Register(FPClose)
	_ = failpoint.Register(FPRename)
)

// WriteAtomic durably replaces the file at path with whatever write
// produces: write-temp → fsync → close → rename → fsync-parent-dir. On any
// error — including an error returned by write — the destination is left
// exactly as it was and the temp file is removed.
//
// qb5000:durable path
func WriteAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	if ferr := failpoint.Inject(FPCreate); ferr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, ferr)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsx: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	committed := false
	defer func() {
		if committed {
			return
		}
		// Best-effort cleanup on the error path; secondary failures are
		// joined into the returned error rather than dropped.
		if cerr := tmp.Close(); cerr != nil && !errors.Is(cerr, os.ErrClosed) {
			err = errors.Join(err, cerr)
		}
		if rerr := os.Remove(tmpName); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
			err = errors.Join(err, rerr)
		}
	}()
	if ferr := failpoint.Inject(FPWrite); ferr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, ferr)
	}
	if werr := write(tmp); werr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, werr)
	}
	if ferr := failpoint.Inject(FPSync); ferr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, ferr)
	}
	if serr := tmp.Sync(); serr != nil {
		return fmt.Errorf("fsx: write %s: sync: %w", path, serr)
	}
	if ferr := failpoint.Inject(FPClose); ferr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, ferr)
	}
	if cerr := tmp.Close(); cerr != nil {
		return fmt.Errorf("fsx: write %s: close: %w", path, cerr)
	}
	if ferr := failpoint.Inject(FPRename); ferr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, ferr)
	}
	if rerr := os.Rename(tmpName, path); rerr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, rerr)
	}
	committed = true
	if derr := syncDir(dir); derr != nil {
		return fmt.Errorf("fsx: write %s: %w", path, derr)
	}
	return nil
}

// syncDir flushes the directory entry so the rename itself is durable, not
// just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("sync dir: %w", serr)
	}
	return cerr
}
