package fsx

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"qb5000/internal/failpoint"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	err := WriteAtomic(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, content)
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteAtomicCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	write(t, path, "first")
	if got := readFile(t, path); got != "first" {
		t.Fatalf("content %q, want %q", got, "first")
	}
	write(t, path, "second")
	if got := readFile(t, path); got != "second" {
		t.Fatalf("content %q, want %q", got, "second")
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp litter left in dir: %v", names)
	}
}

func TestWriteErrorLeavesDestinationIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	write(t, path, "keep me")
	boom := errors.New("boom")
	err := WriteAtomic(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("write error %v does not wrap the callback's error", err)
	}
	if got := readFile(t, path); got != "keep me" {
		t.Fatalf("failed write mutated destination: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp litter left in dir: %v", names)
	}
}

func TestEveryFailpointAbortsCleanly(t *testing.T) {
	sites := []string{FPCreate, FPWrite, FPSync, FPClose, FPRename}
	defer failpoint.Reset()
	for _, site := range sites {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.txt")
			write(t, path, "golden")
			if err := failpoint.SetNth(site, 1); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := failpoint.Clear(site); err != nil {
					t.Fatal(err)
				}
			}()
			err := WriteAtomic(path, func(w io.Writer) error {
				_, werr := io.WriteString(w, "overwritten")
				return werr
			})
			if err == nil {
				t.Fatal("WriteAtomic succeeded despite an injected fault")
			}
			if !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("error %v does not wrap failpoint.ErrInjected", err)
			}
			if got := readFile(t, path); got != "golden" {
				t.Fatalf("fault at %s corrupted destination: %q", site, got)
			}
			if names := listDir(t, dir); len(names) != 1 {
				t.Fatalf("fault at %s left temp litter: %v", site, names)
			}
		})
	}
}

func TestWriteAtomicMissingDirErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "out.txt")
	err := WriteAtomic(path, func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("WriteAtomic into a missing directory succeeded")
	}
}

func TestRegistryMatchesSiteConstants(t *testing.T) {
	want := map[string]bool{FPCreate: true, FPWrite: true, FPSync: true, FPClose: true, FPRename: true}
	got := failpoint.Registered()
	for _, name := range got {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("site constants missing from the registry: %v", want)
	}
}

func BenchmarkWriteAtomic(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.txt")
	payload := fmt.Sprintf("%032d", 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := WriteAtomic(path, func(w io.Writer) error {
			_, werr := io.WriteString(w, payload)
			return werr
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
