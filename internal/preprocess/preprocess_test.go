package preprocess

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"qb5000/internal/sqlparse"
)

var base = time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)

func TestTemplatizeStripsConstants(t *testing.T) {
	res, err := Templatize("SELECT a FROM t WHERE x = 42 AND name = 'bob'")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.SQL, "42") || strings.Contains(res.SQL, "bob") {
		t.Fatalf("constants leaked: %q", res.SQL)
	}
	if len(res.Params) != 2 {
		t.Fatalf("params = %v", res.Params)
	}
	if res.Params[0].Kind != "number" || res.Params[0].Value != "42" {
		t.Fatalf("param[0] = %+v", res.Params[0])
	}
	if res.Params[1].Kind != "string" || res.Params[1].Value != "bob" {
		t.Fatalf("param[1] = %+v", res.Params[1])
	}
}

func TestTemplatizeBatchInsert(t *testing.T) {
	res, err := Templatize("INSERT INTO t (a) VALUES (1), (2), (3)")
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 3 {
		t.Fatalf("BatchSize = %d", res.BatchSize)
	}
	if strings.Count(res.SQL, "(?)") != 1 {
		t.Fatalf("batched insert should collapse to one tuple: %q", res.SQL)
	}
}

func TestTemplatizeNormalizesFormatting(t *testing.T) {
	a, err := Templatize("select  A , b  from  T  where  X=1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Templatize("SELECT a, b FROM t WHERE x = 99")
	if err != nil {
		t.Fatal(err)
	}
	if a.SQL != b.SQL {
		t.Fatalf("normalization mismatch:\n%q\n%q", a.SQL, b.SQL)
	}
}

func TestTemplatizeError(t *testing.T) {
	if _, err := Templatize("TOTALLY NOT SQL"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestInstantiateRoundTrip(t *testing.T) {
	raw := "SELECT a FROM t WHERE x = 42 AND name = 'it''s'"
	res, err := Templatize(raw)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]string, len(res.Params))
	for i, p := range res.Params {
		vals[i] = p.SQL()
	}
	back := Instantiate(res.SQL, vals)
	// Re-templatizing the instantiated SQL must give the same template.
	res2, err := Templatize(back)
	if err != nil {
		t.Fatalf("instantiated SQL unparseable: %q: %v", back, err)
	}
	if res2.SQL != res.SQL {
		t.Fatalf("round trip changed template:\n%q\n%q", res.SQL, res2.SQL)
	}
	if res2.Params[0].Value != "42" || res2.Params[1].Value != "it's" {
		t.Fatalf("round trip params: %+v", res2.Params)
	}
}

func TestProcessFoldsEquivalentQueries(t *testing.T) {
	p := New(Options{Seed: 1})
	t1, err := p.Process("SELECT a FROM t WHERE x = 1", base)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.Process("select a from T where X = 999", base.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID != t2.ID {
		t.Fatal("equivalent queries mapped to different templates")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if t1.Count != 2 {
		t.Fatalf("Count = %d", t1.Count)
	}
	t3, err := p.Process("SELECT a, b FROM t WHERE x = 1", base)
	if err != nil {
		t.Fatal(err)
	}
	if t3.ID == t1.ID {
		t.Fatal("different projections folded together")
	}
}

func TestProcessRecordsHistory(t *testing.T) {
	p := New(Options{Seed: 1})
	tm, err := p.ProcessBatch("SELECT a FROM t WHERE x = 1", base, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.History.At(base); got != 10 {
		t.Fatalf("history bin = %v", got)
	}
	if tm.Count != 10 {
		t.Fatalf("Count = %d", tm.Count)
	}
	st := p.Stats()
	if st.TotalQueries != 10 || st.ByType[sqlparse.StmtSelect] != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := p.ProcessBatch("SELECT a FROM t", base, 0); err == nil {
		t.Fatal("expected error for zero count")
	}
}

func TestProcessParseErrorCounted(t *testing.T) {
	p := New(Options{Seed: 1})
	if _, err := p.Process("garbage", base); err == nil {
		t.Fatal("expected error")
	}
	if p.Stats().ParseErrors != 1 {
		t.Fatalf("ParseErrors = %d", p.Stats().ParseErrors)
	}
}

func TestNewTemplateRatio(t *testing.T) {
	p := New(Options{Seed: 1})
	p.Process("SELECT a FROM t WHERE x = 1", base)
	p.Process("SELECT b FROM t WHERE x = 1", base)
	if got := p.NewTemplateRatio(); got != 1 {
		t.Fatalf("ratio = %v, want 1", got)
	}
	p.MarkNewTemplates()
	if got := p.NewTemplateRatio(); got != 0 {
		t.Fatalf("ratio after mark = %v", got)
	}
	p.Process("SELECT c FROM t WHERE x = 1", base)
	if got := p.NewTemplateRatio(); got < 0.3 || got > 0.4 {
		t.Fatalf("ratio = %v, want 1/3", got)
	}
}

func TestMaintainEvictsIdleTemplates(t *testing.T) {
	p := New(Options{Seed: 1, EvictAfter: 24 * time.Hour})
	p.Process("SELECT a FROM t WHERE x = 1", base)
	p.Process("SELECT b FROM t WHERE x = 1", base.Add(48*time.Hour))
	evicted := p.Maintain(base.Add(49 * time.Hour))
	if len(evicted) != 1 {
		t.Fatalf("evicted %d templates, want 1", len(evicted))
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d after eviction", p.Len())
	}
	if _, ok := p.Template(evicted[0].ID); ok {
		t.Fatal("evicted template still reachable")
	}
}

func TestTemplatesSortedByID(t *testing.T) {
	p := New(Options{Seed: 1})
	for i := 0; i < 5; i++ {
		p.Process(fmt.Sprintf("SELECT c%d FROM t WHERE x = 1", i), base)
	}
	ts := p.Templates()
	for i := 1; i < len(ts); i++ {
		if ts[i].ID <= ts[i-1].ID {
			t.Fatal("templates not sorted by ID")
		}
	}
}

func TestConcurrentProcess(t *testing.T) {
	p := New(Options{Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sql := fmt.Sprintf("SELECT c%d FROM t WHERE x = %d", i%10, i)
				if _, err := p.Process(sql, base.Add(time.Duration(i)*time.Second)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Len() != 10 {
		t.Fatalf("Len = %d, want 10", p.Len())
	}
	if got := p.Stats().TotalQueries; got != 1600 {
		t.Fatalf("TotalQueries = %d, want 1600", got)
	}
}

func TestReservoirCapacityAndUniformity(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 1000; i++ {
		r.Observe([]string{fmt.Sprint(i)})
	}
	if r.Len() != 10 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Seen() != 1000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
	// With 1000 observations, it would be wildly improbable for the sample
	// to contain only early items; check at least one is from the back half.
	fromBack := 0
	for _, s := range r.Sample() {
		var v int
		fmt.Sscan(s[0], &v)
		if v >= 500 {
			fromBack++
		}
	}
	if fromBack == 0 {
		t.Fatal("reservoir never replaced early items")
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(5, 1)
	r.Observe([]string{"a"})
	r.Observe([]string{"b"})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestInstantiateProperty(t *testing.T) {
	// Instantiate replaces exactly min(#placeholders, #params) markers.
	f := func(n uint8) bool {
		k := int(n % 6)
		tpl := strings.Repeat("? ", k)
		params := []string{"1", "2", "3"}
		out := Instantiate(tpl, params)
		remaining := strings.Count(out, "?")
		want := k - len(params)
		if want < 0 {
			want = 0
		}
		return remaining == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedInsertTupleTracking(t *testing.T) {
	p := New(Options{Seed: 1})
	tm, err := p.Process("INSERT INTO t (a) VALUES (1), (2), (3)", base)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Count != 1 || tm.Tuples != 3 {
		t.Fatalf("Count=%d Tuples=%d, want 1/3", tm.Count, tm.Tuples)
	}
	// A replayed batch of 4 identical statements carries 4x the tuples.
	if _, err := p.ProcessBatch("INSERT INTO t (a) VALUES (9), (8), (7)", base, 4); err != nil {
		t.Fatal(err)
	}
	if tm.Count != 5 || tm.Tuples != 15 {
		t.Fatalf("Count=%d Tuples=%d, want 5/15", tm.Count, tm.Tuples)
	}
	// Non-INSERT templates count one tuple per statement.
	sel, err := p.Process("SELECT a FROM t WHERE x = 1", base)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Tuples != sel.Count {
		t.Fatalf("SELECT Tuples=%d Count=%d", sel.Tuples, sel.Count)
	}
}

func TestParamSQLQuoting(t *testing.T) {
	p := Param{Kind: "string", Value: "o'brien"}
	if got := p.SQL(); got != "'o''brien'" {
		t.Fatalf("SQL() = %q", got)
	}
	q := Param{Kind: "number", Value: "42"}
	if q.SQL() != "42" {
		t.Fatalf("SQL() = %q", q.SQL())
	}
}
