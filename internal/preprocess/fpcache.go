package preprocess

import (
	"sync"
	"sync/atomic"

	"qb5000/internal/sqlparse"
)

// The fingerprint cache maps raw SQL bytes to the template they last
// templatized to, so the observe hot path can skip lex/parse/normalize
// entirely for repeated query text. Production traffic is massively
// repetitive — the same literal byte strings arrive millions of times — and
// templatization is ~90 % of an observe, so a hit turns an ~11.7 µs observe
// into a few hundred ns.
//
// The cache is pure derived state. Every entry carries everything fold needs
// beyond the template itself (the pre-rendered parameter literals, the batch
// size, the statement type), all captured from the entry's one real parse, so
// a hit performs bit-for-bit the same catalog mutations a miss would: same
// history records, same reservoir stream, same counters. Enabling the cache
// therefore never changes the catalog, which is why snapshots exclude it and
// stay byte-identical across cache settings and stripe layouts.
//
// Coherence: entries are invalidated when Maintain evicts their template
// (the sweep in invalidateIDs), and the hit path additionally re-checks the
// template is still live in its stripe's byID index before folding — a stale
// entry can therefore never resurrect a dead template ID; it falls back to a
// full re-templatize, which refreshes the entry.
//
// Like the catalog, the cache is split into power-of-two hash shards (FNV-1a
// of the raw bytes) so concurrent observers of different queries do not
// contend; lookups take only a read lock. Each shard is entry-count-bounded
// and evicts with a clock hand: a hit sets the entry's reference bit, the
// hand clears bits until it finds a cold entry to replace.
type fpCache struct {
	shards []fpShard
	mask   uint64
	// qb5000:guardedby atomic
	hits atomic.Int64
	// qb5000:guardedby atomic
	misses atomic.Int64
	// qb5000:guardedby atomic
	evictions atomic.Int64
}

// fpShard is one stripe of the fingerprint cache.
type fpShard struct {
	mu sync.RWMutex
	// entries maps raw SQL to its cache entry.
	// qb5000:guardedby mu
	entries map[string]*fpEntry
	// slots is the fixed clock ring; nil slots are free.
	// qb5000:guardedby mu
	slots []*fpEntry
	// free stacks the indices of nil slots.
	// qb5000:guardedby mu
	free []int
	// hand is the clock hand position.
	// qb5000:guardedby mu
	hand int
}

// fpEntry is one cached raw-SQL→template mapping. All fields except ref are
// immutable after insertion; refreshing a mapping replaces the whole entry.
type fpEntry struct {
	// raw is the cache key, kept for map deletion on eviction.
	raw string
	// id is the template ID the raw text folded into.
	id int64
	// stripe is the catalog stripe owning the template (the semantic key's
	// home stripe — identical raw bytes always re-templatize to the same
	// key, so this can never go stale).
	stripe int
	// slot is the entry's position in its shard's clock ring.
	slot int
	// vals are the parameter literals rendered exactly as Template.Record
	// would render them, captured from the entry's one real parse.
	vals []string
	// batch is the TemplatizeResult.BatchSize (VALUES tuples per statement).
	batch int64
	// stmt is the statement type for the per-type counters.
	stmt sqlparse.StatementType
	// ref is the clock reference bit; lookups set it under the shard's read
	// lock, so concurrent setters need the atomic.
	// qb5000:guardedby atomic
	ref atomic.Uint32
}

// newFPCache builds a cache bounded to totalEntries across nshards hash
// shards (both already powers of two where it matters); nil when disabled.
func newFPCache(totalEntries, nshards int) *fpCache {
	if totalEntries <= 0 {
		return nil
	}
	if nshards > totalEntries {
		nshards = shardCount(totalEntries)
		for nshards > totalEntries {
			nshards >>= 1
		}
		if nshards < 1 {
			nshards = 1
		}
	}
	per := (totalEntries + nshards - 1) / nshards
	c := &fpCache{shards: make([]fpShard, nshards), mask: uint64(nshards - 1)}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]*fpEntry, per)
		sh.slots = make([]*fpEntry, per)
		sh.free = make([]int, per)
		for j := range sh.free {
			sh.free[j] = per - 1 - j // pop order 0,1,2,… for determinism
		}
		sh.mu.Unlock()
	}
	return c
}

// rawHash is FNV-1a over the raw query bytes: one pass, no allocation.
//
// qb5000:noalloc
func rawHash(raw string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(raw); i++ {
		h ^= uint64(raw[i])
		h *= 1099511628211
	}
	return h
}

// qb5000:noalloc
func (c *fpCache) shardFor(raw string) *fpShard {
	return &c.shards[rawHash(raw)&c.mask]
}

// lookup returns the live entry for raw, marking it recently used, or nil.
// Counter accounting is the caller's job: a lookup hit can still turn into a
// logical miss if the template was evicted underneath the entry.
//
// qb5000:noalloc
func (c *fpCache) lookup(raw string) *fpEntry {
	sh := c.shardFor(raw)
	sh.mu.RLock()
	e := sh.entries[raw]
	if e != nil {
		e.ref.Store(1)
	}
	sh.mu.RUnlock()
	return e
}

// insert records raw→(id, stripe, …), replacing any existing mapping for the
// same raw text in place and clock-evicting a cold entry when the shard is
// full.
func (c *fpCache) insert(raw string, id int64, stripe int, vals []string, batch int64, stmt sqlparse.StatementType) {
	sh := c.shardFor(raw)
	e := &fpEntry{raw: raw, id: id, stripe: stripe, vals: vals, batch: batch, stmt: stmt}
	e.ref.Store(1)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.entries[raw]; ok {
		e.slot = old.slot
		sh.slots[e.slot] = e
		sh.entries[raw] = e
		return
	}
	var slot int
	switch {
	case len(sh.free) > 0:
		slot = sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
	default:
		// Clock sweep: second-chance for referenced entries. With every bit
		// set the hand wraps once, clearing as it goes, and takes the slot it
		// started at — the loop always terminates within 2×len(slots) steps.
		for {
			victim := sh.slots[sh.hand]
			if victim.ref.Load() != 0 {
				victim.ref.Store(0)
				sh.hand = (sh.hand + 1) % len(sh.slots)
				continue
			}
			delete(sh.entries, victim.raw)
			c.evictions.Add(1)
			slot = sh.hand
			sh.hand = (sh.hand + 1) % len(sh.slots)
			break
		}
	}
	e.slot = slot
	sh.slots[slot] = e
	sh.entries[raw] = e
}

// invalidate drops the mapping for raw if it still points at entry e (a
// concurrent refresh may already have replaced it).
func (c *fpCache) invalidate(raw string, e *fpEntry) {
	sh := c.shardFor(raw)
	sh.mu.Lock()
	if cur, ok := sh.entries[raw]; ok && cur == e {
		sh.slots[cur.slot] = nil
		sh.free = append(sh.free, cur.slot)
		delete(sh.entries, raw)
	}
	sh.mu.Unlock()
}

// invalidateIDs sweeps every shard, dropping entries whose template ID was
// just evicted from the catalog. Maintain calls this after its eviction pass
// so the cache never outlives the templates it points at.
func (c *fpCache) invalidateIDs(ids map[int64]struct{}) {
	if len(ids) == 0 {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for slot, e := range sh.slots {
			if e == nil {
				continue
			}
			if _, dead := ids[e.id]; dead {
				delete(sh.entries, e.raw)
				sh.slots[slot] = nil
				sh.free = append(sh.free, slot)
			}
		}
		sh.mu.Unlock()
	}
}

// len reports the live entry count across shards (test/introspection only).
func (c *fpCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}
