package preprocess

import (
	"time"

	"qb5000/internal/timeseries"
)

// newHistory anchors a template's arrival history at the top of the hour
// containing its first arrival so that all templates in a run share aligned
// coarse-bin boundaries.
func newHistory(first time.Time) *timeseries.History {
	return timeseries.NewHistory(first.Truncate(time.Hour))
}
