package preprocess

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// shardTrace builds a deterministic mixed workload: distinct templates with
// interleaved arrivals, folds, batches, and one unparseable statement.
func shardTrace() []Observation {
	var obs []Observation
	for i := 0; i < 200; i++ {
		at := base.Add(time.Duration(i) * time.Minute)
		obs = append(obs,
			Observation{SQL: fmt.Sprintf("SELECT a FROM t%d WHERE x = %d", i%17, i), At: at},
			Observation{SQL: fmt.Sprintf("INSERT INTO logs%d (v) VALUES (%d), (%d)", i%5, i, i+1), At: at},
		)
		if i%7 == 0 {
			obs = append(obs, Observation{SQL: "UPDATE accounts SET balance = 1 WHERE id = 2", At: at, Count: 25})
		}
	}
	return obs
}

// TestProcessManyMatchesSequential pins the batch API's contract: for a
// fixed input order, ProcessMany produces the exact catalog — bytes of the
// canonical snapshot included — that the equivalent sequence of
// ProcessBatch calls produces.
func TestProcessManyMatchesSequential(t *testing.T) {
	trace := shardTrace()

	seq := New(Options{Seed: 3, Shards: 4})
	for _, o := range trace {
		count := o.Count
		if count == 0 {
			count = 1
		}
		if _, err := seq.ProcessBatch(o.SQL, o.At, count); err != nil {
			t.Fatal(err)
		}
	}

	batched := New(Options{Seed: 3, Shards: 4})
	ingested, rejected := batched.ProcessMany(trace)
	if rejected != 0 {
		t.Fatalf("rejected = %d, want 0", rejected)
	}
	if want := seq.Stats().TotalQueries; ingested != want {
		t.Fatalf("ingested = %d, want %d (query-weighted)", ingested, want)
	}

	var a, b bytes.Buffer
	if err := seq.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := batched.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("ProcessMany catalog diverged from sequential ProcessBatch (snapshots differ: %d vs %d bytes)", a.Len(), b.Len())
	}
}

// TestSnapshotBytesIdenticalAcrossShardCounts pins the canonical snapshot
// form: the same input order must yield byte-identical snapshots whether the
// catalog ran with 1, 2, or 8 stripes, and snapshotting twice must yield the
// same bytes (no map-iteration-order leakage).
func TestSnapshotBytesIdenticalAcrossShardCounts(t *testing.T) {
	trace := shardTrace()
	var ref []byte
	for _, shards := range []int{1, 2, 8} {
		p := New(Options{Seed: 3, Shards: shards})
		if _, rejected := p.ProcessMany(trace); rejected != 0 {
			t.Fatalf("shards=%d: rejected %d observations", shards, rejected)
		}
		var buf, again bytes.Buffer
		if err := p.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if err := p.Snapshot(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatalf("shards=%d: two snapshots of the same catalog differ", shards)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("shards=%d snapshot differs from shards=1 (%d vs %d bytes)", shards, buf.Len(), len(ref))
		}
	}
}

// TestShardCountRounding pins the stripe-count policy: power-of-two
// rounding, with 1 reproducing the historical single-stripe layout.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ req, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := New(Options{Shards: tc.req}).NumShards(); got != tc.want {
			t.Errorf("Shards=%d: NumShards = %d, want %d", tc.req, got, tc.want)
		}
	}
	if got := New(Options{}).NumShards(); got&(got-1) != 0 || got < 1 {
		t.Errorf("default NumShards = %d, want a power of two", got)
	}
}

// TestSequentialIDsAtOneShard pins backward compatibility: a single-stripe
// catalog allocates the historical sequential IDs 1, 2, 3, ...
func TestSequentialIDsAtOneShard(t *testing.T) {
	p := New(Options{Shards: 1})
	for i := 1; i <= 5; i++ {
		tm, err := p.Process(fmt.Sprintf("SELECT a FROM solo%d WHERE x = 1", i), base)
		if err != nil {
			t.Fatal(err)
		}
		if tm.ID != int64(i) {
			t.Fatalf("template %d got ID %d", i, tm.ID)
		}
	}
}

// TestTemplateCopiesAreDefensive pins the reader contract: Templates,
// Template, and CloneByID return copies whose mutation cannot corrupt the
// catalog.
func TestTemplateCopiesAreDefensive(t *testing.T) {
	p := New(Options{Seed: 1, Shards: 2})
	orig, err := p.ProcessBatch("SELECT a FROM t WHERE x = 1", base, 3)
	if err != nil {
		t.Fatal(err)
	}
	id := orig.ID

	snap := p.Templates()[0]
	snap.Count = 999
	snap.History.Record(base.Add(time.Minute), 100)
	snap.Params.Observe([]string{"'poison'"})

	byID, ok := p.Template(id)
	if !ok {
		t.Fatal("template missing")
	}
	if byID.Count != 3 {
		t.Fatalf("catalog Count = %d after mutating a snapshot, want 3", byID.Count)
	}
	if got := byID.History.Fine().Total(); got != 3 {
		t.Fatalf("catalog history total = %v after mutating a snapshot, want 3", got)
	}
	if byID.Params.Seen() != 1 {
		t.Fatalf("catalog reservoir saw %d vectors, want 1", byID.Params.Seen())
	}

	cl := p.CloneByID([]int64{id, 424242})
	if len(cl) != 1 {
		t.Fatalf("CloneByID returned %d templates, want 1", len(cl))
	}
	cl[id].History.Record(base, 50)
	if byID2, _ := p.Template(id); byID2.History.Fine().Total() != 3 {
		t.Fatal("CloneByID leaked a live history")
	}
}

// TestProcessManyRejects pins the rejection accounting: parse failures and
// negative counts are rejected (failures also count as parse errors) while
// the rest of the batch still folds; both tallies are query-weighted.
func TestProcessManyRejects(t *testing.T) {
	p := New(Options{Shards: 2})
	ingested, rejected := p.ProcessMany([]Observation{
		{SQL: "SELECT a FROM t WHERE x = 1", At: base},
		{SQL: "THIS IS NOT SQL", At: base, Count: 3},
		{SQL: "SELECT a FROM t WHERE x = 2", At: base, Count: -4},
		{SQL: "SELECT a FROM t WHERE x = 3", At: base, Count: 5},
	})
	if ingested != 6 || rejected != 4 { // 1+5 in, 3+1 out
		t.Fatalf("ingested=%d rejected=%d, want 6/4", ingested, rejected)
	}
	st := p.Stats()
	if st.ParseErrors != 1 {
		t.Fatalf("ParseErrors = %d, want 1", st.ParseErrors)
	}
	if st.TotalQueries != 6 {
		t.Fatalf("TotalQueries = %d, want 6", st.TotalQueries)
	}
}

// TestConcurrentProcessMany hammers the striped catalog from several
// goroutines (run under -race in CI) and checks the merged counters add up.
func TestConcurrentProcessMany(t *testing.T) {
	p := New(Options{Seed: 1})
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var obs []Observation
			for i := 0; i < perG; i++ {
				obs = append(obs, Observation{
					SQL: fmt.Sprintf("SELECT a FROM conc%d WHERE x = %d", i%10, g),
					At:  base.Add(time.Duration(i) * time.Second),
				})
			}
			if ingested, rejected := p.ProcessMany(obs); ingested != perG || rejected != 0 {
				t.Errorf("goroutine %d: ingested=%d rejected=%d", g, ingested, rejected)
			}
		}(g)
	}
	wg.Wait()
	if got := p.Stats().TotalQueries; got != goroutines*perG {
		t.Fatalf("TotalQueries = %d, want %d", got, goroutines*perG)
	}
	if got := p.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
}
