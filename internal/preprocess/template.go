package preprocess

import (
	"strings"
	"time"

	"qb5000/internal/sqlparse"
	"qb5000/internal/timeseries"
)

// Param is one extracted constant with the clause position it came from.
type Param struct {
	// Kind mirrors sqlparse.Literal.Kind: "number", "string", "null", "bool".
	Kind string
	// Value is the literal text.
	Value string
}

// TemplatizeResult is the outcome of templatizing one raw query.
type TemplatizeResult struct {
	// SQL is the canonical template string with placeholders.
	SQL string
	// Stmt is the templatized AST (literals replaced with placeholders;
	// batched INSERT rows collapsed to one).
	Stmt sqlparse.Statement
	// Params are the constants stripped from the first logical tuple, in
	// walk order.
	Params []Param
	// BatchSize is the number of VALUES tuples for INSERTs (1 otherwise).
	BatchSize int
	// Features are the logical features of the template.
	Features sqlparse.Features
}

// Templatize parses a raw SQL string and converts it into a generic template
// per §4: constants in WHERE predicates, UPDATE SET fields, INSERT VALUES
// (and every other literal position) become placeholders; batched INSERTs
// collapse to a single tuple with the batch size recorded; formatting is
// normalized by rendering the canonical AST.
func Templatize(raw string) (*TemplatizeResult, error) {
	stmt, err := sqlparse.Parse(raw)
	if err != nil {
		return nil, err
	}
	res := &TemplatizeResult{BatchSize: 1}

	if ins, ok := stmt.(*sqlparse.InsertStmt); ok && len(ins.Rows) > 1 {
		res.BatchSize = len(ins.Rows)
		ins.Rows = ins.Rows[:1]
	}

	sqlparse.WalkExprs(stmt, func(e sqlparse.Expr) sqlparse.Expr {
		lit, ok := e.(*sqlparse.Literal)
		if !ok {
			return nil
		}
		res.Params = append(res.Params, Param{Kind: lit.Kind, Value: lit.Text})
		return &sqlparse.Placeholder{Text: "?"}
	})

	res.Stmt = stmt
	res.SQL = stmt.SQL()
	res.Features = sqlparse.ExtractFeatures(stmt)
	return res, nil
}

// Template is the unit the rest of the pipeline works with: a set of
// semantically equivalent query shapes plus their combined arrival history.
type Template struct {
	// ID is a stable identifier assigned by the Preprocessor.
	ID int64
	// SQL is the canonical template text of the first query shape folded in.
	SQL string
	// Key is the semantic-equivalence key (§4).
	Key string
	// Features are the template's logical features.
	Features sqlparse.Features
	// History is the arrival-rate record at one-minute granularity.
	History *timeseries.History
	// Params samples original parameters (reservoir, §4).
	Params *Reservoir
	// FirstSeen and LastSeen bound the template's activity.
	FirstSeen, LastSeen time.Time
	// Count is the total number of queries folded into this template
	// (batched INSERT tuples count once per statement).
	Count int64
	// Tuples is the total number of VALUES tuples observed — for batched
	// INSERTs the paper tracks tuple volume separately from statement
	// volume (§4). For non-INSERT templates it equals Count.
	Tuples int64
}

// Clone deep-copies the template's mutable state — history and reservoir —
// so the copy can be read without synchronization while the original keeps
// recording under its shard lock. SQL, Key, and Features are immutable after
// creation and are shared.
func (t *Template) Clone() *Template {
	c := *t
	c.History = t.History.Clone()
	c.Params = t.Params.Clone()
	return &c
}

// Record notes one arrival of the template at time t.
func (t *Template) Record(at time.Time, params []Param) {
	t.recordVals(at, renderParams(params))
}

// recordVals is Record with the parameter literals already rendered. The
// fingerprint-cache hit path calls it with the vals captured at the entry's
// one real parse, so a hit feeds the reservoir the exact stream a miss
// would without re-rendering (or allocating) per arrival.
//
// qb5000:noalloc
func (t *Template) recordVals(at time.Time, vals []string) {
	t.Count++
	if t.Count == 1 || at.Before(t.FirstSeen) {
		t.FirstSeen = at
	}
	if at.After(t.LastSeen) {
		t.LastSeen = at
	}
	//lint:ignore noalloc the fine tier appends one bin per new minute, amortized to zero per arrival
	t.History.Record(at, 1)
	if len(vals) > 0 {
		//lint:ignore noalloc the reservoir copies a vector with probability capacity/seen, vanishing in steady state
		t.Params.Observe(vals)
	}
}

// renderParams renders each extracted parameter as the SQL literal the
// reservoir samples; nil for a parameter-free statement.
func renderParams(params []Param) []string {
	if len(params) == 0 {
		return nil
	}
	vals := make([]string, len(params))
	for i, p := range params {
		vals[i] = p.SQL()
	}
	return vals
}

// SQL renders the parameter as a SQL literal, so sampled parameters can be
// substituted back into a template's placeholders.
func (p Param) SQL() string {
	if p.Kind == "string" {
		return "'" + strings.ReplaceAll(p.Value, "'", "''") + "'"
	}
	return p.Value
}

// Instantiate substitutes the given SQL-literal parameters into the
// template's placeholders in order. Extra placeholders are left as-is; extra
// parameters are ignored. The planning module uses this to re-create
// representative queries for cost estimation (§4).
func Instantiate(templateSQL string, params []string) string {
	var sb strings.Builder
	n := 0
	for i := 0; i < len(templateSQL); i++ {
		c := templateSQL[i]
		if c == '?' && n < len(params) {
			sb.WriteString(params[n])
			n++
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}
