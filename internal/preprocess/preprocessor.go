package preprocess

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qb5000/internal/sqlparse"
)

// Stats aggregates the workload counters reported in Table 1 / Table 2.
type Stats struct {
	TotalQueries int64
	ByType       map[sqlparse.StatementType]int64
	NumTemplates int
	ParseErrors  int64
}

// Options configure a Preprocessor.
type Options struct {
	// ReservoirSize is the number of parameter vectors sampled per template.
	// Defaults to 64.
	ReservoirSize int
	// Seed drives the reservoir sampling RNG.
	Seed int64
	// EvictAfter removes a template whose queries have not been seen for
	// this long (§5.2 step 2). Zero disables eviction.
	EvictAfter time.Duration
}

// Preprocessor ingests raw queries and maintains the template catalog. It is
// safe for concurrent use: the target DBMS forwards queries from its
// connection handlers while the clusterer reads the catalog periodically.
type Preprocessor struct {
	mu        sync.RWMutex
	opts      Options
	templates map[string]*Template // semantic key → template
	byID      map[int64]*Template
	nextID    int64
	stats     Stats
	// newSinceMark counts templates created since the last MarkNewTemplates
	// call; the clusterer uses the ratio of new templates to trigger
	// re-clustering (§5.2).
	newSinceMark int
}

// New creates a Preprocessor.
func New(opts Options) *Preprocessor {
	if opts.ReservoirSize == 0 {
		opts.ReservoirSize = 64
	}
	return &Preprocessor{
		opts:      opts,
		templates: make(map[string]*Template),
		byID:      make(map[int64]*Template),
		stats:     Stats{ByType: make(map[sqlparse.StatementType]int64)},
	}
}

// Process templatizes one raw query observed at time `at` and folds it into
// the catalog, returning the template it mapped to.
func (p *Preprocessor) Process(raw string, at time.Time) (*Template, error) {
	return p.processN(raw, at, 1)
}

// ProcessBatch folds `count` identical arrivals of raw at time `at`. Trace
// replays use this to avoid re-parsing hot queries millions of times.
func (p *Preprocessor) ProcessBatch(raw string, at time.Time, count int64) (*Template, error) {
	if count <= 0 {
		return nil, fmt.Errorf("preprocess: non-positive batch count %d", count)
	}
	return p.processN(raw, at, count)
}

func (p *Preprocessor) processN(raw string, at time.Time, count int64) (*Template, error) {
	res, err := Templatize(raw)
	if err != nil {
		p.mu.Lock()
		p.stats.ParseErrors++
		p.mu.Unlock()
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	key := res.Features.SemanticKey()
	t, ok := p.templates[key]
	if !ok {
		p.nextID++
		t = &Template{
			ID:       p.nextID,
			SQL:      res.SQL,
			Key:      key,
			Features: res.Features,
			History:  newHistory(at),
			Params:   NewReservoir(p.opts.ReservoirSize, p.opts.Seed+p.nextID),
		}
		p.templates[key] = t
		p.byID[t.ID] = t
		p.newSinceMark++
	}
	t.Record(at, res.Params)
	if count > 1 {
		t.Count += count - 1
		t.History.Record(at, float64(count-1))
	}
	t.Tuples += count * int64(res.BatchSize)
	p.stats.TotalQueries += count
	p.stats.ByType[res.Stmt.Type()] += count
	return t, nil
}

// Templates returns a snapshot of the catalog sorted by template ID.
func (p *Preprocessor) Templates() []*Template {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Template, 0, len(p.templates))
	for _, t := range p.templates {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Template returns the template with the given ID, if present.
func (p *Preprocessor) Template(id int64) (*Template, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t, ok := p.byID[id]
	return t, ok
}

// Len returns the number of live templates.
func (p *Preprocessor) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.templates)
}

// Stats returns a copy of the accumulated workload counters.
func (p *Preprocessor) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := p.stats
	s.NumTemplates = len(p.templates)
	s.ByType = make(map[sqlparse.StatementType]int64, len(p.stats.ByType))
	for k, v := range p.stats.ByType {
		s.ByType[k] = v
	}
	return s
}

// NewTemplateRatio returns the fraction of the catalog created since the
// last call to MarkNewTemplates. The clusterer triggers an early re-cluster
// when this exceeds its threshold (§5.2).
func (p *Preprocessor) NewTemplateRatio() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.templates) == 0 {
		return 0
	}
	return float64(p.newSinceMark) / float64(len(p.templates))
}

// MarkNewTemplates resets the new-template counter.
func (p *Preprocessor) MarkNewTemplates() {
	p.mu.Lock()
	p.newSinceMark = 0
	p.mu.Unlock()
}

// Maintain performs the periodic background work at time `now`: compacting
// stale fine-grained history into coarse bins and evicting templates that
// have been idle past the eviction window. It returns the evicted templates.
func (p *Preprocessor) Maintain(now time.Time) []*Template {
	p.mu.Lock()
	defer p.mu.Unlock()
	var evicted []*Template
	for key, t := range p.templates {
		t.History.Compact(now)
		if p.opts.EvictAfter > 0 && now.Sub(t.LastSeen) > p.opts.EvictAfter {
			delete(p.templates, key)
			delete(p.byID, t.ID)
			evicted = append(evicted, t)
		}
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].ID < evicted[j].ID })
	return evicted
}

// HistoryBytes reports the total storage footprint of all template
// histories, for the Table 4 overhead accounting.
func (p *Preprocessor) HistoryBytes() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var n int
	for _, t := range p.templates {
		n += t.History.Bytes()
	}
	return n
}
