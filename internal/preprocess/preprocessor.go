package preprocess

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qb5000/internal/sqlparse"
)

// Stats aggregates the workload counters reported in Table 1 / Table 2.
type Stats struct {
	TotalQueries int64
	ByType       map[sqlparse.StatementType]int64
	NumTemplates int
	ParseErrors  int64
	// CacheHits and CacheMisses count observe-path fingerprint-cache
	// outcomes; CacheEvictions counts entries displaced by the clock hand.
	// All three stay zero when Options.FingerprintCacheSize is 0.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
}

// Options configure a Preprocessor.
type Options struct {
	// ReservoirSize is the number of parameter vectors sampled per template.
	// Defaults to 64.
	ReservoirSize int
	// Seed drives the reservoir sampling RNG.
	Seed int64
	// EvictAfter removes a template whose queries have not been seen for
	// this long (§5.2 step 2). Zero disables eviction.
	EvictAfter time.Duration
	// Shards is the number of catalog stripes, rounded up to a power of
	// two; 0 selects GOMAXPROCS rounded up. Each stripe has its own mutex,
	// so ingest from independent connections contends only when two
	// templates hash to the same stripe. Template IDs encode the stripe in
	// their low bits, so results are deterministic per (shard count, input
	// order); Snapshot writes a canonical layout-independent form (see
	// snapshot.go). Shards=1 reproduces the historical sequential IDs.
	Shards int
	// FingerprintCacheSize bounds the raw-SQL→template fingerprint cache in
	// entries; 0 disables it. The cache lets repeated query text skip
	// lex/parse/normalize entirely (fpcache.go). It is pure derived state:
	// enabling it changes no catalog state, no template IDs, and no snapshot
	// bytes — only speed and the Cache* counters in Stats.
	FingerprintCacheSize int
}

// Preprocessor ingests raw queries and maintains the template catalog. It is
// safe for concurrent use and designed to stay off the DBMS's critical path
// (§3): templatization (parsing) is lock-free, and the catalog is split into
// hash-striped shards so connection handlers forwarding different templates
// fold into different stripes without contending. Readers merge the stripes
// deterministically.
type Preprocessor struct {
	opts Options
	// shards, shardMask, and shardBits are immutable after New.
	shards    []catalogShard
	shardMask uint64
	shardBits uint
	// qb5000:guardedby atomic
	parseErrors atomic.Int64
	// fp is the raw-SQL fingerprint cache; nil when disabled. The pointer is
	// immutable after New; the cache synchronizes internally.
	fp *fpCache
}

// catalogShard is one stripe of the template catalog. Templates are assigned
// to stripes by hashing their semantic key, so a given template lives in
// exactly one stripe for its whole lifetime (restored snapshots included).
type catalogShard struct {
	mu sync.Mutex
	// idx is the stripe's position, immutable after New; live template IDs
	// carry it in their low shardBits bits.
	idx int64
	// qb5000:guardedby mu
	templates map[string]*Template // semantic key → template
	// qb5000:guardedby mu
	byID map[int64]*Template
	// nextSeq is the stripe-local ID sequence; template ID =
	// nextSeq<<shardBits | idx.
	// qb5000:guardedby mu
	nextSeq int64
	// qb5000:guardedby mu
	totalQueries int64
	// qb5000:guardedby mu
	byType map[sqlparse.StatementType]int64
	// newSinceMark counts templates created since the last MarkNewTemplates
	// call; the clusterer uses the ratio of new templates to trigger
	// re-clustering (§5.2).
	// qb5000:guardedby mu
	newSinceMark int
}

// shardCount rounds the requested stripe count up to a power of two;
// non-positive requests select GOMAXPROCS rounded up.
func shardCount(requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New creates a Preprocessor.
func New(opts Options) *Preprocessor {
	if opts.ReservoirSize == 0 {
		opts.ReservoirSize = 64
	}
	n := shardCount(opts.Shards)
	p := &Preprocessor{
		opts:      opts,
		shards:    make([]catalogShard, n),
		shardMask: uint64(n - 1),
	}
	for 1<<p.shardBits < n {
		p.shardBits++
	}
	p.fp = newFPCache(opts.FingerprintCacheSize, n)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.idx = int64(i)
		sh.mu.Lock()
		sh.templates = make(map[string]*Template)
		sh.byID = make(map[int64]*Template)
		sh.byType = make(map[sqlparse.StatementType]int64)
		sh.mu.Unlock()
	}
	return p
}

// NumShards reports the catalog's stripe count (a power of two).
func (p *Preprocessor) NumShards() int { return len(p.shards) }

// keyHash is FNV-1a over the semantic key. It picks the stripe and seeds
// the template's parameter reservoir: both must depend only on the key, not
// on the stripe layout, so snapshots stay byte-identical across shard
// counts.
//
// qb5000:noalloc
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardIndex hashes a semantic key onto a stripe.
//
// qb5000:noalloc
func (p *Preprocessor) shardIndex(key string) int {
	return int(keyHash(key) & p.shardMask)
}

// qb5000:noalloc
func (p *Preprocessor) shardFor(key string) *catalogShard {
	return &p.shards[p.shardIndex(key)]
}

// Process templatizes one raw query observed at time `at` and folds it into
// the catalog, returning the template it mapped to. The returned pointer is
// the live catalog object owned by its stripe; callers that read it
// concurrently with further ingest must use Template/Templates, which return
// race-free copies.
func (p *Preprocessor) Process(raw string, at time.Time) (*Template, error) {
	return p.processN(raw, at, 1)
}

// ProcessBatch folds `count` identical arrivals of raw at time `at`. Trace
// replays use this to avoid re-parsing hot queries millions of times. The
// returned pointer has the same ownership caveat as Process.
func (p *Preprocessor) ProcessBatch(raw string, at time.Time, count int64) (*Template, error) {
	if count <= 0 {
		return nil, fmt.Errorf("preprocess: non-positive batch count %d", count)
	}
	return p.processN(raw, at, count)
}

func (p *Preprocessor) processN(raw string, at time.Time, count int64) (*Template, error) {
	if p.fp != nil {
		if t := p.foldFingerprint(raw, at, count); t != nil {
			return t, nil
		}
	}
	res, err := Templatize(raw)
	if err != nil {
		p.parseErrors.Add(1)
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	key := res.Features.SemanticKey()
	vals := renderParams(res.Params)
	ix := p.shardIndex(key)
	sh := &p.shards[ix]
	sh.mu.Lock()
	t := sh.fold(p, res, key, vals, at, count)
	sh.mu.Unlock()
	if p.fp != nil {
		p.fp.insert(raw, t.ID, ix, vals, int64(res.BatchSize), res.Stmt.Type())
	}
	return t, nil
}

// foldFingerprint is the observe fast path: resolve raw through the
// fingerprint cache and fold straight into the owning stripe, skipping
// lex/parse/normalize entirely. It allocates nothing in steady state. A nil
// return means the caller must take the full templatize path: either no
// entry exists, or the cached template was evicted underneath the entry —
// the stripe's byID index is re-checked under its lock, so a stale entry can
// never resurrect a dead template ID.
//
// qb5000:noalloc
func (p *Preprocessor) foldFingerprint(raw string, at time.Time, count int64) *Template {
	e := p.fp.lookup(raw)
	if e == nil {
		p.fp.misses.Add(1)
		return nil
	}
	sh := &p.shards[e.stripe]
	sh.mu.Lock()
	t, ok := sh.byID[e.id]
	if !ok {
		sh.mu.Unlock()
		// Maintain evicted the template after the entry was cached; drop
		// the stale mapping and re-templatize fresh. Identical raw bytes
		// always map to the same semantic key, so the re-fold lands on this
		// same stripe and mints a brand-new ID.
		//lint:ignore noalloc stale-entry cleanup runs once per eviction race, not in the steady-state hit path
		p.fp.invalidate(raw, e)
		p.fp.misses.Add(1)
		return nil
	}
	sh.foldExisting(t, e.vals, e.batch, e.stmt, at, count)
	sh.mu.Unlock()
	p.fp.hits.Add(1)
	return t
}

// Observation is one query arrival for the batch ingest path.
type Observation struct {
	// SQL is the raw query text.
	SQL string
	// At is the arrival time.
	At time.Time
	// Count is the number of identical arrivals; 0 is treated as 1,
	// negative counts are rejected.
	Count int64
}

// ProcessMany templatizes and folds a batch of observations. Parsing runs
// lock-free up front; the parsed arrivals are then grouped by stripe so each
// stripe's mutex is taken exactly once per call. Within a stripe,
// observations fold in input order, so for a fixed input order ProcessMany
// produces the same catalog — same templates, same IDs, same histories — as
// the equivalent sequence of ProcessBatch calls. The returned counts are
// query-weighted: ingested sums the arrival counts folded in, rejected sums
// the counts of dropped observations (parse failures — which also increment
// Stats.ParseErrors — and negative counts, which weigh 1).
func (p *Preprocessor) ProcessMany(obs []Observation) (ingested, rejected int64) {
	type parsedObs struct {
		res   *TemplatizeResult
		key   string
		vals  []string
		ent   *fpEntry // fingerprint-cache hit; res/key/vals unset
		obsIx int
	}
	// cacheInsert defers fingerprint-cache updates for this call's parses
	// until the stripe locks are released.
	type cacheInsert struct {
		raw   string
		id    int64
		vals  []string
		batch int64
		stmt  sqlparse.StatementType
	}
	buckets := make([][]parsedObs, len(p.shards))
	for i := range obs {
		o := &obs[i]
		if o.Count < 0 {
			rejected++
			continue
		}
		if p.fp != nil {
			if e := p.fp.lookup(o.SQL); e != nil {
				// Defer the liveness check to the fold loop: stripe order
				// and per-stripe input order must match the cache-off path
				// exactly, so a hit folds in sequence with the misses.
				buckets[e.stripe] = append(buckets[e.stripe], parsedObs{ent: e, obsIx: i})
				continue
			}
			p.fp.misses.Add(1)
		}
		res, err := Templatize(o.SQL)
		if err != nil {
			p.parseErrors.Add(1)
			if o.Count > 0 {
				rejected += o.Count
			} else {
				rejected++
			}
			continue
		}
		key := res.Features.SemanticKey()
		ix := p.shardIndex(key)
		buckets[ix] = append(buckets[ix], parsedObs{res: res, key: key, vals: renderParams(res.Params), obsIx: i})
	}
	var inserts []cacheInsert
	var stale []*fpEntry
	for ix, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		sh := &p.shards[ix]
		sh.mu.Lock()
		for _, po := range bucket {
			o := &obs[po.obsIx]
			count := o.Count
			if count == 0 {
				count = 1
			}
			if po.ent != nil {
				if t, ok := sh.byID[po.ent.id]; ok {
					sh.foldExisting(t, po.ent.vals, po.ent.batch, po.ent.stmt, o.At, count)
					ingested += count
					p.fp.hits.Add(1)
					continue
				}
				// The template was evicted after the entry was cached.
				// Re-templatize under the stripe lock (identical raw bytes
				// map to the same key, hence this same stripe) — rare
				// enough that holding the lock across one parse is cheaper
				// than re-bucketing the whole batch.
				stale = append(stale, po.ent)
				p.fp.misses.Add(1)
				res, err := Templatize(o.SQL)
				if err != nil {
					// Unreachable for text that parsed when it was cached,
					// but degrade exactly like the scan-phase reject path.
					p.parseErrors.Add(1)
					rejected += count
					continue
				}
				po.res = res
				po.key = res.Features.SemanticKey()
				po.vals = renderParams(res.Params)
			}
			t := sh.fold(p, po.res, po.key, po.vals, o.At, count)
			ingested += count
			if p.fp != nil {
				inserts = append(inserts, cacheInsert{
					raw:   o.SQL,
					id:    t.ID,
					vals:  po.vals,
					batch: int64(po.res.BatchSize),
					stmt:  po.res.Stmt.Type(),
				})
			}
		}
		sh.mu.Unlock()
		for _, e := range stale {
			p.fp.invalidate(e.raw, e)
		}
		stale = stale[:0]
		for _, ci := range inserts {
			p.fp.insert(ci.raw, ci.id, ix, ci.vals, ci.batch, ci.stmt)
		}
		inserts = inserts[:0]
	}
	return ingested, rejected
}

// fold records count arrivals of a parsed query into the stripe, creating
// the template on first sight. vals are the query's parameter literals
// pre-rendered by renderParams (callers also hand them to the fingerprint
// cache, so they are rendered exactly once per parse).
//
// qb5000:locked mu
func (s *catalogShard) fold(p *Preprocessor, res *TemplatizeResult, key string, vals []string, at time.Time, count int64) *Template {
	t, ok := s.templates[key]
	if !ok {
		s.nextSeq++
		id := s.nextSeq<<p.shardBits | s.idx
		t = &Template{
			ID:       id,
			SQL:      res.SQL,
			Key:      key,
			Features: res.Features,
			History:  newHistory(at),
			// Seed from the key hash, not the ID: IDs carry stripe bits,
			// and reservoir sampling must not vary with the stripe layout.
			Params: NewReservoir(p.opts.ReservoirSize, p.opts.Seed+int64(keyHash(key))),
		}
		s.templates[key] = t
		s.byID[id] = t
		s.newSinceMark++
	}
	s.foldExisting(t, vals, int64(res.BatchSize), res.Stmt.Type(), at, count)
	return t
}

// foldExisting folds count arrivals into an already-live template. It is the
// single shared tail of both observe paths — the cache hit replays the vals,
// batch size, and statement type captured at its entry's one real parse — so
// hit and miss mutate the catalog bit-for-bit identically and enabling the
// cache can never change template IDs, reservoir streams, or snapshots.
//
// qb5000:locked mu
// qb5000:noalloc
func (s *catalogShard) foldExisting(t *Template, vals []string, batch int64, stmt sqlparse.StatementType, at time.Time, count int64) {
	t.recordVals(at, vals)
	if count > 1 {
		t.Count += count - 1
		//lint:ignore noalloc the fine tier appends one bin per new minute, amortized to zero per arrival
		t.History.Record(at, float64(count-1))
	}
	t.Tuples += count * batch
	s.totalQueries += count
	//lint:ignore noalloc byType's key space is the fixed statement-type enum; buckets stop growing after warmup
	s.byType[stmt] += count
}

// Templates returns a snapshot of the catalog sorted by template ID. The
// returned templates are deep copies: safe to read without synchronization
// and immune to concurrent ingest. Each stripe is copied atomically; under
// concurrent ingest, arrivals landing while the snapshot is being taken may
// appear in later-copied stripes but never tear an individual template.
func (p *Preprocessor) Templates() []*Template {
	out := make([]*Template, 0, p.Len())
	for i := range p.shards {
		out = p.shards[i].appendClones(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *catalogShard) appendClones(out []*Template) []*Template {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore maporder every caller sorts the merged cross-stripe slice by ID
	for _, t := range s.templates {
		out = append(out, t.Clone())
	}
	return out
}

// Template returns a copy of the template with the given ID, if present.
func (p *Preprocessor) Template(id int64) (*Template, bool) {
	// Fast path: live IDs encode their stripe in the low bits.
	home := int(uint64(id) & p.shardMask)
	if t, ok := p.shards[home].lookup(id); ok {
		return t, true
	}
	// Restored snapshots carry canonical IDs whose low bits need not match
	// the key-hash stripe; fall back to scanning the other stripes.
	for i := range p.shards {
		if i == home {
			continue
		}
		if t, ok := p.shards[i].lookup(id); ok {
			return t, true
		}
	}
	return nil, false
}

func (s *catalogShard) lookup(id int64) (*Template, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return t.Clone(), true
}

// CloneByID returns copies of the templates with the given IDs, keyed by ID.
// IDs not in the catalog are simply absent from the result. The forecaster
// uses this to resolve a tracked cluster's members against the latest
// histories in one pass instead of one catalog lookup per member.
func (p *Preprocessor) CloneByID(ids []int64) map[int64]*Template {
	want := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	out := make(map[int64]*Template, len(ids))
	for i := range p.shards {
		p.shards[i].cloneInto(want, out)
	}
	return out
}

func (s *catalogShard) cloneInto(want map[int64]struct{}, out map[int64]*Template) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range want {
		if t, ok := s.byID[id]; ok {
			out[id] = t.Clone()
		}
	}
}

// Len returns the number of live templates.
func (p *Preprocessor) Len() int {
	n := 0
	for i := range p.shards {
		n += p.shards[i].size()
	}
	return n
}

func (s *catalogShard) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.templates)
}

// Stats returns the accumulated workload counters merged across stripes.
func (p *Preprocessor) Stats() Stats {
	s := Stats{ByType: make(map[sqlparse.StatementType]int64)}
	for i := range p.shards {
		p.shards[i].statsInto(&s)
	}
	s.ParseErrors = p.parseErrors.Load()
	if p.fp != nil {
		s.CacheHits = p.fp.hits.Load()
		s.CacheMisses = p.fp.misses.Load()
		s.CacheEvictions = p.fp.evictions.Load()
	}
	return s
}

func (s *catalogShard) statsInto(out *Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out.TotalQueries += s.totalQueries
	out.NumTemplates += len(s.templates)
	for k, v := range s.byType {
		out.ByType[k] += v
	}
}

// NewTemplateRatio returns the fraction of the catalog created since the
// last call to MarkNewTemplates. The clusterer triggers an early re-cluster
// when this exceeds its threshold (§5.2).
func (p *Preprocessor) NewTemplateRatio() float64 {
	var fresh, total int
	for i := range p.shards {
		f, t := p.shards[i].newCounts()
		fresh += f
		total += t
	}
	if total == 0 {
		return 0
	}
	return float64(fresh) / float64(total)
}

func (s *catalogShard) newCounts() (fresh, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.newSinceMark, len(s.templates)
}

// MarkNewTemplates resets the new-template counter.
func (p *Preprocessor) MarkNewTemplates() {
	for i := range p.shards {
		p.shards[i].markNew()
	}
}

func (s *catalogShard) markNew() {
	s.mu.Lock()
	s.newSinceMark = 0
	s.mu.Unlock()
}

// Maintain performs the periodic background work at time `now`: compacting
// stale fine-grained history into coarse bins and evicting templates that
// have been idle past the eviction window. It returns the evicted templates
// (sorted by ID); once evicted, the returned objects are no longer reachable
// from the catalog and belong to the caller.
func (p *Preprocessor) Maintain(now time.Time) []*Template {
	var evicted []*Template
	for i := range p.shards {
		evicted = p.shards[i].maintain(p.opts.EvictAfter, now, evicted)
	}
	// Keep the fingerprint cache coherent: drop every entry pointing at an
	// evicted template. The hit path re-checks byID under the stripe lock as
	// well, so a mapping that slips back in between a stripe's eviction and
	// this sweep (or is inserted concurrently) still can only miss — the
	// sweep bounds stale-entry lifetime, the byID check guarantees a dead ID
	// is never resurrected.
	if p.fp != nil && len(evicted) > 0 {
		dead := make(map[int64]struct{}, len(evicted))
		for _, t := range evicted {
			dead[t.ID] = struct{}{}
		}
		p.fp.invalidateIDs(dead)
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].ID < evicted[j].ID })
	return evicted
}

func (s *catalogShard) maintain(evictAfter time.Duration, now time.Time, evicted []*Template) []*Template {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore maporder Maintain sorts the merged eviction slice by ID; compaction itself is order-independent
	for key, t := range s.templates {
		t.History.Compact(now)
		if evictAfter > 0 && now.Sub(t.LastSeen) > evictAfter {
			delete(s.templates, key)
			delete(s.byID, t.ID)
			evicted = append(evicted, t)
		}
	}
	return evicted
}

// HistoryBytes reports the total storage footprint of all template
// histories, for the Table 4 overhead accounting.
func (p *Preprocessor) HistoryBytes() int {
	var n int
	for i := range p.shards {
		n += p.shards[i].historyBytes()
	}
	return n
}

func (s *catalogShard) historyBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, t := range s.templates {
		n += t.History.Bytes()
	}
	return n
}
