package preprocess

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	p := New(Options{Seed: 3, EvictAfter: 10 * 24 * time.Hour})
	queries := []string{
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2", // folds with the first
		"INSERT INTO t (a) VALUES (5), (6)",
		"UPDATE t SET a = 7 WHERE id = 3",
	}
	for i, q := range queries {
		if _, err := p.Process(q, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	p.ProcessBatch("SELECT a FROM t WHERE x = 9", base.Add(time.Hour), 50)

	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Len() != p.Len() {
		t.Fatalf("template count %d, want %d", restored.Len(), p.Len())
	}
	a, b := p.Stats(), restored.Stats()
	if a.TotalQueries != b.TotalQueries || len(a.ByType) != len(b.ByType) {
		t.Fatalf("stats mismatch: %+v vs %+v", a, b)
	}
	// Snapshot IDs are canonical (1..N in semantic-key order), so restored
	// templates are matched by semantic key rather than by original ID.
	bySQL := make(map[string]*Template)
	for _, rt := range restored.Templates() {
		bySQL[rt.Key] = rt
	}
	for _, orig := range p.Templates() {
		got, ok := bySQL[orig.Key]
		if !ok {
			t.Fatalf("template %d (%s) missing after restore", orig.ID, orig.Key)
		}
		if got.SQL != orig.SQL || got.Count != orig.Count || got.Tuples != orig.Tuples {
			t.Fatalf("template %d mismatch:\n%+v\n%+v", orig.ID, got, orig)
		}
		if !got.FirstSeen.Equal(orig.FirstSeen) || !got.LastSeen.Equal(orig.LastSeen) {
			t.Fatalf("template %d timestamps drifted", orig.ID)
		}
		// History contents survive.
		if got.History.Fine().Total() != orig.History.Fine().Total() {
			t.Fatalf("template %d history lost", orig.ID)
		}
		// Reservoir samples survive.
		if got.Params.Len() != orig.Params.Len() || got.Params.Seen() != orig.Params.Seen() {
			t.Fatalf("template %d reservoir lost", orig.ID)
		}
		// Features were re-derived.
		if got.Features.SemanticKey() != orig.Features.SemanticKey() {
			t.Fatalf("template %d features drifted", orig.ID)
		}
	}

	// The restored catalog keeps working: the same query folds into its
	// existing template and new templates get fresh IDs.
	restoredIDs := make(map[int64]bool)
	for _, rt := range restored.Templates() {
		restoredIDs[rt.ID] = true
	}
	tm, err := restored.Process("SELECT a FROM t WHERE x = 77", base.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if want := bySQL["SELECT|T:t|P:x = ?|R:a"]; tm.ID != want.ID {
		t.Fatalf("restored catalog did not fold: got template %d, want %d", tm.ID, want.ID)
	}
	fresh, err := restored.Process("SELECT brand FROM new_table WHERE z = 1", base.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if restoredIDs[fresh.ID] {
		t.Fatalf("restored catalog reused ID %d", fresh.ID)
	}
}

func TestRestoreSnapshotErrors(t *testing.T) {
	if _, err := RestoreSnapshot(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := RestoreSnapshot(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestSnapshotAfterCompaction(t *testing.T) {
	p := New(Options{Seed: 1})
	p.Process("SELECT a FROM t WHERE x = 1", base)
	p.Process("SELECT a FROM t WHERE x = 2", base.Add(50*24*time.Hour))
	p.Maintain(base.Add(50 * 24 * time.Hour)) // compacts old bins to coarse
	var buf bytes.Buffer
	if err := p.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := restored.Template(1)
	if tm.History.Coarse().Total() != 1 {
		t.Fatalf("coarse tier lost: %v", tm.History.Coarse().Total())
	}
	if tm.History.FullHourly().Total() != 2 {
		t.Fatalf("full history = %v, want 2", tm.History.FullHourly().Total())
	}
}
