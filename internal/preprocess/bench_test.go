package preprocess

import (
	"testing"
	"time"
)

// BenchmarkTemplatize measures the lock-free share of an observe: parsing
// and templatizing one query. Everything here runs outside any stripe lock.
func BenchmarkTemplatize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Templatize("SELECT a, b FROM t1 WHERE x = 1 AND y = 2"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessBatchSteadyState measures a full steady-state observe —
// parse plus the striped fold — for comparison against BenchmarkTemplatize:
// the difference is the per-op critical section held under a stripe lock.
func BenchmarkProcessBatchSteadyState(b *testing.B) {
	p := New(Options{Seed: 1})
	if _, err := p.Process("SELECT a, b FROM t1 WHERE x = 1 AND y = 2", base); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := base.Add(time.Duration(i%3600) * time.Second)
		if _, err := p.ProcessBatch("SELECT a, b FROM t1 WHERE x = 1 AND y = 2", ts, 1); err != nil {
			b.Fatal(err)
		}
	}
}
