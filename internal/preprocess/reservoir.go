// Package preprocess implements QB5000's Pre-Processor (paper §4): it
// converts raw SQL strings into generic templates by stripping constants,
// normalizes their formatting, folds semantically equivalent templates
// together, keeps a reservoir sample of each template's original parameters,
// and records per-template arrival-rate history at one-minute intervals.
package preprocess

import "math/rand"

// Reservoir keeps a fixed-size uniform random sample from a stream of
// unknown length using Vitter's algorithm R. QB5000 maintains one per
// template so the planning module can re-instantiate representative queries
// when costing optimizations (§4).
type Reservoir struct {
	capacity int
	seen     int64
	items    [][]string
	rng      *rand.Rand
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{capacity: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Observe offers one parameter vector to the reservoir.
func (r *Reservoir) Observe(params []string) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, append([]string(nil), params...))
		return
	}
	// Replace a random element with probability capacity/seen.
	j := r.rng.Int63n(r.seen)
	if j < int64(r.capacity) {
		r.items[j] = append([]string(nil), params...)
	}
}

// Clone copies the reservoir's current sample set. The parameter vectors
// themselves are never mutated in place (Observe replaces whole elements),
// so they are shared. The RNG source is opaque and cannot be duplicated;
// clones are read-side copies, so the clone re-seeds deterministically from
// the stream position in case a caller keeps sampling into it.
func (r *Reservoir) Clone() *Reservoir {
	return &Reservoir{
		capacity: r.capacity,
		seen:     r.seen,
		items:    append([][]string(nil), r.items...),
		rng:      rand.New(rand.NewSource(r.seen)),
	}
}

// Seen returns how many parameter vectors have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns the current sample set. The returned slices are the stored
// copies; callers must not mutate them.
func (r *Reservoir) Sample() [][]string { return r.items }

// Len returns the number of stored samples.
func (r *Reservoir) Len() int { return len(r.items) }
