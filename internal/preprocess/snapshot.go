package preprocess

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"qb5000/internal/sqlparse"
	"qb5000/internal/timeseries"
)

// Catalog snapshots persist the Pre-Processor's state — the paper's QB5000
// stores templates and arrival histories in an internal database so the
// framework survives restarts (§3). Derived state (clusters, models) is
// rebuilt by the next maintenance pass after a restore.
//
// Snapshots are canonical and layout-independent: templates are serialized
// in sorted semantic-key order with IDs remapped to 1..N in that order, the
// stripe count is not persisted, and the per-type counters are stored as a
// sorted slice (gob encodes maps in random iteration order). Two catalogs
// that folded the same queries in the same order therefore produce
// byte-identical snapshots regardless of how many shards either used.

// snapshotVersion guards the gob wire format. Version 2 introduced the
// canonical form (remapped IDs, flattened deterministic stats) alongside the
// sharded catalog.
const snapshotVersion = 2

type snapshotDTO struct {
	Version   int
	Opts      Options
	Stats     statsDTO
	Templates []templateDTO
}

// statsDTO flattens Stats for serialization with a deterministic encoding.
type statsDTO struct {
	TotalQueries int64
	ParseErrors  int64
	ByType       []typeCountDTO
}

type typeCountDTO struct {
	Type  sqlparse.StatementType
	Count int64
}

type templateDTO struct {
	ID                  int64
	SQL                 string
	Key                 string
	History             []byte // timeseries.History binary form
	ReservoirItems      [][]string
	ReservoirSeen       int64
	FirstSeen, LastSeen time.Time
	Count, Tuples       int64
}

// Snapshot serializes the catalog in canonical form. The reservoir's RNG
// position is not preserved exactly; after a restore, sampling continues
// with a seed derived from the observed count, which keeps samples uniform
// but not bit-identical to an uninterrupted run. Each stripe is captured
// atomically; for a snapshot that reflects one exact instant, quiesce ingest
// first.
func (p *Preprocessor) Snapshot(w io.Writer) error {
	var ts []*Template
	stats := Stats{ByType: make(map[sqlparse.StatementType]int64)}
	for i := range p.shards {
		ts = p.shards[i].exportInto(ts, &stats)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key < ts[j].Key })

	opts := p.opts
	opts.Shards = 0 // snapshots are catalog-layout-independent
	// The fingerprint cache is pure derived state (a hit mutates the catalog
	// exactly as its miss would have), so it is deliberately excluded: a
	// cache-enabled catalog snapshots byte-identically to a disabled one,
	// and restores decide their own cache size.
	opts.FingerprintCacheSize = 0
	dto := snapshotDTO{
		Version: snapshotVersion,
		Opts:    opts,
		Stats: statsDTO{
			TotalQueries: stats.TotalQueries,
			ParseErrors:  p.parseErrors.Load(),
		},
	}
	types := make([]sqlparse.StatementType, 0, len(stats.ByType))
	for k := range stats.ByType {
		types = append(types, k)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, k := range types {
		dto.Stats.ByType = append(dto.Stats.ByType, typeCountDTO{Type: k, Count: stats.ByType[k]})
	}

	for i, t := range ts {
		hb, err := t.History.MarshalBinary()
		if err != nil {
			return fmt.Errorf("preprocess: snapshot template %d: %w", t.ID, err)
		}
		dto.Templates = append(dto.Templates, templateDTO{
			ID:             int64(i + 1), // canonical ID: position in key order
			SQL:            t.SQL,
			Key:            t.Key,
			History:        hb,
			ReservoirItems: t.Params.Sample(),
			ReservoirSeen:  t.Params.Seen(),
			FirstSeen:      t.FirstSeen,
			LastSeen:       t.LastSeen,
			Count:          t.Count,
			Tuples:         t.Tuples,
		})
	}
	return gob.NewEncoder(w).Encode(dto)
}

// exportInto appends clones of the stripe's templates and folds its counters
// into stats, all under one lock acquisition so each stripe's templates and
// counters agree with each other.
func (s *catalogShard) exportInto(out []*Template, stats *Stats) []*Template {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore maporder Snapshot sorts the merged slice by semantic key before encoding
	for _, t := range s.templates {
		out = append(out, t.Clone())
	}
	stats.TotalQueries += s.totalQueries
	for k, v := range s.byType {
		stats.ByType[k] += v
	}
	return out
}

// RestoreSnapshot reconstructs a Preprocessor from a snapshot stream with
// the default stripe count.
func RestoreSnapshot(r io.Reader) (*Preprocessor, error) {
	return RestoreSnapshotShards(r, 0)
}

// RestoreSnapshotShards is RestoreSnapshot with an explicit stripe count
// (0 selects the default). Restored templates keep their canonical snapshot
// IDs; every stripe's ID sequence starts above the restored maximum, so
// templates created after the restore can never collide with a restored ID.
func RestoreSnapshotShards(r io.Reader, shards int) (*Preprocessor, error) {
	return RestoreSnapshotCache(r, shards, 0)
}

// RestoreSnapshotCache is RestoreSnapshotShards with the fingerprint cache
// enabled at the given entry bound (0 = disabled). Snapshots never carry the
// cache — it is derived state — so the restoring configuration decides it.
func RestoreSnapshotCache(r io.Reader, shards, fpCacheSize int) (*Preprocessor, error) {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("preprocess: restore: %w", err)
	}
	if dto.Version != snapshotVersion {
		return nil, fmt.Errorf("preprocess: unsupported snapshot version %d", dto.Version)
	}
	opts := dto.Opts
	opts.Shards = shards
	opts.FingerprintCacheSize = fpCacheSize
	p := New(opts)
	var maxID int64
	for _, td := range dto.Templates {
		h := &timeseries.History{}
		if err := h.UnmarshalBinary(td.History); err != nil {
			return nil, fmt.Errorf("preprocess: restore template %d: %w", td.ID, err)
		}
		// Re-seed from the key hash plus progress, matching fold's
		// shard-layout-independent scheme so the sampling stream after a
		// restore does not depend on snapshot ID remapping.
		res := RestoreReservoir(p.opts.ReservoirSize, p.opts.Seed+int64(keyHash(td.Key))+td.ReservoirSeen, td.ReservoirItems, td.ReservoirSeen)
		t := &Template{
			ID:        td.ID,
			SQL:       td.SQL,
			Key:       td.Key,
			History:   h,
			Params:    res,
			FirstSeen: td.FirstSeen,
			LastSeen:  td.LastSeen,
			Count:     td.Count,
			Tuples:    td.Tuples,
		}
		// Re-derive the logical features from the canonical template SQL.
		if parsed, err := Templatize(td.SQL); err == nil {
			t.Features = parsed.Features
		}
		sh := p.shardFor(t.Key)
		sh.mu.Lock()
		sh.templates[t.Key] = t
		sh.byID[t.ID] = t
		sh.mu.Unlock()
		if td.ID > maxID {
			maxID = td.ID
		}
	}
	// Counters are merged on read, so the restored totals live in stripe 0.
	s0 := &p.shards[0]
	s0.mu.Lock()
	s0.totalQueries = dto.Stats.TotalQueries
	for _, tc := range dto.Stats.ByType {
		s0.byType[tc.Type] = tc.Count
	}
	s0.mu.Unlock()
	p.parseErrors.Store(dto.Stats.ParseErrors)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		sh.nextSeq = maxID
		sh.mu.Unlock()
	}
	return p, nil
}

// RestoreReservoir rebuilds a reservoir from persisted samples.
func RestoreReservoir(capacity int, seed int64, items [][]string, seen int64) *Reservoir {
	r := NewReservoir(capacity, seed)
	r.items = make([][]string, 0, len(items))
	for _, it := range items {
		r.items = append(r.items, append([]string(nil), it...))
	}
	r.seen = seen
	return r
}
