package preprocess

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"time"

	"qb5000/internal/sqlparse"
	"qb5000/internal/timeseries"
)

// Catalog snapshots persist the Pre-Processor's state — the paper's QB5000
// stores templates and arrival histories in an internal database so the
// framework survives restarts (§3). Derived state (clusters, models) is
// rebuilt by the next maintenance pass after a restore.

// snapshotVersion guards the gob wire format.
const snapshotVersion = 1

type snapshotDTO struct {
	Version   int
	Opts      Options
	NextID    int64
	Stats     Stats
	Templates []templateDTO
}

type templateDTO struct {
	ID                  int64
	SQL                 string
	Key                 string
	History             []byte // timeseries.History binary form
	ReservoirItems      [][]string
	ReservoirSeen       int64
	FirstSeen, LastSeen time.Time
	Count, Tuples       int64
}

// Snapshot serializes the catalog. The reservoir's RNG position is not
// preserved exactly; after a restore, sampling continues with a seed derived
// from the observed count, which keeps samples uniform but not bit-identical
// to an uninterrupted run.
func (p *Preprocessor) Snapshot(w io.Writer) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	dto := snapshotDTO{Version: snapshotVersion, Opts: p.opts, NextID: p.nextID, Stats: p.stats}
	// Serialize templates in sorted-key order so two snapshots of the same
	// catalog are byte-identical.
	keys := make([]string, 0, len(p.templates))
	for k := range p.templates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := p.templates[k]
		hb, err := t.History.MarshalBinary()
		if err != nil {
			return fmt.Errorf("preprocess: snapshot template %d: %w", t.ID, err)
		}
		dto.Templates = append(dto.Templates, templateDTO{
			ID:             t.ID,
			SQL:            t.SQL,
			Key:            t.Key,
			History:        hb,
			ReservoirItems: t.Params.Sample(),
			ReservoirSeen:  t.Params.Seen(),
			FirstSeen:      t.FirstSeen,
			LastSeen:       t.LastSeen,
			Count:          t.Count,
			Tuples:         t.Tuples,
		})
	}
	return gob.NewEncoder(w).Encode(dto)
}

// RestoreSnapshot reconstructs a Preprocessor from a snapshot stream.
func RestoreSnapshot(r io.Reader) (*Preprocessor, error) {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("preprocess: restore: %w", err)
	}
	if dto.Version != snapshotVersion {
		return nil, fmt.Errorf("preprocess: unsupported snapshot version %d", dto.Version)
	}
	p := New(dto.Opts)
	p.nextID = dto.NextID
	p.stats = dto.Stats
	if p.stats.ByType == nil {
		p.stats.ByType = make(map[sqlparse.StatementType]int64)
	}
	for _, td := range dto.Templates {
		h := &timeseries.History{}
		if err := h.UnmarshalBinary(td.History); err != nil {
			return nil, fmt.Errorf("preprocess: restore template %d: %w", td.ID, err)
		}
		res := RestoreReservoir(p.opts.ReservoirSize, p.opts.Seed+td.ID+td.ReservoirSeen, td.ReservoirItems, td.ReservoirSeen)
		t := &Template{
			ID:        td.ID,
			SQL:       td.SQL,
			Key:       td.Key,
			History:   h,
			Params:    res,
			FirstSeen: td.FirstSeen,
			LastSeen:  td.LastSeen,
			Count:     td.Count,
			Tuples:    td.Tuples,
		}
		// Re-derive the logical features from the canonical template SQL.
		if parsed, err := Templatize(td.SQL); err == nil {
			t.Features = parsed.Features
		}
		p.templates[t.Key] = t
		p.byID[t.ID] = t
	}
	return p, nil
}

// RestoreReservoir rebuilds a reservoir from persisted samples.
func RestoreReservoir(capacity int, seed int64, items [][]string, seen int64) *Reservoir {
	r := NewReservoir(capacity, seed)
	r.items = make([][]string, 0, len(items))
	for _, it := range items {
		r.items = append(r.items, append([]string(nil), it...))
	}
	r.seen = seen
	return r
}
