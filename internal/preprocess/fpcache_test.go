package preprocess

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func fpAt(sec int) time.Time {
	return time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

// TestFPCacheHitMissCounters checks the basic accounting: first sight of a
// raw string is a miss, repeats are hits, and disabling the cache reports
// zeros.
func TestFPCacheHitMissCounters(t *testing.T) {
	p := New(Options{Seed: 1, Shards: 1, FingerprintCacheSize: 16})
	const q = "SELECT a FROM t WHERE x = 1"
	for i := 0; i < 5; i++ {
		if _, err := p.Process(q, fpAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 4 {
		t.Fatalf("hits/misses = %d/%d, want 4/1", st.CacheHits, st.CacheMisses)
	}

	off := New(Options{Seed: 1, Shards: 1})
	if _, err := off.Process(q, fpAt(0)); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEvictions != 0 {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}
}

// TestFPCacheHitEqualsMissState ingests the same sequence into a cached and
// an uncached catalog and requires identical template state — the core
// contract that lets the cache skip parsing without changing results.
func TestFPCacheHitEqualsMissState(t *testing.T) {
	queries := []string{
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"INSERT INTO pts (x, y) VALUES (1, 2), (3, 4)",
		"SELECT a FROM t WHERE x = 1",
		"UPDATE t SET a = 'x''y' WHERE id = 7",
		"SELECT a FROM t WHERE x = 1",
		"INSERT INTO pts (x, y) VALUES (5, 6), (7, 8)",
	}
	plain := New(Options{Seed: 1, Shards: 1})
	cached := New(Options{Seed: 1, Shards: 1, FingerprintCacheSize: 16})
	for i, q := range queries {
		if _, err := plain.ProcessBatch(q, fpAt(i), 3); err != nil {
			t.Fatal(err)
		}
		if _, err := cached.ProcessBatch(q, fpAt(i), 3); err != nil {
			t.Fatal(err)
		}
	}
	if hits := cached.Stats().CacheHits; hits == 0 {
		t.Fatal("expected cache hits")
	}
	pt, ct := plain.Templates(), cached.Templates()
	if len(pt) != len(ct) {
		t.Fatalf("template counts differ: %d vs %d", len(pt), len(ct))
	}
	for i := range pt {
		a, b := pt[i], ct[i]
		if a.ID != b.ID || a.Key != b.Key || a.Count != b.Count || a.Tuples != b.Tuples {
			t.Errorf("template %d differs: plain{id=%d count=%d tuples=%d} cached{id=%d count=%d tuples=%d}",
				i, a.ID, a.Count, a.Tuples, b.ID, b.Count, b.Tuples)
		}
		av, bv := a.Params.Sample(), b.Params.Sample()
		if fmt.Sprint(av) != fmt.Sprint(bv) {
			t.Errorf("template %d reservoir differs:\n plain: %v\ncached: %v", i, av, bv)
		}
	}
}

// TestFPCacheEvictedTemplateReTemplatizes is the coherence test: after
// Maintain evicts a template, the next observe of its raw text must mint a
// fresh template with a NEW ID — never fold into (resurrect) the dead one.
func TestFPCacheEvictedTemplateReTemplatizes(t *testing.T) {
	p := New(Options{Seed: 1, Shards: 1, EvictAfter: time.Minute, FingerprintCacheSize: 16})
	const q = "SELECT a FROM t WHERE x = 1"
	t1, err := p.Process(q, fpAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(q, fpAt(1)); err != nil { // warm the cache entry
		t.Fatal(err)
	}
	oldID := t1.ID

	evicted := p.Maintain(fpAt(0).Add(time.Hour))
	if len(evicted) != 1 || evicted[0].ID != oldID {
		t.Fatalf("Maintain evicted %v, want template %d", evicted, oldID)
	}
	if got := p.fp.len(); got != 0 {
		t.Fatalf("cache holds %d entries after Maintain sweep, want 0", got)
	}

	t2, err := p.Process(q, fpAt(0).Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if t2.ID == oldID {
		t.Fatalf("evicted template ID %d was resurrected", oldID)
	}
	if t2.Count != 1 {
		t.Fatalf("fresh template carries count %d, want 1", t2.Count)
	}
	if _, ok := p.Template(oldID); ok {
		t.Fatalf("dead ID %d still resolvable", oldID)
	}
}

// TestFPCacheStaleEntryLazyCheck exercises the belt-and-braces byID re-check
// directly: an entry pointing at an ID that is not live (as if Maintain's
// sweep had raced with an insert) must fall back to the full templatize path
// and refresh itself, on both the single and the batched observe paths.
func TestFPCacheStaleEntryLazyCheck(t *testing.T) {
	for _, many := range []bool{false, true} {
		p := New(Options{Seed: 1, Shards: 1, FingerprintCacheSize: 16})
		const q = "SELECT a FROM t WHERE x = 1"
		// Plant a stale mapping: the ID was never minted, so byID can't have it.
		p.fp.insert(q, 1<<40, 0, nil, 1, 0)

		var err error
		if many {
			_, rej := p.ProcessMany([]Observation{{SQL: q, At: fpAt(0), Count: 1}})
			if rej != 0 {
				t.Fatalf("ProcessMany rejected %d", rej)
			}
		} else {
			_, err = p.Process(q, fpAt(0))
			if err != nil {
				t.Fatal(err)
			}
		}
		st := p.Stats()
		if st.CacheHits != 0 || st.CacheMisses != 1 {
			t.Fatalf("many=%v: hits/misses = %d/%d, want 0/1 (stale entry is a logical miss)", many, st.CacheHits, st.CacheMisses)
		}
		// The entry must now point at the real template: next observe hits.
		if _, err := p.Process(q, fpAt(1)); err != nil {
			t.Fatal(err)
		}
		if st := p.Stats(); st.CacheHits != 1 {
			t.Fatalf("many=%v: entry not refreshed after stale miss: %+v", many, st)
		}
	}
}

// TestFPCacheClockEviction fills a tiny cache past capacity and checks the
// clock hand evicts cold entries, the entry count stays bounded, and the
// eviction counter advances.
func TestFPCacheClockEviction(t *testing.T) {
	p := New(Options{Seed: 1, Shards: 1, FingerprintCacheSize: 4})
	for i := 0; i < 12; i++ {
		q := fmt.Sprintf("SELECT a FROM t WHERE x = %d", i)
		if _, err := p.Process(q, fpAt(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.fp.len(); got > 4 {
		t.Fatalf("cache grew to %d entries, bound is 4", got)
	}
	st := p.Stats()
	if st.CacheEvictions < 8 {
		t.Fatalf("evictions = %d, want ≥8 after 12 inserts into 4 slots", st.CacheEvictions)
	}
	// Second-chance: re-observing a resident entry sets its ref bit; it must
	// survive the next single eviction.
	var resident string
	for i := 11; i >= 0; i-- {
		q := fmt.Sprintf("SELECT a FROM t WHERE x = %d", i)
		if e := p.fp.lookup(q); e != nil {
			resident = q
			break
		}
	}
	if resident == "" {
		t.Fatal("no resident entry found")
	}
	if _, err := p.Process(resident, fpAt(100)); err != nil { // hit: ref=1
		t.Fatal(err)
	}
	if _, err := p.Process("SELECT a FROM t WHERE x = 999", fpAt(101)); err != nil {
		t.Fatal(err)
	}
	if e := p.fp.lookup(resident); e == nil {
		t.Fatal("recently-hit entry was evicted ahead of cold ones")
	}
}

// TestFPCacheInvalidateIDs unit-tests the Maintain sweep helper: only the
// entries whose template died are dropped, and their slots are reusable.
func TestFPCacheInvalidateIDs(t *testing.T) {
	c := newFPCache(8, 1)
	c.insert("q1", 101, 0, nil, 1, 0)
	c.insert("q2", 102, 0, nil, 1, 0)
	c.insert("q3", 103, 0, nil, 1, 0)
	c.invalidateIDs(map[int64]struct{}{101: {}, 103: {}})
	if e := c.lookup("q1"); e != nil {
		t.Fatal("q1 should have been invalidated")
	}
	if e := c.lookup("q3"); e != nil {
		t.Fatal("q3 should have been invalidated")
	}
	if e := c.lookup("q2"); e == nil || e.id != 102 {
		t.Fatal("q2 should have survived")
	}
	if got := c.len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	// Freed slots are reusable without eviction.
	c.insert("q4", 104, 0, nil, 1, 0)
	c.insert("q5", 105, 0, nil, 1, 0)
	if got := c.evictions.Load(); got != 0 {
		t.Fatalf("reusing freed slots counted %d evictions", got)
	}
}

// TestFPCacheReplaceInPlace checks that re-inserting the same raw text
// replaces the mapping without consuming a second slot.
func TestFPCacheReplaceInPlace(t *testing.T) {
	c := newFPCache(2, 1)
	c.insert("q", 1, 0, nil, 1, 0)
	c.insert("q", 2, 0, nil, 1, 0)
	if e := c.lookup("q"); e == nil || e.id != 2 {
		t.Fatalf("lookup after replace = %+v, want id 2", e)
	}
	if got := c.len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
	if got := c.evictions.Load(); got != 0 {
		t.Fatalf("replace counted %d evictions", got)
	}
}

// TestFPCacheEquivalenceAcrossShards replays one workload (with repeats,
// batched inserts, eviction churn through both the cache and the catalog)
// at Shards 1/2/8 with the cache on and off, and requires every
// configuration to produce byte-identical snapshots.
func TestFPCacheEquivalenceAcrossShards(t *testing.T) {
	var queries []string
	for round := 0; round < 3; round++ {
		for i := 0; i < 40; i++ {
			queries = append(queries,
				fmt.Sprintf("SELECT a, b FROM t%d WHERE x = %d", i%10, i),
				fmt.Sprintf("INSERT INTO log%d (a, b) VALUES (%d, 'v'), (%d, 'w')", i%4, i, i+1),
			)
		}
	}
	run := func(shards, cacheSize int) []byte {
		p := New(Options{Seed: 7, Shards: shards, EvictAfter: time.Hour, FingerprintCacheSize: cacheSize})
		for i, q := range queries {
			if _, err := p.ProcessBatch(q, fpAt(i), 2); err != nil {
				t.Fatal(err)
			}
		}
		// Mid-run churn: evict everything idle past an hour, then re-feed so
		// stale fingerprints must re-templatize.
		p.Maintain(fpAt(len(queries)).Add(2 * time.Hour))
		base := len(queries) + 8000
		for i, q := range queries[:50] {
			if _, err := p.ProcessBatch(q, fpAt(base+i), 1); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := p.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(1, 0)
	for _, shards := range []int{1, 2, 8} {
		for _, cache := range []int{0, 8, 4096} {
			if got := run(shards, cache); !bytes.Equal(got, ref) {
				t.Errorf("snapshot differs at shards=%d cache=%d (%d vs %d bytes)", shards, cache, len(got), len(ref))
			}
		}
	}
}

// TestRestoreSnapshotCacheIntegration restores a snapshot with the cache
// enabled and checks the cache warms correctly against restored canonical
// IDs (whose low bits need not match their stripe index).
func TestRestoreSnapshotCacheIntegration(t *testing.T) {
	src := New(Options{Seed: 1, Shards: 4})
	const q = "SELECT a FROM t WHERE x = 1"
	if _, err := src.Process(q, fpAt(0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := RestoreSnapshotCache(&buf, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	// First observe misses (the cache starts empty), folds into the restored
	// template, and caches its canonical ID; the second hits.
	t1, err := p.Process(q, fpAt(10))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p.Process(q, fpAt(11))
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID != t2.ID {
		t.Fatalf("IDs diverged after restore: %d vs %d", t1.ID, t2.ID)
	}
	st := p.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses after restore = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if got, ok := p.Template(t1.ID); !ok || got.Count != 3 {
		t.Fatalf("restored template count = %v/%v, want 3 arrivals total", got, ok)
	}
}

// TestFPCacheConcurrentChurn hammers one small cache from many goroutines —
// repeated hits, distinct-text eviction pressure, Maintain sweeps, and
// snapshot readers — mainly as a -race exerciser for the cache's locking.
func TestFPCacheConcurrentChurn(t *testing.T) {
	p := New(Options{Seed: 1, Shards: 2, EvictAfter: time.Minute, FingerprintCacheSize: 8})
	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var q string
				if i%3 == 0 {
					q = fmt.Sprintf("SELECT a FROM hot WHERE x = %d", w%2) // shared hot text
				} else {
					q = fmt.Sprintf("SELECT a FROM cold%d WHERE x = %d", w, i)
				}
				if _, err := p.Process(q, fpAt(i)); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					p.Maintain(fpAt(i).Add(30 * time.Minute))
				}
				if i%97 == 0 {
					var buf bytes.Buffer
					if err := p.Snapshot(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("churn produced no cache traffic: %+v", st)
	}
	if got := p.fp.len(); got > 8 {
		t.Fatalf("cache exceeded its bound: %d > 8", got)
	}
}
