package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// moocStart anchors the 85-day MOOC trace (Table 1) in mid-April so the
// "new feature" launch lands in early May, as in Figure 1c.
var moocStart = time.Date(2017, time.April, 15, 0, 0, 0, 0, time.UTC)

// MOOC builds the on-line course workload (§2.1). Its signature is workload
// *evolution*: instructors launch new courses over time and the application
// ships a discussion-forum feature in early May, both of which introduce
// query shapes that did not exist before (Figure 1c). This stresses the
// clusterer's handling of previously unseen templates (§5.2).
func MOOC(seed int64) *Workload {
	// Students study evenings (due dates fall on Sundays), instructors work
	// business hours on weekdays, and forum chatter runs through lunch and
	// late night — three distinct simultaneous arrival patterns (section 2.3).
	study := func(scale float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			v := diurnal(at, 1, []peak{
				{hour: 20, height: 12, width: 2.5},
				{hour: 14, height: 5, width: 3.0},
			}, 1.15)
			if at.Weekday() == time.Sunday {
				v *= 1.6
			}
			return scale * v
		}
	}
	instructor := func(scale float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			return scale * diurnal(at, 0.1, []peak{
				{hour: 10, height: 9, width: 1.8},
				{hour: 15, height: 7, width: 2.0},
			}, 0.1)
		}
	}
	forum := func(scale float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			return scale * diurnal(at, 1.5, []peak{
				{hour: 12.5, height: 8, width: 1.5},
				{hour: 23, height: 10, width: 2.0},
				{hour: 1.5, height: 6, width: 1.5},
			}, 1.0)
		}
	}

	shapes := []*Shape{
		{
			Name: "fetch_content",
			Rate: study(3.5),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT c.id, c.title, c.body FROM content c WHERE c.course_id = %d AND c.unit = %d",
					rng.Intn(454), rng.Intn(20))
			},
		},
		{
			Name: "list_courses",
			Rate: study(0.8),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT co.id, co.title FROM courses co WHERE co.category = '%s' AND co.open = TRUE ORDER BY co.enrolled DESC LIMIT 20",
					pickString(rng, "cs", "math", "bio", "art", "econ"))
			},
		},
		{
			Name: "enroll",
			Rate: study(0.12),
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"INSERT INTO enrollments (user_id, course_id, enrolled_at) VALUES (%d, %d, %d)",
					rng.Intn(300000), rng.Intn(454), at.Unix())
			},
		},
		{
			Name: "submit_assignment",
			Rate: study(0.25),
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"INSERT INTO submissions (user_id, assignment_id, body, submitted_at) VALUES (%d, %d, 'answer-%d', %d)",
					rng.Intn(300000), rng.Intn(9000), rng.Int63n(1<<40), at.Unix())
			},
		},
		{
			Name: "grade_lookup",
			Rate: study(0.5),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT s.assignment_id, s.score FROM submissions s WHERE s.user_id = %d AND s.course_id = %d",
					rng.Intn(300000), rng.Intn(454))
			},
		},
	}

	// Monthly course launches add instructor-side shapes, each structurally
	// distinct so they templatize to new templates.
	for i, launch := range []time.Time{
		moocStart.Add(10 * 24 * time.Hour),
		moocStart.Add(40 * 24 * time.Hour),
		moocStart.Add(70 * 24 * time.Hour),
	} {
		cohort := i
		shapes = append(shapes,
			&Shape{
				Name:       fmt.Sprintf("instructor_upload_%d", cohort),
				ActiveFrom: launch,
				Rate:       instructor(0.15),
				Gen: func(rng *rand.Rand, at time.Time) string {
					return fmt.Sprintf(
						"INSERT INTO content (course_id, unit, title, body, rev%d) VALUES (%d, %d, 'unit', 'body', %d)",
						cohort, rng.Intn(454), rng.Intn(20), at.Unix())
				},
			},
			&Shape{
				Name:       fmt.Sprintf("instructor_progress_%d", cohort),
				ActiveFrom: launch,
				Rate:       instructor(0.1),
				Gen: func(rng *rand.Rand, _ time.Time) string {
					return fmt.Sprintf(
						"SELECT e.user_id, COUNT(*) FROM enrollments e JOIN submissions s ON e.user_id = s.user_id WHERE e.course_id = %d AND e.cohort = %d GROUP BY e.user_id",
						rng.Intn(454), cohort)
				},
			},
		)
	}

	// The early-May feature release: a discussion forum arrives with a
	// burst of previously-unseen query shapes (Figure 1c).
	forumLaunch := time.Date(2017, time.May, 5, 0, 0, 0, 0, time.UTC)
	forumShapes := []struct {
		name string
		rate float64
		gen  func(rng *rand.Rand, at time.Time) string
	}{
		{"forum_list_threads", 0.9, func(rng *rand.Rand, _ time.Time) string {
			return fmt.Sprintf(
				"SELECT t.id, t.title, t.replies FROM threads t WHERE t.course_id = %d ORDER BY t.updated_at DESC LIMIT 25",
				rng.Intn(454))
		}},
		{"forum_read_thread", 0.7, func(rng *rand.Rand, _ time.Time) string {
			return fmt.Sprintf(
				"SELECT p.id, p.author_id, p.body FROM posts p WHERE p.thread_id = %d ORDER BY p.created_at",
				rng.Intn(100000))
		}},
		{"forum_post", 0.3, func(rng *rand.Rand, at time.Time) string {
			return fmt.Sprintf(
				"INSERT INTO posts (thread_id, author_id, body, created_at) VALUES (%d, %d, 'text-%d', %d)",
				rng.Intn(100000), rng.Intn(300000), rng.Int63n(1<<40), at.Unix())
		}},
		{"forum_new_thread", 0.1, func(rng *rand.Rand, at time.Time) string {
			return fmt.Sprintf(
				"INSERT INTO threads (course_id, author_id, title, created_at) VALUES (%d, %d, 'topic-%d', %d)",
				rng.Intn(454), rng.Intn(300000), rng.Int63n(1<<40), at.Unix())
		}},
		{"forum_search", 0.2, func(rng *rand.Rand, _ time.Time) string {
			return fmt.Sprintf(
				"SELECT t.id, t.title FROM threads t WHERE t.course_id = %d AND t.title LIKE 'q%d'",
				rng.Intn(454), rng.Intn(1000))
		}},
		{"forum_upvote", 0.25, func(rng *rand.Rand, _ time.Time) string {
			return fmt.Sprintf("UPDATE posts SET votes = votes + 1 WHERE id = %d", rng.Intn(1000000))
		}},
		{"forum_moderate", 0.05, func(rng *rand.Rand, _ time.Time) string {
			return fmt.Sprintf("DELETE FROM posts WHERE id = %d AND flagged = TRUE", rng.Intn(1000000))
		}},
		{"forum_unread_count", 0.5, func(rng *rand.Rand, _ time.Time) string {
			return fmt.Sprintf(
				"SELECT COUNT(*) FROM posts p JOIN threads t ON p.thread_id = t.id WHERE t.course_id = %d AND p.created_at > %d",
				rng.Intn(454), rng.Intn(1<<30))
		}},
	}
	for _, fs := range forumShapes {
		fs := fs
		shapes = append(shapes, &Shape{
			Name:       fs.name,
			ActiveFrom: forumLaunch,
			Rate:       forum(fs.rate),
			Gen:        fs.gen,
		})
	}

	return &Workload{
		Name:   "mooc",
		DBMS:   "MySQL",
		Tables: 454,
		Shapes: shapes,
		Noise:  0.12,
		Drift:  newDrift(seed+3, 0.18),
		Seed:   seed,
		Start:  moocStart,
		End:    moocStart.Add(85 * 24 * time.Hour),
	}
}
