// Package workload generates the synthetic SQL traces that stand in for the
// paper's three proprietary application traces (Admissions, BusTracker,
// MOOC — §2.1) plus the noisy composite workload of Appendix D.
//
// Each workload is a set of query shapes. A shape couples a concrete-SQL
// generator (fresh parameters every invocation, so the Pre-Processor's
// templatization is genuinely exercised) with a deterministic arrival-rate
// function over time. Replaying a window samples a Poisson count per shape
// per emission step. All randomness is seeded, so traces are reproducible.
//
// The generators are tuned to reproduce the *patterns* the paper's
// evaluation depends on:
//
//   - BusTracker: 24-hour cycles with morning/evening rush peaks and a
//     weekend dip (Figure 1a), with groups of shapes sharing a pattern at
//     different volumes (Figure 3);
//   - Admissions: growth toward annual Dec 1 / Dec 15 deadlines with sharp
//     spikes, repeating across years (Figures 1b, 9);
//   - MOOC: workload evolution — new query shapes appear over time,
//     including a burst when a "new feature" launches (Figure 1c);
//   - Noisy: eight OLTP-Bench-style benchmarks run consecutively with 50 %
//     white noise and injected anomalies (Figure 17).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Shape is one query shape: a concrete-SQL generator plus an arrival-rate
// pattern.
type Shape struct {
	// Name identifies the shape for debugging and experiment output.
	Name string
	// Gen renders a concrete SQL instance with fresh parameters.
	Gen func(rng *rand.Rand, at time.Time) string
	// Rate returns the expected queries per minute at time at.
	Rate func(at time.Time) float64
	// ActiveFrom optionally delays the shape's first appearance (workload
	// evolution); zero means always active.
	ActiveFrom time.Time
}

// Event is a batch of arrivals of one concrete query within one emission
// step.
type Event struct {
	At    time.Time
	SQL   string
	Shape string
	Count int64
}

// Workload is a named set of shapes with replay configuration.
type Workload struct {
	// Name is the trace name ("admissions", "bustracker", "mooc", "noisy").
	Name string
	// DBMS records which system the paper ran this trace on (Table 1).
	DBMS string
	// Tables is the application's table count (Table 1).
	Tables int
	// Shapes are the workload's query shapes.
	Shapes []*Shape
	// Noise is the multiplicative white-noise fraction applied to every
	// rate sample (0.5 = variance 50% of mean, per Appendix D).
	Noise float64
	// Drift optionally scales the whole workload by a slowly-varying
	// stochastic level (see newDrift). Real traces carry day-scale volume
	// drift that no model can read off a one-day input window, which is
	// what makes long prediction horizons genuinely harder than short ones
	// (§7.2). Nil means no drift.
	Drift func(at time.Time) float64
	// Seed drives all replay randomness.
	Seed int64
	// Start and End delimit the recommended replay window, mirroring the
	// trace lengths in Table 1.
	Start, End time.Time
}

// Replay walks [from, to) in steps, sampling a Poisson arrival count per
// shape per step and invoking fn for each non-empty batch. Events within a
// step are emitted in shape order; steps advance chronologically.
func (w *Workload) Replay(from, to time.Time, step time.Duration, fn func(Event) error) error {
	if step <= 0 {
		return fmt.Errorf("workload: non-positive step %v", step)
	}
	rng := rand.New(rand.NewSource(w.Seed))
	stepMinutes := step.Minutes()
	for at := from; at.Before(to); at = at.Add(step) {
		drift := 1.0
		if w.Drift != nil {
			drift = w.Drift(at)
		}
		for _, s := range w.Shapes {
			if !s.ActiveFrom.IsZero() && at.Before(s.ActiveFrom) {
				continue
			}
			lambda := s.Rate(at) * stepMinutes * drift
			if w.Noise > 0 {
				lambda *= 1 + w.Noise*rng.NormFloat64()
			}
			if lambda <= 0 {
				continue
			}
			count := poisson(rng, lambda)
			if count == 0 {
				continue
			}
			ev := Event{At: at, SQL: s.Gen(rng, at), Shape: s.Name, Count: count}
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplayBatches walks [from, to) like Replay but hands fn whole batches of
// up to batch events at a time, preserving emission order. It exists for
// batch ingest paths (Forecaster.ObserveMany, Preprocessor.ProcessMany)
// that amortize per-stripe lock acquisitions across many events.
func (w *Workload) ReplayBatches(from, to time.Time, step time.Duration, batch int, fn func([]Event) error) error {
	if batch <= 0 {
		return fmt.Errorf("workload: non-positive batch size %d", batch)
	}
	buf := make([]Event, 0, batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := fn(buf)
		buf = buf[:0]
		return err
	}
	err := w.Replay(from, to, step, func(ev Event) error {
		buf = append(buf, ev)
		if len(buf) >= batch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// ExpectedRate returns the noise-free total arrival rate (queries/minute)
// across all active shapes at time at, including drift.
func (w *Workload) ExpectedRate(at time.Time) float64 {
	var total float64
	for _, s := range w.Shapes {
		if !s.ActiveFrom.IsZero() && at.Before(s.ActiveFrom) {
			continue
		}
		total += s.Rate(at)
	}
	if w.Drift != nil {
		total *= w.Drift(at)
	}
	return total
}

// newDrift builds a deterministic day-scale level process: the log level
// follows an AR(1) over days (decay 0.85) whose innovations are hashed from
// the seed, linearly interpolated within days. amplitude is the innovation
// standard deviation in log space; the resulting multiplier wanders around
// 1 with autocorrelation ≈0.85/day, so a one-day input window carries the
// current level but one-week-ahead levels stay genuinely uncertain.
func newDrift(seed int64, amplitude float64) func(at time.Time) float64 {
	const decay = 0.85
	innov := func(day int64) float64 {
		r := rand.New(rand.NewSource(seed ^ day*0x9e3779b97f4a7c))
		return r.NormFloat64() * amplitude
	}
	level := func(day int64) float64 {
		// 0.85^40 ≈ 1.5e-3: the tail beyond 40 days is negligible.
		var acc float64
		w := 1.0
		for i := int64(0); i < 40; i++ {
			acc += w * innov(day-i)
			w *= decay
		}
		return acc
	}
	return func(at time.Time) float64 {
		day := at.Unix() / 86400
		frac := float64(at.Unix()%86400) / 86400
		l := level(day)*(1-frac) + level(day+1)*frac
		return math.Exp(l)
	}
}

// ActiveShapes returns how many shapes have appeared by time at, used by the
// MOOC evolution figure (accumulated distinct queries, Figure 1c).
func (w *Workload) ActiveShapes(at time.Time) int {
	n := 0
	for _, s := range w.Shapes {
		if s.ActiveFrom.IsZero() || !at.Before(s.ActiveFrom) {
			n++
		}
	}
	return n
}

// poisson samples a Poisson(lambda) count, switching to the normal
// approximation for large lambda.
func poisson(rng *rand.Rand, lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int64(v + 0.5)
	}
	// Knuth's method.
	l := math.Exp(-lambda)
	var k int64
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10_000 { // guard against pathological lambda
			return k
		}
	}
}

// diurnal is a reusable daily pattern: a base load plus Gaussian bumps at
// the given hours (fractional hours allowed), scaled by a weekend factor.
func diurnal(at time.Time, base float64, peaks []peak, weekendFactor float64) float64 {
	h := float64(at.Hour()) + float64(at.Minute())/60
	v := base
	for _, p := range peaks {
		d := h - p.hour
		// Wrap midnight so a 23:30 peak bleeds into 00:30.
		if d > 12 {
			d -= 24
		}
		if d < -12 {
			d += 24
		}
		v += p.height * math.Exp(-d*d/(2*p.width*p.width))
	}
	if wd := at.Weekday(); wd == time.Saturday || wd == time.Sunday {
		v *= weekendFactor
	}
	return v
}

type peak struct {
	hour   float64
	height float64
	width  float64
}
