package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"qb5000/internal/preprocess"
	"qb5000/internal/sqlparse"
)

func preprocessNew() *preprocess.Preprocessor {
	return preprocess.New(preprocess.Options{Seed: 1})
}

func TestReplayDeterministic(t *testing.T) {
	collect := func() []Event {
		w := BusTracker(42)
		var evs []Event
		w.Replay(w.Start, w.Start.Add(2*time.Hour), 10*time.Minute, func(ev Event) error {
			evs = append(evs, ev)
			return nil
		})
		return evs
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no events generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestReplayDifferentSeedsDiffer(t *testing.T) {
	count := func(seed int64) int64 {
		w := BusTracker(seed)
		var n int64
		w.Replay(w.Start, w.Start.Add(2*time.Hour), 10*time.Minute, func(ev Event) error {
			n += ev.Count
			return nil
		})
		return n
	}
	if count(1) == count(2) {
		t.Skip("unlikely but possible collision; not a failure signal by itself")
	}
}

func TestAllWorkloadsGenerateParseableSQL(t *testing.T) {
	for _, w := range []*Workload{Admissions(1), BusTracker(2), MOOC(3), Noisy(4)} {
		seen := 0
		err := w.Replay(w.Start, w.Start.Add(3*time.Hour), 15*time.Minute, func(ev Event) error {
			seen++
			if _, err := sqlparse.Parse(ev.SQL); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if seen == 0 {
			t.Fatalf("%s: no events in 3h", w.Name)
		}
	}
}

func TestBusTrackerRushHourCycle(t *testing.T) {
	w := BusTracker(5)
	// Expected rate at 8am on a weekday must far exceed 3am.
	wed := time.Date(2017, time.December, 6, 0, 0, 0, 0, time.UTC)
	night := w.ExpectedRate(wed.Add(3 * time.Hour))
	rush := w.ExpectedRate(wed.Add(8 * time.Hour))
	if rush < 3*night {
		t.Fatalf("rush %v not >> night %v", rush, night)
	}
	// Weekends are quieter than weekdays at rush hour.
	sat := time.Date(2017, time.December, 9, 8, 0, 0, 0, time.UTC)
	if w.ExpectedRate(sat) > rush {
		t.Fatalf("weekend rush %v exceeds weekday %v", w.ExpectedRate(sat), rush)
	}
}

func TestAdmissionsDeadlineSpike(t *testing.T) {
	w := Admissions(6)
	calm := time.Date(2017, time.October, 10, 20, 0, 0, 0, time.UTC)
	spike := time.Date(2017, time.December, 15, 20, 0, 0, 0, time.UTC)
	if w.ExpectedRate(spike) < 5*w.ExpectedRate(calm) {
		t.Fatalf("deadline rate %v not >> calm %v", w.ExpectedRate(spike), w.ExpectedRate(calm))
	}
	// The spike repeats the previous year.
	spike16 := time.Date(2016, time.December, 15, 20, 0, 0, 0, time.UTC)
	calm16 := time.Date(2016, time.October, 10, 20, 0, 0, 0, time.UTC)
	if w.ExpectedRate(spike16) < 5*w.ExpectedRate(calm16) {
		t.Fatal("2016 deadline spike missing")
	}
	// Dec 1 (early decision) is smaller than Dec 15 (final).
	dec1 := time.Date(2017, time.December, 1, 20, 0, 0, 0, time.UTC)
	if w.ExpectedRate(dec1) >= w.ExpectedRate(spike) {
		t.Fatalf("Dec 1 %v should be below Dec 15 %v", w.ExpectedRate(dec1), w.ExpectedRate(spike))
	}
}

func TestMOOCEvolution(t *testing.T) {
	w := MOOC(7)
	early := w.ActiveShapes(w.Start.Add(24 * time.Hour))
	late := w.ActiveShapes(w.Start.Add(80 * 24 * time.Hour))
	if late <= early {
		t.Fatalf("no evolution: %d → %d shapes", early, late)
	}
	// The forum launch adds a burst of shapes in early May.
	before := w.ActiveShapes(time.Date(2017, time.May, 4, 0, 0, 0, 0, time.UTC))
	after := w.ActiveShapes(time.Date(2017, time.May, 6, 0, 0, 0, 0, time.UTC))
	if after-before < 5 {
		t.Fatalf("forum launch added only %d shapes", after-before)
	}
}

func TestNoisySlotsAreExclusive(t *testing.T) {
	w := Noisy(8)
	// During slot 0 only wikipedia shapes fire; during slot 1 only tatp.
	slot0 := w.Start.Add(2 * time.Hour)
	slot1 := w.Start.Add(12 * time.Hour)
	for _, s := range w.Shapes {
		active0 := s.Rate(slot0) > 0
		active1 := s.Rate(slot1) > 0
		isWiki := len(s.Name) >= 4 && s.Name[:4] == "wiki"
		isTatp := len(s.Name) >= 4 && s.Name[:4] == "tatp"
		if isWiki && (!active0 || active1) {
			t.Fatalf("%s active in wrong slot", s.Name)
		}
		if isTatp && (active0 || !active1) {
			t.Fatalf("%s active in wrong slot", s.Name)
		}
	}
}

func TestPoissonMeanAndEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 4))
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("poisson(4) mean = %v", mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive lambda must yield 0")
	}
	// Normal-approximation regime.
	var big float64
	for i := 0; i < 2000; i++ {
		big += float64(poisson(rng, 500))
	}
	if m := big / 2000; math.Abs(m-500) > 5 {
		t.Fatalf("poisson(500) mean = %v", m)
	}
}

func TestDriftMeanNearOne(t *testing.T) {
	d := newDrift(3, 0.1)
	var sum float64
	n := 0
	for day := 0; day < 400; day++ {
		at := time.Date(2017, 1, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(day) * 24 * time.Hour)
		sum += d(at)
		n++
	}
	mean := sum / float64(n)
	if mean < 0.8 || mean > 1.25 {
		t.Fatalf("drift mean = %v, want ≈1", mean)
	}
	// Deterministic: same inputs give same outputs.
	at := time.Date(2017, 5, 5, 7, 0, 0, 0, time.UTC)
	if d(at) != d(at) {
		t.Fatal("drift not deterministic")
	}
}

func TestReplayErrorsOnBadStep(t *testing.T) {
	w := BusTracker(1)
	if err := w.Replay(w.Start, w.End, 0, func(Event) error { return nil }); err == nil {
		t.Fatal("expected error for non-positive step")
	}
}

func TestExpectedRateExcludesInactiveShapes(t *testing.T) {
	w := MOOC(1)
	beforeLaunch := w.Start.Add(time.Hour)
	// Recompute manually: only shapes with ActiveFrom zero-or-past count.
	var want float64
	for _, s := range w.Shapes {
		if !s.ActiveFrom.IsZero() && beforeLaunch.Before(s.ActiveFrom) {
			continue
		}
		want += s.Rate(beforeLaunch)
	}
	if w.Drift != nil {
		want *= w.Drift(beforeLaunch)
	}
	if got := w.ExpectedRate(beforeLaunch); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedRate = %v, want %v", got, want)
	}
}

func TestNoisyAnomalySpikesPresent(t *testing.T) {
	w := Noisy(8)
	// Within the first benchmark slot there are injected anomaly windows
	// where the rate quadruples; scan minute-by-minute for one.
	var maxRate, baseRate float64
	slotMid := w.Start.Add(5 * time.Hour)
	baseRate = w.ExpectedRate(slotMid)
	for m := 0; m < 600; m++ {
		at := w.Start.Add(time.Duration(m) * time.Minute)
		if r := w.ExpectedRate(at); r > maxRate {
			maxRate = r
		}
	}
	if maxRate < 2*baseRate {
		t.Fatalf("no anomaly spike found: max %v vs base %v", maxRate, baseRate)
	}
}

func TestBusTrackerRiderGroupSharesPattern(t *testing.T) {
	// The four rider shapes must correlate strongly over a day (they form
	// the Figure 3 cluster) despite their phase offsets.
	w := BusTracker(3)
	day := time.Date(2017, time.December, 6, 0, 0, 0, 0, time.UTC)
	series := func(name string) []float64 {
		var s *Shape
		for _, sh := range w.Shapes {
			if sh.Name == name {
				s = sh
			}
		}
		if s == nil {
			t.Fatalf("shape %s missing", name)
		}
		out := make([]float64, 24*4)
		for i := range out {
			out[i] = s.Rate(day.Add(time.Duration(i) * 15 * time.Minute))
		}
		return out
	}
	a, b := series("nearby_stops"), series("arrival_prediction")
	// Cosine similarity by hand.
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if cos := dot / math.Sqrt(na*nb); cos < 0.8 {
		t.Fatalf("rider shapes cosine %v < 0.8 (would not co-cluster)", cos)
	}
}

// TestReplayPreprocessorInvariant: the preprocessor's query count must equal
// the sum of event counts it ingested.
func TestReplayPreprocessorInvariant(t *testing.T) {
	w := MOOC(13)
	var total int64
	pre := preprocessNew()
	err := w.Replay(w.Start, w.Start.Add(12*time.Hour), 10*time.Minute, func(ev Event) error {
		total += ev.Count
		_, err := pre.ProcessBatch(ev.SQL, ev.At, ev.Count)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pre.Stats().TotalQueries; got != total {
		t.Fatalf("preprocessor counted %d, events carried %d", got, total)
	}
}
