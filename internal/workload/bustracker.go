package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// busTrackerStart anchors the BusTracker trace; the paper's trace spans 58
// days (Table 1).
var busTrackerStart = time.Date(2017, time.December, 1, 0, 0, 0, 0, time.UTC)

// BusTracker builds the transit-tracking workload (§2.1): riders checking
// schedules drive strong 24-hour cycles with morning and evening rush-hour
// peaks (Figure 1a), the transit feed ingests locations at a constant rate,
// and a handful of low-volume administrative shapes form the long tail of
// small clusters (§5.3).
func BusTracker(seed int64) *Workload {
	// Each rider-facing shape follows the same rush-hour pattern with a
	// slight phase offset (riders check schedules before the ride, arrival
	// predictions during it). The offsets keep within-group cosine
	// similarity between the 0.8 and 0.9 thresholds studied in Appendix A,
	// so the group coheres at rho=0.8 but fragments at rho=0.9.
	rush := func(scale, phase float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			return scale * diurnal(at, 2, []peak{
				{hour: 8 + phase, height: 100, width: 1.2},    // morning rush
				{hour: 17.5 + phase, height: 120, width: 1.5}, // evening rush
				{hour: 12.5 + phase, height: 30, width: 2.5},  // lunch bump
			}, 0.35)
		}
	}
	// Trip planning happens in the evening and on weekends — deliberately
	// out of phase with the commute rush so the workload carries several
	// simultaneous arrival patterns (§2.3).
	daytime := func(scale float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			v := scale * diurnal(at, 1, []peak{{hour: 21, height: 22, width: 2.2}}, 1.0)
			if wd := at.Weekday(); wd == time.Saturday || wd == time.Sunday {
				v *= 1.5
			}
			return v
		}
	}
	constant := func(rate float64) func(time.Time) float64 {
		return func(time.Time) float64 { return rate }
	}

	shapes := []*Shape{
		// Rider group: four shapes sharing the rush-hour pattern at
		// different volumes — the Figure 3 cluster.
		{
			Name: "nearby_stops",
			Rate: rush(1.0, 0),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				lat := 40.4 + rng.Float64()*0.2
				lon := -80.1 + rng.Float64()*0.2
				return fmt.Sprintf(
					"SELECT s.id, s.name FROM stops s WHERE s.lat BETWEEN %.4f AND %.4f AND s.lon BETWEEN %.4f AND %.4f",
					lat-0.01, lat+0.01, lon-0.01, lon+0.01)
			},
		},
		{
			Name: "arrival_prediction",
			Rate: rush(0.55, 0.8),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT p.eta, p.bus_id FROM predictions p WHERE p.stop_id = %d AND p.route_id = %d ORDER BY p.eta LIMIT 5",
					rng.Intn(5000), rng.Intn(120))
			},
		},
		{
			Name: "routes_at_stop",
			Rate: rush(0.30, -0.8),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT r.id, r.name FROM routes r JOIN route_stops rs ON r.id = rs.route_id WHERE rs.stop_id = %d",
					rng.Intn(5000))
			},
		},
		{
			Name: "buses_on_route",
			Rate: rush(0.12, 1.4),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT b.id, b.lat, b.lon FROM buses b WHERE b.route_id = %d", rng.Intn(120))
			},
		},
		// Ingest group: the transit feed reports continuously.
		{
			Name: "ingest_location",
			Rate: constant(14),
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"INSERT INTO bus_locations (bus_id, lat, lon, reported_at) VALUES (%d, %.5f, %.5f, %d)",
					rng.Intn(600), 40.4+rng.Float64()*0.2, -80.1+rng.Float64()*0.2, at.Unix())
			},
		},
		{
			Name: "update_bus_position",
			Rate: constant(7),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"UPDATE buses SET lat = %.5f, lon = %.5f WHERE id = %d",
					40.4+rng.Float64()*0.2, -80.1+rng.Float64()*0.2, rng.Intn(600))
			},
		},
		// Trip-planner group: broad daytime hump.
		{
			Name: "trip_plan",
			Rate: daytime(1.0),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT rs.route_id, COUNT(*) FROM route_stops rs WHERE rs.stop_id IN (%d, %d) GROUP BY rs.route_id",
					rng.Intn(5000), rng.Intn(5000))
			},
		},
		{
			Name: "route_detail",
			Rate: daytime(0.4),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT s.name, rs.seq FROM route_stops rs JOIN stops s ON rs.stop_id = s.id WHERE rs.route_id = %d ORDER BY rs.seq",
					rng.Intn(120))
			},
		},
	}
	shapes = append(shapes, busTrackerTail()...)

	return &Workload{
		Name:   "bustracker",
		DBMS:   "PostgreSQL",
		Tables: 95,
		Shapes: shapes,
		Noise:  0.10,
		Drift:  newDrift(seed+2, 0.12),
		Seed:   seed,
		Start:  busTrackerStart,
		End:    busTrackerStart.Add(58 * 24 * time.Hour),
	}
}

// busTrackerTail returns the low-volume administrative shapes that produce
// the long tail of small noisy clusters (§5.3): nightly cleanups, weekly
// reports, and rare manual lookups.
func busTrackerTail() []*Shape {
	var shapes []*Shape
	nightly := func(at time.Time) float64 {
		return diurnal(at, 0, []peak{{hour: 3, height: 2, width: 0.4}}, 1)
	}
	weekly := func(at time.Time) float64 {
		if at.Weekday() != time.Monday {
			return 0
		}
		return diurnal(at, 0, []peak{{hour: 6, height: 1.5, width: 0.5}}, 1)
	}
	rare := func(period float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			// A slow sinusoid with long quiet stretches.
			phase := float64(at.Unix()) / (3600 * period)
			v := math.Sin(2*math.Pi*phase) - 0.8
			if v < 0 {
				return 0
			}
			return v * 0.3
		}
	}
	// Stable mid-volume groups keep the top-5 cluster set steady day over
	// day (Figure 6): hourly telemetry rollups and a steady alerting poll.
	shapes = append(shapes,
		&Shape{
			Name: "telemetry_rollup",
			Rate: func(at time.Time) float64 {
				if at.Minute() < 10 {
					return 6
				}
				return 0.5
			},
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"SELECT bl.bus_id, COUNT(*) FROM bus_locations bl WHERE bl.reported_at > %d GROUP BY bl.bus_id",
					at.Unix()-3600)
			},
		},
		&Shape{
			Name: "alert_poll",
			Rate: func(time.Time) float64 { return 3 },
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT b.id FROM buses b WHERE b.route_id = %d AND b.lat BETWEEN %.4f AND %.4f",
					rng.Intn(120), 40.44, 40.47)
			},
		},
	)
	shapes = append(shapes,
		&Shape{
			Name: "purge_old_locations",
			Rate: nightly,
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf("DELETE FROM bus_locations WHERE reported_at < %d", at.Unix()-86400*rng.Int63n(7))
			},
		},
		&Shape{
			Name: "weekly_ridership_report",
			Rate: weekly,
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"SELECT p.route_id, COUNT(*), AVG(p.eta) FROM predictions p WHERE p.created_at > %d GROUP BY p.route_id HAVING COUNT(*) > %d",
					at.Unix()-604800, rng.Intn(100))
			},
		},
	)
	// Each admin lookup projects a different column set so templatization
	// keeps them distinct (the Pre-Processor folds templates whose tables,
	// predicates, and projections all match).
	projections := []string{
		"b.id, b.route_id",
		"b.id, b.lat, b.lon",
		"b.id, b.fleet_no",
		"b.route_id, b.depot",
		"b.id, b.lat",
		"b.id, b.depot",
	}
	for i, proj := range projections {
		idx, cols := i, proj
		shapes = append(shapes, &Shape{
			Name: fmt.Sprintf("admin_lookup_%d", idx),
			Rate: rare(float64(30 + 13*idx)),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT %s FROM buses b WHERE b.fleet_no = %d AND b.depot = '%c'",
					cols, rng.Intn(10000), 'A'+rune(idx))
			},
		})
	}
	return shapes
}
