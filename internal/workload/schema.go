package workload

import (
	"fmt"
	"math/rand"

	"qb5000/internal/engine"
)

// SetupEngine creates and populates the workload's schema in eng at the
// given scale (approximate row count of the largest table). Only primary-key
// indexes are created, mirroring the paper's §7.6 setup where all secondary
// indexes are dropped before the experiment begins. The value distributions
// match the ranges the shape generators draw parameters from, so predicate
// selectivities are realistic.
func SetupEngine(eng *engine.Engine, name string, scale int, seed int64) error {
	if scale <= 0 {
		scale = 50000
	}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "admissions":
		return setupAdmissions(eng, scale, rng)
	case "bustracker":
		return setupBusTracker(eng, scale, rng)
	default:
		return fmt.Errorf("workload: no engine schema for %q", name)
	}
}

func setupAdmissions(eng *engine.Engine, scale int, rng *rand.Rand) error {
	type tbl struct {
		name string
		cols []engine.Column
	}
	tables := []tbl{
		{"users", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "email", Type: engine.StringCol},
			{Name: "password_hash", Type: engine.StringCol},
		}},
		{"applications", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "student_id", Type: engine.IntCol},
			{Name: "program_id", Type: engine.IntCol},
			{Name: "status", Type: engine.StringCol},
			{Name: "created_at", Type: engine.IntCol},
			{Name: "submitted_at", Type: engine.IntCol},
			{Name: "updated_at", Type: engine.IntCol},
		}},
		{"documents", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "application_id", Type: engine.IntCol},
			{Name: "kind", Type: engine.StringCol},
			{Name: "path", Type: engine.StringCol},
			{Name: "uploaded_at", Type: engine.IntCol},
		}},
		{"programs", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "name", Type: engine.StringCol},
			{Name: "department_id", Type: engine.IntCol},
			{Name: "deadline", Type: engine.IntCol},
			{Name: "open", Type: engine.BoolCol},
		}},
		{"reviews", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "application_id", Type: engine.IntCol},
			{Name: "reviewer_id", Type: engine.IntCol},
			{Name: "score", Type: engine.IntCol},
			{Name: "created_at", Type: engine.IntCol},
		}},
		{"sessions", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "user_id", Type: engine.IntCol},
			{Name: "expires_at", Type: engine.IntCol},
		}},
	}
	for _, t := range tables {
		if _, err := eng.CreateTable(t.name, t.cols); err != nil {
			return err
		}
	}

	statuses := []string{"draft", "submitted", "accepted", "rejected", "waitlisted"}
	// Generators draw student ids from [0, 400000) and application ids from
	// [0, 500000); spread stored ids across those ranges so point lookups
	// behave realistically at any scale.
	nUsers := scale / 2
	for i := 0; i < nUsers; i++ {
		id := int64(i) * 400000 / int64(nUsers)
		if err := eng.InsertValues("users", []engine.Value{
			engine.IntVal(id),
			engine.StringVal(fmt.Sprintf("user%d@example.com", id)),
			engine.StringVal(fmt.Sprintf("hash%x", rng.Int63())),
		}); err != nil {
			return err
		}
	}
	nApps := scale
	for i := 0; i < nApps; i++ {
		id := int64(i) * 500000 / int64(nApps)
		created := int64(1470000000 + rng.Intn(40000000))
		if err := eng.InsertValues("applications", []engine.Value{
			engine.IntVal(id),
			engine.IntVal(rng.Int63n(400000)),
			engine.IntVal(rng.Int63n(507)),
			engine.StringVal(statuses[rng.Intn(len(statuses))]),
			engine.IntVal(created),
			engine.IntVal(created + int64(rng.Intn(1000000))),
			engine.IntVal(created + int64(rng.Intn(2000000))),
		}); err != nil {
			return err
		}
	}
	kinds := []string{"transcript", "cv", "statement", "letter"}
	nDocs := scale
	for i := 0; i < nDocs; i++ {
		if err := eng.InsertValues("documents", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(500000)),
			engine.StringVal(kinds[rng.Intn(len(kinds))]),
			engine.StringVal(fmt.Sprintf("docs/%d.pdf", rng.Int63())),
			engine.IntVal(1470000000 + rng.Int63n(40000000)),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < 507; i++ {
		if err := eng.InsertValues("programs", []engine.Value{
			engine.IntVal(int64(i)),
			engine.StringVal(fmt.Sprintf("program-%d", i)),
			engine.IntVal(int64(i % 216)),
			engine.IntVal(1512086400),
			engine.BoolVal(i%10 != 0),
		}); err != nil {
			return err
		}
	}
	nReviews := scale / 4
	for i := 0; i < nReviews; i++ {
		if err := eng.InsertValues("reviews", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(500000)),
			engine.IntVal(rng.Int63n(2000)),
			engine.IntVal(rng.Int63n(10)),
			engine.IntVal(1480000000 + rng.Int63n(10000000)),
		}); err != nil {
			return err
		}
	}
	nSessions := scale / 5
	for i := 0; i < nSessions; i++ {
		if err := eng.InsertValues("sessions", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(400000)),
			engine.IntVal(1480000000 + rng.Int63n(10000000)),
		}); err != nil {
			return err
		}
	}
	// Primary-key indexes only.
	for _, t := range tables {
		if _, _, err := eng.CreateIndex(t.name, []string{"id"}); err != nil {
			return err
		}
	}
	return nil
}

func setupBusTracker(eng *engine.Engine, scale int, rng *rand.Rand) error {
	type tbl struct {
		name string
		cols []engine.Column
	}
	tables := []tbl{
		{"stops", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "name", Type: engine.StringCol},
			{Name: "lat", Type: engine.FloatCol},
			{Name: "lon", Type: engine.FloatCol},
		}},
		{"routes", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "name", Type: engine.StringCol},
		}},
		{"route_stops", []engine.Column{
			{Name: "route_id", Type: engine.IntCol},
			{Name: "stop_id", Type: engine.IntCol},
			{Name: "seq", Type: engine.IntCol},
		}},
		{"buses", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "route_id", Type: engine.IntCol},
			{Name: "lat", Type: engine.FloatCol},
			{Name: "lon", Type: engine.FloatCol},
			{Name: "fleet_no", Type: engine.IntCol},
			{Name: "depot", Type: engine.StringCol},
		}},
		{"bus_locations", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "bus_id", Type: engine.IntCol},
			{Name: "lat", Type: engine.FloatCol},
			{Name: "lon", Type: engine.FloatCol},
			{Name: "reported_at", Type: engine.IntCol},
		}},
		{"predictions", []engine.Column{
			{Name: "id", Type: engine.IntCol},
			{Name: "stop_id", Type: engine.IntCol},
			{Name: "route_id", Type: engine.IntCol},
			{Name: "bus_id", Type: engine.IntCol},
			{Name: "eta", Type: engine.IntCol},
			{Name: "created_at", Type: engine.IntCol},
		}},
	}
	for _, t := range tables {
		if _, err := eng.CreateTable(t.name, t.cols); err != nil {
			return err
		}
	}
	for i := 0; i < 5000; i++ {
		if err := eng.InsertValues("stops", []engine.Value{
			engine.IntVal(int64(i)),
			engine.StringVal(fmt.Sprintf("stop-%d", i)),
			engine.FloatVal(40.4 + rng.Float64()*0.2),
			engine.FloatVal(-80.1 + rng.Float64()*0.2),
		}); err != nil {
			return err
		}
	}
	for i := 0; i < 120; i++ {
		if err := eng.InsertValues("routes", []engine.Value{
			engine.IntVal(int64(i)),
			engine.StringVal(fmt.Sprintf("route-%d", i)),
		}); err != nil {
			return err
		}
	}
	for r := 0; r < 120; r++ {
		stops := 20 + rng.Intn(30)
		for s := 0; s < stops; s++ {
			if err := eng.InsertValues("route_stops", []engine.Value{
				engine.IntVal(int64(r)),
				engine.IntVal(rng.Int63n(5000)),
				engine.IntVal(int64(s)),
			}); err != nil {
				return err
			}
		}
	}
	depots := []string{"A", "B", "C", "D", "E", "F"}
	for i := 0; i < 600; i++ {
		if err := eng.InsertValues("buses", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(120)),
			engine.FloatVal(40.4 + rng.Float64()*0.2),
			engine.FloatVal(-80.1 + rng.Float64()*0.2),
			engine.IntVal(rng.Int63n(10000)),
			engine.StringVal(depots[rng.Intn(len(depots))]),
		}); err != nil {
			return err
		}
	}
	nLoc := scale
	for i := 0; i < nLoc; i++ {
		if err := eng.InsertValues("bus_locations", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(600)),
			engine.FloatVal(40.4 + rng.Float64()*0.2),
			engine.FloatVal(-80.1 + rng.Float64()*0.2),
			engine.IntVal(1512086400 + rng.Int63n(5000000)),
		}); err != nil {
			return err
		}
	}
	nPred := scale
	for i := 0; i < nPred; i++ {
		if err := eng.InsertValues("predictions", []engine.Value{
			engine.IntVal(int64(i)),
			engine.IntVal(rng.Int63n(5000)),
			engine.IntVal(rng.Int63n(120)),
			engine.IntVal(rng.Int63n(600)),
			engine.IntVal(rng.Int63n(3600)),
			engine.IntVal(1512086400 + rng.Int63n(5000000)),
		}); err != nil {
			return err
		}
	}
	for _, t := range []string{"stops", "routes", "buses", "bus_locations", "predictions"} {
		if _, _, err := eng.CreateIndex(t, []string{"id"}); err != nil {
			return err
		}
	}
	return nil
}
