package workload

import (
	"testing"
	"time"

	"qb5000/internal/engine"
)

// TestSetupEngineExecutesWorkloadQueries is the contract between the trace
// generators and the embedded engine: every query a workload generates must
// execute against its schema.
func TestSetupEngineExecutesWorkloadQueries(t *testing.T) {
	for _, name := range []string{"admissions", "bustracker"} {
		eng := engine.New()
		if err := SetupEngine(eng, name, 2000, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var w *Workload
		if name == "admissions" {
			w = Admissions(1)
		} else {
			w = BusTracker(1)
		}
		executed := 0
		err := w.Replay(w.Start, w.Start.Add(2*time.Hour), 10*time.Minute, func(ev Event) error {
			if _, err := eng.Execute(ev.SQL); err != nil {
				t.Errorf("%s: %q: %v", name, ev.SQL, err)
			}
			executed++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if executed == 0 {
			t.Fatalf("%s: no queries executed", name)
		}
	}
}

func TestSetupEngineCreatesPrimaryIndexesOnly(t *testing.T) {
	eng := engine.New()
	if err := SetupEngine(eng, "bustracker", 500, 1); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range eng.Tables() {
		for _, ix := range tbl.Indexes() {
			if len(ix.Columns) != 1 || ix.Columns[0] != "id" {
				t.Fatalf("unexpected secondary index %s on %s", ix.Name, tbl.Name)
			}
		}
	}
	// route_stops intentionally has no id column and thus no index.
	if tbl, ok := eng.Table("route_stops"); !ok || tbl.RowCount() == 0 {
		t.Fatal("route_stops missing or empty")
	}
}

func TestSetupEngineUnknownWorkload(t *testing.T) {
	if err := SetupEngine(engine.New(), "nope", 10, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestSetupEngineScalesRowCounts(t *testing.T) {
	small := engine.New()
	if err := SetupEngine(small, "admissions", 1000, 1); err != nil {
		t.Fatal(err)
	}
	big := engine.New()
	if err := SetupEngine(big, "admissions", 4000, 1); err != nil {
		t.Fatal(err)
	}
	ts, _ := small.Table("applications")
	tb, _ := big.Table("applications")
	if tb.RowCount() != 4*ts.RowCount() {
		t.Fatalf("scaling broken: %d vs %d", ts.RowCount(), tb.RowCount())
	}
}
