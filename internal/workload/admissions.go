package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// admissionsStart anchors the Admissions trace two application cycles before
// its end, so the spike model can learn the previous year's deadlines
// (Figure 9 / Appendix B require the 2016 spikes as training data for the
// 2017 predictions).
var admissionsStart = time.Date(2016, time.September, 1, 0, 0, 0, 0, time.UTC)

// admissionsEnd closes the trace after the December 2017 deadlines.
var admissionsEnd = time.Date(2018, time.January, 10, 0, 0, 0, 0, time.UTC)

// admissionsDeadlines are the program deadlines that repeat every year on
// the same dates (Dec 1 and Dec 15, §6.1).
// The early-decision deadline (Dec 1) draws a smaller applicant pool than
// the final deadline (Dec 15), so its spike is roughly half as tall — which
// also gives the two run-ups distinguishable magnitudes in a forecasting
// model's input window.
type deadline struct {
	at     time.Time
	weight float64
}

func admissionsDeadlines() []deadline {
	var ds []deadline
	for _, y := range []int{2016, 2017, 2018} {
		ds = append(ds,
			deadline{time.Date(y, time.December, 1, 23, 59, 0, 0, time.UTC), 0.5},
			deadline{time.Date(y, time.December, 15, 23, 59, 0, 0, time.UTC), 1.0})
	}
	return ds
}

// deadlineBoost returns the growth-and-spike multiplier: load grows slowly
// a week out, rapidly over the final two days (Figure 1b), then collapses
// after the deadline passes.
func deadlineBoost(at time.Time, amplitude float64) float64 {
	boost := 0.0
	for _, d := range admissionsDeadlines() {
		dt := d.at.Sub(at).Hours() / 24 // days until this deadline
		amp := amplitude * d.weight
		switch {
		case dt >= 0 && dt < 21:
			// Two time constants: a slow build over the final weeks plus
			// the sharp last-two-days panic (Figure 1b). The slow component
			// is what lets a kernel model recognize a run-up from a window
			// that ends a week before the deadline.
			boost += amp * (0.3*math.Exp(-dt/5) + math.Exp(-dt/1.4))
		case dt < 0 && dt > -1:
			// Brief afterglow while confirmations land.
			boost += amp * 0.25 * math.Exp(dt*4)
		}
	}
	return 1 + boost
}

// reviewSeason returns 1 during the faculty review window (mid-December
// through February) and decays outside it; review queries only exist after
// deadlines pass (§2.1).
func reviewSeason(at time.Time) float64 {
	m := at.Month()
	switch m {
	case time.December:
		if at.Day() >= 16 {
			return 1
		}
		return 0.1
	case time.January, time.February:
		return 1
	case time.March:
		return 0.4
	default:
		return 0.02
	}
}

// Admissions builds the graduate-admissions workload (§2.1): applicant
// queries grow toward the two December deadlines and spike on them, every
// year, while faculty review activity turns on after the deadlines.
func Admissions(seed int64) *Workload {
	// Distinct daily profiles per applicant activity: status checks peak in
	// the evening, logins across the working day, browsing around noon, and
	// uploads late at night — so the clusterer sees several simultaneous
	// arrival patterns (§2.3) rather than one.
	profile := func(peaks []peak, scale, amplitude float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			base := diurnal(at, 1, peaks, 0.8)
			return scale * base * deadlineBoost(at, amplitude)
		}
	}
	evening := []peak{{hour: 20, height: 8, width: 3.0}, {hour: 11, height: 3, width: 2.5}}
	workday := []peak{{hour: 10, height: 6, width: 2.0}, {hour: 15, height: 6, width: 2.5}}
	midday := []peak{{hour: 13, height: 7, width: 4.0}}
	lateNight := []peak{{hour: 23, height: 7, width: 2.0}, {hour: 2, height: 4, width: 2.0}}
	applicant := func(scale, amplitude float64) func(time.Time) float64 {
		return profile(evening, scale, amplitude)
	}
	review := func(scale float64) func(time.Time) float64 {
		return func(at time.Time) float64 {
			base := diurnal(at, 0.2, []peak{{hour: 10, height: 5, width: 2.0}, {hour: 14, height: 4, width: 2.0}}, 0.15)
			return scale * base * reviewSeason(at)
		}
	}

	shapes := []*Shape{
		// Applicant-facing group: all follow the deadline pattern.
		{
			Name: "check_status",
			Rate: applicant(6.0, 18),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT a.id, a.status, a.updated_at FROM applications a WHERE a.student_id = %d",
					rng.Intn(400000))
			},
		},
		{
			Name: "login",
			Rate: profile(workday, 4.0, 15),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT u.id, u.password_hash FROM users u WHERE u.email = 'user%d@example.com'",
					rng.Intn(400000))
			},
		},
		{
			Name: "list_programs",
			Rate: profile(midday, 1.0, 8),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT p.id, p.name, p.deadline FROM programs p WHERE p.department_id = %d AND p.open = TRUE",
					rng.Intn(216))
			},
		},
		{
			Name: "upload_document",
			Rate: profile(lateNight, 0.4, 22),
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"INSERT INTO documents (application_id, kind, path, uploaded_at) VALUES (%d, '%s', 'docs/%d.pdf', %d)",
					rng.Intn(500000), pickString(rng, "transcript", "cv", "statement", "letter"), rng.Int63n(1<<40), at.Unix())
			},
		},
		{
			Name: "create_application",
			Rate: profile(midday, 0.2, 10),
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"INSERT INTO applications (student_id, program_id, status, created_at) VALUES (%d, %d, 'draft', %d)",
					rng.Intn(400000), rng.Intn(507), at.Unix())
			},
		},
		{
			Name: "submit_application",
			Rate: applicant(0.4, 30), // the spikiest: final submissions
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"UPDATE applications SET status = 'submitted', submitted_at = %d WHERE id = %d",
					at.Unix(), rng.Intn(500000))
			},
		},
		// Faculty review group: active after the deadline.
		{
			Name: "review_queue",
			Rate: review(1.2),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT a.id, a.student_id FROM applications a WHERE a.program_id = %d AND a.status = 'submitted' ORDER BY a.submitted_at LIMIT 50",
					rng.Intn(507))
			},
		},
		{
			Name: "read_documents",
			Rate: review(1.0),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"SELECT d.kind, d.path FROM documents d WHERE d.application_id = %d",
					rng.Intn(500000))
			},
		},
		{
			Name: "submit_review",
			Rate: review(0.5),
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf(
					"INSERT INTO reviews (application_id, reviewer_id, score, created_at) VALUES (%d, %d, %d, %d)",
					rng.Intn(500000), rng.Intn(2000), rng.Intn(10), at.Unix())
			},
		},
		{
			Name: "record_decision",
			Rate: review(0.2),
			Gen: func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf(
					"UPDATE applications SET status = '%s' WHERE id = %d",
					pickString(rng, "accepted", "rejected", "waitlisted"), rng.Intn(500000))
			},
		},
		// Operational tail.
		{
			Name: "expire_sessions",
			Rate: func(at time.Time) float64 {
				return diurnal(at, 0, []peak{{hour: 4, height: 1, width: 0.4}}, 1)
			},
			Gen: func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf("DELETE FROM sessions WHERE expires_at < %d", at.Unix())
			},
		},
	}

	return &Workload{
		Name:   "admissions",
		DBMS:   "MySQL",
		Tables: 216,
		Shapes: shapes,
		Noise:  0.10,
		Drift:  newDrift(seed+1, 0.08),
		Seed:   seed,
		Start:  admissionsStart,
		End:    admissionsEnd,
	}
}

func pickString(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}
