package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// noisyStart anchors the Appendix D composite trace.
var noisyStart = time.Date(2018, time.January, 27, 12, 30, 0, 0, time.UTC)

// benchSlotHours is how long each OLTP-Bench benchmark runs before the
// workload shifts to the next one (Appendix D: 10 hours each).
const benchSlotHours = 10

// Noisy builds the Appendix D worst-case workload: eight OLTP-Bench-style
// benchmarks executed consecutively (Wikipedia, TATP, YCSB, SmallBank,
// TPC-C, Twitter, Epinions, Voter), each for ten hours, with white noise
// whose variance is 50 % of the mean and randomly injected spikes. Every
// slot switch replaces the entire template population, which exercises
// QB5000's shift detection and re-clustering (Figure 17).
func Noisy(seed int64) *Workload {
	type benchShape struct {
		name string
		rel  float64 // relative volume within the benchmark
		gen  func(rng *rand.Rand, at time.Time) string
	}
	benches := []struct {
		name   string
		rate   float64 // mean queries/minute while active
		shapes []benchShape
	}{
		{"wikipedia", 220, []benchShape{
			{"wiki_get_page", 0.6, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT pg.id, pg.text FROM wiki_pages pg WHERE pg.title = 'page%d'", rng.Intn(100000))
			}},
			{"wiki_update_page", 0.2, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("UPDATE wiki_pages SET text = 'rev%d' WHERE id = %d", rng.Int63(), rng.Intn(100000))
			}},
			{"wiki_watchlist", 0.2, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT w.page_id FROM wiki_watch w WHERE w.user_id = %d", rng.Intn(50000))
			}},
		}},
		{"tatp", 300, []benchShape{
			{"tatp_get_subscriber", 0.7, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT s.sub_nbr, s.bits FROM subscribers s WHERE s.id = %d", rng.Intn(1000000))
			}},
			{"tatp_update_location", 0.3, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("UPDATE subscribers SET vlr = %d WHERE id = %d", rng.Int63n(1<<30), rng.Intn(1000000))
			}},
		}},
		{"ycsb", 400, []benchShape{
			{"ycsb_read", 0.5, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT y.f0, y.f1 FROM usertable y WHERE y.ycsb_key = %d", rng.Intn(1000000))
			}},
			{"ycsb_update", 0.3, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("UPDATE usertable SET f0 = 'v%d' WHERE ycsb_key = %d", rng.Int63(), rng.Intn(1000000))
			}},
			{"ycsb_insert", 0.2, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("INSERT INTO usertable (ycsb_key, f0) VALUES (%d, 'v%d')", rng.Int63n(1<<40), rng.Int63())
			}},
		}},
		{"smallbank", 250, []benchShape{
			{"sb_balance", 0.5, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT a.balance FROM accounts a WHERE a.cust_id = %d", rng.Intn(100000))
			}},
			{"sb_deposit", 0.5, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("UPDATE accounts SET balance = balance + %d WHERE cust_id = %d", rng.Intn(500), rng.Intn(100000))
			}},
		}},
		{"tpcc", 180, []benchShape{
			{"tpcc_new_order", 0.4, func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf("INSERT INTO orders (w_id, d_id, c_id, entry_d) VALUES (%d, %d, %d, %d)", rng.Intn(10), rng.Intn(10), rng.Intn(30000), at.Unix())
			}},
			{"tpcc_stock_level", 0.2, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT COUNT(*) FROM stock st WHERE st.w_id = %d AND st.quantity < %d", rng.Intn(10), rng.Intn(20))
			}},
			{"tpcc_payment", 0.4, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("UPDATE customers SET balance = balance - %d WHERE id = %d", rng.Intn(5000), rng.Intn(30000))
			}},
		}},
		{"twitter", 350, []benchShape{
			{"tw_timeline", 0.6, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT t.id, t.text FROM tweets t WHERE t.user_id = %d ORDER BY t.created_at DESC LIMIT 20", rng.Intn(500000))
			}},
			{"tw_post", 0.25, func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf("INSERT INTO tweets (user_id, text, created_at) VALUES (%d, 'msg%d', %d)", rng.Intn(500000), rng.Int63(), at.Unix())
			}},
			{"tw_follow", 0.15, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("INSERT INTO follows (follower, followee) VALUES (%d, %d)", rng.Intn(500000), rng.Intn(500000))
			}},
		}},
		{"epinions", 150, []benchShape{
			{"ep_item_reviews", 0.5, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT r.rating, r.body FROM item_reviews r WHERE r.item_id = %d", rng.Intn(100000))
			}},
			{"ep_trust", 0.3, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT tr.target FROM trust tr WHERE tr.source = %d", rng.Intn(80000))
			}},
			{"ep_write_review", 0.2, func(rng *rand.Rand, at time.Time) string {
				return fmt.Sprintf("INSERT INTO item_reviews (item_id, user_id, rating, created_at) VALUES (%d, %d, %d, %d)", rng.Intn(100000), rng.Intn(80000), 1+rng.Intn(5), at.Unix())
			}},
		}},
		{"voter", 500, []benchShape{
			{"voter_vote", 0.8, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("INSERT INTO votes (phone, contestant) VALUES (%d, %d)", rng.Int63n(1<<33), rng.Intn(12))
			}},
			{"voter_tally", 0.2, func(rng *rand.Rand, _ time.Time) string {
				return fmt.Sprintf("SELECT v.contestant, COUNT(*) FROM votes v WHERE v.contestant = %d GROUP BY v.contestant", rng.Intn(12))
			}},
		}},
	}

	anomalyRng := rand.New(rand.NewSource(seed ^ 0x5eed))
	var shapes []*Shape
	for slot, b := range benches {
		from := noisyStart.Add(time.Duration(slot) * benchSlotHours * time.Hour)
		to := from.Add(benchSlotHours * time.Hour)
		// Each benchmark gets a few random spike times within its slot.
		var spikes []time.Time
		for i := 0; i < 2; i++ {
			spikes = append(spikes, from.Add(time.Duration(anomalyRng.Int63n(int64(benchSlotHours*time.Hour)))))
		}
		for _, bs := range b.shapes {
			bs := bs
			base := b.rate * bs.rel
			slotFrom, slotTo := from, to
			sp := spikes
			shapes = append(shapes, &Shape{
				Name:       fmt.Sprintf("%s.%s", b.name, bs.name),
				ActiveFrom: slotFrom,
				Rate: func(at time.Time) float64 {
					if at.Before(slotFrom) || !at.Before(slotTo) {
						return 0
					}
					v := base
					for _, s := range sp {
						d := at.Sub(s).Minutes()
						if d >= 0 && d < 10 { // 10-minute anomaly spikes
							v *= 4
						}
					}
					return v
				},
				Gen: bs.gen,
			})
		}
	}

	return &Workload{
		Name:   "noisy",
		DBMS:   "synthetic",
		Tables: 40,
		Shapes: shapes,
		Noise:  0.5,
		Seed:   seed,
		Start:  noisyStart,
		End:    noisyStart.Add(time.Duration(len(benches)) * benchSlotHours * time.Hour),
	}
}
